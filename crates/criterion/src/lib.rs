//! Minimal offline re-implementation of the `criterion` surface this
//! workspace's benches use (same constraint as the `crates/proptest`
//! shim: no network access to crates.io).
//!
//! Covered API: [`criterion_group!`]/[`criterion_main!`],
//! [`Criterion::bench_function`] / [`Criterion::benchmark_group`] with
//! `bench_function` / `bench_with_input` / `finish`, [`BenchmarkId`],
//! [`Bencher::iter`], [`black_box`], and `sample_size` as the one
//! honoured tuning knob. Unlike the real crate there is no statistical
//! machinery: each benchmark warms up briefly, times `sample_size`
//! batches, and prints the median per-iteration time. Good enough to
//! rank implementations and spot order-of-magnitude regressions, which
//! is all the recorded BENCH_*.json numbers claim.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_benchmark_id().label, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, self.criterion.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, self.criterion.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Closes the group (reporting happens per-benchmark; nothing to
    /// flush).
    pub fn finish(self) {}
}

/// A function-plus-parameter benchmark label (stand-in for
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds the conventional `function/parameter` label.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }
}

/// Conversion into a [`BenchmarkId`] label, so the `bench_*` entry
/// points accept either a string or an explicit id.
pub trait IntoBenchmarkId {
    /// The label to report under.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Timer handed to benchmark closures (stand-in for
/// `criterion::Bencher`).
pub struct Bencher {
    /// Median per-iteration time of the samples collected so far.
    elapsed: Option<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting the configured number of samples after a
    /// short warm-up; adaptively batches very fast routines so each
    /// sample is long enough for the OS clock to resolve.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up, and a first estimate of the per-iteration cost.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        // Batch so one sample is ≥ ~1 ms of work, capped for slow runs.
        let per_sample = Duration::from_millis(1);
        let batch = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed() / batch as u32);
        }
        samples.sort_unstable();
        self.elapsed = Some(samples[samples.len() / 2]);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher { elapsed: None, sample_size };
    f(&mut bencher);
    match bencher.elapsed {
        Some(t) => println!("{label:<55} time: {}", fmt_duration(t)),
        None => println!("{label:<55} time: (no iter() call)"),
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group function (stand-in for
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main` (stand-in for
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
