//! Empty offline `crossbeam` shim (same constraint as the
//! `crates/proptest` shim: no network access to crates.io). The
//! workspace's worker pool is built on `std::thread::scope`
//! (`bench-tables/src/pool.rs`), so no crossbeam API is actually used;
//! this crate only satisfies the allowlisted manifest entry.

#![warn(missing_docs)]
#![deny(unsafe_code)]
