//! SPMD launcher: runs one closure on every rank and collects results,
//! per-rank virtual clocks, and the run's makespan.

use crate::collectives::CollectiveHub;
use crate::context::{Rank, Shared};
use crate::message::Mailbox;
use crate::trace::{RankTrace, SpanSink};
use hetsim_cluster::cluster::ClusterSpec;
use hetsim_cluster::faults::FaultPlan;
use hetsim_cluster::network::NetworkModel;
use hetsim_cluster::time::SimTime;

/// Everything a finished SPMD run reports.
#[derive(Debug, Clone)]
pub struct SpmdOutcome<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank final virtual clocks.
    pub times: Vec<SimTime>,
    /// Per-rank accumulated pure-computation time (`T_c` components).
    pub compute_times: Vec<SimTime>,
    /// Per-rank accumulated communication/wait time (`T_o` components).
    pub comm_times: Vec<SimTime>,
    /// Per-rank idle-wait time: the share of `comm_times` spent blocked
    /// on peers (stragglers, unstarted senders) rather than on actual
    /// transfers — the load-imbalance component of `T_o`.
    pub wait_times: Vec<SimTime>,
    /// Per-rank operation traces; empty unless the run was started with
    /// [`run_spmd_traced`] or [`run_spmd_observed`].
    pub traces: Vec<RankTrace>,
}

impl<R> SpmdOutcome<R> {
    /// The parallel execution time `T`: the latest rank's final clock.
    pub fn makespan(&self) -> SimTime {
        self.times.iter().copied().max().unwrap_or(SimTime::ZERO)
    }

    /// Total communication overhead `T_o`: the sum of per-rank comm time.
    /// This is the quantity Theorem 1 calls "total overhead spent on
    /// communication, synchronization and other overhead".
    pub fn total_overhead(&self) -> SimTime {
        self.comm_times.iter().fold(SimTime::ZERO, |acc, &t| acc + t)
    }

    /// Total idle-wait time across ranks — the load-imbalance share of
    /// [`SpmdOutcome::total_overhead`].
    pub fn total_wait(&self) -> SimTime {
        self.wait_times.iter().fold(SimTime::ZERO, |acc, &t| acc + t)
    }

    /// Largest per-rank compute-time imbalance, as `(max − min) / max`;
    /// 0 for a perfectly balanced run.
    pub fn compute_imbalance(&self) -> f64 {
        let max = self.compute_times.iter().map(|t| t.as_secs()).fold(0.0, f64::max);
        let min = self.compute_times.iter().map(|t| t.as_secs()).fold(f64::INFINITY, f64::min);
        if max == 0.0 {
            0.0
        } else {
            (max - min) / max
        }
    }
}

/// Runs `body` as an SPMD program: one OS thread per node of `cluster`,
/// each handed a [`Rank`] whose virtual clock is driven by the node's
/// marked speed and `network`'s communication costs.
///
/// Blocks until every rank returns. Results arrive indexed by rank.
///
/// # Panics
/// Propagates any rank's panic, and panics if a rank leaves undelivered
/// messages in another rank's mailbox (a protocol bug in `body`).
pub fn run_spmd<R, F, N>(cluster: &ClusterSpec, network: &N, body: F) -> SpmdOutcome<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Sync,
    N: NetworkModel,
{
    run_spmd_inner(cluster, network, body, false, None, None)
}

/// [`run_spmd`] with per-rank operation tracing enabled; the outcome's
/// `traces` field holds one [`RankTrace`] per rank.
pub fn run_spmd_traced<R, F, N>(cluster: &ClusterSpec, network: &N, body: F) -> SpmdOutcome<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Sync,
    N: NetworkModel,
{
    run_spmd_inner(cluster, network, body, true, None, None)
}

/// [`run_spmd`] under a deterministic [`FaultPlan`]: degraded-speed
/// windows stretch each affected rank's compute spans, and a non-zero
/// link-drop rate charges retry/timeout/backoff time before each send
/// (visible as [`crate::OpKind::Retry`] in traced variants).
///
/// Virtual times remain pure functions of (cluster, network, plan seed):
/// two runs with the same plan are bit-identical, and an empty plan is
/// bit-identical to [`run_spmd`].
///
/// # Panics
/// Panics if `plan` declares node deaths — deaths must be resolved
/// *before* launch via [`FaultPlan::surviving_cluster`] /
/// [`FaultPlan::for_survivors`], because this blocking runtime cannot
/// lose a rank mid-collective. Also panics (with the typed
/// [`hetsim_cluster::faults::FaultError`] message) when a send exhausts
/// its retry budget.
pub fn run_spmd_faulted<R, F, N>(
    cluster: &ClusterSpec,
    network: &N,
    plan: &FaultPlan,
    body: F,
) -> SpmdOutcome<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Sync,
    N: NetworkModel,
{
    assert!(
        plan.deaths().is_empty(),
        "node deaths must be resolved before launch (surviving_cluster/for_survivors)"
    );
    run_spmd_inner(cluster, network, body, false, None, Some(plan))
}

/// [`run_spmd_faulted`] with per-rank operation tracing enabled; retry
/// charges appear as [`crate::OpKind::Retry`] spans.
pub fn run_spmd_faulted_traced<R, F, N>(
    cluster: &ClusterSpec,
    network: &N,
    plan: &FaultPlan,
    body: F,
) -> SpmdOutcome<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Sync,
    N: NetworkModel,
{
    assert!(
        plan.deaths().is_empty(),
        "node deaths must be resolved before launch (surviving_cluster/for_survivors)"
    );
    run_spmd_inner(cluster, network, body, true, None, Some(plan))
}

/// [`run_spmd_traced`] that additionally streams every operation span
/// into `sink` as it is recorded (a metrics registry, say). Spans arrive
/// sharded by rank; their content is deterministic, their interleaving
/// across ranks is not — sinks must aggregate per rank.
pub fn run_spmd_observed<R, F, N>(
    cluster: &ClusterSpec,
    network: &N,
    sink: &dyn SpanSink,
    body: F,
) -> SpmdOutcome<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Sync,
    N: NetworkModel,
{
    run_spmd_inner(cluster, network, body, true, Some(sink), None)
}

/// What one rank thread hands back when it joins.
struct RankReport<R> {
    result: R,
    clock: SimTime,
    compute_time: SimTime,
    comm_time: SimTime,
    wait_time: SimTime,
    trace: RankTrace,
}

fn run_spmd_inner<R, F, N>(
    cluster: &ClusterSpec,
    network: &N,
    body: F,
    tracing: bool,
    sink: Option<&dyn SpanSink>,
    faults: Option<&FaultPlan>,
) -> SpmdOutcome<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Sync,
    N: NetworkModel,
{
    let p = cluster.size();
    let shared = Shared {
        cluster,
        network,
        mailboxes: (0..p).map(|_| Mailbox::new()).collect(),
        hub: CollectiveHub::new(p),
        tracing,
        sink,
        faults,
    };

    let mut slots: Vec<Option<RankReport<R>>> = Vec::with_capacity(p);
    slots.resize_with(p, || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for id in 0..p {
            let shared_ref = &shared;
            let body_ref = &body;
            handles.push(scope.spawn(move || {
                let mut rank = Rank::new(id, shared_ref);
                let result = body_ref(&mut rank);
                let trace = rank.take_trace();
                RankReport {
                    result,
                    clock: rank.clock(),
                    compute_time: rank.compute_time(),
                    comm_time: rank.comm_time(),
                    wait_time: rank.wait_time(),
                    trace,
                }
            }));
        }
        for (id, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(report) => slots[id] = Some(report),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    for (id, mb) in shared.mailboxes.iter().enumerate() {
        assert!(
            mb.is_empty(),
            "rank {id} finished with {} undelivered message(s) in its mailbox",
            mb.len()
        );
    }
    assert_eq!(
        shared.hub.live_slots(),
        0,
        "collective slots leaked — ranks disagreed on collective count"
    );

    let mut results = Vec::with_capacity(p);
    let mut times = Vec::with_capacity(p);
    let mut compute_times = Vec::with_capacity(p);
    let mut comm_times = Vec::with_capacity(p);
    let mut wait_times = Vec::with_capacity(p);
    let mut traces = Vec::with_capacity(p);
    for slot in slots {
        let report = slot.expect("every rank joined");
        results.push(report.result);
        times.push(report.clock);
        compute_times.push(report.compute_time);
        comm_times.push(report.comm_time);
        wait_times.push(report.wait_time);
        traces.push(report.trace);
    }
    // The oracle runtime stores one op stream per rank — no dedup.
    crate::telemetry::record_simulation(&crate::telemetry::EngineReport::new(
        crate::telemetry::EnginePath::Threaded,
        p as u64,
        p as u64,
    ));
    SpmdOutcome { results, times, compute_times, comm_times, wait_times, traces }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Tag;
    use hetsim_cluster::network::{ConstantLatency, SharedEthernet};
    use hetsim_cluster::node::NodeSpec;

    fn small_net() -> SharedEthernet {
        SharedEthernet::new(1e-3, 1e6) // 1 ms latency, 1 MB/s
    }

    fn het2() -> ClusterSpec {
        ClusterSpec::new(
            "het2",
            vec![NodeSpec::synthetic("fast", 100.0), NodeSpec::synthetic("slow", 25.0)],
        )
        .unwrap()
    }

    #[test]
    fn compute_time_reflects_marked_speed() {
        let outcome = run_spmd(&het2(), &small_net(), |rank| {
            rank.compute_flops(1e8); // 100 Mflop
            rank.clock().as_secs()
        });
        // fast: 100 Mflop at 100 Mflop/s = 1 s; slow: 4 s.
        assert!((outcome.results[0] - 1.0).abs() < 1e-12);
        assert!((outcome.results[1] - 4.0).abs() < 1e-12);
        assert_eq!(outcome.makespan(), SimTime::from_secs(4.0));
    }

    #[test]
    fn send_recv_transfers_data_and_time() {
        let outcome = run_spmd(&het2(), &small_net(), |rank| {
            if rank.rank() == 0 {
                rank.compute_flops(1e8); // ready at t = 1
                rank.send_f64s(1, Tag::DATA, &[1.0, 2.0, 3.0]);
                rank.clock().as_secs()
            } else {
                let data = rank.recv_f64s(0, Tag::DATA);
                assert_eq!(data, vec![1.0, 2.0, 3.0]);
                rank.clock().as_secs()
            }
        });
        // Transfer: 24 bytes at 1 MB/s + 1 ms = 1.024 ms.
        let t_send = 1e-3 + 24.0 / 1e6;
        assert!((outcome.results[0] - (1.0 + t_send)).abs() < 1e-12);
        // Receiver idles until the arrival.
        assert!((outcome.results[1] - (1.0 + t_send)).abs() < 1e-12);
    }

    #[test]
    fn receiver_already_late_keeps_its_own_clock() {
        let outcome = run_spmd(&het2(), &small_net(), |rank| {
            if rank.rank() == 0 {
                rank.send_f64s(1, Tag::DATA, &[5.0]);
            } else {
                rank.compute_flops(1e9); // 40 s of local work first
                let _ = rank.recv_f64s(0, Tag::DATA);
            }
            rank.clock().as_secs()
        });
        // The message arrived long ago; recv is effectively free.
        assert!((outcome.results[1] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let cluster = ClusterSpec::homogeneous(4, 50.0);
        let net = ConstantLatency::new(2e-3);
        let outcome = run_spmd(&cluster, &net, |rank| {
            rank.compute_flops(1e6 * (rank.rank() as f64 + 1.0));
            rank.barrier();
            rank.clock().as_secs()
        });
        // Slowest rank: 4 Mflop at 50 Mflop/s = 0.08 s; barrier +2 ms.
        for &t in &outcome.results {
            assert!((t - 0.082).abs() < 1e-12, "t = {t}");
        }
    }

    #[test]
    fn broadcast_delivers_and_times_correctly() {
        let cluster = ClusterSpec::homogeneous(3, 50.0);
        let net = small_net();
        let outcome = run_spmd(&cluster, &net, |rank| {
            let data = if rank.rank() == 0 {
                rank.broadcast_f64s(0, Some(&[7.0, 8.0]))
            } else {
                rank.broadcast_f64s(0, None)
            };
            assert_eq!(data, vec![7.0, 8.0]);
            rank.clock().as_secs()
        });
        // Shared ethernet bcast p=3: 2 transfers of 16 B.
        let expect = 2.0 * (1e-3 + 16.0 / 1e6);
        for &t in &outcome.results {
            assert!((t - expect).abs() < 1e-12, "t = {t}");
        }
    }

    #[test]
    fn gather_collects_rank_indexed_data() {
        let cluster = ClusterSpec::homogeneous(4, 50.0);
        let outcome = run_spmd(&cluster, &small_net(), |rank| {
            let mine = vec![rank.rank() as f64; rank.rank() + 1];
            rank.gather_f64s(0, &mine)
        });
        let gathered = outcome.results[0].as_ref().expect("root result");
        for (r, v) in gathered.iter().enumerate() {
            assert_eq!(v.len(), r + 1);
            assert!(v.iter().all(|&x| x == r as f64));
        }
        assert!(outcome.results[1].is_none());
    }

    #[test]
    fn scatter_distributes_parts() {
        let cluster = ClusterSpec::homogeneous(3, 50.0);
        let outcome = run_spmd(&cluster, &small_net(), |rank| {
            if rank.rank() == 0 {
                let parts = vec![vec![0.0], vec![1.0, 1.0], vec![2.0, 2.0, 2.0]];
                rank.scatter_f64s(0, Some(&parts))
            } else {
                rank.scatter_f64s(0, None)
            }
        });
        assert_eq!(outcome.results[0], vec![0.0]);
        assert_eq!(outcome.results[1], vec![1.0, 1.0]);
        assert_eq!(outcome.results[2], vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn reduce_sum_accumulates() {
        let cluster = ClusterSpec::homogeneous(4, 50.0);
        let outcome = run_spmd(&cluster, &small_net(), |rank| {
            rank.reduce_sum_f64s(0, &[rank.rank() as f64, 1.0])
        });
        assert_eq!(outcome.results[0].as_ref().unwrap(), &vec![6.0, 4.0]);
    }

    #[test]
    fn allreduce_max_agrees_everywhere() {
        let cluster = ClusterSpec::homogeneous(5, 50.0);
        let outcome =
            run_spmd(&cluster, &small_net(), |rank| rank.allreduce_max(rank.rank() as f64 * 1.5));
        assert!(outcome.results.iter().all(|&m| m == 6.0));
    }

    #[test]
    fn allgather_delivers_everything_everywhere() {
        let cluster = ClusterSpec::homogeneous(4, 50.0);
        let outcome = run_spmd(&cluster, &small_net(), |rank| {
            let mine = vec![rank.rank() as f64; rank.rank() + 1];
            rank.allgather_f64s(&mine)
        });
        for (r, got) in outcome.results.iter().enumerate() {
            assert_eq!(got.len(), 4, "rank {r}");
            for (peer, v) in got.iter().enumerate() {
                assert_eq!(v.len(), peer + 1, "rank {r} part {peer}");
                assert!(v.iter().all(|&x| x == peer as f64));
            }
        }
        // Everyone pays: no rank finishes at time zero.
        assert!(outcome.times.iter().all(|t| t.as_secs() > 0.0));
    }

    #[test]
    fn allgather_clocks_agree_across_ranks() {
        // The closing broadcast synchronizes receivers to the root's
        // departure; with equal entry clocks all exits match.
        let cluster = ClusterSpec::homogeneous(3, 50.0);
        let outcome = run_spmd(&cluster, &small_net(), |rank| {
            rank.allgather_f64s(&[rank.rank() as f64]);
            rank.clock()
        });
        let t0 = outcome.results[0];
        assert!(outcome.results.iter().all(|&t| t == t0), "{:?}", outcome.results);
    }

    #[test]
    fn alltoall_transposes_the_part_matrix() {
        let cluster = ClusterSpec::homogeneous(3, 50.0);
        let outcome = run_spmd(&cluster, &small_net(), |rank| {
            let me = rank.rank() as f64;
            // parts[j] = [10·me + j]
            let parts: Vec<Vec<f64>> = (0..3).map(|j| vec![10.0 * me + j as f64]).collect();
            rank.alltoall_f64s(&parts)
        });
        for (i, got) in outcome.results.iter().enumerate() {
            for (j, v) in got.iter().enumerate() {
                // Received from rank j its part for me: 10·j + i.
                assert_eq!(v, &vec![10.0 * j as f64 + i as f64], "cell ({i}, {j})");
            }
        }
    }

    #[test]
    fn alltoall_single_rank_is_identity() {
        let cluster = ClusterSpec::homogeneous(1, 50.0);
        let outcome =
            run_spmd(&cluster, &small_net(), |rank| rank.alltoall_f64s(&[vec![7.0, 8.0]]));
        assert_eq!(outcome.results[0], vec![vec![7.0, 8.0]]);
    }

    #[test]
    #[should_panic(expected = "one part per rank")]
    fn alltoall_wrong_part_count_panics() {
        let cluster = ClusterSpec::homogeneous(2, 50.0);
        run_spmd(&cluster, &small_net(), |rank| {
            rank.alltoall_f64s(&[vec![1.0]]);
        });
    }

    #[test]
    fn virtual_times_are_deterministic_across_runs() {
        let cluster = het2();
        let net = small_net();
        let run = || {
            run_spmd(&cluster, &net, |rank| {
                for i in 0..10 {
                    rank.compute_flops(1e6 * (rank.rank() + 1) as f64);
                    if rank.rank() == 0 {
                        rank.send_f64s(1, Tag(i), &[i as f64]);
                    } else {
                        let _ = rank.recv_f64s(0, Tag(i));
                    }
                    rank.barrier();
                }
                rank.clock()
            })
            .results
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn overhead_accounting_splits_compute_and_comm() {
        let cluster = ClusterSpec::homogeneous(2, 100.0);
        let net = ConstantLatency::new(1e-2);
        let outcome = run_spmd(&cluster, &net, |rank| {
            rank.compute_flops(1e8); // exactly 1 s
            rank.barrier();
        });
        for r in 0..2 {
            assert!((outcome.compute_times[r].as_secs() - 1.0).abs() < 1e-12);
            assert!((outcome.comm_times[r].as_secs() - 1e-2).abs() < 1e-12);
        }
        assert!((outcome.total_overhead().as_secs() - 2e-2).abs() < 1e-12);
        assert_eq!(outcome.compute_imbalance(), 0.0);
    }

    #[test]
    fn compute_imbalance_detects_skew() {
        let cluster = ClusterSpec::homogeneous(2, 100.0);
        let outcome = run_spmd(&cluster, &small_net(), |rank| {
            rank.compute_flops(if rank.rank() == 0 { 2e8 } else { 1e8 });
        });
        assert!((outcome.compute_imbalance() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "undelivered message")]
    fn leaked_message_is_detected() {
        let cluster = ClusterSpec::homogeneous(2, 100.0);
        run_spmd(&cluster, &small_net(), |rank| {
            if rank.rank() == 0 {
                rank.send_f64s(1, Tag::DATA, &[1.0]);
                // rank 1 never receives it.
            }
        });
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn self_send_is_rejected() {
        let cluster = ClusterSpec::homogeneous(2, 100.0);
        run_spmd(&cluster, &small_net(), |rank| {
            if rank.rank() == 0 {
                rank.send_f64s(0, Tag::DATA, &[1.0]);
            }
        });
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_baseline() {
        let cluster = het2();
        let net = small_net();
        let plan = FaultPlan::new(42);
        let body = |rank: &mut Rank| {
            for i in 0..8 {
                rank.compute_flops(3.7e6 * (rank.rank() + 1) as f64);
                if rank.rank() == 0 {
                    rank.send_f64s(1, Tag(i), &[i as f64, 0.5]);
                } else {
                    let _ = rank.recv_f64s(0, Tag(i));
                }
                rank.barrier();
            }
            rank.clock()
        };
        let base = run_spmd(&cluster, &net, body);
        let faulted = run_spmd_faulted(&cluster, &net, &plan, body);
        assert_eq!(base.results, faulted.results);
        assert_eq!(base.times, faulted.times);
        assert_eq!(base.compute_times, faulted.compute_times);
        assert_eq!(base.comm_times, faulted.comm_times);
    }

    #[test]
    fn straggler_window_stretches_compute() {
        let cluster = ClusterSpec::homogeneous(2, 100.0);
        let plan = FaultPlan::new(1).with_straggler(1, 0.5);
        let outcome = run_spmd_faulted(&cluster, &small_net(), &plan, |rank| {
            rank.compute_flops(1e8); // 1 s nominal
            rank.clock().as_secs()
        });
        assert!((outcome.results[0] - 1.0).abs() < 1e-12);
        assert!((outcome.results[1] - 2.0).abs() < 1e-12, "straggler at half speed");
    }

    #[test]
    fn link_drops_charge_retry_spans_deterministically() {
        let cluster = ClusterSpec::homogeneous(2, 100.0);
        let net = small_net();
        let plan = FaultPlan::new(7).with_link_drops(400);
        let run = || {
            run_spmd_faulted_traced(&cluster, &net, &plan, |rank| {
                for i in 0..20 {
                    if rank.rank() == 0 {
                        rank.send_f64s(1, Tag(i), &[i as f64]);
                    } else {
                        let _ = rank.recv_f64s(0, Tag(i));
                    }
                    rank.barrier();
                }
                rank.clock()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.times, b.times, "same plan ⇒ bit-identical clocks");
        let retries: usize =
            a.traces[0].records.iter().filter(|r| r.kind == crate::trace::OpKind::Retry).count();
        assert!(retries > 0, "40% drop rate over 20 sends must hit at least once");
        // Faulted run is strictly slower than fault-free.
        let base = run_spmd(&cluster, &net, |rank| {
            for i in 0..20 {
                if rank.rank() == 0 {
                    rank.send_f64s(1, Tag(i), &[i as f64]);
                } else {
                    let _ = rank.recv_f64s(0, Tag(i));
                }
                rank.barrier();
            }
            rank.clock()
        });
        assert!(a.makespan() > base.makespan());
    }

    #[test]
    #[should_panic(expected = "deaths must be resolved before launch")]
    fn unresolved_deaths_are_rejected() {
        let cluster = ClusterSpec::homogeneous(2, 100.0);
        let plan = FaultPlan::new(0).with_death(1, SimTime::ZERO);
        run_spmd_faulted(&cluster, &small_net(), &plan, |_rank| {});
    }

    #[test]
    fn single_rank_runs_degenerate_collectives() {
        let cluster = ClusterSpec::homogeneous(1, 100.0);
        let outcome = run_spmd(&cluster, &small_net(), |rank| {
            rank.barrier();
            let b = rank.broadcast_f64s(0, Some(&[1.0]));
            let g = rank.gather_f64s(0, &[2.0]).unwrap();
            let s = rank.scatter_f64s(0, Some(&[vec![3.0]]));
            (b, g, s, rank.clock().as_secs())
        });
        let (b, g, s, t) = &outcome.results[0];
        assert_eq!(b, &vec![1.0]);
        assert_eq!(g, &vec![vec![2.0]]);
        assert_eq!(s, &vec![3.0]);
        // No peers: every collective is free.
        assert_eq!(*t, 0.0);
    }
}
