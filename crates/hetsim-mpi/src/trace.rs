//! Execution tracing: per-operation virtual-time records.
//!
//! Theorem 1 explains scalability through `t₀` (sequential portion) and
//! `T_o` (communication overhead); a trace splits `T_o` further by
//! operation kind — broadcast, barrier, point-to-point, idle-wait — so
//! the *source* of lost scalability is visible per configuration. The
//! overhead-decomposition experiment builds directly on this module.

use hetsim_cluster::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// What a span of rank time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpKind {
    /// Floating-point (or otherwise accounted local) computation.
    Compute,
    /// Occupying the wire to send a point-to-point message.
    Send,
    /// Receiving a point-to-point message: the span the transfer is in
    /// flight and the receiver is engaged with it.
    Recv,
    /// Idle time blocked on a peer: waiting for a sender to start
    /// transmitting, for stragglers to reach a barrier, or for gather
    /// contributions to arrive. Pure load-imbalance time — no wire or
    /// CPU is occupied.
    Wait,
    /// Barrier synchronization.
    Barrier,
    /// Broadcast participation (root or receiver).
    Bcast,
    /// Gather/reduce participation.
    Gather,
    /// Scatter participation.
    Scatter,
    /// Timeout + backoff time lost to dropped send attempts under a
    /// fault plan's lossy-link model (see `hetsim_cluster::faults`).
    /// Pure overhead: the wire carries nothing useful during it.
    Retry,
    /// Writing checkpoint state to the shared store (recovery protocol,
    /// DESIGN.md §12). Pure overhead: insurance against future deaths.
    Checkpoint,
    /// Failure-detector timeout: the span survivors wait before
    /// declaring a silent rank dead.
    Detect,
    /// Re-executing work lost to a death — everything since the last
    /// checkpoint (or since the start, for shrink-rebalance).
    LostWork,
    /// Repartition traffic while shrink-rebalance recovery moves state
    /// onto the survivors.
    Rebalance,
}

impl OpKind {
    /// All kinds, in display order.
    pub const ALL: [OpKind; 13] = [
        OpKind::Compute,
        OpKind::Send,
        OpKind::Recv,
        OpKind::Wait,
        OpKind::Barrier,
        OpKind::Bcast,
        OpKind::Gather,
        OpKind::Scatter,
        OpKind::Retry,
        OpKind::Checkpoint,
        OpKind::Detect,
        OpKind::LostWork,
        OpKind::Rebalance,
    ];

    /// Short label.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Compute => "compute",
            OpKind::Send => "send",
            OpKind::Recv => "recv",
            OpKind::Wait => "wait",
            OpKind::Barrier => "barrier",
            OpKind::Bcast => "bcast",
            OpKind::Gather => "gather",
            OpKind::Scatter => "scatter",
            OpKind::Retry => "retry",
            OpKind::Checkpoint => "checkpoint",
            OpKind::Detect => "detect",
            OpKind::LostWork => "lost-work",
            OpKind::Rebalance => "rebalance",
        }
    }

    /// True for kinds that count toward communication overhead `T_o`
    /// (everything except compute; idle-wait is overhead — it is lost
    /// time the paper's `T_o` absorbs, and so is every recovery span:
    /// checkpoints, detector timeouts, replayed lost work, and
    /// repartition traffic all buy no new results).
    pub fn is_overhead(self) -> bool {
        match self {
            OpKind::Compute => false,
            OpKind::Send
            | OpKind::Recv
            | OpKind::Wait
            | OpKind::Barrier
            | OpKind::Bcast
            | OpKind::Gather
            | OpKind::Scatter
            | OpKind::Retry
            | OpKind::Checkpoint
            | OpKind::Detect
            | OpKind::LostWork
            | OpKind::Rebalance => true,
        }
    }

    /// Parses the short label produced by [`OpKind::name`].
    pub fn from_name(name: &str) -> Option<OpKind> {
        OpKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One traced span of one rank's virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The operation kind.
    pub kind: OpKind,
    /// Virtual time the span began.
    pub start: SimTime,
    /// Virtual time the span ended (≥ start).
    pub end: SimTime,
    /// Payload bytes involved (0 for compute, barrier, and wait).
    pub bytes: u64,
    /// The other rank involved, when there is exactly one: the
    /// destination of a send, the source of a receive (and of the wait
    /// preceding it), the root of a broadcast/scatter seen from a
    /// receiver or of a gather seen from a contributor. `None` for
    /// compute, barriers, and root-side collective spans. Critical-path
    /// extraction follows these edges.
    pub peer: Option<usize>,
}

impl TraceRecord {
    /// Span duration.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// One rank's complete trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RankTrace {
    /// Records in program order (non-overlapping, non-decreasing).
    pub records: Vec<TraceRecord>,
}

impl RankTrace {
    /// Total time per operation kind.
    pub fn by_kind(&self) -> BTreeMap<OpKind, SimTime> {
        let mut map = BTreeMap::new();
        for r in &self.records {
            *map.entry(r.kind).or_insert(SimTime::ZERO) += r.duration();
        }
        map
    }

    /// Total traced time.
    pub fn total(&self) -> SimTime {
        self.records.iter().fold(SimTime::ZERO, |acc, r| acc + r.duration())
    }

    /// Total communication-overhead time (everything but compute).
    pub fn overhead(&self) -> SimTime {
        self.records
            .iter()
            .filter(|r| r.kind.is_overhead())
            .fold(SimTime::ZERO, |acc, r| acc + r.duration())
    }

    /// Total idle-wait time (the [`OpKind::Wait`] share of overhead).
    pub fn wait(&self) -> SimTime {
        self.records
            .iter()
            .filter(|r| r.kind == OpKind::Wait)
            .fold(SimTime::ZERO, |acc, r| acc + r.duration())
    }

    /// Bytes moved by this rank (sends + receives + collective shares).
    pub fn bytes_moved(&self) -> u64 {
        self.records.iter().map(|r| r.bytes).sum()
    }
}

/// Aggregated decomposition across all ranks of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadBreakdown {
    /// Summed time per kind across ranks.
    pub per_kind: BTreeMap<OpKind, f64>,
    /// Total time across ranks.
    pub total: f64,
}

impl OverheadBreakdown {
    /// Builds the breakdown from per-rank traces.
    pub fn from_traces(traces: &[RankTrace]) -> OverheadBreakdown {
        let mut per_kind: BTreeMap<OpKind, f64> = BTreeMap::new();
        let mut total = 0.0;
        for t in traces {
            for (kind, dur) in t.by_kind() {
                *per_kind.entry(kind).or_insert(0.0) += dur.as_secs();
                total += dur.as_secs();
            }
        }
        OverheadBreakdown { per_kind, total }
    }

    /// Fraction of total time spent in `kind` (0 when untraced).
    pub fn fraction(&self, kind: OpKind) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        self.per_kind.get(&kind).copied().unwrap_or(0.0) / self.total
    }

    /// Fraction of total time that is communication overhead.
    pub fn overhead_fraction(&self) -> f64 {
        OpKind::ALL.iter().filter(|k| k.is_overhead()).map(|&k| self.fraction(k)).sum()
    }
}

impl fmt::Display for OverheadBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for kind in OpKind::ALL {
            let frac = self.fraction(kind);
            if frac == 0.0 {
                continue;
            }
            let secs = self.per_kind.get(&kind).copied().unwrap_or(0.0);
            let bar_len = (frac * 40.0).round() as usize;
            writeln!(
                f,
                "{:>8}  {:>9.4}s  {:>5.1}%  {}",
                kind.name(),
                secs,
                frac * 100.0,
                "#".repeat(bar_len)
            )?;
        }
        Ok(())
    }
}

/// Receives every span of a traced run as the ranks record them.
///
/// This is how the metrics layer observes a run without the runtime
/// depending on it: [`crate::run_spmd_observed`] threads a sink through
/// the ranks, and each rank calls [`SpanSink::record_span`] right after
/// appending to its own [`RankTrace`]. Implementations must be `Sync`
/// (ranks call concurrently from their OS threads) and must keep any
/// aggregation keyed by `rank` so the result is independent of thread
/// interleaving — each rank's own stream arrives in program order.
pub trait SpanSink: Sync {
    /// Called by `rank` immediately after it records `record`.
    fn record_span(&self, rank: usize, record: &TraceRecord);
}

/// Renders per-rank traces as a fixed-width text Gantt chart.
///
/// Each rank becomes one row of `width` cells covering `[0, horizon]`;
/// a cell shows the operation occupying most of its time slice
/// (`.` compute, `B` bcast, `b` barrier, `s`/`r` point-to-point,
/// `~` idle-wait, `g` gather, `x` scatter, `!` retry, `C` checkpoint,
/// `d` detect, `L` lost work, `R` rebalance, space for untraced gaps).
pub fn timeline_text(traces: &[RankTrace], width: usize) -> String {
    assert!(width > 0, "timeline needs a positive width");
    let horizon = traces
        .iter()
        .filter_map(|t| t.records.last().map(|r| r.end.as_secs()))
        .fold(0.0f64, f64::max);
    if horizon == 0.0 {
        return String::new();
    }
    let glyph = |k: OpKind| match k {
        OpKind::Compute => '.',
        OpKind::Send => 's',
        OpKind::Recv => 'r',
        OpKind::Wait => '~',
        OpKind::Barrier => 'b',
        OpKind::Bcast => 'B',
        OpKind::Gather => 'g',
        OpKind::Scatter => 'x',
        OpKind::Retry => '!',
        OpKind::Checkpoint => 'C',
        OpKind::Detect => 'd',
        OpKind::LostWork => 'L',
        OpKind::Rebalance => 'R',
    };
    let cell_dt = horizon / width as f64;
    let mut out = String::new();
    for (rank, trace) in traces.iter().enumerate() {
        let mut row = vec![' '; width];
        for (i, slot) in row.iter_mut().enumerate() {
            let lo = i as f64 * cell_dt;
            let hi = lo + cell_dt;
            // Operation with the largest overlap in [lo, hi).
            let mut best = None;
            let mut best_overlap = 0.0f64;
            for r in &trace.records {
                let overlap = (r.end.as_secs().min(hi) - r.start.as_secs().max(lo)).max(0.0);
                if overlap > best_overlap {
                    best_overlap = overlap;
                    best = Some(r.kind);
                }
            }
            if let Some(k) = best {
                *slot = glyph(k);
            }
        }
        out.push_str(&format!("rank {rank:>3} |{}|\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!(
        "legend: .=compute B=bcast b=barrier s=send r=recv ~=wait g=gather x=scatter !=retry \
         C=checkpoint d=detect L=lost-work R=rebalance  (span {horizon:.4}s)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: OpKind, start: f64, end: f64, bytes: u64) -> TraceRecord {
        TraceRecord {
            kind,
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            bytes,
            peer: None,
        }
    }

    fn sample_trace() -> RankTrace {
        RankTrace {
            records: vec![
                rec(OpKind::Compute, 0.0, 1.0, 0),
                rec(OpKind::Bcast, 1.0, 1.2, 800),
                rec(OpKind::Compute, 1.2, 2.2, 0),
                rec(OpKind::Barrier, 2.2, 2.5, 0),
            ],
        }
    }

    #[test]
    fn by_kind_sums_durations() {
        let t = sample_trace();
        let map = t.by_kind();
        assert!((map[&OpKind::Compute].as_secs() - 2.0).abs() < 1e-12);
        assert!((map[&OpKind::Bcast].as_secs() - 0.2).abs() < 1e-12);
        assert!((map[&OpKind::Barrier].as_secs() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn overhead_excludes_compute() {
        let t = sample_trace();
        assert!((t.overhead().as_secs() - 0.5).abs() < 1e-12);
        assert!((t.total().as_secs() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bytes_moved_accumulates() {
        assert_eq!(sample_trace().bytes_moved(), 800);
    }

    #[test]
    fn breakdown_aggregates_ranks() {
        let traces = vec![sample_trace(), sample_trace()];
        let b = OverheadBreakdown::from_traces(&traces);
        assert!((b.total - 5.0).abs() < 1e-12);
        assert!((b.fraction(OpKind::Compute) - 0.8).abs() < 1e-12);
        assert!((b.overhead_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = OverheadBreakdown::from_traces(&[]);
        assert_eq!(b.total, 0.0);
        assert_eq!(b.fraction(OpKind::Compute), 0.0);
        assert_eq!(b.overhead_fraction(), 0.0);
    }

    #[test]
    fn display_renders_bars_and_percentages() {
        let b = OverheadBreakdown::from_traces(&[sample_trace()]);
        let s = format!("{b}");
        assert!(s.contains("compute"));
        assert!(s.contains("80.0%"));
        assert!(s.contains('#'));
        // Kinds with zero time are omitted.
        assert!(!s.contains("scatter"));
    }

    #[test]
    fn timeline_renders_rows_and_legend() {
        let traces = vec![sample_trace(), sample_trace()];
        let text = timeline_text(&traces, 50);
        assert_eq!(text.matches("rank").count(), 2);
        assert!(text.contains('.'), "compute glyph expected");
        assert!(text.contains('B') || text.contains('b'));
        assert!(text.contains("legend"));
    }

    #[test]
    fn timeline_of_empty_traces_is_empty() {
        assert_eq!(timeline_text(&[RankTrace::default()], 40), "");
    }

    #[test]
    fn timeline_proportions_reflect_durations() {
        // 80% compute → roughly 80% of glyphs are dots.
        let text = timeline_text(&[sample_trace()], 100);
        let row = text.lines().next().unwrap();
        let dots = row.matches('.').count();
        assert!((70..=90).contains(&dots), "dots = {dots}");
    }

    #[test]
    fn op_kind_overhead_classification() {
        assert!(!OpKind::Compute.is_overhead());
        for k in OpKind::ALL.into_iter().filter(|&k| k != OpKind::Compute) {
            assert!(k.is_overhead(), "{k} must count as overhead");
        }
    }

    #[test]
    fn op_kind_names_roundtrip() {
        for k in OpKind::ALL {
            assert_eq!(OpKind::from_name(k.name()), Some(k));
        }
        assert_eq!(OpKind::from_name("nonsense"), None);
    }

    #[test]
    fn wait_sums_only_wait_spans() {
        let t = RankTrace {
            records: vec![
                rec(OpKind::Compute, 0.0, 1.0, 0),
                rec(OpKind::Wait, 1.0, 1.5, 0),
                rec(OpKind::Barrier, 1.5, 1.7, 0),
                rec(OpKind::Wait, 1.7, 1.9, 0),
            ],
        };
        assert!((t.wait().as_secs() - 0.7).abs() < 1e-12);
        assert!((t.overhead().as_secs() - 0.9).abs() < 1e-12);
    }
}
