//! Synchronization hub for collective operations.
//!
//! SPMD programs must invoke collectives in the same order on every rank
//! (as in MPI). Each collective call consumes one slot id from the rank's
//! local sequence counter; ranks rendezvous on the slot. The hub itself
//! is pure synchronization — virtual-time arithmetic stays in
//! [`crate::context`], which keeps the cost model in exactly one place.
//!
//! Collective payloads travel as `Vec<f64>` element vectors rather than
//! encoded byte buffers: the wire size is always `8 × len` bytes, so
//! the cost model needs only the element count, and skipping the
//! encode/decode round-trip removes two full copies per contribution.

use hetsim_cluster::time::SimTime;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;

/// One in-flight collective. The variant doubles as a misuse check: two
/// ranks disagreeing on the sequence of collective types is a program
/// bug and panics with a diagnostic.
#[derive(Debug)]
enum Slot {
    Barrier { entries: Vec<Option<SimTime>>, result: Option<SimTime>, reads: usize },
    Gather { deposits: Vec<Option<(SimTime, Vec<f64>)>>, count: usize },
    Bcast { deposit: Option<(SimTime, Vec<f64>)>, reads: usize },
    Scatter { departure: SimTime, parts: Vec<Option<Vec<f64>>>, taken: usize, deposited: bool },
}

/// Rendezvous point shared by all ranks of one SPMD run.
pub struct CollectiveHub {
    p: usize,
    slots: Mutex<HashMap<u64, Slot>>,
    cond: Condvar,
}

impl CollectiveHub {
    /// Creates a hub for `p` ranks.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "hub needs at least one rank");
        CollectiveHub { p, slots: Mutex::new(HashMap::new()), cond: Condvar::new() }
    }

    /// Number of participating ranks.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Barrier rendezvous: deposits this rank's entry clock and blocks
    /// until all `p` ranks have arrived; returns the rendezvous time
    /// `max(entry clocks)`. The caller adds the barrier's network cost
    /// itself (a pure function of `p` on the shared network model), so
    /// the wait-for-stragglers span and the barrier proper stay
    /// separately attributable.
    pub fn barrier(&self, op: u64, rank: usize, entry: SimTime) -> SimTime {
        let mut slots = self.slots.lock();
        let slot = slots.entry(op).or_insert_with(|| Slot::Barrier {
            entries: vec![None; self.p],
            result: None,
            reads: 0,
        });
        let Slot::Barrier { entries, result, .. } = slot else {
            panic!("collective sequence mismatch: op {op} is not a barrier");
        };
        assert!(entries[rank].is_none(), "rank {rank} entered barrier {op} twice");
        entries[rank] = Some(entry);
        if entries.iter().all(|e| e.is_some()) {
            let max_entry = entries.iter().map(|e| e.expect("all present")).max().unwrap();
            *result = Some(max_entry);
            self.cond.notify_all();
        }
        // Wait for the result, then count reads and clean up after the
        // last reader.
        loop {
            match slots.get_mut(&op) {
                Some(Slot::Barrier { result: Some(r), reads, .. }) => {
                    let out = *r;
                    *reads += 1;
                    if *reads == self.p {
                        slots.remove(&op);
                    }
                    return out;
                }
                Some(Slot::Barrier { .. }) => self.cond.wait(&mut slots),
                _ => unreachable!("barrier slot vanished before all ranks read it"),
            }
        }
    }

    /// Deposits one rank's gather contribution (entry clock + payload).
    pub fn gather_deposit(&self, op: u64, rank: usize, entry: SimTime, payload: Vec<f64>) {
        let mut slots = self.slots.lock();
        let slot = slots
            .entry(op)
            .or_insert_with(|| Slot::Gather { deposits: vec![None; self.p], count: 0 });
        let Slot::Gather { deposits, count } = slot else {
            panic!("collective sequence mismatch: op {op} is not a gather");
        };
        assert!(deposits[rank].is_none(), "rank {rank} deposited twice into gather {op}");
        deposits[rank] = Some((entry, payload));
        *count += 1;
        if *count == self.p {
            self.cond.notify_all();
        }
    }

    /// Root side of a gather: blocks until all `p` deposits are present
    /// and returns them indexed by rank. Consumes the slot.
    pub fn gather_collect(&self, op: u64) -> Vec<(SimTime, Vec<f64>)> {
        let mut slots = self.slots.lock();
        loop {
            match slots.get(&op) {
                Some(Slot::Gather { count, .. }) if *count == self.p => break,
                Some(Slot::Gather { .. }) | None => self.cond.wait(&mut slots),
                Some(_) => panic!("collective sequence mismatch: op {op} is not a gather"),
            }
        }
        let Some(Slot::Gather { deposits, .. }) = slots.remove(&op) else {
            unreachable!("checked above")
        };
        deposits.into_iter().map(|d| d.expect("count == p")).collect()
    }

    /// Root side of a broadcast: publishes the payload and the root's
    /// departure time.
    pub fn bcast_deposit(&self, op: u64, departure: SimTime, payload: Vec<f64>) {
        let mut slots = self.slots.lock();
        let slot = slots.entry(op).or_insert_with(|| Slot::Bcast { deposit: None, reads: 0 });
        let Slot::Bcast { deposit, .. } = slot else {
            panic!("collective sequence mismatch: op {op} is not a bcast");
        };
        assert!(deposit.is_none(), "two roots deposited into bcast {op}");
        *deposit = Some((departure, payload));
        self.cond.notify_all();
        // If p == 1 nobody will read the slot; drop it now.
        if self.p == 1 {
            slots.remove(&op);
        }
    }

    /// Receiver side of a broadcast: blocks for the root's deposit and
    /// returns (root departure, payload). The last of the `p − 1`
    /// receivers frees the slot.
    pub fn bcast_wait(&self, op: u64) -> (SimTime, Vec<f64>) {
        let mut slots = self.slots.lock();
        loop {
            match slots.get_mut(&op) {
                Some(Slot::Bcast { deposit: Some((t, payload)), reads }) => {
                    let out = (*t, payload.clone());
                    *reads += 1;
                    if *reads == self.p - 1 {
                        slots.remove(&op);
                    }
                    return out;
                }
                Some(Slot::Bcast { deposit: None, .. }) | None => self.cond.wait(&mut slots),
                Some(_) => panic!("collective sequence mismatch: op {op} is not a bcast"),
            }
        }
    }

    /// Root side of a scatter: publishes one payload per rank plus the
    /// root's departure time. `parts[root]` should be the root's own
    /// share; it is returned to the root by [`CollectiveHub::scatter_take`].
    pub fn scatter_deposit(&self, op: u64, departure: SimTime, parts: Vec<Vec<f64>>) {
        assert_eq!(parts.len(), self.p, "scatter needs one part per rank");
        let mut slots = self.slots.lock();
        let slot = slots.entry(op).or_insert_with(|| Slot::Scatter {
            departure: SimTime::ZERO,
            parts: vec![None; self.p],
            taken: 0,
            deposited: false,
        });
        let Slot::Scatter { departure: dep, parts: slot_parts, deposited, .. } = slot else {
            panic!("collective sequence mismatch: op {op} is not a scatter");
        };
        assert!(!*deposited, "two roots deposited into scatter {op}");
        *dep = departure;
        for (dst, part) in slot_parts.iter_mut().zip(parts) {
            *dst = Some(part);
        }
        *deposited = true;
        self.cond.notify_all();
    }

    /// Takes rank `rank`'s share of a scatter, blocking for the deposit.
    /// Returns (root departure, payload). The last taker frees the slot.
    pub fn scatter_take(&self, op: u64, rank: usize) -> (SimTime, Vec<f64>) {
        let mut slots = self.slots.lock();
        loop {
            match slots.get_mut(&op) {
                Some(Slot::Scatter { departure, parts, taken, deposited: true }) => {
                    let payload = parts[rank].take().expect("each rank takes its part once");
                    let out = (*departure, payload);
                    *taken += 1;
                    if *taken == self.p {
                        slots.remove(&op);
                    }
                    return out;
                }
                Some(Slot::Scatter { deposited: false, .. }) | None => self.cond.wait(&mut slots),
                Some(_) => panic!("collective sequence mismatch: op {op} is not a scatter"),
            }
        }
    }

    /// Number of live slots (diagnostics; zero after a clean run).
    pub fn live_slots(&self) -> usize {
        self.slots.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn barrier_returns_max_entry() {
        let hub = Arc::new(CollectiveHub::new(3));
        let entries = [1.0, 5.0, 3.0];
        let handles: Vec<_> = entries
            .iter()
            .enumerate()
            .map(|(r, &e)| {
                let hub = Arc::clone(&hub);
                std::thread::spawn(move || hub.barrier(0, r, t(e)))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), t(5.0));
        }
        assert_eq!(hub.live_slots(), 0);
    }

    #[test]
    fn consecutive_barriers_use_distinct_ops() {
        let hub = Arc::new(CollectiveHub::new(2));
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let hub = Arc::clone(&hub);
                std::thread::spawn(move || {
                    let a = hub.barrier(0, r, t(r as f64));
                    let b = hub.barrier(1, r, a + t(0.1));
                    (a, b)
                })
            })
            .collect();
        for h in handles {
            let (a, b) = h.join().unwrap();
            assert_eq!(a, t(1.0));
            assert!((b.as_secs() - 1.1).abs() < 1e-12, "b = {b:?}");
        }
        assert_eq!(hub.live_slots(), 0);
    }

    #[test]
    fn gather_collects_all_deposits_by_rank() {
        let hub = Arc::new(CollectiveHub::new(3));
        for r in 1..3usize {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || {
                hub.gather_deposit(7, r, t(r as f64), vec![r as f64]);
            });
        }
        hub.gather_deposit(7, 0, t(0.0), vec![0.0]);
        let deposits = hub.gather_collect(7);
        assert_eq!(deposits.len(), 3);
        for (r, (entry, payload)) in deposits.iter().enumerate() {
            assert_eq!(*entry, t(r as f64));
            assert_eq!(payload, &vec![r as f64]);
        }
        assert_eq!(hub.live_slots(), 0);
    }

    #[test]
    fn bcast_delivers_payload_to_all_receivers() {
        let hub = Arc::new(CollectiveHub::new(4));
        let handles: Vec<_> = (1..4)
            .map(|_| {
                let hub = Arc::clone(&hub);
                std::thread::spawn(move || hub.bcast_wait(3))
            })
            .collect();
        hub.bcast_deposit(3, t(2.0), vec![42.0]);
        for h in handles {
            let (dep, payload) = h.join().unwrap();
            assert_eq!(dep, t(2.0));
            assert_eq!(payload, vec![42.0]);
        }
        assert_eq!(hub.live_slots(), 0);
    }

    #[test]
    fn bcast_single_rank_leaves_no_slot() {
        let hub = CollectiveHub::new(1);
        hub.bcast_deposit(0, t(1.0), vec![1.0]);
        assert_eq!(hub.live_slots(), 0);
    }

    #[test]
    fn scatter_gives_each_rank_its_part() {
        let hub = Arc::new(CollectiveHub::new(3));
        let handles: Vec<_> = (0..3usize)
            .map(|r| {
                let hub = Arc::clone(&hub);
                std::thread::spawn(move || hub.scatter_take(9, r))
            })
            .collect();
        let parts: Vec<Vec<f64>> = (0..3).map(|r| vec![r as f64 * 10.0]).collect();
        hub.scatter_deposit(9, t(1.5), parts);
        let mut got: Vec<Vec<f64>> = handles.into_iter().map(|h| h.join().unwrap().1).collect();
        got.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(got, vec![vec![0.0], vec![10.0], vec![20.0]]);
        assert_eq!(hub.live_slots(), 0);
    }

    #[test]
    fn single_rank_barrier_completes_immediately() {
        let hub = CollectiveHub::new(1);
        let out = hub.barrier(0, 0, t(3.0));
        assert_eq!(out, t(3.0));
        assert_eq!(hub.live_slots(), 0);
    }

    #[test]
    #[should_panic(expected = "deposited twice")]
    fn double_gather_deposit_panics() {
        let hub = CollectiveHub::new(2);
        hub.gather_deposit(0, 1, t(0.0), vec![1.0]);
        hub.gather_deposit(0, 1, t(0.0), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "not a barrier")]
    fn type_mismatch_panics() {
        let hub = CollectiveHub::new(2);
        hub.bcast_deposit(0, t(0.0), vec![1.0]);
        let _ = hub.barrier(0, 0, t(0.0));
    }

    #[test]
    #[should_panic(expected = "one part per rank")]
    fn scatter_wrong_part_count_panics() {
        let hub = CollectiveHub::new(3);
        hub.scatter_deposit(0, t(0.0), vec![vec![1.0]]);
    }
}
