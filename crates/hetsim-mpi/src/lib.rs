//! # hetsim-mpi — SPMD message-passing runtime with virtual time
//!
//! The paper's experiments are MPICH programs running on a heterogeneous
//! cluster. This crate is the from-scratch substitute: an MPI-subset
//! runtime whose processes ("ranks") run as real OS threads exchanging
//! typed messages in-process, while *time* is simulated. Each rank owns a
//! virtual clock; computation advances it by `work / marked_speed` of the
//! node the rank is placed on, and communication advances it by the cost
//! the cluster's [`NetworkModel`] assigns. Heterogeneity therefore enters
//! exactly where the paper's formalism puts it: through per-node marked
//! speeds and through communication overhead.
//!
//! ## Virtual-time semantics
//!
//! The runtime is *conservative*: every operation's cost is a pure
//! function of the participating ranks' entry clocks, the payload size,
//! and the cost model, so measured execution times are bit-identical
//! across runs and thread schedules (OS scheduling can reorder real
//! execution but never affects virtual timestamps).
//!
//! * `compute(flops)` — clock += `flops / speed`.
//! * `send` — the sender occupies the wire: clock += `p2p_time(bytes)`;
//!   the message is stamped with its arrival time (the sender's clock
//!   after the send completes).
//! * `recv` — blocks until a matching message exists, then clock =
//!   `max(clock, arrival)`. In traces, time spent blocked before the
//!   sender even started transmitting is split off as an idle-wait span
//!   ([`OpKind::Wait`]); the clock math is unchanged.
//! * `barrier` — all ranks leave with clock `max(entry clocks) +
//!   barrier_time(p)`; time up to the rendezvous (`max(entry clocks)`)
//!   is traced as idle-wait.
//! * `broadcast` — the root leaves at `root_entry + bcast_time(p, bytes)`;
//!   every receiver leaves at `max(own entry, root departure)`.
//! * `gather`/`reduce` — the root leaves at `max(all entries) +
//!   gather_time(sizes)`; each contributor leaves at `entry +
//!   p2p_time(own bytes)` (it blocks only for its own transfer).
//! * `scatter` — mirror image of gather.
//!
//! These are the same linear per-message/per-collective cost shapes the
//! paper calibrates on Sunwulf (§4.5); see
//! [`hetsim_cluster::network`] for the concrete models.
//!
//! ## Faults
//!
//! [`run_spmd_faulted`] / [`run_spmd_faulted_traced`] accept a
//! deterministic [`hetsim_cluster::faults::FaultPlan`]: degraded-speed
//! windows stretch `compute` piecewise, and a seeded lossy-link schedule
//! charges retry/timeout/backoff time before affected sends (traced as
//! [`OpKind::Retry`]). Virtual times stay pure functions of (cluster,
//! network, plan) — an empty plan is bit-identical to [`run_spmd`], and
//! declared node deaths must be resolved into a surviving cluster before
//! launch ([`hetsim_cluster::faults::FaultPlan::surviving_cluster`]).
//!
//! ## Example
//!
//! ```
//! use hetsim_cluster::{ClusterSpec, SharedEthernet};
//! use hetsim_mpi::run_spmd;
//!
//! let cluster = ClusterSpec::homogeneous(4, 50.0);
//! let net = SharedEthernet::new(0.3e-3, 12.5e6);
//! let outcome = run_spmd(&cluster, &net, |rank| {
//!     // Every rank performs 1 Mflop, then all synchronize.
//!     rank.compute_flops(1e6);
//!     rank.barrier();
//!     rank.clock().as_secs()
//! });
//! // All ranks leave the barrier at the same virtual time.
//! assert!(outcome.results.iter().all(|&t| t == outcome.results[0]));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod collectives;
pub mod context;
pub mod engine;
pub mod message;
pub mod runtime;
pub mod telemetry;
pub mod trace;

pub use context::Rank;
pub use engine::{
    analytic_enabled, record_spmd, run_spmd_fast, run_spmd_fast_faulted,
    run_spmd_fast_faulted_traced, run_spmd_fast_traced, set_analytic_enabled, AggregateOutcome,
    AggregatePlan, AggregatePlanBuilder, RecordTimer, SpmdProgram, SpmdTimer,
};
pub use message::Tag;
pub use runtime::{
    run_spmd, run_spmd_faulted, run_spmd_faulted_traced, run_spmd_observed, run_spmd_traced,
    SpmdOutcome,
};
pub use telemetry::{EngineTelemetry, FallbackReason};
pub use trace::{timeline_text, OpKind, OverheadBreakdown, RankTrace, SpanSink, TraceRecord};

// Re-exported for doc links and downstream convenience.
pub use hetsim_cluster::network::NetworkModel;
