//! Per-rank execution context: the handle SPMD code programs against.
//!
//! All virtual-time arithmetic lives here, in one place, directly
//! implementing the semantics documented at the crate root.

use crate::collectives::CollectiveHub;
use crate::message::{decode_f64s, encode_f64s, Mailbox, Message, Tag};
use crate::trace::{OpKind, RankTrace, SpanSink, TraceRecord};
use bytes::Bytes;
use hetsim_cluster::cluster::ClusterSpec;
use hetsim_cluster::faults::FaultPlan;
use hetsim_cluster::network::NetworkModel;
use hetsim_cluster::node::NodeSpec;
use hetsim_cluster::time::SimTime;

/// State shared by every rank of one SPMD run.
pub(crate) struct Shared<'a> {
    pub cluster: &'a ClusterSpec,
    pub network: &'a dyn NetworkModel,
    pub mailboxes: Vec<Mailbox>,
    pub hub: CollectiveHub,
    /// When set, every rank records a [`RankTrace`].
    pub tracing: bool,
    /// Live span observer (metrics registry); implies nothing about
    /// `tracing`, but [`crate::run_spmd_observed`] sets both.
    pub sink: Option<&'a dyn SpanSink>,
    /// Deterministic fault plan (degraded speeds, lossy links). `None`
    /// keeps every code path bit-identical to the fault-free runtime.
    pub faults: Option<&'a FaultPlan>,
}

/// The handle one SPMD process uses to compute, communicate, and read its
/// virtual clock. Mirrors the slice of MPI the paper's kernels need.
pub struct Rank<'a> {
    id: usize,
    shared: &'a Shared<'a>,
    clock: SimTime,
    compute_time: SimTime,
    comm_time: SimTime,
    wait_time: SimTime,
    collective_seq: u64,
    speed_flops: f64,
    trace: RankTrace,
    /// Per-destination send counter: the message index fed to the fault
    /// plan's seeded drop schedule. Advances deterministically with the
    /// program order of sends on this rank, never with wall time.
    send_seq: Vec<u64>,
}

impl<'a> Rank<'a> {
    pub(crate) fn new(id: usize, shared: &'a Shared<'a>) -> Self {
        let speed_flops = shared.cluster.nodes()[id].marked_speed_flops();
        let size = shared.cluster.size();
        Rank {
            id,
            shared,
            clock: SimTime::ZERO,
            compute_time: SimTime::ZERO,
            comm_time: SimTime::ZERO,
            wait_time: SimTime::ZERO,
            collective_seq: 0,
            speed_flops,
            trace: RankTrace::default(),
            send_seq: vec![0; size],
        }
    }

    /// Consumes the rank's trace at end of run (runtime use).
    pub(crate) fn take_trace(&mut self) -> RankTrace {
        std::mem::take(&mut self.trace)
    }

    /// Appends an explicit span to the trace (and the live sink, when
    /// one is attached). All trace emission funnels through here.
    fn push_record(
        &mut self,
        kind: OpKind,
        start: SimTime,
        end: SimTime,
        bytes: u64,
        peer: Option<usize>,
    ) {
        let record = TraceRecord { kind, start, end, bytes, peer };
        if self.shared.tracing {
            self.trace.records.push(record);
        }
        if let Some(sink) = self.shared.sink {
            sink.record_span(self.id, &record);
        }
    }

    fn record(&mut self, kind: OpKind, start: SimTime, bytes: u64, peer: Option<usize>) {
        let end = self.clock;
        self.push_record(kind, start, end, bytes, peer);
    }

    /// This process's rank id, `0 ≤ rank < size`.
    pub fn rank(&self) -> usize {
        self.id
    }

    /// Number of processes in the run.
    pub fn size(&self) -> usize {
        self.shared.cluster.size()
    }

    /// The node this rank is placed on.
    pub fn node(&self) -> &NodeSpec {
        &self.shared.cluster.nodes()[self.id]
    }

    /// The whole cluster specification (marked speeds drive distribution).
    pub fn cluster(&self) -> &ClusterSpec {
        self.shared.cluster
    }

    /// Current virtual time of this rank.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Accumulated computation time (the `T_c` of the paper's Theorem 1).
    pub fn compute_time(&self) -> SimTime {
        self.compute_time
    }

    /// Accumulated communication/synchronization time — this rank's share
    /// of the total overhead `T_o`. Includes [`Rank::wait_time`].
    pub fn comm_time(&self) -> SimTime {
        self.comm_time
    }

    /// Accumulated idle-wait time: the part of [`Rank::comm_time`] spent
    /// blocked on peers (stragglers at a barrier, a sender that has not
    /// started transmitting, late gather contributions) rather than on
    /// an actual transfer. Pure load-imbalance loss.
    pub fn wait_time(&self) -> SimTime {
        self.wait_time
    }

    /// Advances the clock by the time to execute `flops` floating-point
    /// operations at this node's marked speed.
    ///
    /// # Panics
    /// Panics on negative or non-finite `flops`.
    pub fn compute_flops(&mut self, flops: f64) {
        assert!(flops.is_finite() && flops >= 0.0, "flops must be finite and ≥ 0");
        let start = self.clock;
        match self.shared.faults.and_then(|p| p.windows_for(self.id)) {
            Some(windows) => {
                // Degraded rank: integrate the effective speed piecewise
                // over the plan's multiplier windows.
                let end =
                    hetsim_cluster::faults::degraded_end(windows, start, flops, self.speed_flops);
                self.compute_time += end - start;
                self.clock = end;
            }
            None => {
                // Fault-free path: this exact float-op sequence must stay
                // unchanged so undegraded runs remain bit-identical
                // (`(start + dt) - start` need not equal `dt` in IEEE754).
                let dt = SimTime::from_secs(flops / self.speed_flops);
                self.clock += dt;
                self.compute_time += dt;
            }
        }
        self.record(OpKind::Compute, start, 0, None);
    }

    /// Advances the clock by an explicit duration of local work that is
    /// *not* floating-point (I/O, bookkeeping). Counted as compute.
    pub fn advance(&mut self, dt: SimTime) {
        let start = self.clock;
        self.clock += dt;
        self.compute_time += dt;
        self.record(OpKind::Compute, start, 0, None);
    }

    /// Charges retry/timeout/backoff time for one logical message to
    /// `dest` when a lossy-link fault plan is active; no-op (and no
    /// counter advance) otherwise, keeping fault-free runs bit-identical.
    /// Point-to-point sends and the transmitting side of collectives
    /// (broadcast/scatter roots, gather contributors) all funnel through
    /// here, so the drop schedule covers every wire crossing.
    ///
    /// # Panics
    /// Panics with the typed [`hetsim_cluster::faults::FaultError`]
    /// message when the plan's retry budget is exhausted.
    fn charge_link_retries(&mut self, dest: usize, bytes: u64) {
        let Some(plan) = self.shared.faults else { return };
        if plan.drop_per_mille() == 0 {
            return;
        }
        let msg_index = self.send_seq[dest];
        self.send_seq[dest] += 1;
        match plan.send_retry_charge(self.id, dest, msg_index) {
            Ok(charge) if charge.failed_attempts > 0 => {
                let start = self.clock;
                self.comm_time += charge.total;
                self.clock += charge.total;
                self.record(OpKind::Retry, start, bytes, Some(dest));
            }
            Ok(_) => {}
            Err(e) => panic!("{e}"),
        }
    }

    fn charge_comm(&mut self, new_clock: SimTime, kind: OpKind, bytes: u64, peer: Option<usize>) {
        debug_assert!(new_clock >= self.clock, "communication cannot rewind time");
        let start = self.clock;
        self.comm_time += new_clock - self.clock;
        self.clock = new_clock;
        self.record(kind, start, bytes, peer);
    }

    /// Charges a blocking operation whose precondition was met at
    /// `ready` and which completes at `exit`: the span `[clock, ready)`
    /// is idle-wait (recorded as [`OpKind::Wait`] when non-empty), the
    /// span `[max(clock, ready), exit)` is the operation proper. Both
    /// count toward `comm_time`; only the former counts toward
    /// `wait_time`.
    fn charge_comm_waited(
        &mut self,
        ready: SimTime,
        exit: SimTime,
        kind: OpKind,
        bytes: u64,
        peer: Option<usize>,
    ) {
        let entry = self.clock;
        debug_assert!(exit >= entry, "communication cannot rewind time");
        let wait_end = ready.max(entry).min(exit);
        if wait_end > entry {
            self.wait_time += wait_end - entry;
            self.push_record(OpKind::Wait, entry, wait_end, 0, peer);
        }
        self.comm_time += exit - entry;
        self.clock = exit;
        self.push_record(kind, wait_end, exit, bytes, peer);
    }

    // ---- failure recovery (DESIGN.md §12) -------------------------------

    /// Writes `bytes` of checkpoint state to the shared store: a fixed
    /// coordination latency plus the transfer at the store bandwidth
    /// (`hetsim_cluster::faults::checkpoint_cost_secs`). Charged as an
    /// [`OpKind::Checkpoint`] overhead span — insurance, not progress.
    pub fn checkpoint(&mut self, bytes: u64) {
        let dt = SimTime::from_secs(hetsim_cluster::faults::checkpoint_cost_secs(bytes));
        self.charge_comm(self.clock + dt, OpKind::Checkpoint, bytes, None);
    }

    /// Charges the failure detector's timeout: the span this rank waits
    /// before declaring a silent peer dead ([`OpKind::Detect`]).
    ///
    /// # Panics
    /// Panics on negative or non-finite `timeout_secs`.
    pub fn detect_failure(&mut self, timeout_secs: f64) {
        assert!(
            timeout_secs.is_finite() && timeout_secs >= 0.0,
            "detector timeout must be finite and ≥ 0"
        );
        let dt = SimTime::from_secs(timeout_secs);
        self.charge_comm(self.clock + dt, OpKind::Detect, 0, None);
    }

    /// Recovers from a detected death: replays `lost_flops` of work at
    /// this rank's marked speed (the progress rolled back to the last
    /// checkpoint — an [`OpKind::LostWork`] span), then absorbs
    /// `moved_bytes` of repartition traffic at the rebalance bandwidth
    /// (an [`OpKind::Rebalance`] span). Either span is omitted when its
    /// operand is zero, so a policy that loses nothing or moves nothing
    /// stays bit-identical to not charging it at all.
    ///
    /// # Panics
    /// Panics on negative or non-finite `lost_flops`.
    pub fn recover(&mut self, lost_flops: f64, moved_bytes: u64) {
        assert!(
            lost_flops.is_finite() && lost_flops >= 0.0,
            "lost work must be finite and ≥ 0 flops"
        );
        if lost_flops > 0.0 {
            // Replay at the undegraded marked speed: the same float op
            // as the fault-free compute path, charged as overhead.
            let dt = SimTime::from_secs(lost_flops / self.speed_flops);
            self.charge_comm(self.clock + dt, OpKind::LostWork, 0, None);
        }
        if moved_bytes > 0 {
            let dt = SimTime::from_secs(
                moved_bytes as f64 / hetsim_cluster::faults::REBALANCE_BANDWIDTH_BYTES_PER_SEC,
            );
            self.charge_comm(self.clock + dt, OpKind::Rebalance, moved_bytes, None);
        }
    }

    // ---- point-to-point -------------------------------------------------

    /// Sends raw bytes to `dest` with `tag`. The sender occupies the wire
    /// for `p2p_time(len)`; the message arrives when the send completes.
    ///
    /// # Panics
    /// Panics when `dest` is out of range or equals this rank (self-sends
    /// are a deadlock in this blocking-receive runtime, so they are
    /// rejected eagerly).
    ///
    /// Under a lossy-link fault plan, dropped attempts are charged first
    /// as an [`OpKind::Retry`] span (timeout + exponential backoff per
    /// drop); the message then goes out at the post-retry clock. A plan
    /// that exhausts its retry budget aborts the run with the typed
    /// [`hetsim_cluster::faults::FaultError`] message.
    pub fn send_bytes(&mut self, dest: usize, tag: Tag, payload: Bytes) {
        assert!(dest < self.size(), "destination rank {dest} out of range");
        assert_ne!(dest, self.id, "self-send is not supported");
        let bytes = payload.len() as u64;
        self.charge_link_retries(dest, bytes);
        let sent_at = self.clock;
        let cost = SimTime::from_secs(self.shared.network.p2p_time_between(self.id, dest, bytes));
        self.charge_comm(self.clock + cost, OpKind::Send, bytes, Some(dest));
        self.shared.mailboxes[dest].push(Message {
            source: self.id,
            tag,
            sent_at,
            arrival: self.clock,
            payload,
        });
    }

    /// Receives bytes from `source` with `tag`, blocking until available.
    /// The clock advances to the message arrival time if later; time
    /// spent blocked before the sender even started transmitting is
    /// attributed to [`OpKind::Wait`], the rest of the span to
    /// [`OpKind::Recv`].
    pub fn recv_bytes(&mut self, source: usize, tag: Tag) -> Bytes {
        assert!(source < self.size(), "source rank {source} out of range");
        assert_ne!(source, self.id, "self-receive is not supported");
        let msg = self.shared.mailboxes[self.id].recv_matching(source, tag);
        let bytes = msg.payload.len() as u64;
        let exit = self.clock.max(msg.arrival);
        self.charge_comm_waited(msg.sent_at, exit, OpKind::Recv, bytes, Some(source));
        msg.payload
    }

    /// Sends a slice of `f64`s (see [`Rank::send_bytes`]).
    pub fn send_f64s(&mut self, dest: usize, tag: Tag, values: &[f64]) {
        self.send_bytes(dest, tag, encode_f64s(values));
    }

    /// Receives a vector of `f64`s (see [`Rank::recv_bytes`]).
    pub fn recv_f64s(&mut self, source: usize, tag: Tag) -> Vec<f64> {
        decode_f64s(&self.recv_bytes(source, tag))
    }

    // ---- collectives ----------------------------------------------------

    fn next_op(&mut self) -> u64 {
        let op = self.collective_seq;
        self.collective_seq += 1;
        op
    }

    /// Barrier across all ranks: every rank leaves at
    /// `max(entry clocks) + barrier_time(p)`. The span spent waiting for
    /// stragglers is attributed to [`OpKind::Wait`]; the barrier's
    /// network cost itself to [`OpKind::Barrier`].
    pub fn barrier(&mut self) {
        let op = self.next_op();
        let cost = SimTime::from_secs(self.shared.network.barrier_time(self.size()));
        let rendezvous = self.shared.hub.barrier(op, self.id, self.clock);
        self.charge_comm_waited(rendezvous, rendezvous + cost, OpKind::Barrier, 0, None);
    }

    /// Broadcast from `root`. The root passes `Some(data)` and gets its
    /// own data back; receivers pass `None`. The root leaves at
    /// `entry + bcast_time(p, bytes)`; receivers leave at
    /// `max(own entry, root departure)`.
    ///
    /// # Panics
    /// Panics when the caller's `data` argument disagrees with its role.
    pub fn broadcast_f64s(&mut self, root: usize, data: Option<&[f64]>) -> Vec<f64> {
        assert!(root < self.size(), "root rank {root} out of range");
        let op = self.next_op();
        if self.id == root {
            let data = data.expect("root must supply broadcast data");
            let bytes = (data.len() * 8) as u64;
            // Under a lossy plan the root retries each peer's logical
            // message before the broadcast proper; receivers then wait
            // for the (later) departure.
            for peer in 0..self.size() {
                if peer != self.id {
                    self.charge_link_retries(peer, bytes);
                }
            }
            let cost = SimTime::from_secs(self.shared.network.bcast_time(self.size(), bytes));
            let departure = self.clock + cost;
            self.shared.hub.bcast_deposit(op, departure, data.to_vec());
            self.charge_comm(departure, OpKind::Bcast, bytes, None);
            data.to_vec()
        } else {
            assert!(data.is_none(), "non-root rank {} passed broadcast data", self.id);
            let (departure, payload) = self.shared.hub.bcast_wait(op);
            let bytes = (payload.len() * 8) as u64;
            self.charge_comm(self.clock.max(departure), OpKind::Bcast, bytes, Some(root));
            payload
        }
    }

    /// Gather to `root`: every rank contributes a slice; the root gets
    /// all contributions indexed by rank (including its own), others get
    /// `None`. Contributors leave at `entry + p2p_time(own bytes)`; the
    /// root leaves at `max(all entries) + gather_time(sizes)`, with the
    /// span spent waiting for late contributors attributed to
    /// [`OpKind::Wait`].
    pub fn gather_f64s(&mut self, root: usize, contribution: &[f64]) -> Option<Vec<Vec<f64>>> {
        assert!(root < self.size(), "root rank {root} out of range");
        let op = self.next_op();
        if self.id == root {
            self.shared.hub.gather_deposit(op, self.id, self.clock, contribution.to_vec());
            let deposits = self.shared.hub.gather_collect(op);
            let sizes: Vec<u64> = deposits.iter().map(|(_, v)| (v.len() * 8) as u64).collect();
            let max_entry =
                deposits.iter().map(|(t, _)| *t).max().expect("at least the root deposited");
            let cost = SimTime::from_secs(self.shared.network.gather_time(&sizes, root));
            let total_bytes: u64 = sizes.iter().sum();
            let ready = self.clock.max(max_entry);
            self.charge_comm_waited(ready, ready + cost, OpKind::Gather, total_bytes, None);
            Some(deposits.into_iter().map(|(_, v)| v).collect())
        } else {
            let bytes = (contribution.len() * 8) as u64;
            // Retries delay this contributor's deposit, so the root's
            // rendezvous honestly reflects the lossy link.
            self.charge_link_retries(root, bytes);
            self.shared.hub.gather_deposit(op, self.id, self.clock, contribution.to_vec());
            let cost =
                SimTime::from_secs(self.shared.network.p2p_time_between(self.id, root, bytes));
            self.charge_comm(self.clock + cost, OpKind::Gather, bytes, Some(root));
            None
        }
    }

    /// Scatter from `root`: the root passes one slice per rank (`parts`)
    /// and receives its own share; receivers pass `None` and receive
    /// theirs. The root leaves at `entry + scatter_time(sizes)`;
    /// receiver `i` leaves at `max(own entry, root departure)`.
    pub fn scatter_f64s(&mut self, root: usize, parts: Option<&[Vec<f64>]>) -> Vec<f64> {
        assert!(root < self.size(), "root rank {root} out of range");
        let op = self.next_op();
        if self.id == root {
            let parts = parts.expect("root must supply scatter parts");
            assert_eq!(parts.len(), self.size(), "scatter needs one part per rank");
            let payloads: Vec<Vec<f64>> = parts.to_vec();
            let sizes: Vec<u64> = payloads.iter().map(|v| (v.len() * 8) as u64).collect();
            for (peer, &size) in sizes.iter().enumerate() {
                if peer != self.id {
                    self.charge_link_retries(peer, size);
                }
            }
            let cost = SimTime::from_secs(self.shared.network.scatter_time(&sizes, root));
            let departure = self.clock + cost;
            let total_bytes: u64 = sizes.iter().sum();
            self.shared.hub.scatter_deposit(op, departure, payloads);
            let (_, own) = self.shared.hub.scatter_take(op, self.id);
            self.charge_comm(departure, OpKind::Scatter, total_bytes, None);
            own
        } else {
            assert!(parts.is_none(), "non-root rank {} passed scatter parts", self.id);
            let (departure, payload) = self.shared.hub.scatter_take(op, self.id);
            let bytes = (payload.len() * 8) as u64;
            self.charge_comm(self.clock.max(departure), OpKind::Scatter, bytes, Some(root));
            payload
        }
    }

    /// Element-wise sum reduction to `root` (gather + local combine at
    /// the root, charged as root compute: one flop per element per
    /// contributor).
    pub fn reduce_sum_f64s(&mut self, root: usize, contribution: &[f64]) -> Option<Vec<f64>> {
        let n = contribution.len();
        let gathered = self.gather_f64s(root, contribution)?;
        let mut acc = vec![0.0f64; n];
        for v in &gathered {
            assert_eq!(v.len(), n, "reduce contributions must have equal length");
            for (a, &x) in acc.iter_mut().zip(v.iter()) {
                *a += x;
            }
        }
        self.compute_flops((gathered.len().saturating_sub(1) * n) as f64);
        Some(acc)
    }

    /// All-gather: every rank contributes a slice and receives every
    /// rank's contribution, indexed by rank. Implemented as gather to
    /// rank 0 followed by a broadcast of the concatenation (the classic
    /// two-phase algorithm; both phases are priced by the network
    /// model). Contributions may differ in length; the per-rank split is
    /// carried in a length header.
    pub fn allgather_f64s(&mut self, contribution: &[f64]) -> Vec<Vec<f64>> {
        let p = self.size();
        let gathered = self.gather_f64s(0, contribution);
        if self.id == 0 {
            let parts = gathered.expect("rank 0 is the gather root");
            // Header: p lengths, then the concatenated payloads.
            let mut packed = Vec::with_capacity(p + parts.iter().map(|v| v.len()).sum::<usize>());
            packed.extend(parts.iter().map(|v| v.len() as f64));
            for v in &parts {
                packed.extend_from_slice(v);
            }
            self.broadcast_f64s(0, Some(&packed));
            parts
        } else {
            let packed = self.broadcast_f64s(0, None);
            let lens: Vec<usize> = packed[..p].iter().map(|&l| l as usize).collect();
            let mut out = Vec::with_capacity(p);
            let mut cursor = p;
            for len in lens {
                out.push(packed[cursor..cursor + len].to_vec());
                cursor += len;
            }
            out
        }
    }

    /// All-to-all personalized exchange: rank `i` sends `parts[j]` to
    /// rank `j` and receives one part from every rank (its own part is
    /// kept locally). Implemented as `p·(p−1)` point-to-point messages
    /// in a deterministic schedule (each rank sends in destination
    /// order), each priced individually — the faithful cost structure
    /// on a non-combining fabric.
    ///
    /// # Panics
    /// Panics unless `parts.len() == size()`.
    pub fn alltoall_f64s(&mut self, parts: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let p = self.size();
        assert_eq!(parts.len(), p, "alltoall needs one part per rank");
        const TAG_A2A: Tag = Tag(0xA2A);
        for (dest, part) in parts.iter().enumerate() {
            if dest != self.id {
                self.send_f64s(dest, TAG_A2A, part);
            }
        }
        let mut out: Vec<Vec<f64>> = Vec::with_capacity(p);
        for source in 0..p {
            if source == self.id {
                out.push(parts[self.id].clone());
            } else {
                out.push(self.recv_f64s(source, TAG_A2A));
            }
        }
        out
    }

    /// All-reduce of a scalar maximum: reduce to rank 0 then broadcast.
    pub fn allreduce_max(&mut self, value: f64) -> f64 {
        let gathered = self.gather_f64s(0, &[value]);
        if self.id == 0 {
            let m = gathered
                .expect("rank 0 is the gather root")
                .iter()
                .map(|v| v[0])
                .fold(f64::NEG_INFINITY, f64::max);
            self.broadcast_f64s(0, Some(&[m]))[0]
        } else {
            self.broadcast_f64s(0, None)[0]
        }
    }
}
