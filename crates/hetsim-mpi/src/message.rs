//! Messages, tags, and per-rank mailboxes.
//!
//! Payloads travel as [`bytes::Bytes`] (cheaply cloneable, immutable).
//! Matching follows MPI semantics: a receive names a source rank and a
//! tag; messages between a fixed (source, destination) pair are delivered
//! in send order (non-overtaking), which together with SPMD program order
//! makes matching deterministic.

use bytes::Bytes;
use hetsim_cluster::time::SimTime;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

/// Message tag, used to disambiguate concurrent streams between the same
/// pair of ranks (pivot rows vs. result rows, say).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u32);

impl Tag {
    /// Conventional tag for bulk data distribution.
    pub const DATA: Tag = Tag(0);
    /// Conventional tag for pivot/broadcast traffic.
    pub const PIVOT: Tag = Tag(1);
    /// Conventional tag for result collection.
    pub const RESULT: Tag = Tag(2);
}

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub source: usize,
    /// Matching tag.
    pub tag: Tag,
    /// Virtual time at which the sender started occupying the wire.
    /// A receiver already blocked at this point is idle-waiting (not
    /// transferring) until then — the trace layer splits the two.
    pub sent_at: SimTime,
    /// Virtual time at which the last byte arrives at the receiver.
    pub arrival: SimTime,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Encodes a slice of `f64` into little-endian bytes.
pub fn encode_f64s(values: &[f64]) -> Bytes {
    let mut buf = Vec::with_capacity(values.len() * 8);
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(buf)
}

/// Decodes little-endian bytes back into `f64`s.
///
/// # Panics
/// Panics when the byte length is not a multiple of 8 (always a protocol
/// bug in SPMD code, never a recoverable condition).
pub fn decode_f64s(bytes: &Bytes) -> Vec<f64> {
    assert!(
        bytes.len().is_multiple_of(8),
        "payload of {} bytes is not a whole number of f64s",
        bytes.len()
    );
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect()
}

/// Mailbox: the inbound message queue of one rank.
///
/// One mailbox per rank; senders push, the owning rank blocks on
/// [`Mailbox::recv_matching`]. Per-(source, tag) order is preserved
/// because each sender pushes under the same lock in its program order.
#[derive(Debug, Default)]
pub struct Mailbox {
    inner: Mutex<VecDeque<Message>>,
    available: Condvar,
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Deposits a message and wakes any waiting receiver.
    pub fn push(&self, msg: Message) {
        let mut q = self.inner.lock();
        q.push_back(msg);
        // notify_all: a single receiver thread owns this mailbox, but a
        // waiter may be matching on a different (source, tag) than the
        // message just pushed, so waking everyone is the safe choice.
        self.available.notify_all();
    }

    /// Blocks until a message from `source` with `tag` is available and
    /// removes the earliest such message.
    pub fn recv_matching(&self, source: usize, tag: Tag) -> Message {
        let mut q = self.inner.lock();
        loop {
            if let Some(pos) = q.iter().position(|m| m.source == source && m.tag == tag) {
                return q.remove(pos).expect("position is valid");
            }
            self.available.wait(&mut q);
        }
    }

    /// Non-blocking probe: true if a matching message is queued.
    pub fn probe(&self, source: usize, tag: Tag) -> bool {
        self.inner.lock().iter().any(|m| m.source == source && m.tag == tag)
    }

    /// Number of queued messages (for diagnostics and leak checks).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no messages are queued — used by the runtime's
    /// end-of-program leak check.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn msg(source: usize, tag: Tag, arrival_s: f64) -> Message {
        Message {
            source,
            tag,
            sent_at: SimTime::from_secs(arrival_s * 0.5),
            arrival: SimTime::from_secs(arrival_s),
            payload: encode_f64s(&[arrival_s]),
        }
    }

    #[test]
    fn f64_codec_roundtrips() {
        let values = vec![0.0, -1.5, std::f64::consts::PI, f64::MAX, f64::MIN_POSITIVE];
        let bytes = encode_f64s(&values);
        assert_eq!(bytes.len(), values.len() * 8);
        assert_eq!(decode_f64s(&bytes), values);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let bytes = encode_f64s(&[]);
        assert!(bytes.is_empty());
        assert!(decode_f64s(&bytes).is_empty());
    }

    #[test]
    #[should_panic(expected = "not a whole number of f64s")]
    fn ragged_payload_panics() {
        decode_f64s(&Bytes::from_static(&[1, 2, 3]));
    }

    #[test]
    fn mailbox_matches_source_and_tag() {
        let mb = Mailbox::new();
        mb.push(msg(1, Tag::DATA, 1.0));
        mb.push(msg(2, Tag::DATA, 2.0));
        mb.push(msg(1, Tag::PIVOT, 3.0));
        let got = mb.recv_matching(1, Tag::PIVOT);
        assert_eq!(got.arrival, SimTime::from_secs(3.0));
        assert_eq!(mb.len(), 2);
        assert!(mb.probe(2, Tag::DATA));
        assert!(!mb.probe(2, Tag::PIVOT));
    }

    #[test]
    fn mailbox_preserves_per_pair_fifo() {
        let mb = Mailbox::new();
        mb.push(msg(1, Tag::DATA, 1.0));
        mb.push(msg(1, Tag::DATA, 2.0));
        mb.push(msg(1, Tag::DATA, 3.0));
        assert_eq!(mb.recv_matching(1, Tag::DATA).arrival, SimTime::from_secs(1.0));
        assert_eq!(mb.recv_matching(1, Tag::DATA).arrival, SimTime::from_secs(2.0));
        assert_eq!(mb.recv_matching(1, Tag::DATA).arrival, SimTime::from_secs(3.0));
        assert!(mb.is_empty());
    }

    #[test]
    fn recv_blocks_until_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || mb2.recv_matching(7, Tag::RESULT));
        // Give the receiver a chance to block, then deliver.
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.push(msg(7, Tag::RESULT, 9.0));
        let got = handle.join().expect("receiver thread");
        assert_eq!(got.source, 7);
    }

    #[test]
    fn recv_skips_non_matching_messages() {
        let mb = Arc::new(Mailbox::new());
        mb.push(msg(3, Tag::DATA, 1.0));
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || mb2.recv_matching(4, Tag::DATA));
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.push(msg(4, Tag::DATA, 2.0));
        assert_eq!(handle.join().unwrap().source, 4);
        // The non-matching message is still queued.
        assert!(mb.probe(3, Tag::DATA));
    }

    #[test]
    fn tag_constants_are_distinct() {
        assert_ne!(Tag::DATA, Tag::PIVOT);
        assert_ne!(Tag::PIVOT, Tag::RESULT);
        assert_ne!(Tag::DATA, Tag::RESULT);
    }
}
