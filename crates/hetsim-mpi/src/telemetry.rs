//! Deterministic engine self-observability: which pricing tier ran,
//! why the lockstep analyzer rejected a recording, and how hard the
//! ready-queue scheduler, rank-class dedup, and fault machinery worked.
//!
//! The simulator observes the *kernels* through `hetsim-obs`; this
//! module observes the *simulator*. Every counter here is a pure
//! function of the simulations performed — op streams, class splits,
//! fault plans — never of thread scheduling or wall-clock, so process
//! totals are byte-stable across runs and worker counts as long as the
//! same set of simulations executes. Two deliberate exceptions,
//! [`record_wall_ns`] and [`simulate_wall_ns`], accumulate real elapsed
//! time for the profile export and are documented as excluded from
//! every byte-identity guarantee (DESIGN.md §11).
//!
//! Counters are process-global atomics: simulations may run
//! concurrently on the experiment worker pool, and integer addition is
//! associative, so accumulation order cannot perturb totals. Anything
//! order-sensitive (float time) is rounded to integer microseconds
//! *per rank* before entering the pool of atomics.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Why the lockstep analyzer refused a recording (DESIGN.md §10) and
/// the simulation fell back to the event-driven ready-queue scheduler.
///
/// Every variant marks a shape the analyzer cannot *prove* lockstep;
/// the scheduler then either prices it correctly or reports the
/// protocol bug with its usual diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FallbackReason {
    /// Some rank class ran out of ops while others still expect a
    /// collective — the classes disagree on collective count.
    ClassExhausted,
    /// Classes disagree on which collective comes next (op ids differ).
    CollectiveIdMismatch,
    /// The class heads are collectives of different kinds (e.g. a
    /// barrier meeting a broadcast).
    MixedCollectiveKinds,
    /// Two classes both claim the root role of one broadcast or gather.
    DuplicateRoot,
    /// A broadcast/gather root recording is shared by more than one
    /// rank, or the receiver/leaf count does not close the collective.
    MultiMemberRootClass,
    /// A broadcast receiver's declared size disagrees with the root's.
    CollectiveSizeMismatch,
    /// A receiver states a size expectation on an allgather-derived
    /// broadcast, which only exists at evaluation time.
    UnverifiableDerivedSize,
    /// A point-to-point receive expects a different element count than
    /// the matching send carries.
    P2pSizeMismatch,
    /// A sent message crosses a synchronization point: sent before a
    /// collective, received after it.
    SendAcrossSync,
    /// A receive waits on a message no send in this phase produces.
    RecvBeforeSend,
    /// The program charges failure-recovery ops (checkpoint, detector
    /// timeout, recover); the lockstep phase grammar has no word for
    /// them, so recovery programs always price event-driven.
    RecoveryOps,
    /// A point-to-point batch is not a single-hub scatter — the only
    /// p2p shape the class aggregator (DESIGN.md §13) can fold.
    AsymmetricP2p,
    /// The network model prices endpoints individually (e.g. frozen
    /// per-pair jitter), so per-class costs do not exist.
    UnclassedNetwork,
    /// Message delivery order within a rank class does not follow
    /// member rank order, so tracking one representative clock per
    /// class would lose the tail.
    ClassOrderDiverged,
    /// The data distribution is not run-length classable — its dealing
    /// granularity breaks the per-class round-robin structure the
    /// aggregated GE form (DESIGN.md §13) replays in O(classes).
    UnclassedDistribution,
}

impl FallbackReason {
    /// Every variant, in stable report order.
    pub const ALL: [FallbackReason; 15] = [
        FallbackReason::ClassExhausted,
        FallbackReason::CollectiveIdMismatch,
        FallbackReason::MixedCollectiveKinds,
        FallbackReason::DuplicateRoot,
        FallbackReason::MultiMemberRootClass,
        FallbackReason::CollectiveSizeMismatch,
        FallbackReason::UnverifiableDerivedSize,
        FallbackReason::P2pSizeMismatch,
        FallbackReason::SendAcrossSync,
        FallbackReason::RecvBeforeSend,
        FallbackReason::RecoveryOps,
        FallbackReason::AsymmetricP2p,
        FallbackReason::UnclassedNetwork,
        FallbackReason::ClassOrderDiverged,
        FallbackReason::UnclassedDistribution,
    ];

    /// Stable kebab-case key used in the telemetry document.
    pub fn name(self) -> &'static str {
        match self {
            FallbackReason::ClassExhausted => "class-exhausted",
            FallbackReason::CollectiveIdMismatch => "collective-id-mismatch",
            FallbackReason::MixedCollectiveKinds => "mixed-collective-kinds",
            FallbackReason::DuplicateRoot => "duplicate-root",
            FallbackReason::MultiMemberRootClass => "multi-member-root-class",
            FallbackReason::CollectiveSizeMismatch => "collective-size-mismatch",
            FallbackReason::UnverifiableDerivedSize => "unverifiable-derived-size",
            FallbackReason::P2pSizeMismatch => "p2p-size-mismatch",
            FallbackReason::SendAcrossSync => "send-across-sync",
            FallbackReason::RecvBeforeSend => "recv-before-send",
            FallbackReason::RecoveryOps => "recovery-ops",
            FallbackReason::AsymmetricP2p => "asymmetric-p2p",
            FallbackReason::UnclassedNetwork => "unclassed-network",
            FallbackReason::ClassOrderDiverged => "class-order-diverged",
            FallbackReason::UnclassedDistribution => "unclassed-distribution",
        }
    }

    fn index(self) -> usize {
        FallbackReason::ALL.iter().position(|&r| r == self).expect("listed in ALL")
    }
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self {
            FallbackReason::ClassExhausted => {
                "a rank class ran out of ops while others still expect a collective"
            }
            FallbackReason::CollectiveIdMismatch => {
                "rank classes disagree on which collective comes next"
            }
            FallbackReason::MixedCollectiveKinds => {
                "rank classes meet at collectives of different kinds"
            }
            FallbackReason::DuplicateRoot => "two rank classes both claim one collective's root",
            FallbackReason::MultiMemberRootClass => {
                "a collective root recording is shared by more than one rank"
            }
            FallbackReason::CollectiveSizeMismatch => {
                "a broadcast receiver's size expectation disagrees with the root's count"
            }
            FallbackReason::UnverifiableDerivedSize => {
                "a size expectation on an allgather-derived broadcast cannot be checked statically"
            }
            FallbackReason::P2pSizeMismatch => {
                "a receive expects a different element count than the matching send carries"
            }
            FallbackReason::SendAcrossSync => {
                "a message is sent before a synchronization point and received after it"
            }
            FallbackReason::RecvBeforeSend => {
                "a receive waits on a message only sent in a later phase"
            }
            FallbackReason::RecoveryOps => {
                "the program charges failure-recovery ops the lockstep grammar cannot express"
            }
            FallbackReason::AsymmetricP2p => {
                "a point-to-point batch is not the single-hub scatter the aggregator folds"
            }
            FallbackReason::UnclassedNetwork => {
                "the network model prices endpoints individually, so class costs do not exist"
            }
            FallbackReason::ClassOrderDiverged => {
                "message order within a rank class diverges from member rank order"
            }
            FallbackReason::UnclassedDistribution => {
                "the data distribution's dealing granularity is not run-length classable"
            }
        };
        write!(f, "{what} ({})", self.name())
    }
}

/// Which event-driven replay ran, for the path-selection breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventDrivenMode {
    /// The analyzer rejected the recording (see [`FallbackReason`]).
    Fallback,
    /// The analytic evaluator is globally disabled (`--no-analytic`) or
    /// the caller asked for the scheduler explicitly.
    Forced,
    /// Tracing was requested; traced runs keep the scheduler.
    Traced,
    /// A fault plan was active; faulted runs keep the scheduler.
    Faulted,
}

/// Which pricing tier executed one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePath {
    /// Lockstep analytic evaluation (DESIGN.md §10).
    Analytic,
    /// Class-aggregated evaluation: one representative clock per rank
    /// class plus analytic fan-out corrections (DESIGN.md §13).
    Aggregated,
    /// The event-driven ready-queue scheduler.
    EventDriven(EventDrivenMode),
    /// The thread-per-rank oracle runtime.
    Threaded,
}

/// Everything one simulation contributes to the process totals.
///
/// Built by the engine once per simulation; integer-only so that the
/// order in which concurrent simulations flush cannot change any total.
#[derive(Debug, Clone, Copy)]
pub struct EngineReport {
    /// The pricing tier that ran.
    pub path: EnginePath,
    /// Ranks simulated.
    pub ranks: u64,
    /// Distinct rank classes backing those ranks.
    pub classes: u64,
    /// Ready-queue parks (rank blocked on a mailbox or collective slot).
    pub parks: u64,
    /// Ready-queue wakes (ranks drained off wake lists).
    pub wakes: u64,
    /// Point-to-point ops executed (sends + receives).
    pub p2p_events: u64,
    /// Collective ops executed (per participating rank).
    pub collective_events: u64,
    /// Sends that paid a non-zero retry charge.
    pub retry_events: u64,
    /// Failed attempts across those sends.
    pub retry_attempts: u64,
    /// Total retry/timeout/backoff charge, rounded to µs per rank.
    pub retry_charge_us: u64,
}

impl EngineReport {
    /// A zeroed report for `path` over `ranks` ranks in `classes`
    /// classes; callers fill in the scheduler-specific counts.
    pub fn new(path: EnginePath, ranks: u64, classes: u64) -> EngineReport {
        EngineReport {
            path,
            ranks,
            classes,
            parks: 0,
            wakes: 0,
            p2p_events: 0,
            collective_events: 0,
            retry_events: 0,
            retry_attempts: 0,
            retry_charge_us: 0,
        }
    }
}

/// Per-kernel closed-form evaluation counts (`kernels::analytic`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClosedFormStats {
    /// Evaluation calls (one per `*_closed_form_many` batch).
    pub batches: u64,
    /// Cells priced across those calls.
    pub cells: u64,
}

static ANALYTIC_SIMS: AtomicU64 = AtomicU64::new(0);
static AGGREGATED_SIMS: AtomicU64 = AtomicU64::new(0);
static AGGREGATED_RANKS: AtomicU64 = AtomicU64::new(0);
static AGGREGATED_CLASSES: AtomicU64 = AtomicU64::new(0);
static EVENT_FALLBACK: AtomicU64 = AtomicU64::new(0);
static EVENT_FORCED: AtomicU64 = AtomicU64::new(0);
static EVENT_TRACED: AtomicU64 = AtomicU64::new(0);
static EVENT_FAULTED: AtomicU64 = AtomicU64::new(0);
static THREADED_SIMS: AtomicU64 = AtomicU64::new(0);
static PARKS: AtomicU64 = AtomicU64::new(0);
static WAKES: AtomicU64 = AtomicU64::new(0);
static P2P_EVENTS: AtomicU64 = AtomicU64::new(0);
static COLLECTIVE_EVENTS: AtomicU64 = AtomicU64::new(0);
static RANKS_SIMULATED: AtomicU64 = AtomicU64::new(0);
static CLASSES_SIMULATED: AtomicU64 = AtomicU64::new(0);
static RETRY_EVENTS: AtomicU64 = AtomicU64::new(0);
static RETRY_ATTEMPTS: AtomicU64 = AtomicU64::new(0);
static RETRY_CHARGE_US: AtomicU64 = AtomicU64::new(0);
static FALLBACKS: [AtomicU64; FallbackReason::ALL.len()] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static CLOSED_FORM: Mutex<BTreeMap<&'static str, ClosedFormStats>> = Mutex::new(BTreeMap::new());
// Wall-clock accumulators — profile export only, never in the
// deterministic document.
static RECORD_WALL_NS: AtomicU64 = AtomicU64::new(0);
static SIMULATE_WALL_NS: AtomicU64 = AtomicU64::new(0);

/// Folds one simulation's [`EngineReport`] into the process totals.
pub fn record_simulation(report: &EngineReport) {
    match report.path {
        EnginePath::Analytic => ANALYTIC_SIMS.fetch_add(1, Ordering::Relaxed),
        EnginePath::Aggregated => {
            AGGREGATED_RANKS.fetch_add(report.ranks, Ordering::Relaxed);
            AGGREGATED_CLASSES.fetch_add(report.classes, Ordering::Relaxed);
            AGGREGATED_SIMS.fetch_add(1, Ordering::Relaxed)
        }
        EnginePath::EventDriven(EventDrivenMode::Fallback) => {
            EVENT_FALLBACK.fetch_add(1, Ordering::Relaxed)
        }
        EnginePath::EventDriven(EventDrivenMode::Forced) => {
            EVENT_FORCED.fetch_add(1, Ordering::Relaxed)
        }
        EnginePath::EventDriven(EventDrivenMode::Traced) => {
            EVENT_TRACED.fetch_add(1, Ordering::Relaxed)
        }
        EnginePath::EventDriven(EventDrivenMode::Faulted) => {
            EVENT_FAULTED.fetch_add(1, Ordering::Relaxed)
        }
        EnginePath::Threaded => THREADED_SIMS.fetch_add(1, Ordering::Relaxed),
    };
    RANKS_SIMULATED.fetch_add(report.ranks, Ordering::Relaxed);
    CLASSES_SIMULATED.fetch_add(report.classes, Ordering::Relaxed);
    PARKS.fetch_add(report.parks, Ordering::Relaxed);
    WAKES.fetch_add(report.wakes, Ordering::Relaxed);
    P2P_EVENTS.fetch_add(report.p2p_events, Ordering::Relaxed);
    COLLECTIVE_EVENTS.fetch_add(report.collective_events, Ordering::Relaxed);
    RETRY_EVENTS.fetch_add(report.retry_events, Ordering::Relaxed);
    RETRY_ATTEMPTS.fetch_add(report.retry_attempts, Ordering::Relaxed);
    RETRY_CHARGE_US.fetch_add(report.retry_charge_us, Ordering::Relaxed);
}

/// Counts one analyzer rejection under `reason` (the simulation itself
/// is reported separately as an event-driven fallback).
pub fn record_fallback(reason: FallbackReason) {
    FALLBACKS[reason.index()].fetch_add(1, Ordering::Relaxed);
}

/// Counts one kernel-level closed-form batch of `cells` cells
/// (`kernels::analytic` — these bypass the engine entirely).
pub fn record_closed_form(kernel: &'static str, cells: u64) {
    let mut map = CLOSED_FORM.lock();
    let entry = map.entry(kernel).or_default();
    entry.batches += 1;
    entry.cells += cells;
}

/// Accumulates record-phase wall-clock (profile export only).
pub fn add_record_wall_ns(ns: u64) {
    RECORD_WALL_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Accumulates simulate-phase wall-clock (profile export only).
pub fn add_simulate_wall_ns(ns: u64) {
    SIMULATE_WALL_NS.fetch_add(ns, Ordering::Relaxed);
}

/// `(record_ns, simulate_ns)` wall-clock totals. **Not deterministic**
/// — profile export only, excluded from byte-identity guarantees.
pub fn wall_clock_ns() -> (u64, u64) {
    (RECORD_WALL_NS.load(Ordering::Relaxed), SIMULATE_WALL_NS.load(Ordering::Relaxed))
}

/// A point-in-time copy of every deterministic engine counter.
///
/// Deterministic contract: equal sets of simulations produce equal
/// snapshots, regardless of thread interleaving or worker count. Which
/// pricing tier each simulation takes — and therefore the path
/// breakdown, park/wake, and fallback counters — changes with
/// [`crate::set_analytic_enabled`]; everything memo/pool-shaped above
/// the engine is engine-independent (DESIGN.md §11).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EngineTelemetry {
    /// Kernel-level closed forms, keyed by kernel label.
    pub closed_form: BTreeMap<String, ClosedFormStats>,
    /// Simulations priced by the lockstep analytic evaluator.
    pub analytic_sims: u64,
    /// Simulations priced by the class-aggregated evaluator.
    pub aggregated_sims: u64,
    /// Ranks folded into class representatives by those simulations.
    pub aggregated_ranks: u64,
    /// Rank classes actually priced by those simulations.
    pub aggregated_classes: u64,
    /// Event-driven simulations after an analyzer rejection.
    pub event_driven_fallback: u64,
    /// Event-driven simulations forced by `--no-analytic` or an
    /// explicit scheduler request.
    pub event_driven_forced: u64,
    /// Event-driven simulations that carried tracing.
    pub event_driven_traced: u64,
    /// Event-driven simulations under a fault plan.
    pub event_driven_faulted: u64,
    /// Thread-per-rank oracle runs.
    pub threaded_sims: u64,
    /// Analyzer rejections by [`FallbackReason::name`] (non-zero only).
    pub fallback_reasons: BTreeMap<String, u64>,
    /// Ready-queue parks across event-driven replays.
    pub parks: u64,
    /// Ready-queue wakes across event-driven replays.
    pub wakes: u64,
    /// Point-to-point ops executed (engine paths only).
    pub p2p_events: u64,
    /// Collective ops executed, per participating rank.
    pub collective_events: u64,
    /// Total ranks across simulations.
    pub ranks_simulated: u64,
    /// Total distinct rank classes across simulations.
    pub classes_simulated: u64,
    /// Sends that paid a non-zero retry charge.
    pub retry_events: u64,
    /// Failed attempts across those sends.
    pub retry_attempts: u64,
    /// Retry/timeout/backoff charge total, µs (rounded per rank).
    pub retry_charge_us: u64,
}

impl EngineTelemetry {
    /// Cells priced by kernel-level closed forms.
    pub fn closed_form_cells(&self) -> u64 {
        self.closed_form.values().map(|s| s.cells).sum()
    }

    /// Everything priced without the scheduler: closed-form cells plus
    /// lockstep-analytic and class-aggregated simulations.
    pub fn analytic_cells(&self) -> u64 {
        self.closed_form_cells() + self.analytic_sims + self.aggregated_sims
    }

    /// Share of simulated ranks the class aggregator folded into
    /// representatives, in percent (0 when nothing aggregated).
    pub fn aggregated_rank_percent(&self) -> f64 {
        if self.ranks_simulated == 0 {
            0.0
        } else {
            100.0 * self.aggregated_ranks as f64 / self.ranks_simulated as f64
        }
    }

    /// Share of analytic-eligible work that actually priced
    /// analytically, in percent. Traced, faulted, and explicitly forced
    /// event-driven runs are excluded from the denominator (they are
    /// not eligible); an empty denominator reads as full coverage.
    pub fn analytic_coverage_percent(&self) -> f64 {
        let analytic = self.analytic_cells();
        let denom = analytic + self.event_driven_fallback;
        if denom == 0 {
            100.0
        } else {
            100.0 * analytic as f64 / denom as f64
        }
    }

    /// Rank-class dedup factor: ranks simulated per stored recording.
    pub fn dedup_factor(&self) -> f64 {
        if self.classes_simulated == 0 {
            1.0
        } else {
            self.ranks_simulated as f64 / self.classes_simulated as f64
        }
    }
}

/// Snapshots every deterministic counter.
pub fn snapshot() -> EngineTelemetry {
    let mut fallback_reasons = BTreeMap::new();
    for reason in FallbackReason::ALL {
        let count = FALLBACKS[reason.index()].load(Ordering::Relaxed);
        if count > 0 {
            fallback_reasons.insert(reason.name().to_string(), count);
        }
    }
    let closed_form =
        CLOSED_FORM.lock().iter().map(|(&k, &v)| (k.to_string(), v)).collect::<BTreeMap<_, _>>();
    EngineTelemetry {
        closed_form,
        analytic_sims: ANALYTIC_SIMS.load(Ordering::Relaxed),
        aggregated_sims: AGGREGATED_SIMS.load(Ordering::Relaxed),
        aggregated_ranks: AGGREGATED_RANKS.load(Ordering::Relaxed),
        aggregated_classes: AGGREGATED_CLASSES.load(Ordering::Relaxed),
        event_driven_fallback: EVENT_FALLBACK.load(Ordering::Relaxed),
        event_driven_forced: EVENT_FORCED.load(Ordering::Relaxed),
        event_driven_traced: EVENT_TRACED.load(Ordering::Relaxed),
        event_driven_faulted: EVENT_FAULTED.load(Ordering::Relaxed),
        threaded_sims: THREADED_SIMS.load(Ordering::Relaxed),
        fallback_reasons,
        parks: PARKS.load(Ordering::Relaxed),
        wakes: WAKES.load(Ordering::Relaxed),
        p2p_events: P2P_EVENTS.load(Ordering::Relaxed),
        collective_events: COLLECTIVE_EVENTS.load(Ordering::Relaxed),
        ranks_simulated: RANKS_SIMULATED.load(Ordering::Relaxed),
        classes_simulated: CLASSES_SIMULATED.load(Ordering::Relaxed),
        retry_events: RETRY_EVENTS.load(Ordering::Relaxed),
        retry_attempts: RETRY_ATTEMPTS.load(Ordering::Relaxed),
        retry_charge_us: RETRY_CHARGE_US.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallback_reason_names_are_stable_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for reason in FallbackReason::ALL {
            assert!(seen.insert(reason.name()), "duplicate name {}", reason.name());
            let text = reason.to_string();
            assert!(text.ends_with(&format!("({})", reason.name())), "Display names itself");
        }
    }

    #[test]
    fn coverage_is_vacuously_full_and_degrades_with_fallbacks() {
        let mut t = EngineTelemetry::default();
        assert_eq!(t.analytic_coverage_percent(), 100.0);
        t.analytic_sims = 3;
        assert_eq!(t.analytic_coverage_percent(), 100.0);
        t.event_driven_fallback = 1;
        assert_eq!(t.analytic_coverage_percent(), 75.0);
        t.closed_form.insert("ge".into(), ClosedFormStats { batches: 1, cells: 4 });
        assert_eq!(t.analytic_cells(), 7);
        assert_eq!(t.analytic_coverage_percent(), 87.5);
    }

    #[test]
    fn aggregated_sims_count_as_analytic_cells() {
        let t = EngineTelemetry {
            aggregated_sims: 2,
            aggregated_ranks: 2_000_000,
            aggregated_classes: 6,
            ranks_simulated: 2_500_000,
            ..Default::default()
        };
        assert_eq!(t.analytic_cells(), 2);
        assert_eq!(t.analytic_coverage_percent(), 100.0);
        assert_eq!(t.aggregated_rank_percent(), 80.0);
        assert_eq!(EngineTelemetry::default().aggregated_rank_percent(), 0.0);
    }

    #[test]
    fn aggregated_reports_accumulate() {
        let before = snapshot();
        let report = EngineReport::new(EnginePath::Aggregated, 100_000, 5);
        record_simulation(&report);
        let after = snapshot();
        assert!(after.aggregated_sims > before.aggregated_sims);
        assert!(after.aggregated_ranks >= before.aggregated_ranks + 100_000);
        assert!(after.aggregated_classes >= before.aggregated_classes + 5);
        assert!(after.ranks_simulated >= before.ranks_simulated + 100_000);
    }

    #[test]
    fn dedup_factor_is_ranks_per_class() {
        let mut t = EngineTelemetry::default();
        assert_eq!(t.dedup_factor(), 1.0);
        t.ranks_simulated = 85;
        t.classes_simulated = 5;
        assert_eq!(t.dedup_factor(), 17.0);
    }

    #[test]
    fn simulation_reports_accumulate() {
        let before = snapshot();
        let mut report = EngineReport::new(EnginePath::EventDriven(EventDrivenMode::Forced), 4, 2);
        report.parks = 3;
        report.wakes = 3;
        report.p2p_events = 6;
        report.collective_events = 8;
        record_simulation(&report);
        record_fallback(FallbackReason::SendAcrossSync);
        let after = snapshot();
        assert!(after.event_driven_forced > before.event_driven_forced);
        assert!(after.ranks_simulated >= before.ranks_simulated + 4);
        assert!(after.parks >= before.parks + 3);
        let seen = after.fallback_reasons.get("send-across-sync").copied().unwrap_or(0);
        assert!(seen >= 1);
    }
}
