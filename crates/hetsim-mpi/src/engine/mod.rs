//! Fast-path analytic timing engine: payload-free, single-threaded,
//! bit-identical to the threaded runtime.
//!
//! The threaded runtime in [`crate::runtime`] prices a run by actually
//! executing it — one OS thread per rank, real byte buffers through real
//! mailboxes. For *timing-mode* kernels none of that machinery affects
//! the result: virtual time is a pure function of marked speeds, payload
//! **sizes**, and the network model (see the crate docs). This module
//! exploits that purity with a two-phase evaluator:
//!
//! 1. **Record** — the SPMD body runs once per rank against a
//!    [`RecordTimer`], a [`SpmdTimer`] implementation that executes no
//!    communication at all and instead logs the rank's operation list
//!    (op kind, peers, element counts, charged flops). Timing-mode
//!    bodies have data-independent control flow, so the log is exactly
//!    the op sequence the threaded runtime would execute. Recordings are
//!    deduplicated into **rank classes**: ranks whose op lists and node
//!    speeds coincide share one stored recording ([`record_spmd`]), so a
//!    homogeneous sub-pool of 80 identical blades stores one op list,
//!    not 80. Clocks and results stay per-rank — only the recording is
//!    shared.
//! 2. **Simulate** — a single-threaded run-until-blocked scheduler
//!    replays the per-rank op lists against virtual mailboxes and
//!    collective slots, performing the *identical* float-op sequences as
//!    [`crate::context::Rank`] — same order of `+=` on the clock and the
//!    compute/comm/wait accumulators, same `max`/rendezvous folds, same
//!    fault retry charges. IEEE 754 addition is not associative, so this
//!    mirroring is what makes the result bit-identical rather than
//!    merely close; the `fast_matches_threaded` tests pin it. The
//!    scheduler is an indexed ready queue: a blocked rank parks on the
//!    wake list of exactly the mailbox or collective slot it needs, and
//!    only the ranks a completed op can unblock are re-queued — a
//!    blocking round costs O(woken ranks), not O(P). Virtual times are
//!    pure functions of message and slot contents (the same argument
//!    that makes the threaded runtime scheduling-independent), so the
//!    visit order change cannot perturb a single bit.
//!
//! The threaded runtime remains the semantic oracle: any new operation
//! must land in [`crate::context::Rank`] first and be mirrored here,
//! guarded by an equality test.

use crate::context::Rank;
use crate::message::Tag;
use crate::runtime::SpmdOutcome;
use crate::telemetry::{self, EnginePath, EngineReport, EventDrivenMode, FallbackReason};
use crate::trace::{OpKind, RankTrace, TraceRecord};
use hetsim_cluster::cluster::ClusterSpec;
use hetsim_cluster::faults::FaultPlan;
use hetsim_cluster::network::NetworkModel;
use hetsim_cluster::time::SimTime;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

mod aggregate;
mod analytic;

pub use aggregate::{AggregateOutcome, AggregatePlan, AggregatePlanBuilder};
use analytic::LockstepProgram;

/// Process-wide switch for the lockstep analytic evaluator (default
/// on). See [`set_analytic_enabled`].
static ANALYTIC_ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables the lockstep analytic evaluator
/// (`bench-tables`' `--no-analytic` flag). With it disabled,
/// [`SpmdProgram::simulate`] and the `run_spmd_fast*` entry points
/// always use the event-driven ready-queue scheduler. Both paths are
/// bit-identical by construction (the analytic evaluator mirrors the
/// scheduler's float-op sequences), so flipping this mid-run changes
/// cost, never results.
pub fn set_analytic_enabled(enabled: bool) {
    ANALYTIC_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the lockstep analytic evaluator is currently enabled.
pub fn analytic_enabled() -> bool {
    ANALYTIC_ENABLED.load(Ordering::Relaxed)
}

/// Size-only SPMD operations: the interface timing-mode bodies program
/// against so one body drives both engines.
///
/// Implemented by [`Rank`] (threaded oracle — materializes zero-filled
/// payloads of the given element counts) and by [`RecordTimer`] (fast
/// path — logs the operation for later simulation). All counts are in
/// `f64` elements; the wire cost is `8 × count` bytes, exactly what
/// `encode_f64s` would produce.
pub trait SpmdTimer {
    /// This process's rank id, `0 ≤ rank < size`.
    fn rank(&self) -> usize;

    /// Number of processes in the run.
    fn size(&self) -> usize;

    /// Charges `flops` floating-point operations at the node's marked
    /// speed (see [`Rank::compute_flops`]).
    fn compute_flops(&mut self, flops: f64);

    /// Sends `count` `f64` elements to `dest` with `tag`.
    fn send_count(&mut self, dest: usize, tag: Tag, count: usize);

    /// Receives from `source` with `tag`, asserting the payload carries
    /// exactly `expect` elements.
    fn recv_count(&mut self, source: usize, tag: Tag, expect: usize);

    /// Barrier across all ranks (see [`Rank::barrier`]).
    fn barrier(&mut self);

    /// Broadcast of `count` elements from `root`; every rank passes the
    /// same `count` (timing-mode bodies know their sizes a priori).
    fn broadcast_count(&mut self, root: usize, count: usize);

    /// Gather to `root`; `count` is this rank's own contribution size.
    fn gather_count(&mut self, root: usize, count: usize);

    /// All-gather of this rank's `count`-element contribution (gather to
    /// rank 0 + broadcast of the packed concatenation, as in
    /// [`Rank::allgather_f64s`]).
    fn allgather_count(&mut self, count: usize);

    /// Writes `bytes` of checkpoint state to the shared store (see
    /// [`Rank::checkpoint`]).
    fn checkpoint(&mut self, bytes: u64);

    /// Charges the failure detector's timeout before declaring a silent
    /// peer dead (see [`Rank::detect_failure`]).
    fn detect_failure(&mut self, timeout_secs: f64);

    /// Recovers from a detected death: replays `lost_flops` at the
    /// node's marked speed, then absorbs `moved_bytes` of repartition
    /// traffic (see [`Rank::recover`]). Either span is omitted when its
    /// operand is zero.
    fn recover(&mut self, lost_flops: f64, moved_bytes: u64);
}

impl SpmdTimer for Rank<'_> {
    fn rank(&self) -> usize {
        Rank::rank(self)
    }

    fn size(&self) -> usize {
        Rank::size(self)
    }

    fn compute_flops(&mut self, flops: f64) {
        Rank::compute_flops(self, flops);
    }

    fn send_count(&mut self, dest: usize, tag: Tag, count: usize) {
        self.send_f64s(dest, tag, &vec![0.0; count]);
    }

    fn recv_count(&mut self, source: usize, tag: Tag, expect: usize) {
        let got = self.recv_f64s(source, tag);
        assert_eq!(got.len(), expect, "recv_count: payload size disagrees with the protocol");
    }

    fn barrier(&mut self) {
        Rank::barrier(self);
    }

    fn broadcast_count(&mut self, root: usize, count: usize) {
        if Rank::rank(self) == root {
            self.broadcast_f64s(root, Some(&vec![0.0; count]));
        } else {
            let got = self.broadcast_f64s(root, None);
            debug_assert_eq!(got.len(), count, "broadcast_count: size disagrees with the root");
        }
    }

    fn gather_count(&mut self, root: usize, count: usize) {
        let _ = self.gather_f64s(root, &vec![0.0; count]);
    }

    fn allgather_count(&mut self, count: usize) {
        let _ = self.allgather_f64s(&vec![0.0; count]);
    }

    fn checkpoint(&mut self, bytes: u64) {
        Rank::checkpoint(self, bytes);
    }

    fn detect_failure(&mut self, timeout_secs: f64) {
        Rank::detect_failure(self, timeout_secs);
    }

    fn recover(&mut self, lost_flops: f64, moved_bytes: u64) {
        Rank::recover(self, lost_flops, moved_bytes);
    }
}

/// One recorded operation of one rank. Element counts, not payloads.
///
/// `PartialEq` is the rank-class criterion: two ranks share a recording
/// only when their op streams compare equal field-for-field (flops
/// compare as `f64`, which is exact here — recorded flops are finite and
/// non-negative, so equal values are bit-equal up to the sign of zero,
/// and `±0.0` flops price identically).
#[derive(Debug, Clone, PartialEq)]
enum Op {
    Compute {
        flops: f64,
    },
    Send {
        dest: usize,
        tag: Tag,
        count: usize,
    },
    Recv {
        source: usize,
        tag: Tag,
        expect: usize,
    },
    Barrier {
        op: u64,
    },
    BcastRoot {
        op: u64,
        count: usize,
    },
    /// Broadcast receiver; `expect` is `None` for the allgather-derived
    /// broadcast whose packed size only the root knows.
    BcastRecv {
        op: u64,
        root: usize,
        expect: Option<usize>,
    },
    GatherRoot {
        op: u64,
        count: usize,
    },
    GatherLeaf {
        op: u64,
        root: usize,
        count: usize,
    },
    /// Root half of the broadcast that closes an allgather: its payload
    /// is `p + Σ gathered counts` elements, resolved at simulation time
    /// from the immediately preceding gather (mirrors the packed
    /// length-header layout of [`Rank::allgather_f64s`]).
    BcastRootDerived {
        op: u64,
    },
    /// Checkpoint image write of `bytes` (local, never blocks).
    Checkpoint {
        bytes: u64,
    },
    /// Failure-detector timeout of `secs` (finite, ≥ 0; local).
    Detect {
        secs: f64,
    },
    /// Recovery replay: `lost_flops` at marked speed plus `moved_bytes`
    /// of repartition traffic (local; zero operands emit no span).
    Recover {
        lost_flops: f64,
        moved_bytes: u64,
    },
}

/// Recording [`SpmdTimer`]: logs a rank's operation list for the
/// simulator instead of executing anything. Created internally by the
/// `run_spmd_fast*` entry points; bodies only see `&mut RecordTimer`.
pub struct RecordTimer {
    id: usize,
    size: usize,
    collective_seq: u64,
    ops: Vec<Op>,
}

impl RecordTimer {
    fn next_op(&mut self) -> u64 {
        let op = self.collective_seq;
        self.collective_seq += 1;
        op
    }
}

impl SpmdTimer for RecordTimer {
    fn rank(&self) -> usize {
        self.id
    }

    fn size(&self) -> usize {
        self.size
    }

    fn compute_flops(&mut self, flops: f64) {
        assert!(flops.is_finite() && flops >= 0.0, "flops must be finite and ≥ 0");
        self.ops.push(Op::Compute { flops });
    }

    fn send_count(&mut self, dest: usize, tag: Tag, count: usize) {
        assert!(dest < self.size, "destination rank {dest} out of range");
        assert_ne!(dest, self.id, "self-send is not supported");
        self.ops.push(Op::Send { dest, tag, count });
    }

    fn recv_count(&mut self, source: usize, tag: Tag, expect: usize) {
        assert!(source < self.size, "source rank {source} out of range");
        assert_ne!(source, self.id, "self-receive is not supported");
        self.ops.push(Op::Recv { source, tag, expect });
    }

    fn barrier(&mut self) {
        let op = self.next_op();
        self.ops.push(Op::Barrier { op });
    }

    fn broadcast_count(&mut self, root: usize, count: usize) {
        assert!(root < self.size, "root rank {root} out of range");
        let op = self.next_op();
        if self.id == root {
            self.ops.push(Op::BcastRoot { op, count });
        } else {
            self.ops.push(Op::BcastRecv { op, root, expect: Some(count) });
        }
    }

    fn gather_count(&mut self, root: usize, count: usize) {
        assert!(root < self.size, "root rank {root} out of range");
        let op = self.next_op();
        if self.id == root {
            self.ops.push(Op::GatherRoot { op, count });
        } else {
            self.ops.push(Op::GatherLeaf { op, root, count });
        }
    }

    fn allgather_count(&mut self, count: usize) {
        let gather_op = self.next_op();
        let bcast_op = self.next_op();
        if self.id == 0 {
            self.ops.push(Op::GatherRoot { op: gather_op, count });
            self.ops.push(Op::BcastRootDerived { op: bcast_op });
        } else {
            self.ops.push(Op::GatherLeaf { op: gather_op, root: 0, count });
            self.ops.push(Op::BcastRecv { op: bcast_op, root: 0, expect: None });
        }
    }

    fn checkpoint(&mut self, bytes: u64) {
        self.ops.push(Op::Checkpoint { bytes });
    }

    fn detect_failure(&mut self, timeout_secs: f64) {
        assert!(
            timeout_secs.is_finite() && timeout_secs >= 0.0,
            "detector timeout must be finite and ≥ 0"
        );
        self.ops.push(Op::Detect { secs: timeout_secs });
    }

    fn recover(&mut self, lost_flops: f64, moved_bytes: u64) {
        assert!(
            lost_flops.is_finite() && lost_flops >= 0.0,
            "lost work must be finite and ≥ 0 flops"
        );
        self.ops.push(Op::Recover { lost_flops, moved_bytes });
    }
}

/// An in-flight sized message (the fast-path `Message`).
struct SimMsg {
    source: usize,
    tag: Tag,
    sent_at: SimTime,
    arrival: SimTime,
    count: usize,
}

/// Collective slot state, mirroring `collectives::Slot` minus payloads.
///
/// `missing` counters and the cached barrier `rendezvous` replace the
/// round-robin scheduler's per-visit O(p) "anyone absent? fold the max"
/// scans. The cached fold runs exactly once, over the same complete
/// deposit set the old code folded on every visit, so every float
/// compare sees the same operands and the result is bit-equal.
enum SimSlot {
    Barrier { entries: Vec<Option<SimTime>>, missing: usize, rendezvous: SimTime, reads: usize },
    Gather { deposits: Vec<Option<(SimTime, usize)>>, missing: usize },
    Bcast { deposit: Option<(SimTime, usize)>, reads: usize },
}

/// A collective slot plus the ranks parked on it — the per-collective
/// wake list of the ready-queue scheduler.
///
/// The wake list is an intrusive chain: `waiters` holds the first
/// parked rank (or [`NO_WAITER`]) and `SimShared::wait_link[r]` holds
/// the next one after `r`. A blocked rank waits on exactly one object
/// at a time, so one link cell per rank suffices and parking never
/// allocates. Wake order is chain (LIFO) order — only the ready-queue
/// visit order depends on it, and virtual times are visit-order
/// invariant.
struct SlotBox {
    slot: SimSlot,
    waiters: u32,
}

/// Sentinel for "no rank parked" in the intrusive wake chains.
const NO_WAITER: u32 = u32::MAX;

/// One rank's simulation state: the exact accumulator set of
/// [`Rank`], advanced by the same float-op sequences.
struct SimRank {
    id: usize,
    clock: SimTime,
    compute_time: SimTime,
    comm_time: SimTime,
    wait_time: SimTime,
    speed_flops: f64,
    send_seq: Vec<u64>,
    trace: RankTrace,
    pc: usize,
    last_gather_counts: Vec<usize>,
    /// Telemetry: sends that paid a non-zero retry charge.
    retry_events: u64,
    /// Telemetry: failed attempts across those sends.
    retry_attempts: u64,
    /// Telemetry: retry charge, rounded to integer µs per event so the
    /// cross-simulation total is an order-independent integer sum.
    retry_us: u64,
}

impl SimRank {
    /// `faulted` sizes the per-destination retry sequence table; only
    /// faulted replays consult it (`charge_link_retries` early-returns
    /// without a plan), and eagerly allocating it per rank made a
    /// fault-free P-rank replay O(P²) in memory.
    fn new(id: usize, cluster: &ClusterSpec, faulted: bool) -> SimRank {
        SimRank {
            id,
            clock: SimTime::ZERO,
            compute_time: SimTime::ZERO,
            comm_time: SimTime::ZERO,
            wait_time: SimTime::ZERO,
            speed_flops: cluster.nodes()[id].marked_speed_flops(),
            send_seq: if faulted { vec![0; cluster.size()] } else { Vec::new() },
            trace: RankTrace::default(),
            pc: 0,
            last_gather_counts: Vec::new(),
            retry_events: 0,
            retry_attempts: 0,
            retry_us: 0,
        }
    }

    fn push_record(
        &mut self,
        tracing: bool,
        kind: OpKind,
        start: SimTime,
        end: SimTime,
        bytes: u64,
        peer: Option<usize>,
    ) {
        if tracing {
            self.trace.records.push(TraceRecord { kind, start, end, bytes, peer });
        }
    }

    fn record(
        &mut self,
        tracing: bool,
        kind: OpKind,
        start: SimTime,
        bytes: u64,
        peer: Option<usize>,
    ) {
        let end = self.clock;
        self.push_record(tracing, kind, start, end, bytes, peer);
    }

    /// Mirrors [`Rank::compute_flops`] float-op for float-op.
    fn compute(&mut self, tracing: bool, faults: Option<&FaultPlan>, flops: f64) {
        let start = self.clock;
        match faults.and_then(|p| p.windows_for(self.id)) {
            Some(windows) => {
                let end =
                    hetsim_cluster::faults::degraded_end(windows, start, flops, self.speed_flops);
                self.compute_time += end - start;
                self.clock = end;
            }
            None => {
                let dt = SimTime::from_secs(flops / self.speed_flops);
                self.clock += dt;
                self.compute_time += dt;
            }
        }
        self.record(tracing, OpKind::Compute, start, 0, None);
    }

    /// Mirrors `Rank::charge_link_retries`.
    fn charge_link_retries(
        &mut self,
        tracing: bool,
        faults: Option<&FaultPlan>,
        dest: usize,
        bytes: u64,
    ) {
        let Some(plan) = faults else { return };
        if plan.drop_per_mille() == 0 {
            return;
        }
        let msg_index = self.send_seq[dest];
        self.send_seq[dest] += 1;
        match plan.send_retry_charge(self.id, dest, msg_index) {
            Ok(charge) if charge.failed_attempts > 0 => {
                let start = self.clock;
                self.comm_time += charge.total;
                self.clock += charge.total;
                self.retry_events += 1;
                self.retry_attempts += u64::from(charge.failed_attempts);
                self.retry_us += (charge.total.as_secs() * 1e6).round() as u64;
                self.record(tracing, OpKind::Retry, start, bytes, Some(dest));
            }
            Ok(_) => {}
            Err(e) => panic!("{e}"),
        }
    }

    /// Mirrors `Rank::charge_comm`.
    fn charge_comm(
        &mut self,
        tracing: bool,
        new_clock: SimTime,
        kind: OpKind,
        bytes: u64,
        peer: Option<usize>,
    ) {
        debug_assert!(new_clock >= self.clock, "communication cannot rewind time");
        let start = self.clock;
        self.comm_time += new_clock - self.clock;
        self.clock = new_clock;
        self.record(tracing, kind, start, bytes, peer);
    }

    /// Mirrors `Rank::charge_comm_waited`.
    fn charge_comm_waited(
        &mut self,
        tracing: bool,
        ready: SimTime,
        exit: SimTime,
        kind: OpKind,
        bytes: u64,
        peer: Option<usize>,
    ) {
        let entry = self.clock;
        debug_assert!(exit >= entry, "communication cannot rewind time");
        let wait_end = ready.max(entry).min(exit);
        if wait_end > entry {
            self.wait_time += wait_end - entry;
            self.push_record(tracing, OpKind::Wait, entry, wait_end, 0, peer);
        }
        self.comm_time += exit - entry;
        self.clock = exit;
        self.push_record(tracing, kind, wait_end, exit, bytes, peer);
    }
}

/// Outcome of trying to execute one op.
enum Step {
    Progress,
    Blocked,
}

/// Shared simulator state the ops rendezvous through.
///
/// Generic over the network model so every cost lookup is statically
/// dispatched and inlinable (the round-robin engine paid a vtable hop
/// per call — measurable on latency-dominated two-rank sweeps).
struct SimShared<'a, N: NetworkModel> {
    p: usize,
    network: &'a N,
    faults: Option<&'a FaultPlan>,
    tracing: bool,
    mailboxes: Vec<VecDeque<SimMsg>>,
    /// `mailbox_waiting[r]` — rank `r` is blocked on its own mailbox.
    mailbox_waiting: Vec<bool>,
    /// Collective slots indexed by op id ([`RecordTimer`] hands ids out
    /// densely from 0, so a flat table replaces the hash map).
    slots: Vec<Option<SlotBox>>,
    /// Open-slot count, for the leak check.
    live: usize,
    /// Ranks unblocked by the op in flight; drained into the ready
    /// queue by the scheduler.
    woken: Vec<usize>,
    /// `wait_link[r]` — next rank after `r` in its wake chain.
    wait_link: Vec<u32>,
    /// Recycled barrier `entries` buffers (one barrier per program round
    /// on GE-shaped kernels makes this allocation hot).
    barrier_pool: Vec<Vec<Option<SimTime>>>,
    /// Recycled gather `deposits` buffers.
    gather_pool: Vec<Vec<Option<(SimTime, usize)>>>,
    /// `barrier_time(p)` is round-invariant (it depends on nothing but
    /// `p`), so it is priced once per replay instead of once per rank
    /// per barrier — the exact same pure call, hence the exact same
    /// bits. Round-sized kernels execute it millions of times, and
    /// wrapper models (e.g. the frozen-noise jitter) make each call
    /// expensive.
    barrier_cost: SimTime,
}

/// Fetches (creating on first touch) the slot for collective `op`.
///
/// A free function over the individual fields (not a method) so callers
/// can keep `self.woken` borrowed alongside the returned slot.
fn slot_mut<'s>(
    slots: &'s mut [Option<SlotBox>],
    live: &mut usize,
    op: u64,
    make: impl FnOnce() -> SimSlot,
) -> &'s mut SlotBox {
    let cell = &mut slots[op as usize];
    if cell.is_none() {
        *cell = Some(SlotBox { slot: make(), waiters: NO_WAITER });
        *live += 1;
    }
    cell.as_mut().expect("just ensured")
}

/// Removes the slot for `op`, returning it for by-value consumption.
fn take_slot(slots: &mut [Option<SlotBox>], live: &mut usize, op: u64) -> SlotBox {
    *live -= 1;
    slots[op as usize].take().expect("slot present")
}

/// Parks `rank` on a slot's wake chain (allocation-free: one link cell
/// per rank in `wait_link`). A blocked rank is never on two chains, so
/// its cell is free to overwrite.
fn park(wait_link: &mut [u32], slot: &mut SlotBox, rank: usize) {
    wait_link[rank] = slot.waiters;
    slot.waiters = rank as u32;
}

/// Drains a slot's wake chain into `woken` (chain order — see
/// [`SlotBox`]).
fn wake_chain(wait_link: &[u32], woken: &mut Vec<usize>, head: &mut u32) {
    let mut cur = *head;
    while cur != NO_WAITER {
        woken.push(cur as usize);
        cur = wait_link[cur as usize];
    }
    *head = NO_WAITER;
}

/// Takes a zeroed length-`p` buffer from `pool` (or allocates one).
fn pooled<T: Clone>(pool: &mut Vec<Vec<Option<T>>>, p: usize) -> Vec<Option<T>> {
    match pool.pop() {
        Some(mut v) => {
            v.clear();
            v.resize(p, None);
            v
        }
        None => vec![None; p],
    }
}

impl<N: NetworkModel> SimShared<'_, N> {
    /// Root half of a broadcast (explicit or allgather-derived), with
    /// the same operation order as [`Rank::broadcast_f64s`].
    fn bcast_root(&mut self, rank: &mut SimRank, op: u64, count: usize) {
        let bytes = (count * 8) as u64;
        if self.faults.is_some() {
            // Fault-free runs skip the per-peer walk entirely
            // (charge_link_retries is a no-op without a plan).
            for peer in 0..self.p {
                if peer != rank.id {
                    rank.charge_link_retries(self.tracing, self.faults, peer, bytes);
                }
            }
        }
        let cost = SimTime::from_secs(self.network.bcast_time(self.p, bytes));
        let departure = rank.clock + cost;
        let slot = slot_mut(&mut self.slots, &mut self.live, op, || SimSlot::Bcast {
            deposit: None,
            reads: 0,
        });
        let SimSlot::Bcast { deposit, .. } = &mut slot.slot else {
            panic!("collective sequence mismatch: op {op} is not a bcast");
        };
        assert!(deposit.is_none(), "two roots deposited into bcast {op}");
        *deposit = Some((departure, count));
        wake_chain(&self.wait_link, &mut self.woken, &mut slot.waiters);
        if self.p == 1 {
            take_slot(&mut self.slots, &mut self.live, op);
        }
        rank.charge_comm(self.tracing, departure, OpKind::Bcast, bytes, None);
    }

    fn exec(&mut self, rank: &mut SimRank, op: &Op) -> Step {
        match *op {
            Op::Compute { flops } => {
                rank.compute(self.tracing, self.faults, flops);
                Step::Progress
            }
            Op::Send { dest, tag, count } => {
                let bytes = (count * 8) as u64;
                rank.charge_link_retries(self.tracing, self.faults, dest, bytes);
                let sent_at = rank.clock;
                let cost = SimTime::from_secs(self.network.p2p_time_between(rank.id, dest, bytes));
                rank.charge_comm(self.tracing, rank.clock + cost, OpKind::Send, bytes, Some(dest));
                self.mailboxes[dest].push_back(SimMsg {
                    source: rank.id,
                    tag,
                    sent_at,
                    arrival: rank.clock,
                    count,
                });
                if self.mailbox_waiting[dest] {
                    self.mailbox_waiting[dest] = false;
                    self.woken.push(dest);
                }
                Step::Progress
            }
            Op::Recv { source, tag, expect } => {
                let Some(idx) =
                    self.mailboxes[rank.id].iter().position(|m| m.source == source && m.tag == tag)
                else {
                    // Park on the mailbox; any future send to this rank
                    // re-queues it (a non-matching one is a spurious
                    // wake — it just re-parks).
                    self.mailbox_waiting[rank.id] = true;
                    return Step::Blocked;
                };
                let msg = self.mailboxes[rank.id].remove(idx).expect("index just found");
                assert_eq!(
                    msg.count, expect,
                    "recv_count: payload size disagrees with the protocol"
                );
                let bytes = (msg.count * 8) as u64;
                let exit = rank.clock.max(msg.arrival);
                rank.charge_comm_waited(
                    self.tracing,
                    msg.sent_at,
                    exit,
                    OpKind::Recv,
                    bytes,
                    Some(source),
                );
                Step::Progress
            }
            Op::Barrier { op } => {
                let p = self.p;
                let pool = &mut self.barrier_pool;
                let slot = slot_mut(&mut self.slots, &mut self.live, op, || SimSlot::Barrier {
                    entries: pooled(pool, p),
                    missing: p,
                    rendezvous: SimTime::ZERO,
                    reads: 0,
                });
                let SimSlot::Barrier { entries, missing, rendezvous, reads } = &mut slot.slot
                else {
                    panic!("collective sequence mismatch: op {op} is not a barrier");
                };
                if entries[rank.id].is_none() {
                    entries[rank.id] = Some(rank.clock);
                    *missing -= 1;
                    if *missing == 0 {
                        // Same fold over the same complete entry set the
                        // round-robin engine performed on every visit —
                        // computed once, cached, bit-equal.
                        *rendezvous =
                            entries.iter().map(|e| e.expect("all present")).max().expect("p ≥ 1");
                        wake_chain(&self.wait_link, &mut self.woken, &mut slot.waiters);
                    }
                }
                if *missing > 0 {
                    park(&mut self.wait_link, slot, rank.id);
                    return Step::Blocked;
                }
                let rendezvous = *rendezvous;
                *reads += 1;
                if *reads == p {
                    let taken = take_slot(&mut self.slots, &mut self.live, op);
                    if let SimSlot::Barrier { entries, .. } = taken.slot {
                        self.barrier_pool.push(entries);
                    }
                }
                let cost = self.barrier_cost;
                rank.charge_comm_waited(
                    self.tracing,
                    rendezvous,
                    rendezvous + cost,
                    OpKind::Barrier,
                    0,
                    None,
                );
                Step::Progress
            }
            Op::BcastRoot { op, count } => {
                self.bcast_root(rank, op, count);
                Step::Progress
            }
            Op::BcastRootDerived { op } => {
                let count = self.p + rank.last_gather_counts.iter().sum::<usize>();
                self.bcast_root(rank, op, count);
                Step::Progress
            }
            Op::BcastRecv { op, root, expect } => {
                // Receivers may arrive before the root; the slot is
                // created on first touch so the wake list has somewhere
                // to live.
                let slot = slot_mut(&mut self.slots, &mut self.live, op, || SimSlot::Bcast {
                    deposit: None,
                    reads: 0,
                });
                let SimSlot::Bcast { deposit, reads } = &mut slot.slot else {
                    panic!("collective sequence mismatch: op {op} is not a bcast");
                };
                let Some((departure, count)) = *deposit else {
                    park(&mut self.wait_link, slot, rank.id);
                    return Step::Blocked;
                };
                if let Some(expect) = expect {
                    debug_assert_eq!(
                        count, expect,
                        "broadcast_count: size disagrees with the root"
                    );
                }
                *reads += 1;
                if *reads == self.p - 1 {
                    take_slot(&mut self.slots, &mut self.live, op);
                }
                let bytes = (count * 8) as u64;
                rank.charge_comm(
                    self.tracing,
                    rank.clock.max(departure),
                    OpKind::Bcast,
                    bytes,
                    Some(root),
                );
                Step::Progress
            }
            Op::GatherRoot { op, count } => {
                let p = self.p;
                let pool = &mut self.gather_pool;
                let slot = slot_mut(&mut self.slots, &mut self.live, op, || SimSlot::Gather {
                    deposits: pooled(pool, p),
                    missing: p,
                });
                let SimSlot::Gather { deposits, missing } = &mut slot.slot else {
                    panic!("collective sequence mismatch: op {op} is not a gather");
                };
                if deposits[rank.id].is_none() {
                    deposits[rank.id] = Some((rank.clock, count));
                    *missing -= 1;
                }
                if *missing > 0 {
                    park(&mut self.wait_link, slot, rank.id);
                    return Step::Blocked;
                }
                let taken = take_slot(&mut self.slots, &mut self.live, op);
                let SimSlot::Gather { mut deposits, .. } = taken.slot else {
                    unreachable!("checked above")
                };
                let sizes: Vec<u64> =
                    deposits.iter().map(|d| (d.expect("all present").1 * 8) as u64).collect();
                let max_entry = deposits
                    .iter()
                    .map(|d| d.expect("all present").0)
                    .max()
                    .expect("at least the root deposited");
                let cost = SimTime::from_secs(self.network.gather_time(&sizes, rank.id));
                let total_bytes: u64 = sizes.iter().sum();
                let ready = rank.clock.max(max_entry);
                rank.charge_comm_waited(
                    self.tracing,
                    ready,
                    ready + cost,
                    OpKind::Gather,
                    total_bytes,
                    None,
                );
                rank.last_gather_counts.clear();
                rank.last_gather_counts.extend(deposits.iter().map(|d| d.expect("all present").1));
                deposits.clear();
                self.gather_pool.push(deposits);
                Step::Progress
            }
            Op::Checkpoint { bytes } => {
                // Mirrors [`Rank::checkpoint`] float-op for float-op.
                let dt = SimTime::from_secs(hetsim_cluster::faults::checkpoint_cost_secs(bytes));
                rank.charge_comm(self.tracing, rank.clock + dt, OpKind::Checkpoint, bytes, None);
                Step::Progress
            }
            Op::Detect { secs } => {
                // Mirrors [`Rank::detect_failure`].
                let dt = SimTime::from_secs(secs);
                rank.charge_comm(self.tracing, rank.clock + dt, OpKind::Detect, 0, None);
                Step::Progress
            }
            Op::Recover { lost_flops, moved_bytes } => {
                // Mirrors [`Rank::recover`], including the zero-operand
                // span omissions.
                if lost_flops > 0.0 {
                    let dt = SimTime::from_secs(lost_flops / rank.speed_flops);
                    rank.charge_comm(self.tracing, rank.clock + dt, OpKind::LostWork, 0, None);
                }
                if moved_bytes > 0 {
                    let dt = SimTime::from_secs(
                        moved_bytes as f64
                            / hetsim_cluster::faults::REBALANCE_BANDWIDTH_BYTES_PER_SEC,
                    );
                    rank.charge_comm(
                        self.tracing,
                        rank.clock + dt,
                        OpKind::Rebalance,
                        moved_bytes,
                        None,
                    );
                }
                Step::Progress
            }
            Op::GatherLeaf { op, root, count } => {
                let bytes = (count * 8) as u64;
                rank.charge_link_retries(self.tracing, self.faults, root, bytes);
                let p = self.p;
                let pool = &mut self.gather_pool;
                let slot = slot_mut(&mut self.slots, &mut self.live, op, || SimSlot::Gather {
                    deposits: pooled(pool, p),
                    missing: p,
                });
                let SimSlot::Gather { deposits, missing } = &mut slot.slot else {
                    panic!("collective sequence mismatch: op {op} is not a gather");
                };
                assert!(
                    deposits[rank.id].is_none(),
                    "rank {} deposited twice into gather {op}",
                    rank.id
                );
                deposits[rank.id] = Some((rank.clock, count));
                *missing -= 1;
                if *missing == 0 {
                    wake_chain(&self.wait_link, &mut self.woken, &mut slot.waiters);
                }
                let cost = SimTime::from_secs(self.network.p2p_time_between(rank.id, root, bytes));
                rank.charge_comm(
                    self.tracing,
                    rank.clock + cost,
                    OpKind::Gather,
                    bytes,
                    Some(root),
                );
                Step::Progress
            }
        }
    }
}

/// FNV-1a style hash over the rank-class key (node speed bits + op
/// stream). Collisions are harmless — hash buckets are confirmed with
/// full `Vec<Op>` equality before two ranks share a recording.
fn class_hash(speed_bits: u64, ops: &[Op]) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
    }
    let mut h = mix(0xcbf2_9ce4_8422_2325, speed_bits);
    for op in ops {
        h = match *op {
            Op::Compute { flops } => mix(mix(h, 1), flops.to_bits()),
            Op::Send { dest, tag, count } => {
                mix(mix(mix(mix(h, 2), dest as u64), tag.0 as u64), count as u64)
            }
            Op::Recv { source, tag, expect } => {
                mix(mix(mix(mix(h, 3), source as u64), tag.0 as u64), expect as u64)
            }
            Op::Barrier { op } => mix(mix(h, 4), op),
            Op::BcastRoot { op, count } => mix(mix(mix(h, 5), op), count as u64),
            Op::BcastRecv { op, root, expect } => {
                mix(mix(mix(mix(h, 6), op), root as u64), expect.map_or(u64::MAX, |e| e as u64))
            }
            Op::GatherRoot { op, count } => mix(mix(mix(h, 7), op), count as u64),
            Op::GatherLeaf { op, root, count } => {
                mix(mix(mix(mix(h, 8), op), root as u64), count as u64)
            }
            Op::BcastRootDerived { op } => mix(mix(h, 9), op),
            Op::Checkpoint { bytes } => mix(mix(h, 10), bytes),
            Op::Detect { secs } => mix(mix(h, 11), secs.to_bits()),
            Op::Recover { lost_flops, moved_bytes } => {
                mix(mix(mix(h, 12), lost_flops.to_bits()), moved_bytes)
            }
        };
    }
    h
}

/// A recorded SPMD program: per-rank results plus rank-class
/// deduplicated op lists, ready for [`SpmdProgram::simulate`].
///
/// Produced by [`record_spmd`]. Ranks whose recorded op streams and
/// marked node speeds coincide share a single stored recording — on a
/// mostly-homogeneous cluster the storage is O(distinct classes), not
/// O(ranks). Sharing is sound because the simulator treats op lists as
/// read-only programs: clocks, mailboxes, and accumulators stay
/// per-rank, so two ranks replaying the same list still interleave (and
/// wait) exactly as if each owned a private copy.
pub struct SpmdProgram<R> {
    p: usize,
    results: Vec<R>,
    /// One op list per distinct rank class.
    classes: Vec<Vec<Op>>,
    /// Collectives recorded per class (sizes the dense slot table).
    class_collectives: Vec<u64>,
    /// Class index per rank.
    class_of: Vec<usize>,
    /// Lazily computed lockstep phase plan; `Err` caches the analyzer's
    /// rejection reason so the structure check runs at most once.
    lockstep: OnceLock<Result<LockstepProgram, FallbackReason>>,
}

/// Phase 1 of the fast engine, exposed for benchmarks and callers that
/// want to replay one recording under several network models: runs
/// `body` once per rank against a [`RecordTimer`] and deduplicates the
/// recordings into rank classes.
pub fn record_spmd<R, F>(cluster: &ClusterSpec, body: F) -> SpmdProgram<R>
where
    F: Fn(&mut RecordTimer) -> R,
{
    // Wall-clock is profile-only telemetry (DESIGN.md §11); nothing
    // deterministic depends on it.
    let record_started = std::time::Instant::now();
    let p = cluster.size();
    let mut results = Vec::with_capacity(p);
    let mut classes: Vec<Vec<Op>> = Vec::new();
    let mut class_speeds: Vec<u64> = Vec::new();
    let mut class_collectives: Vec<u64> = Vec::new();
    let mut class_of = Vec::with_capacity(p);
    let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
    // Duplicate recordings recycle one scratch buffer, so allocation is
    // O(classes) even on an 85-rank three-class cluster.
    let mut scratch: Vec<Op> = Vec::new();
    for id in 0..p {
        let mut timer = RecordTimer { id, size: p, collective_seq: 0, ops: scratch };
        results.push(body(&mut timer));
        let speed = cluster.nodes()[id].marked_speed_flops().to_bits();
        let hash = class_hash(speed, &timer.ops);
        let bucket = by_hash.entry(hash).or_default();
        let hit =
            bucket.iter().copied().find(|&c| class_speeds[c] == speed && classes[c] == timer.ops);
        match hit {
            Some(c) => {
                class_of.push(c);
                scratch = timer.ops;
                scratch.clear();
            }
            None => {
                let c = classes.len();
                bucket.push(c);
                class_speeds.push(speed);
                class_collectives.push(timer.collective_seq);
                let len = timer.ops.len();
                classes.push(timer.ops);
                class_of.push(c);
                // Ranks of one SPMD body record similar-length streams;
                // presizing the replacement scratch skips the
                // realloc-and-copy ladder on O(n·p)-op recordings.
                scratch = Vec::with_capacity(len);
            }
        }
    }
    telemetry::add_record_wall_ns(record_started.elapsed().as_nanos() as u64);
    SpmdProgram { p, results, classes, class_collectives, class_of, lockstep: OnceLock::new() }
}

impl<R> SpmdProgram<R> {
    /// Number of ranks in the recording.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Number of distinct rank classes (≤ [`size`](Self::size); equal
    /// only when no two ranks share both op stream and node speed).
    pub fn distinct_classes(&self) -> usize {
        self.classes.len()
    }

    /// The recording's lockstep phase plan (or the analyzer's rejection
    /// reason), computed once on first use.
    fn lockstep_result(&self) -> &Result<LockstepProgram, FallbackReason> {
        self.lockstep.get_or_init(|| analytic::analyze(self.p, &self.classes, &self.class_of))
    }

    /// The recording's lockstep phase plan, computed once on first use.
    fn lockstep_plan(&self) -> Option<&LockstepProgram> {
        self.lockstep_result().as_ref().ok()
    }

    /// True when the recording has the lockstep phase structure the
    /// analytic evaluator accepts (see [`mod@analytic`]).
    pub fn is_lockstep(&self) -> bool {
        self.lockstep_plan().is_some()
    }

    /// Why the lockstep analyzer rejected this recording, or `None`
    /// when it is lockstep. Forces the (cached) structure check.
    pub fn fallback_reason(&self) -> Option<FallbackReason> {
        self.lockstep_result().as_ref().err().copied()
    }

    /// Phase 2 of the fast engine: prices the recording against
    /// `network`, bit-identical to [`run_spmd_fast`] on the same body.
    /// `cluster` must be the recording's cluster (or one of identical
    /// size — per-rank speeds are re-read from it).
    ///
    /// Lockstep recordings are evaluated analytically (see
    /// [`mod@analytic`]) unless disabled via [`set_analytic_enabled`];
    /// everything else takes the event-driven ready-queue scheduler.
    /// The two paths are bit-identical.
    pub fn simulate<N: NetworkModel>(&self, cluster: &ClusterSpec, network: &N) -> SpmdOutcome<R>
    where
        R: Clone,
    {
        if analytic_enabled() {
            match self.lockstep_result() {
                Ok(plan) => {
                    return self.replay_analytic(plan, cluster, network, self.results.clone())
                }
                Err(reason) => telemetry::record_fallback(*reason),
            }
            return self.replay(
                cluster,
                network,
                false,
                None,
                EventDrivenMode::Fallback,
                self.results.clone(),
            );
        }
        self.replay(cluster, network, false, None, EventDrivenMode::Forced, self.results.clone())
    }

    /// [`simulate`](Self::simulate), forced onto the event-driven
    /// ready-queue scheduler regardless of the global analytic toggle —
    /// the reference path equivalence tests and benches compare against.
    pub fn simulate_event_driven<N: NetworkModel>(
        &self,
        cluster: &ClusterSpec,
        network: &N,
    ) -> SpmdOutcome<R>
    where
        R: Clone,
    {
        self.replay(cluster, network, false, None, EventDrivenMode::Forced, self.results.clone())
    }

    /// Analytic evaluation of the recording, or `None` when the
    /// lockstep analyzer rejected its shape (ignores the global
    /// toggle). Bit-identical to
    /// [`simulate_event_driven`](Self::simulate_event_driven) whenever
    /// it returns `Some`.
    pub fn simulate_analytic<N: NetworkModel>(
        &self,
        cluster: &ClusterSpec,
        network: &N,
    ) -> Option<SpmdOutcome<R>>
    where
        R: Clone,
    {
        let plan = self.lockstep_plan()?;
        Some(self.replay_analytic(plan, cluster, network, self.results.clone()))
    }

    fn replay_analytic<N: NetworkModel>(
        &self,
        plan: &LockstepProgram,
        cluster: &ClusterSpec,
        network: &N,
        results: Vec<R>,
    ) -> SpmdOutcome<R> {
        assert_eq!(
            cluster.size(),
            self.p,
            "cluster size disagrees with the recording's rank count"
        );
        let simulate_started = std::time::Instant::now();
        let ranks = plan.evaluate(cluster, network, &self.classes, &self.class_of);
        telemetry::add_simulate_wall_ns(simulate_started.elapsed().as_nanos() as u64);
        let mut report =
            EngineReport::new(EnginePath::Analytic, self.p as u64, self.classes.len() as u64);
        report.collective_events = plan.collective_ops;
        report.p2p_events = plan.p2p_ops;
        telemetry::record_simulation(&report);
        outcome_from_ranks(ranks, results)
    }

    fn replay<N: NetworkModel>(
        &self,
        cluster: &ClusterSpec,
        network: &N,
        tracing: bool,
        faults: Option<&FaultPlan>,
        mode: EventDrivenMode,
        results: Vec<R>,
    ) -> SpmdOutcome<R> {
        let p = self.p;
        assert_eq!(cluster.size(), p, "cluster size disagrees with the recording's rank count");
        let simulate_started = std::time::Instant::now();

        let mut ranks: Vec<SimRank> =
            (0..p).map(|id| SimRank::new(id, cluster, faults.is_some())).collect();
        if tracing {
            // Presize each trace for the common case of at most two
            // records per op (a Wait plus the op itself); fault-path
            // retries can still grow past the reservation.
            for rank in ranks.iter_mut() {
                rank.trace.records.reserve(2 * self.classes[self.class_of[rank.id]].len());
            }
        }
        let slot_cap = self.class_collectives.iter().copied().max().unwrap_or(0) as usize;
        let mut slots = Vec::new();
        slots.resize_with(slot_cap, || None);
        let mut shared = SimShared {
            p,
            network,
            faults,
            tracing,
            mailboxes: (0..p).map(|_| VecDeque::new()).collect(),
            mailbox_waiting: vec![false; p],
            slots,
            live: 0,
            woken: Vec::new(),
            wait_link: vec![NO_WAITER; p],
            barrier_pool: Vec::new(),
            gather_pool: Vec::new(),
            barrier_cost: SimTime::from_secs(network.barrier_time(p)),
        };

        // Indexed ready-queue run-until-blocked scheduler. Every rank's
        // virtual-time arithmetic depends only on message/slot contents,
        // never on execution order — the same argument that makes the
        // threaded runtime scheduling-independent — so visiting only
        // runnable ranks (instead of sweeping all p per round) yields
        // bit-identical clocks, splits, traces, and retry charges.
        let mut ready: VecDeque<usize> = (0..p).collect();
        let mut queued = vec![true; p];
        let mut finished = 0usize;
        // Telemetry: per-replay locals, flushed once at the end so the
        // hot loop touches no shared state.
        let mut parks = 0u64;
        let mut wakes = 0u64;
        let mut p2p_events = 0u64;
        let mut collective_events = 0u64;
        while let Some(r) = ready.pop_front() {
            queued[r] = false;
            let ops = &self.classes[self.class_of[r]];
            loop {
                let pc = ranks[r].pc;
                if pc >= ops.len() {
                    finished += 1;
                    break;
                }
                match shared.exec(&mut ranks[r], &ops[pc]) {
                    Step::Progress => {
                        match ops[pc] {
                            // Recovery ops are local like compute:
                            // neither p2p nor collective events.
                            Op::Compute { .. }
                            | Op::Checkpoint { .. }
                            | Op::Detect { .. }
                            | Op::Recover { .. } => {}
                            Op::Send { .. } | Op::Recv { .. } => p2p_events += 1,
                            _ => collective_events += 1,
                        }
                        ranks[r].pc += 1;
                    }
                    Step::Blocked => {
                        parks += 1;
                        break;
                    }
                }
            }
            for w in shared.woken.drain(..) {
                wakes += 1;
                if !queued[w] {
                    queued[w] = true;
                    ready.push_back(w);
                }
            }
        }
        assert!(
            finished == p,
            "fast-engine deadlock: no rank can progress (mismatched sends/receives \
             or collective schedules)"
        );

        // Same protocol-hygiene checks as the threaded runtime.
        for (id, mb) in shared.mailboxes.iter().enumerate() {
            assert!(
                mb.is_empty(),
                "rank {id} finished with {} undelivered message(s) in its mailbox",
                mb.len()
            );
        }
        assert_eq!(shared.live, 0, "collective slots leaked — ranks disagreed on collective count");

        telemetry::add_simulate_wall_ns(simulate_started.elapsed().as_nanos() as u64);
        let mut report =
            EngineReport::new(EnginePath::EventDriven(mode), p as u64, self.classes.len() as u64);
        report.parks = parks;
        report.wakes = wakes;
        report.p2p_events = p2p_events;
        report.collective_events = collective_events;
        for rank in &ranks {
            report.retry_events += rank.retry_events;
            report.retry_attempts += rank.retry_attempts;
            report.retry_charge_us += rank.retry_us;
        }
        telemetry::record_simulation(&report);

        outcome_from_ranks(ranks, results)
    }
}

/// Collapses final per-rank simulation states into an [`SpmdOutcome`]
/// (shared by the scheduler and the analytic evaluator).
fn outcome_from_ranks<R>(mut ranks: Vec<SimRank>, results: Vec<R>) -> SpmdOutcome<R> {
    let p = ranks.len();
    let mut times = Vec::with_capacity(p);
    let mut compute_times = Vec::with_capacity(p);
    let mut comm_times = Vec::with_capacity(p);
    let mut wait_times = Vec::with_capacity(p);
    let mut traces = Vec::with_capacity(p);
    for rank in &mut ranks {
        times.push(rank.clock);
        compute_times.push(rank.compute_time);
        comm_times.push(rank.comm_time);
        wait_times.push(rank.wait_time);
        traces.push(std::mem::take(&mut rank.trace));
    }
    SpmdOutcome { results, times, compute_times, comm_times, wait_times, traces }
}

fn run_spmd_fast_inner<R, F, N>(
    cluster: &ClusterSpec,
    network: &N,
    body: F,
    tracing: bool,
    faults: Option<&FaultPlan>,
) -> SpmdOutcome<R>
where
    F: Fn(&mut RecordTimer) -> R,
    N: NetworkModel,
{
    let mut program = record_spmd(cluster, body);
    let results = std::mem::take(&mut program.results);
    // Traces and fault plans (retry charges, degraded-speed windows)
    // keep the event-driven scheduler, whose generality they need.
    let mode = if faults.is_some() {
        EventDrivenMode::Faulted
    } else if tracing {
        EventDrivenMode::Traced
    } else if !analytic_enabled() {
        EventDrivenMode::Forced
    } else {
        match program.lockstep_result() {
            Ok(plan) => return program.replay_analytic(plan, cluster, network, results),
            Err(reason) => {
                telemetry::record_fallback(*reason);
                EventDrivenMode::Fallback
            }
        }
    };
    program.replay(cluster, network, tracing, faults, mode, results)
}

/// Runs `body` through the fast-path engine: same clocks, overhead
/// split, and (when traced) spans as [`crate::run_spmd`] on an
/// equivalent size-only body, without threads or payloads.
///
/// `body` is invoked once per rank against a [`RecordTimer`]; its return
/// values populate `results` indexed by rank.
///
/// # Panics
/// Panics on protocol bugs exactly like the threaded runtime: leaked
/// messages, mismatched collective schedules, and (additionally) any op
/// structure where no rank can make progress.
pub fn run_spmd_fast<R, F, N>(cluster: &ClusterSpec, network: &N, body: F) -> SpmdOutcome<R>
where
    F: Fn(&mut RecordTimer) -> R,
    N: NetworkModel,
{
    run_spmd_fast_inner(cluster, network, body, false, None)
}

/// [`run_spmd_fast`] with per-rank operation tracing enabled.
pub fn run_spmd_fast_traced<R, F, N>(cluster: &ClusterSpec, network: &N, body: F) -> SpmdOutcome<R>
where
    F: Fn(&mut RecordTimer) -> R,
    N: NetworkModel,
{
    run_spmd_fast_inner(cluster, network, body, true, None)
}

/// [`run_spmd_fast`] under a deterministic [`FaultPlan`] — the fast-path
/// counterpart of [`crate::run_spmd_faulted`], bit-identical to it.
///
/// # Panics
/// Panics if `plan` declares node deaths (resolve them first via
/// [`FaultPlan::surviving_cluster`] / [`FaultPlan::for_survivors`]), and
/// when a send exhausts its retry budget.
pub fn run_spmd_fast_faulted<R, F, N>(
    cluster: &ClusterSpec,
    network: &N,
    plan: &FaultPlan,
    body: F,
) -> SpmdOutcome<R>
where
    F: Fn(&mut RecordTimer) -> R,
    N: NetworkModel,
{
    assert!(
        plan.deaths().is_empty(),
        "node deaths must be resolved before launch (surviving_cluster/for_survivors)"
    );
    run_spmd_fast_inner(cluster, network, body, false, Some(plan))
}

/// [`run_spmd_fast_faulted`] with per-rank operation tracing enabled.
pub fn run_spmd_fast_faulted_traced<R, F, N>(
    cluster: &ClusterSpec,
    network: &N,
    plan: &FaultPlan,
    body: F,
) -> SpmdOutcome<R>
where
    F: Fn(&mut RecordTimer) -> R,
    N: NetworkModel,
{
    assert!(
        plan.deaths().is_empty(),
        "node deaths must be resolved before launch (surviving_cluster/for_survivors)"
    );
    run_spmd_fast_inner(cluster, network, body, true, Some(plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run_spmd_faulted_traced, run_spmd_traced};
    use hetsim_cluster::network::{ConstantLatency, MpichEthernet, SharedEthernet};
    use hetsim_cluster::node::NodeSpec;

    fn het3() -> ClusterSpec {
        ClusterSpec::new(
            "het3",
            vec![
                NodeSpec::synthetic("a", 90.0),
                NodeSpec::synthetic("b", 50.0),
                NodeSpec::synthetic("c", 110.0),
            ],
        )
        .unwrap()
    }

    /// A body exercising every op kind, with rank-skewed compute so
    /// waits, rendezvous, and arrival orders are all non-trivial.
    fn mixed_body<T: SpmdTimer>(t: &mut T) {
        let me = t.rank();
        let p = t.size();
        t.compute_flops(1e6 * (me + 1) as f64);
        if p > 1 {
            if me == 0 {
                for peer in 1..p {
                    t.send_count(peer, Tag(5), 17 + peer);
                }
            } else {
                t.recv_count(0, Tag(5), 17 + me);
            }
        }
        t.barrier();
        t.broadcast_count(p - 1, 33);
        t.compute_flops(2.5e5 * (p - me) as f64);
        t.gather_count(0, 3 * me + 1);
        t.allgather_count(me + 2);
        if p > 1 {
            if me == p - 1 {
                t.send_count(0, Tag(9), 4);
            } else if me == 0 {
                t.recv_count(p - 1, Tag(9), 4);
            }
        }
        t.barrier();
    }

    fn assert_outcomes_match(fast: &SpmdOutcome<()>, threaded: &SpmdOutcome<()>) {
        assert_eq!(fast.times, threaded.times, "clocks");
        assert_eq!(fast.compute_times, threaded.compute_times, "compute");
        assert_eq!(fast.comm_times, threaded.comm_times, "comm");
        assert_eq!(fast.wait_times, threaded.wait_times, "wait");
        assert_eq!(fast.traces, threaded.traces, "traces");
    }

    #[test]
    fn fast_matches_threaded_on_mixed_program() {
        let cluster = het3();
        let net = SharedEthernet::new(0.3e-3, 1.25e7);
        let fast = run_spmd_fast_traced(&cluster, &net, mixed_body);
        let threaded = run_spmd_traced(&cluster, &net, |r| mixed_body(r));
        assert_outcomes_match(&fast, &threaded);
    }

    fn check_network<N: NetworkModel>(cluster: &ClusterSpec, net: &N) {
        let fast = run_spmd_fast_traced(cluster, net, mixed_body);
        let threaded = run_spmd_traced(cluster, net, |r| mixed_body(r));
        assert_outcomes_match(&fast, &threaded);
    }

    #[test]
    fn fast_matches_threaded_across_networks() {
        let cluster = het3();
        check_network(&cluster, &SharedEthernet::new(1e-3, 1e6));
        check_network(&cluster, &MpichEthernet::new(0.2e-3, 1e8));
        check_network(&cluster, &ConstantLatency::new(2e-3));
    }

    #[test]
    fn fast_matches_threaded_under_faults() {
        let cluster = het3();
        let net = SharedEthernet::new(0.3e-3, 1.25e7);
        let plan = FaultPlan::new(7).with_straggler(1, 0.4).with_link_drops(250);
        let fast = run_spmd_fast_faulted_traced(&cluster, &net, &plan, mixed_body);
        let threaded = run_spmd_faulted_traced(&cluster, &net, &plan, |r| mixed_body(r));
        assert_outcomes_match(&fast, &threaded);
        let retries = fast
            .traces
            .iter()
            .flat_map(|t| t.records.iter())
            .filter(|r| r.kind == OpKind::Retry)
            .count();
        assert!(retries > 0, "a 25% drop rate over this program must hit at least once");
    }

    #[test]
    fn fast_matches_threaded_on_single_rank() {
        let cluster = ClusterSpec::homogeneous(1, 80.0);
        let net = SharedEthernet::new(1e-3, 1e7);
        let fast = run_spmd_fast_traced(&cluster, &net, mixed_body);
        let threaded = run_spmd_traced(&cluster, &net, |r| mixed_body(r));
        assert_outcomes_match(&fast, &threaded);
        assert_eq!(fast.makespan(), fast.compute_times[0], "p = 1 collectives are free");
    }

    #[test]
    fn fast_empty_fault_plan_is_bit_identical_to_unfaulted() {
        let cluster = het3();
        let net = SharedEthernet::new(0.3e-3, 1.25e7);
        let plan = FaultPlan::new(123);
        let base = run_spmd_fast(&cluster, &net, mixed_body);
        let faulted = run_spmd_fast_faulted(&cluster, &net, &plan, mixed_body);
        assert_eq!(base.times, faulted.times);
        assert_eq!(base.comm_times, faulted.comm_times);
    }

    #[test]
    fn fast_results_are_record_phase_returns() {
        let cluster = ClusterSpec::homogeneous(4, 50.0);
        let net = ConstantLatency::new(1e-3);
        let outcome = run_spmd_fast(&cluster, &net, |t| {
            t.barrier();
            t.rank() * 10
        });
        assert_eq!(outcome.results, vec![0, 10, 20, 30]);
    }

    #[test]
    fn fast_engine_is_deterministic() {
        let cluster = het3();
        let net = MpichEthernet::new(0.2e-3, 1e8);
        let run = || run_spmd_fast_traced(&cluster, &net, mixed_body);
        let a = run();
        let b = run();
        assert_eq!(a.times, b.times);
        assert_eq!(a.traces, b.traces);
    }

    #[test]
    fn identical_ranks_share_one_recording() {
        let cluster = ClusterSpec::homogeneous(6, 50.0);
        let program: SpmdProgram<()> = record_spmd(&cluster, |t| {
            t.compute_flops(1e5);
            t.barrier();
        });
        assert_eq!(program.size(), 6);
        assert_eq!(program.distinct_classes(), 1);
    }

    #[test]
    fn distinct_speeds_split_classes_even_with_identical_ops() {
        let cluster = het3();
        let program: SpmdProgram<()> = record_spmd(&cluster, |t| t.barrier());
        assert_eq!(program.distinct_classes(), 3);
    }

    /// Two classes (one sender, p − 1 identical receivers) on a
    /// homogeneous cluster — the Sunwulf shape in miniature.
    fn two_class_body<T: SpmdTimer>(t: &mut T) {
        let p = t.size();
        if t.rank() == 0 {
            t.compute_flops(4e5);
            for peer in 1..p {
                t.send_count(peer, Tag(3), 64);
            }
        } else {
            t.compute_flops(4e5);
            t.recv_count(0, Tag(3), 64);
        }
    }

    #[test]
    fn shared_recordings_keep_per_rank_clocks() {
        let cluster = ClusterSpec::homogeneous(5, 80.0);
        let net = MpichEthernet::new(0.3e-3, 1e8);
        let program = record_spmd(&cluster, two_class_body);
        assert_eq!(program.distinct_classes(), 2);
        let fast: SpmdOutcome<()> = program.simulate(&cluster, &net);
        let threaded = crate::runtime::run_spmd(&cluster, &net, |r| two_class_body(r));
        assert_eq!(fast.times, threaded.times, "clocks");
        assert_eq!(fast.comm_times, threaded.comm_times, "comm");
        assert_eq!(fast.wait_times, threaded.wait_times, "wait");
        // Receivers share one recording but their arrivals serialize at
        // the sender, so their clocks must still differ.
        assert!(fast.times[1] < fast.times[4], "shared class must not collapse clocks");
    }

    #[test]
    fn simulate_replays_a_recording_repeatedly() {
        let cluster = het3();
        let net = MpichEthernet::new(0.2e-3, 1e8);
        let program = record_spmd(&cluster, mixed_body);
        let a: SpmdOutcome<()> = program.simulate(&cluster, &net);
        let b: SpmdOutcome<()> = program.simulate(&cluster, &net);
        let direct = run_spmd_fast(&cluster, &net, mixed_body);
        assert_eq!(a.times, b.times);
        assert_eq!(a.times, direct.times);
        assert_eq!(a.comm_times, direct.comm_times);
    }

    #[test]
    fn mixed_program_is_lockstep_and_analytic_matches_event_driven() {
        let cluster = het3();
        let net = MpichEthernet::new(0.2e-3, 1e8);
        let program: SpmdProgram<()> = record_spmd(&cluster, mixed_body);
        assert!(program.is_lockstep(), "mixed_body alternates collectives with closed p2p");
        let analytic = program.simulate_analytic(&cluster, &net).expect("lockstep");
        let event = program.simulate_event_driven(&cluster, &net);
        assert_eq!(analytic.times, event.times, "clocks");
        assert_eq!(analytic.compute_times, event.compute_times, "compute");
        assert_eq!(analytic.comm_times, event.comm_times, "comm");
        assert_eq!(analytic.wait_times, event.wait_times, "wait");
    }

    #[test]
    fn shared_class_program_is_lockstep_and_analytic_matches() {
        let cluster = ClusterSpec::homogeneous(5, 80.0);
        let net = MpichEthernet::new(0.3e-3, 1e8);
        let program: SpmdProgram<()> = record_spmd(&cluster, two_class_body);
        assert!(program.is_lockstep());
        let analytic = program.simulate_analytic(&cluster, &net).expect("lockstep");
        let event = program.simulate_event_driven(&cluster, &net);
        assert_eq!(analytic.times, event.times);
        assert_eq!(analytic.comm_times, event.comm_times);
        assert_eq!(analytic.wait_times, event.wait_times);
    }

    /// A valid program the analyzer must *reject*: the message is sent
    /// before a barrier and received after it, so the p2p batch cannot
    /// quiesce at the collective boundary.
    fn crossing_body<T: SpmdTimer>(t: &mut T) {
        if t.rank() == 0 {
            t.send_count(1, Tag(7), 5);
        }
        t.barrier();
        if t.rank() == 1 {
            t.recv_count(0, Tag(7), 5);
        }
    }

    #[test]
    fn message_crossing_a_barrier_falls_back_to_the_scheduler() {
        let cluster = ClusterSpec::homogeneous(2, 50.0);
        let net = ConstantLatency::new(1e-3);
        let program: SpmdProgram<()> = record_spmd(&cluster, crossing_body);
        assert!(!program.is_lockstep(), "in-flight message across a barrier is not lockstep");
        assert_eq!(program.fallback_reason(), Some(FallbackReason::SendAcrossSync));
        assert!(program.simulate_analytic(&cluster, &net).is_none());
        // The auto-selecting path must still price it, via fallback,
        // matching the scheduler and the threaded oracle exactly.
        let auto = program.simulate(&cluster, &net);
        let event = program.simulate_event_driven(&cluster, &net);
        assert_eq!(auto.times, event.times);
        assert_eq!(auto.comm_times, event.comm_times);
        let threaded = crate::runtime::run_spmd(&cluster, &net, |r| crossing_body(r));
        assert_eq!(auto.times, threaded.times);
        assert_eq!(auto.comm_times, threaded.comm_times);
        assert_eq!(auto.wait_times, threaded.wait_times);
    }

    #[test]
    fn disabling_analytic_forces_the_scheduler_with_identical_results() {
        let cluster = het3();
        let net = MpichEthernet::new(0.2e-3, 1e8);
        let program: SpmdProgram<()> = record_spmd(&cluster, mixed_body);
        let on = program.simulate(&cluster, &net);
        set_analytic_enabled(false);
        let off = program.simulate(&cluster, &net);
        set_analytic_enabled(true);
        assert_eq!(on.times, off.times);
        assert_eq!(on.compute_times, off.compute_times);
        assert_eq!(on.comm_times, off.comm_times);
        assert_eq!(on.wait_times, off.wait_times);
    }

    #[test]
    fn misaligned_collective_schedules_are_rejected() {
        // Rank 0 reaches a barrier no one else joins: the analyzer
        // must refuse (the scheduler owns the deadlock diagnostic).
        let cluster = ClusterSpec::homogeneous(2, 50.0);
        let program: SpmdProgram<()> = record_spmd(&cluster, |t| {
            if t.rank() == 0 {
                t.barrier();
            }
        });
        assert!(!program.is_lockstep());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn mismatched_recv_deadlocks_with_diagnostic() {
        let cluster = ClusterSpec::homogeneous(2, 50.0);
        let net = ConstantLatency::new(1e-3);
        run_spmd_fast(&cluster, &net, |t| {
            if t.rank() == 1 {
                // Nobody ever sends this.
                t.recv_count(0, Tag(99), 1);
            }
        });
    }

    #[test]
    #[should_panic(expected = "undelivered message")]
    fn leaked_message_is_detected() {
        let cluster = ClusterSpec::homogeneous(2, 50.0);
        let net = ConstantLatency::new(1e-3);
        run_spmd_fast(&cluster, &net, |t| {
            if t.rank() == 0 {
                t.send_count(1, Tag(1), 3);
            }
        });
    }

    /// A body exercising every failure-recovery op between ordinary
    /// collectives. Rank 0 recovers nothing (both operands zero — no
    /// spans); the others replay lost work and move repartition bytes.
    fn recovery_body<T: SpmdTimer>(t: &mut T) {
        let me = t.rank();
        t.compute_flops(5e5 * (me + 1) as f64);
        t.checkpoint(4096 * (me as u64 + 1));
        t.barrier();
        t.compute_flops(3e5);
        t.detect_failure(0.05);
        t.recover(2.5e5 * me as f64, 1024 * me as u64);
        t.barrier();
    }

    #[test]
    fn fast_matches_threaded_on_recovery_ops() {
        let cluster = het3();
        let net = SharedEthernet::new(0.3e-3, 1.25e7);
        let fast = run_spmd_fast_traced(&cluster, &net, recovery_body);
        let threaded = run_spmd_traced(&cluster, &net, |r| recovery_body(r));
        assert_outcomes_match(&fast, &threaded);
    }

    #[test]
    fn fast_matches_threaded_on_recovery_ops_under_faults() {
        let cluster = het3();
        let net = SharedEthernet::new(0.3e-3, 1.25e7);
        let plan = FaultPlan::new(11).with_straggler(2, 0.5);
        let fast = run_spmd_fast_faulted_traced(&cluster, &net, &plan, recovery_body);
        let threaded = run_spmd_faulted_traced(&cluster, &net, &plan, |r| recovery_body(r));
        assert_outcomes_match(&fast, &threaded);
    }

    #[test]
    fn recovery_ops_reject_the_lockstep_analyzer_with_a_typed_reason() {
        let cluster = het3();
        let net = MpichEthernet::new(0.2e-3, 1e8);
        let program: SpmdProgram<()> = record_spmd(&cluster, recovery_body);
        assert!(!program.is_lockstep(), "recovery ops have no lockstep phase grammar");
        assert_eq!(program.fallback_reason(), Some(FallbackReason::RecoveryOps));
        assert!(program.simulate_analytic(&cluster, &net).is_none());
        // The auto-selecting path still prices it via fallback, matching
        // the scheduler and the threaded oracle exactly.
        let auto = program.simulate(&cluster, &net);
        let event = program.simulate_event_driven(&cluster, &net);
        assert_eq!(auto.times, event.times);
        assert_eq!(auto.comm_times, event.comm_times);
        let threaded = crate::runtime::run_spmd(&cluster, &net, |r| recovery_body(r));
        assert_eq!(auto.times, threaded.times);
        assert_eq!(auto.comm_times, threaded.comm_times);
        assert_eq!(auto.wait_times, threaded.wait_times);
    }

    #[test]
    fn recovery_spans_are_typed_and_zero_operands_are_omitted() {
        let cluster = het3();
        let net = ConstantLatency::new(1e-3);
        let outcome = run_spmd_fast_traced(&cluster, &net, recovery_body);
        let count =
            |r: usize, k: OpKind| outcome.traces[r].records.iter().filter(|t| t.kind == k).count();
        for r in 0..3 {
            assert_eq!(count(r, OpKind::Checkpoint), 1, "rank {r} checkpoints once");
            assert_eq!(count(r, OpKind::Detect), 1, "rank {r} runs the detector once");
        }
        // Rank 0 recovers nothing: both recovery spans omitted.
        assert_eq!(count(0, OpKind::LostWork), 0);
        assert_eq!(count(0, OpKind::Rebalance), 0);
        assert_eq!(count(1, OpKind::LostWork), 1);
        assert_eq!(count(1, OpKind::Rebalance), 1);
        assert_eq!(count(2, OpKind::LostWork), 1);
        assert_eq!(count(2, OpKind::Rebalance), 1);
    }

    #[test]
    #[should_panic(expected = "deaths must be resolved before launch")]
    fn unresolved_deaths_are_rejected() {
        let cluster = ClusterSpec::homogeneous(2, 50.0);
        let plan = FaultPlan::new(0).with_death(1, SimTime::ZERO);
        run_spmd_fast_faulted(&cluster, &ConstantLatency::new(1e-3), &plan, |_t| {});
    }
}
