//! Class-aggregated evaluation: one representative clock per rank
//! class plus analytic fan-out corrections (DESIGN.md §13).
//!
//! The lockstep evaluator (`analytic.rs`) removed the *scheduler* but
//! kept O(P) state — one [`SimRank`] per rank, every fan-out walked
//! leg by leg. This module removes the per-rank walk too. Ranks that
//! share a recording class (identical op stream **and** identical
//! marked speed — exactly the dedup criterion of
//! [`super::record_spmd`]) are priced through a single representative:
//! the class's **last member in rank order** (its "tail"). Collectives
//! become O(classes) folds, and hub fan-outs collapse to closed-form
//! repeated-addition chains, so evaluating a plan costs
//! O(classes + phases), independent of P.
//!
//! # Why the tail is enough, and exact
//!
//! The invariant is *class monotonicity*: within a class, member
//! clocks are non-decreasing in rank order. It holds at launch (all
//! zero) and every phase preserves it:
//!
//! - **Compute** adds the same `fl`-increments to every member
//!   (same flops, same speed); `fl(x + c)` is monotone in `x`.
//! - **Barrier** exits every rank at one uniform clock.
//! - **Broadcast** exits receivers at `max(clock, departure)` —
//!   monotone in `clock`.
//! - **Gather** advances each leaf by one class-constant p2p cost and
//!   needs only the *maximum* deposit clock at the root.
//! - **Hub scatter** delivers messages whose arrivals are
//!   non-decreasing in send order; the plan verifies delivery order
//!   follows member rank order within each class
//!   ([`FallbackReason::ClassOrderDiverged`] otherwise), so
//!   `max(clock, arrival)` stays monotone.
//!
//! Under the invariant, `max` over a class equals its tail, so every
//! rendezvous fold (`max` over all ranks, in rank order) equals the
//! fold over class tails — the same `f64` values, hence bit-equal.
//! Costs are class-constant only when the network prices transfers
//! by size alone; models that price endpoints individually make
//! [`AggregatePlan::evaluate`] return
//! [`FallbackReason::UnclassedNetwork`].
//!
//! # Fan-out corrections
//!
//! The two O(P) leg walks left are closed:
//!
//! - A hub scatter's sender clock is a chain of `fl`-additions, one
//!   cost per destination; runs of equal-size sends collapse through
//!   [`repeat_add`] (exact batched IEEE-754 repeated addition), with
//!   the chain sampled at each class tail's slot via the same gadget
//!   (splitting a `repeat_add` chain at any point composes exactly).
//! - A gather's serialization cost comes from
//!   [`NetworkModel::gather_time_classed`] over the run-length-encoded
//!   contribution sizes — bit-identical to the per-rank
//!   `gather_time` by each model's own equality tests.
//!
//! Everything else is the same float-op sequence the per-rank
//! evaluator performs, restricted to tails. The three-way
//! `engine_equivalence` proptests pin the aggregated makespan and
//! per-class tail clocks against both the event-driven engine and the
//! threaded oracle.

use super::analytic::{P2pStep, Phase};
use super::{Op, SpmdProgram};
use crate::telemetry::{self, EnginePath, EngineReport, FallbackReason};
use hetsim_cluster::cluster::ClusterSpec;
use hetsim_cluster::flrepeat::repeat_add;
use hetsim_cluster::network::NetworkModel;
use hetsim_cluster::time::SimTime;

/// A recording's class-aggregated evaluation plan.
///
/// Built once in O(P) by [`SpmdProgram::aggregate_plan`]; evaluated
/// against any size-priced network in O(classes + phases) by
/// [`AggregatePlan::evaluate`]. The same plan can be re-priced under
/// several network models, which is how the `megascale` bench
/// separates build cost from per-evaluation cost.
#[derive(Debug)]
pub struct AggregatePlan {
    p: usize,
    /// Members per class (aggregation multiplicity).
    members: Vec<u64>,
    /// Marked speed per class, flop/s.
    speed_flops: Vec<f64>,
    phases: Vec<AggPhase>,
    /// Per-rank op counts one evaluation covers (telemetry).
    collective_ops: u64,
    p2p_ops: u64,
}

/// One aggregated phase: exit tails are a pure function of entry tails.
#[derive(Debug)]
enum AggPhase {
    /// Per-class compute runs (the per-op flops, charged individually —
    /// same `fl` sequence as one member walking its op list).
    Compute {
        flops: Vec<Vec<f64>>,
    },
    Barrier,
    /// Broadcast of `count` elements from the (singleton) root class;
    /// allgather-derived counts are resolved statically at build time.
    Bcast {
        root_class: u32,
        count: usize,
    },
    Gather {
        root_class: u32,
        /// `(bytes, count)` rank-order RLE of contribution sizes.
        size_runs: Vec<(u64, u64)>,
        /// Index of the run containing the root rank.
        root_run: usize,
        /// Per class: own contribution wire bytes (root entry unused).
        leaf_bytes: Vec<u64>,
    },
    /// A single-hub scatter: every send originates from the singleton
    /// hub class; arrivals are sampled at each receiving class's tail.
    Scatter {
        hub_class: u32,
        /// `(bytes, count)` send-order RLE of the hub's send sizes.
        send_runs: Vec<(u64, u64)>,
        /// `(slot, class)` tail sample points, ascending by slot: the
        /// hub-chain value after send `slot` is class `class`'s last
        /// arrival.
        samples: Vec<(u64, u32)>,
    },
}

/// The result of one aggregated evaluation. Communication/wait splits
/// are per-member quantities the tail cannot represent, so the outcome
/// is the makespan plus the per-class tail clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateOutcome {
    /// `max` over every rank's final clock — bit-identical to the
    /// maximum of [`crate::runtime::SpmdOutcome::times`].
    pub makespan: SimTime,
    /// Final clock of each class's last member, in class order.
    pub class_times: Vec<SimTime>,
    /// Members per class, aligned with `class_times`.
    pub class_members: Vec<u64>,
    /// Total ranks the evaluation priced.
    pub ranks: u64,
}

/// Rank-order RLE of an iterator of values.
fn rle<T: PartialEq, I: Iterator<Item = T>>(values: I) -> Vec<(T, u64)> {
    let mut runs: Vec<(T, u64)> = Vec::new();
    for v in values {
        match runs.last_mut() {
            Some((last, n)) if *last == v => *n += 1,
            _ => runs.push((v, 1)),
        }
    }
    runs
}

impl<R> SpmdProgram<R> {
    /// Builds the class-aggregated evaluation plan, or returns the
    /// typed reason the recording's shape cannot be aggregated. O(P)
    /// once; the plan then prices in O(classes + phases) per network.
    ///
    /// `cluster` must agree with the recording's rank classes: same
    /// size, and one marked speed per class (the recording cluster
    /// always does; a re-pricing cluster that splits a class returns
    /// [`FallbackReason::ClassOrderDiverged`]).
    pub fn aggregate_plan(&self, cluster: &ClusterSpec) -> Result<AggregatePlan, FallbackReason> {
        let p = self.p;
        assert_eq!(cluster.size(), p, "cluster size disagrees with the recording's rank count");
        let lockstep = self.lockstep_result().as_ref().map_err(|&e| e)?;
        let nc = self.classes.len();

        let mut members = vec![0u64; nc];
        let mut speed_flops = vec![0.0f64; nc];
        for (r, &c) in self.class_of.iter().enumerate() {
            let speed = cluster.nodes()[r].marked_speed_flops();
            if members[c] == 0 {
                speed_flops[c] = speed;
            } else if speed.to_bits() != speed_flops[c].to_bits() {
                // The pricing cluster assigns two speeds to one
                // recording class; the class is no longer one clock.
                return Err(FallbackReason::ClassOrderDiverged);
            }
            members[c] += 1;
        }

        // Statically resolved allgather-derived broadcast counts: the
        // packed size is `p + Σ gathered counts` of the root's most
        // recent gather, and counts are recording constants.
        let mut gather_total = vec![0usize; p];
        let mut phases = Vec::with_capacity(lockstep.phases.len());
        for phase in &lockstep.phases {
            phases.push(match phase {
                Phase::Compute { runs } => {
                    let flops = (0..nc)
                        .map(|c| {
                            let (start, end) = runs[c];
                            self.classes[c][start as usize..end as usize]
                                .iter()
                                .map(|op| {
                                    let Op::Compute { flops } = *op else {
                                        unreachable!("compute runs hold only compute ops")
                                    };
                                    flops
                                })
                                .collect()
                        })
                        .collect();
                    AggPhase::Compute { flops }
                }
                Phase::Barrier => AggPhase::Barrier,
                Phase::Bcast { root, count } => AggPhase::Bcast {
                    root_class: self.class_of[*root as usize] as u32,
                    count: *count,
                },
                Phase::BcastDerived { root } => AggPhase::Bcast {
                    root_class: self.class_of[*root as usize] as u32,
                    count: p + gather_total[*root as usize],
                },
                Phase::Gather { root, counts, sizes, .. } => {
                    let root = *root as usize;
                    gather_total[root] = counts.iter().sum();
                    let size_runs = rle(sizes.iter().copied());
                    // Locate the run containing the root rank.
                    let mut root_run = 0usize;
                    let mut covered = 0u64;
                    for (i, &(_, n)) in size_runs.iter().enumerate() {
                        if (root as u64) < covered + n {
                            root_run = i;
                            break;
                        }
                        covered += n;
                    }
                    let mut leaf_bytes = vec![0u64; nc];
                    for (r, &c) in self.class_of.iter().enumerate() {
                        leaf_bytes[c] = sizes[r];
                    }
                    AggPhase::Gather {
                        root_class: self.class_of[root] as u32,
                        size_runs,
                        root_run,
                        leaf_bytes,
                    }
                }
                Phase::P2p { steps } => self.scatter_phase(steps)?,
            });
        }

        Ok(AggregatePlan {
            p,
            members,
            speed_flops,
            phases,
            collective_ops: lockstep.collective_ops,
            p2p_ops: lockstep.p2p_ops,
        })
    }

    /// Folds a lockstep P2P batch into a hub scatter, or reports why
    /// it cannot be: sends from more than one rank (or a sending rank
    /// that also receives) are [`FallbackReason::AsymmetricP2p`], and
    /// deliveries that do not follow member rank order within a class
    /// are [`FallbackReason::ClassOrderDiverged`].
    fn scatter_phase(&self, steps: &[P2pStep]) -> Result<AggPhase, FallbackReason> {
        let mut hub: Option<u32> = None;
        let mut send_bytes: Vec<u64> = Vec::new();
        // Highest-slot message each rank receives (u64::MAX = none);
        // per-rank exits fold `max(clock, arrival)`, and arrivals are
        // non-decreasing in slot, so only the last message matters.
        let mut last_slot = vec![u64::MAX; self.p];
        for step in steps {
            match *step {
                P2pStep::Send { rank, count, .. } => {
                    if *hub.get_or_insert(rank) != rank {
                        return Err(FallbackReason::AsymmetricP2p);
                    }
                    send_bytes.push((count * 8) as u64);
                }
                P2pStep::Recv { rank, slot, .. } => {
                    if hub == Some(rank) {
                        return Err(FallbackReason::AsymmetricP2p);
                    }
                    let cell = &mut last_slot[rank as usize];
                    *cell = if *cell == u64::MAX { slot as u64 } else { (*cell).max(slot as u64) };
                }
            }
        }
        let hub = hub.ok_or(FallbackReason::AsymmetricP2p)?;
        let hub_class = self.class_of[hub as usize] as u32;

        // Tail sampling is sound only when, within each class, the
        // last-message slot increases with member rank order (the tail
        // then owns the class's latest arrival).
        let nc = self.classes.len();
        let mut class_last: Vec<Option<u64>> = vec![None; nc];
        for (r, &c) in self.class_of.iter().enumerate() {
            let slot = last_slot[r];
            if slot == u64::MAX {
                continue;
            }
            if class_last[c].is_some_and(|prev| prev >= slot) {
                return Err(FallbackReason::ClassOrderDiverged);
            }
            class_last[c] = Some(slot);
        }
        let mut samples: Vec<(u64, u32)> = class_last
            .iter()
            .enumerate()
            .filter_map(|(c, s)| s.map(|slot| (slot, c as u32)))
            .collect();
        samples.sort_unstable();
        Ok(AggPhase::Scatter { hub_class, send_runs: rle(send_bytes.into_iter()), samples })
    }

    /// Class-aggregated pricing of the recording: builds the plan and
    /// evaluates it, recording [`EnginePath::Aggregated`] telemetry on
    /// success and the typed [`FallbackReason`] on rejection (callers
    /// then fall back to [`simulate`](Self::simulate)).
    pub fn simulate_aggregated<N: NetworkModel>(
        &self,
        cluster: &ClusterSpec,
        network: &N,
    ) -> Result<AggregateOutcome, FallbackReason> {
        let result = self.aggregate_plan(cluster).and_then(|plan| {
            let simulate_started = std::time::Instant::now();
            let outcome = plan.evaluate(network);
            telemetry::add_simulate_wall_ns(simulate_started.elapsed().as_nanos() as u64);
            if outcome.is_ok() {
                let mut report = EngineReport::new(
                    EnginePath::Aggregated,
                    self.p as u64,
                    self.classes.len() as u64,
                );
                report.collective_events = plan.collective_ops;
                report.p2p_events = plan.p2p_ops;
                telemetry::record_simulation(&report);
            }
            outcome
        });
        if let Err(reason) = result {
            telemetry::record_fallback(reason);
        }
        result
    }
}

/// Constructs an [`AggregatePlan`] directly from a class description —
/// no recording, no O(P) pass. This is the entry point for *synthetic*
/// plans whose phase structure is known statically (the kernels crate's
/// mega-scale closed forms): the caller lists the classes in rank order
/// (`members[c]` contiguous ranks at `speed_flops[c]`) and appends
/// phases; [`build`](Self::build) yields a plan whose evaluation
/// performs exactly the float-op sequence the per-rank engines would,
/// restricted to class tails.
///
/// The builder trusts its caller on the monotonicity contract the
/// recording path verifies: phases must keep member clocks
/// non-decreasing in rank order within every class (all the phase
/// shapes offered here do).
#[derive(Debug)]
pub struct AggregatePlanBuilder {
    p: usize,
    members: Vec<u64>,
    speed_flops: Vec<f64>,
    phases: Vec<AggPhase>,
    collective_ops: u64,
    p2p_ops: u64,
}

impl AggregatePlanBuilder {
    /// Starts a plan over `members[c]` contiguous ranks per class at
    /// `speed_flops[c]` flop/s. Panics on empty or mismatched inputs,
    /// non-positive speeds, or zero-member classes.
    pub fn new(members: &[u64], speed_flops: &[f64]) -> AggregatePlanBuilder {
        assert!(!members.is_empty(), "a plan needs at least one class");
        assert_eq!(members.len(), speed_flops.len(), "one speed per class");
        assert!(members.iter().all(|&m| m > 0), "classes must be inhabited");
        assert!(speed_flops.iter().all(|&s| s > 0.0 && s.is_finite()), "speeds must be positive");
        let p = members.iter().map(|&m| m as usize).sum();
        AggregatePlanBuilder {
            p,
            members: members.to_vec(),
            speed_flops: speed_flops.to_vec(),
            phases: Vec::new(),
            collective_ops: 0,
            p2p_ops: 0,
        }
    }

    fn nc(&self) -> usize {
        self.members.len()
    }

    /// One compute op of `flops[c]` floating-point operations per class.
    pub fn compute(&mut self, flops: Vec<f64>) -> &mut Self {
        assert_eq!(flops.len(), self.nc(), "one flop count per class");
        // Merge into a preceding compute phase the way the lockstep
        // analyzer coalesces maximal compute runs.
        if let Some(AggPhase::Compute { flops: runs }) = self.phases.last_mut() {
            for (run, f) in runs.iter_mut().zip(flops) {
                run.push(f);
            }
        } else {
            self.phases
                .push(AggPhase::Compute { flops: flops.into_iter().map(|f| vec![f]).collect() });
        }
        self
    }

    /// A full barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.collective_ops += self.p as u64;
        self.phases.push(AggPhase::Barrier);
        self
    }

    /// A broadcast of `count` elements from `root_class`.
    pub fn bcast(&mut self, root_class: usize, count: usize) -> &mut Self {
        assert!(root_class < self.nc());
        self.collective_ops += self.p as u64;
        self.phases.push(AggPhase::Bcast { root_class: root_class as u32, count });
        self
    }

    /// A gather of `class_counts[c]` elements per member of class `c`
    /// to (the first member of) `root_class`.
    pub fn gather(&mut self, root_class: usize, class_counts: &[usize]) -> &mut Self {
        assert_eq!(class_counts.len(), self.nc(), "one count per class");
        assert!(root_class < self.nc());
        self.collective_ops += self.p as u64;
        let leaf_bytes: Vec<u64> = class_counts.iter().map(|&c| (c * 8) as u64).collect();
        // Rank-order RLE of the per-rank size vector: classes are
        // contiguous rank runs, so adjacent equal-byte classes merge.
        let mut size_runs: Vec<(u64, u64)> = Vec::new();
        let mut root_run = 0usize;
        for (c, (&bytes, &m)) in leaf_bytes.iter().zip(self.members.iter()).enumerate() {
            match size_runs.last_mut() {
                Some((last, n)) if *last == bytes => *n += m,
                _ => size_runs.push((bytes, m)),
            }
            if c == root_class {
                root_run = size_runs.len() - 1;
            }
        }
        self.phases.push(AggPhase::Gather {
            root_class: root_class as u32,
            size_runs,
            root_run,
            leaf_bytes,
        });
        self
    }

    /// A root-serialized scatter: the (singleton) `hub_class` sends
    /// `class_counts[c]` elements to every member of every other class,
    /// in rank order, back to back on its own clock.
    pub fn scatter(&mut self, hub_class: usize, class_counts: &[usize]) -> &mut Self {
        assert_eq!(class_counts.len(), self.nc(), "one count per class");
        assert_eq!(self.members[hub_class], 1, "the hub must be a singleton class");
        self.p2p_ops += 2 * (self.p as u64 - 1);
        let mut send_runs: Vec<(u64, u64)> = Vec::new();
        let mut samples: Vec<(u64, u32)> = Vec::new();
        let mut slot = 0u64;
        for (c, (&count, &m)) in class_counts.iter().zip(self.members.iter()).enumerate() {
            if c == hub_class {
                continue;
            }
            let bytes = (count * 8) as u64;
            match send_runs.last_mut() {
                Some((last, n)) if *last == bytes => *n += m,
                _ => send_runs.push((bytes, m)),
            }
            slot += m;
            samples.push((slot - 1, c as u32));
        }
        self.phases.push(AggPhase::Scatter { hub_class: hub_class as u32, send_runs, samples });
        self
    }

    /// Finalizes the plan.
    pub fn build(self) -> AggregatePlan {
        AggregatePlan {
            p: self.p,
            members: self.members,
            speed_flops: self.speed_flops,
            phases: self.phases,
            collective_ops: self.collective_ops,
            p2p_ops: self.p2p_ops,
        }
    }
}

impl AggregatePlan {
    /// Number of ranks one evaluation prices.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Number of rank classes actually walked per evaluation.
    pub fn class_count(&self) -> usize {
        self.members.len()
    }

    /// Prices the plan against `network` in O(classes + phases).
    ///
    /// Returns [`FallbackReason::UnclassedNetwork`] when the model
    /// prices endpoints individually (no per-class costs exist);
    /// otherwise the outcome's makespan and tail clocks are
    /// bit-identical to the per-rank engines on the same recording.
    pub fn evaluate<N: NetworkModel>(
        &self,
        network: &N,
    ) -> Result<AggregateOutcome, FallbackReason> {
        let nc = self.members.len();
        let mut last = vec![SimTime::ZERO; nc];
        // Hoisted once per evaluation, as both per-rank engines do.
        let barrier_cost = SimTime::from_secs(network.barrier_time(self.p));
        for phase in &self.phases {
            match phase {
                AggPhase::Compute { flops } => {
                    for (c, run) in flops.iter().enumerate() {
                        for &f in run {
                            last[c] += SimTime::from_secs(f / self.speed_flops[c]);
                        }
                    }
                }
                AggPhase::Barrier => {
                    let rendezvous = *last.iter().max().expect("classes >= 1");
                    let exit = rendezvous + barrier_cost;
                    for l in last.iter_mut() {
                        *l = exit;
                    }
                }
                AggPhase::Bcast { root_class, count } => {
                    let rc = *root_class as usize;
                    let bytes = (count * 8) as u64;
                    let cost = SimTime::from_secs(network.bcast_time(self.p, bytes));
                    let departure = last[rc] + cost;
                    for (c, l) in last.iter_mut().enumerate() {
                        *l = if c == rc { departure } else { (*l).max(departure) };
                    }
                }
                AggPhase::Gather { root_class, size_runs, root_run, leaf_bytes } => {
                    let rc = *root_class as usize;
                    // Deposit clocks fold to the class tails (root
                    // included — its class is singleton).
                    let max_entry = *last.iter().max().expect("classes >= 1");
                    let cost = network
                        .gather_time_classed(size_runs, *root_run)
                        .ok_or(FallbackReason::UnclassedNetwork)?;
                    let ready = last[rc].max(max_entry);
                    let root_exit = ready + SimTime::from_secs(cost);
                    for (c, l) in last.iter_mut().enumerate() {
                        if c != rc {
                            let leg = network
                                .p2p_time_class(leaf_bytes[c])
                                .ok_or(FallbackReason::UnclassedNetwork)?;
                            *l += SimTime::from_secs(leg);
                        }
                    }
                    last[rc] = root_exit;
                }
                AggPhase::Scatter { hub_class, send_runs, samples } => {
                    let hub = *hub_class as usize;
                    // The hub clock chains one fl-addition per send;
                    // equal-size runs batch through repeat_add, and
                    // each class tail's arrival is the chain sampled
                    // at its slot (chain splits compose exactly).
                    let mut chain = last[hub].as_secs();
                    let mut slot_base = 0u64;
                    let mut next_sample = samples.iter().peekable();
                    for &(bytes, count) in send_runs {
                        let cost = network
                            .p2p_time_class(bytes)
                            .ok_or(FallbackReason::UnclassedNetwork)?;
                        while let Some(&&(slot, c)) = next_sample.peek() {
                            if slot >= slot_base + count {
                                break;
                            }
                            let arrival = repeat_add(chain, cost, slot - slot_base + 1);
                            let c = c as usize;
                            last[c] = last[c].max(SimTime::from_secs(arrival));
                            next_sample.next();
                        }
                        chain = repeat_add(chain, cost, count);
                        slot_base += count;
                    }
                    last[hub] = SimTime::from_secs(chain);
                }
            }
        }
        let makespan = *last.iter().max().expect("classes >= 1");
        Ok(AggregateOutcome {
            makespan,
            class_times: last,
            class_members: self.members.clone(),
            ranks: self.p as u64,
        })
    }

    /// [`evaluate`](Self::evaluate) plus telemetry: records an
    /// [`EnginePath::Aggregated`] simulation (with the plan's op
    /// counts) on success and the typed fallback on rejection — the
    /// entry point for builder-made plans, which have no
    /// [`SpmdProgram`] to report through.
    pub fn evaluate_recorded<N: NetworkModel>(
        &self,
        network: &N,
    ) -> Result<AggregateOutcome, FallbackReason> {
        let simulate_started = std::time::Instant::now();
        let outcome = self.evaluate(network);
        telemetry::add_simulate_wall_ns(simulate_started.elapsed().as_nanos() as u64);
        match &outcome {
            Ok(_) => {
                let mut report = EngineReport::new(
                    EnginePath::Aggregated,
                    self.p as u64,
                    self.members.len() as u64,
                );
                report.collective_events = self.collective_ops;
                report.p2p_events = self.p2p_ops;
                telemetry::record_simulation(&report);
            }
            Err(reason) => telemetry::record_fallback(*reason),
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::super::{record_spmd, SpmdTimer};
    use super::*;
    use crate::message::Tag;
    use crate::runtime::SpmdOutcome;
    use hetsim_cluster::network::{
        ConstantLatency, JitteredNetwork, MpichEthernet, SharedEthernet, SwitchedNetwork,
    };
    use hetsim_cluster::node::NodeSpec;

    type Program = super::super::SpmdProgram<()>;

    fn het3() -> ClusterSpec {
        ClusterSpec::new(
            "het3",
            vec![
                NodeSpec::synthetic("a", 90.0),
                NodeSpec::synthetic("b", 50.0),
                NodeSpec::synthetic("c", 110.0),
            ],
        )
        .unwrap()
    }

    /// Every op kind the aggregator folds: compute, hub scatter,
    /// barrier, broadcast, gather, allgather (gather + derived bcast).
    fn body<T: SpmdTimer>(t: &mut T) {
        let me = t.rank();
        let p = t.size();
        t.compute_flops(1e6);
        if p > 1 {
            if me == 0 {
                for peer in 1..p {
                    t.send_count(peer, Tag(5), 64);
                }
            } else {
                t.recv_count(0, Tag(5), 64);
            }
        }
        t.barrier();
        t.broadcast_count(0, 33);
        t.compute_flops(2.5e5);
        t.gather_count(0, 7);
        t.allgather_count(2);
        t.barrier();
    }

    /// Checks the aggregated outcome against a per-rank outcome: the
    /// makespan is the per-rank maximum, and every class tail clock is
    /// the final clock of that class's last member — bit for bit.
    fn assert_agg_matches<R>(
        program: &super::super::SpmdProgram<R>,
        agg: &AggregateOutcome,
        per_rank: &SpmdOutcome<R>,
    ) {
        assert_eq!(agg.makespan, per_rank.makespan(), "makespan");
        assert_eq!(agg.ranks as usize, program.size());
        let nc = agg.class_times.len();
        let mut tail = vec![usize::MAX; nc];
        let mut members = vec![0u64; nc];
        for (r, &c) in program.class_of.iter().enumerate() {
            tail[c] = r;
            members[c] += 1;
        }
        assert_eq!(agg.class_members, members, "class multiplicities");
        for (c, &t) in tail.iter().enumerate() {
            assert_eq!(agg.class_times[c], per_rank.times[t], "tail clock of class {c}");
        }
    }

    #[test]
    fn aggregated_matches_event_driven_across_networks() {
        for cluster in
            [het3(), ClusterSpec::homogeneous(5, 80.0), ClusterSpec::homogeneous(1, 70.0)]
        {
            let program: Program = record_spmd(&cluster, body);
            let shared = SharedEthernet::new(0.3e-3, 1.25e7);
            let mpich = MpichEthernet::new(0.2e-3, 1e8);
            let switched = SwitchedNetwork::new(0.1e-3, 1.2e7);
            let constant = ConstantLatency::new(1e-3);
            macro_rules! check {
                ($net:expr) => {
                    let agg = program.simulate_aggregated(&cluster, $net).expect("aggregatable");
                    let event = program.simulate_event_driven(&cluster, $net);
                    assert_agg_matches(&program, &agg, &event);
                };
            }
            check!(&shared);
            check!(&mpich);
            check!(&switched);
            check!(&constant);
        }
    }

    #[test]
    fn plan_builds_once_and_reprices_per_network() {
        let cluster = ClusterSpec::homogeneous(6, 80.0);
        let program: Program = record_spmd(&cluster, body);
        let plan = program.aggregate_plan(&cluster).expect("aggregatable");
        assert_eq!(plan.size(), 6);
        assert_eq!(plan.class_count(), program.distinct_classes());
        for alpha in [1e-4, 2e-4, 5e-4] {
            let net = MpichEthernet::new(alpha, 1e8);
            let agg = plan.evaluate(&net).expect("classed network");
            let event = program.simulate_event_driven(&cluster, &net);
            assert_agg_matches(&program, &agg, &event);
        }
    }

    #[test]
    fn endpoint_priced_networks_are_rejected_as_unclassed() {
        let cluster = ClusterSpec::homogeneous(4, 80.0);
        let program: Program = record_spmd(&cluster, body);
        let net = JitteredNetwork::new(MpichEthernet::new(0.2e-3, 1e8), 0.25, 99);
        assert_eq!(
            program.simulate_aggregated(&cluster, &net),
            Err(FallbackReason::UnclassedNetwork)
        );
    }

    #[test]
    fn non_lockstep_recordings_keep_their_typed_reason() {
        // Sent before the barrier, received after: not even lockstep.
        let cluster = ClusterSpec::homogeneous(2, 50.0);
        let program: Program = record_spmd(&cluster, |t| {
            if t.rank() == 0 {
                t.send_count(1, Tag(7), 5);
            }
            t.barrier();
            if t.rank() == 1 {
                t.recv_count(0, Tag(7), 5);
            }
        });
        let net = ConstantLatency::new(1e-3);
        assert_eq!(
            program.simulate_aggregated(&cluster, &net),
            Err(FallbackReason::SendAcrossSync)
        );
    }

    #[test]
    fn multi_sender_batches_are_asymmetric() {
        let cluster = ClusterSpec::homogeneous(3, 50.0);
        let program: Program = record_spmd(&cluster, |t| {
            match t.rank() {
                0 => t.send_count(2, Tag(1), 4),
                1 => t.send_count(2, Tag(2), 4),
                _ => {
                    t.recv_count(0, Tag(1), 4);
                    t.recv_count(1, Tag(2), 4);
                }
            }
            t.barrier();
        });
        let net = ConstantLatency::new(1e-3);
        assert_eq!(program.simulate_aggregated(&cluster, &net), Err(FallbackReason::AsymmetricP2p));
    }

    #[test]
    fn out_of_order_delivery_within_a_class_is_rejected() {
        // Ranks 1 and 2 share a class, but the hub serves rank 2 first:
        // the class tail no longer owns the latest arrival.
        let cluster = ClusterSpec::homogeneous(3, 50.0);
        let program: Program = record_spmd(&cluster, |t| {
            if t.rank() == 0 {
                t.send_count(2, Tag(1), 4);
                t.send_count(1, Tag(1), 4);
            } else {
                t.recv_count(0, Tag(1), 4);
            }
            t.barrier();
        });
        assert_eq!(program.distinct_classes(), 2, "receivers share a recording");
        let net = ConstantLatency::new(1e-3);
        assert_eq!(
            program.simulate_aggregated(&cluster, &net),
            Err(FallbackReason::ClassOrderDiverged)
        );
    }

    #[test]
    fn repricing_cluster_that_splits_a_class_is_rejected() {
        let recorded = ClusterSpec::homogeneous(4, 80.0);
        let program: Program = record_spmd(&recorded, body);
        let reprice = ClusterSpec::new(
            "split",
            vec![
                NodeSpec::synthetic("a", 80.0),
                NodeSpec::synthetic("b", 80.0),
                NodeSpec::synthetic("c", 90.0),
                NodeSpec::synthetic("d", 80.0),
            ],
        )
        .unwrap();
        let net = ConstantLatency::new(1e-3);
        assert_eq!(
            program.aggregate_plan(&reprice).err(),
            Some(FallbackReason::ClassOrderDiverged)
        );
        assert!(program.simulate_aggregated(&recorded, &net).is_ok());
    }

    #[test]
    fn aggregation_records_telemetry() {
        let cluster = ClusterSpec::homogeneous(8, 80.0);
        let program: Program = record_spmd(&cluster, body);
        let net = MpichEthernet::new(0.2e-3, 1e8);
        let before = telemetry::snapshot();
        program.simulate_aggregated(&cluster, &net).expect("aggregatable");
        let after = telemetry::snapshot();
        assert!(after.aggregated_sims > before.aggregated_sims);
        assert!(after.aggregated_ranks >= before.aggregated_ranks + 8);
        assert!(
            after.aggregated_classes
                >= before.aggregated_classes + program.distinct_classes() as u64
        );
    }
}
