//! Lockstep phase analyzer: closed-form evaluation of recorded SPMD
//! programs whose collective structure is the same on every rank class.
//!
//! The ready-queue scheduler in the parent module is fully general: it
//! replays any op structure, blocking and waking ranks as messages and
//! collective deposits become available. But the kernels this workspace
//! prices are *lockstep*: every rank class walks the same alternating
//! sequence of collectives with per-class compute (and closed
//! point-to-point exchanges) in between, so there is nothing for a
//! scheduler to decide — each phase's exit clocks are a straight-line
//! function of its entry clocks. This module detects that structure
//! once per recording ([`analyze`]) and, when it holds, evaluates the
//! whole schedule phase by phase ([`LockstepProgram::evaluate`]) with
//! no mailboxes, slots, park/wake chains, or program counters.
//!
//! # What "lockstep" means
//!
//! A recording is lockstep when its per-class op lists factor into a
//! single shared sequence of **phases**:
//!
//! - **Compute** — a maximal run of `Compute` ops per class (possibly
//!   empty, possibly different lengths per class). Pure local work;
//!   absorbed greedily between synchronization points.
//! - **Collective** — every class's next op is the *same* collective
//!   (equal op id, consistent kind). Broadcast and gather phases
//!   additionally require the root's class to have exactly one member
//!   (two ranks sharing a root recording would double-deposit, which
//!   the engine rejects at run time), and receiver size expectations
//!   must match the root's count.
//! - **P2P** — a closed batch of sends/receives: starting from any
//!   `Send`/`Recv` head, ranks exchange messages until every class
//!   reaches a non-p2p op, every send is consumed, and no receive is
//!   left waiting for a message from a later phase. The batch is
//!   topologically ordered at analysis time (a send is scheduled
//!   before its matching receive), so evaluation is a single pass.
//!
//! Anything else — crossing a collective boundary with an in-flight
//! message, mismatched collective kinds or op ids, multi-member root
//! classes, size mismatches — makes [`analyze`] return a typed
//! [`FallbackReason`] and the caller falls back to the ready-queue
//! scheduler, which either prices the program correctly or reports the
//! protocol bug with its usual diagnostics. The analyzer never weakens
//! an engine panic into a wrong answer: every shape it cannot *prove*
//! lockstep falls back, and the reason is surfaced through
//! `SpmdProgram::fallback_reason` and the telemetry counters.
//!
//! # Float-op mirroring
//!
//! Evaluation reuses [`SimRank`]'s charge methods — the same
//! `charge_comm` / `charge_comm_waited` / `compute` the scheduler
//! calls — and performs per-rank charges in program order with the
//! identical operands: message `(sent_at, arrival)` pairs, rank-order
//! rendezvous/entry `max` folds, hoisted per-replay barrier cost.
//! IEEE 754 addition is non-associative, so this mirroring (not mere
//! mathematical equivalence) is what makes the result bit-identical to
//! the event-driven engine; `analytic_matches_event_driven` tests in
//! the parent module and the cross-crate `engine_equivalence` suite
//! pin it.

use super::{Op, SimRank};
use crate::message::Tag;
use crate::telemetry::FallbackReason;
use crate::trace::OpKind;
use hetsim_cluster::cluster::ClusterSpec;
use hetsim_cluster::network::NetworkModel;
use hetsim_cluster::time::SimTime;
use std::collections::{HashMap, VecDeque};

/// A recording's lockstep phase plan, produced by [`analyze`].
#[derive(Debug)]
pub(super) struct LockstepProgram {
    pub(super) phases: Vec<Phase>,
    /// Collective ops one evaluation covers (per participating rank) —
    /// the same count the scheduler would execute, kept for telemetry.
    pub(super) collective_ops: u64,
    /// Point-to-point ops one evaluation covers.
    pub(super) p2p_ops: u64,
}

/// One lockstep phase. Exit clocks are a pure function of entry clocks.
#[derive(Debug)]
pub(super) enum Phase {
    /// Per-class maximal compute runs: `runs[c]` is the `[start, end)`
    /// op-index range into class `c`'s op list (flops stay per-op —
    /// fault windows and the engine both charge them individually).
    Compute { runs: Vec<(u32, u32)> },
    /// All ranks enter one barrier.
    Barrier,
    /// Broadcast of `count` elements from rank `root`.
    Bcast { root: u32, count: usize },
    /// The allgather-closing broadcast whose packed size is derived
    /// from the root's preceding gather at evaluation time.
    BcastDerived { root: u32 },
    /// Gather to rank `root`; `counts[r]` is rank `r`'s contribution,
    /// `sizes[r]` its wire bytes, `targets[r]` the leaf's p2p target.
    Gather { root: u32, counts: Vec<usize>, sizes: Vec<u64>, targets: Vec<u32> },
    /// A closed batch of point-to-point messages in topological order.
    P2p { steps: Vec<P2pStep> },
}

/// One scheduled op of a P2P phase. `slot` indexes the phase's sends
/// in emission order; analysis guarantees a receive's slot precedes it.
#[derive(Debug)]
pub(super) enum P2pStep {
    Send { rank: u32, dest: u32, count: usize },
    Recv { rank: u32, source: u32, count: usize, slot: u32 },
}

/// Detects lockstep phase structure in a recording's per-class op
/// lists. Returns the [`FallbackReason`] — *fall back to the
/// ready-queue scheduler* — for any shape it cannot prove lockstep.
pub(super) fn analyze(
    p: usize,
    classes: &[Vec<Op>],
    class_of: &[usize],
) -> Result<LockstepProgram, FallbackReason> {
    let nc = classes.len();
    let mut members = vec![0usize; nc];
    let mut rank_of_class = vec![usize::MAX; nc];
    for (r, &c) in class_of.iter().enumerate() {
        members[c] += 1;
        if rank_of_class[c] == usize::MAX {
            rank_of_class[c] = r;
        }
    }

    let mut cursor = vec![0usize; nc];
    let mut phases = Vec::new();
    loop {
        // Absorb per-class compute runs greedily.
        let mut runs = vec![(0u32, 0u32); nc];
        let mut any_compute = false;
        for c in 0..nc {
            let start = cursor[c];
            let mut end = start;
            while matches!(classes[c].get(end), Some(Op::Compute { .. })) {
                end += 1;
            }
            if end > start {
                any_compute = true;
            }
            runs[c] = (start as u32, end as u32);
            cursor[c] = end;
        }
        if any_compute {
            phases.push(Phase::Compute { runs });
        }

        let done = (0..nc).filter(|&c| cursor[c] == classes[c].len()).count();
        if done == nc {
            break;
        }
        // Failure-recovery ops have no phase grammar here: recovery
        // programs always price on the ready-queue scheduler, with the
        // typed reason surfaced through telemetry.
        let any_recovery = (0..nc).any(|c| {
            matches!(
                classes[c].get(cursor[c]),
                Some(Op::Checkpoint { .. } | Op::Detect { .. } | Op::Recover { .. })
            )
        });
        if any_recovery {
            return Err(FallbackReason::RecoveryOps);
        }
        let any_p2p = (0..nc)
            .any(|c| matches!(classes[c].get(cursor[c]), Some(Op::Send { .. } | Op::Recv { .. })));
        if any_p2p {
            phases.push(p2p_phase(p, classes, class_of, &mut cursor)?);
            continue;
        }
        if done > 0 {
            // A collective needs every rank; some class is out of ops.
            return Err(FallbackReason::ClassExhausted);
        }
        phases.push(collective_phase(classes, class_of, &members, &rank_of_class, &mut cursor)?);
    }
    // The per-rank op counts the scheduler would have executed — kept
    // so analytic and event-driven telemetry agree on lockstep shapes.
    let mut collective_ops = 0u64;
    let mut p2p_ops = 0u64;
    for phase in &phases {
        match phase {
            Phase::Compute { .. } => {}
            Phase::Barrier
            | Phase::Bcast { .. }
            | Phase::BcastDerived { .. }
            | Phase::Gather { .. } => collective_ops += p as u64,
            Phase::P2p { steps } => p2p_ops += steps.len() as u64,
        }
    }
    Ok(LockstepProgram { phases, collective_ops, p2p_ops })
}

/// Closes a collective phase: every class's head must be the same
/// collective (equal op id, consistent kind, singleton root class).
fn collective_phase(
    classes: &[Vec<Op>],
    class_of: &[usize],
    members: &[usize],
    rank_of_class: &[usize],
    cursor: &mut [usize],
) -> Result<Phase, FallbackReason> {
    let nc = classes.len();
    // All classes must agree on which collective comes next.
    let mut op_id = None;
    for c in 0..nc {
        let id = match classes[c][cursor[c]] {
            Op::Barrier { op }
            | Op::BcastRoot { op, .. }
            | Op::BcastRecv { op, .. }
            | Op::GatherRoot { op, .. }
            | Op::GatherLeaf { op, .. }
            | Op::BcastRootDerived { op } => op,
            Op::Compute { .. }
            | Op::Send { .. }
            | Op::Recv { .. }
            | Op::Checkpoint { .. }
            | Op::Detect { .. }
            | Op::Recover { .. } => {
                unreachable!("compute absorbed, recovery rejected, p2p dispatched before this")
            }
        };
        match op_id {
            None => op_id = Some(id),
            Some(prev) if prev != id => return Err(FallbackReason::CollectiveIdMismatch),
            Some(_) => {}
        }
    }

    let mut barriers = 0usize;
    let mut bcast_recvs = 0usize;
    let mut gather_leaves = 0usize;
    let mut bcast_root: Option<(usize, usize)> = None;
    let mut derived_root: Option<usize> = None;
    let mut gather_root: Option<usize> = None;
    for c in 0..nc {
        match classes[c][cursor[c]] {
            Op::Barrier { .. } => barriers += 1,
            Op::BcastRoot { count, .. } => {
                if bcast_root.replace((c, count)).is_some() {
                    return Err(FallbackReason::DuplicateRoot);
                }
            }
            Op::BcastRootDerived { .. } => {
                if derived_root.replace(c).is_some() {
                    return Err(FallbackReason::DuplicateRoot);
                }
            }
            Op::BcastRecv { .. } => bcast_recvs += 1,
            Op::GatherRoot { .. } => {
                if gather_root.replace(c).is_some() {
                    return Err(FallbackReason::DuplicateRoot);
                }
            }
            Op::GatherLeaf { .. } => gather_leaves += 1,
            Op::Compute { .. }
            | Op::Send { .. }
            | Op::Recv { .. }
            | Op::Checkpoint { .. }
            | Op::Detect { .. }
            | Op::Recover { .. } => unreachable!("checked above"),
        }
    }

    let phase = if barriers == nc {
        Phase::Barrier
    } else if let Some((rc, count)) = bcast_root {
        if bcast_recvs != nc - 1 || members[rc] != 1 {
            return Err(FallbackReason::MultiMemberRootClass);
        }
        for c in 0..nc {
            if let Op::BcastRecv { expect, .. } = classes[c][cursor[c]] {
                if expect.is_some_and(|e| e != count) {
                    return Err(FallbackReason::CollectiveSizeMismatch);
                }
            }
        }
        Phase::Bcast { root: rank_of_class[rc] as u32, count }
    } else if let Some(rc) = derived_root {
        if bcast_recvs != nc - 1 || members[rc] != 1 {
            return Err(FallbackReason::MultiMemberRootClass);
        }
        for c in 0..nc {
            if let Op::BcastRecv { expect, .. } = classes[c][cursor[c]] {
                // The packed size exists only at evaluation time; a
                // stated expectation cannot be verified statically.
                if expect.is_some() {
                    return Err(FallbackReason::UnverifiableDerivedSize);
                }
            }
        }
        Phase::BcastDerived { root: rank_of_class[rc] as u32 }
    } else if let Some(rc) = gather_root {
        if gather_leaves != nc - 1 || members[rc] != 1 {
            return Err(FallbackReason::MultiMemberRootClass);
        }
        let p = class_of.len();
        let mut counts = vec![0usize; p];
        let mut targets = vec![0u32; p];
        for r in 0..p {
            match classes[class_of[r]][cursor[class_of[r]]] {
                Op::GatherRoot { count, .. } => counts[r] = count,
                Op::GatherLeaf { root, count, .. } => {
                    counts[r] = count;
                    targets[r] = root as u32;
                }
                _ => unreachable!("kind counts checked above"),
            }
        }
        let sizes = counts.iter().map(|&c| (c * 8) as u64).collect();
        Phase::Gather { root: rank_of_class[rc] as u32, counts, sizes, targets }
    } else {
        // Mixed collective kinds — the engine would panic on the slot
        // type mismatch; let it.
        return Err(FallbackReason::MixedCollectiveKinds);
    };
    for c in cursor.iter_mut() {
        *c += 1;
    }
    Ok(phase)
}

/// Closes a P2P phase by Kahn-style scheduling: repeatedly drain each
/// rank's sends (always executable) and receives whose matching send
/// was already emitted *within this phase*, preserving per-rank program
/// order and the engine's per-`(source, tag)` FIFO matching. Rejects
/// stalls (a receive whose send never materializes here) and leftovers
/// (a send consumed only after the next synchronization point).
fn p2p_phase(
    p: usize,
    classes: &[Vec<Op>],
    class_of: &[usize],
    cursor: &mut [usize],
) -> Result<Phase, FallbackReason> {
    let mut pc: Vec<usize> = (0..p).map(|r| cursor[class_of[r]]).collect();
    let mut pending: HashMap<(usize, usize, Tag), VecDeque<(u32, usize)>> = HashMap::new();
    let mut steps = Vec::new();
    let mut sends = 0u32;
    let mut progress = true;
    while progress {
        progress = false;
        for r in 0..p {
            let ops = &classes[class_of[r]];
            loop {
                match ops.get(pc[r]) {
                    Some(&Op::Send { dest, tag, count }) => {
                        steps.push(P2pStep::Send { rank: r as u32, dest: dest as u32, count });
                        pending.entry((r, dest, tag)).or_default().push_back((sends, count));
                        sends += 1;
                        pc[r] += 1;
                        progress = true;
                    }
                    Some(&Op::Recv { source, tag, expect }) => {
                        let Some((slot, count)) =
                            pending.get_mut(&(source, r, tag)).and_then(|q| q.pop_front())
                        else {
                            break;
                        };
                        if count != expect {
                            // The engine's size assert owns this
                            // diagnostic; fall back.
                            return Err(FallbackReason::P2pSizeMismatch);
                        }
                        steps.push(P2pStep::Recv {
                            rank: r as u32,
                            source: source as u32,
                            count,
                            slot,
                        });
                        pc[r] += 1;
                        progress = true;
                    }
                    _ => break,
                }
            }
        }
    }
    if pending.values().any(|q| !q.is_empty()) {
        return Err(FallbackReason::SendAcrossSync);
    }
    for r in 0..p {
        if matches!(classes[class_of[r]].get(pc[r]), Some(Op::Recv { .. })) {
            return Err(FallbackReason::RecvBeforeSend);
        }
    }
    // Every rank of a class stopped at the same first non-p2p op (the
    // stall check above rejected anything else), so the per-rank
    // counters collapse back into per-class cursors.
    for r in 0..p {
        cursor[class_of[r]] = pc[r];
    }
    Ok(Phase::P2p { steps })
}

/// Root-then-receivers broadcast charge, mirroring `SimShared::bcast_root`
/// and the `BcastRecv` arm of the event-driven engine.
fn bcast<N: NetworkModel>(ranks: &mut [SimRank], network: &N, root: usize, count: usize) {
    let p = ranks.len();
    let bytes = (count * 8) as u64;
    let cost = SimTime::from_secs(network.bcast_time(p, bytes));
    let departure = ranks[root].clock + cost;
    ranks[root].charge_comm(false, departure, OpKind::Bcast, bytes, None);
    for (r, rank) in ranks.iter_mut().enumerate() {
        if r != root {
            let exit = rank.clock.max(departure);
            rank.charge_comm(false, exit, OpKind::Bcast, bytes, Some(root));
        }
    }
}

impl LockstepProgram {
    /// Evaluates the phase plan, producing the same per-rank clocks and
    /// accumulator splits as the event-driven scheduler — bit for bit.
    /// Untraced and fault-free only (traced/faulted runs keep the
    /// scheduler, whose generality they need).
    pub(super) fn evaluate<N: NetworkModel>(
        &self,
        cluster: &ClusterSpec,
        network: &N,
        classes: &[Vec<Op>],
        class_of: &[usize],
    ) -> Vec<SimRank> {
        let p = class_of.len();
        let mut ranks: Vec<SimRank> = (0..p).map(|id| SimRank::new(id, cluster, false)).collect();
        // Hoisted once per evaluation, exactly as the scheduler hoists
        // it once per replay.
        let barrier_cost = SimTime::from_secs(network.barrier_time(p));
        // (sent_at, arrival) per send slot of the current P2P phase.
        let mut msgs: Vec<(SimTime, SimTime)> = Vec::new();
        for phase in &self.phases {
            match phase {
                Phase::Compute { runs } => {
                    for (r, rank) in ranks.iter_mut().enumerate() {
                        let c = class_of[r];
                        let (start, end) = runs[c];
                        for op in &classes[c][start as usize..end as usize] {
                            let Op::Compute { flops } = *op else {
                                unreachable!("compute runs hold only compute ops")
                            };
                            rank.compute(false, None, flops);
                        }
                    }
                }
                Phase::Barrier => {
                    // Same rank-order fold over the same complete entry
                    // set as the scheduler's cached rendezvous.
                    let rendezvous = ranks.iter().map(|r| r.clock).max().expect("p >= 1");
                    let exit = rendezvous + barrier_cost;
                    for rank in ranks.iter_mut() {
                        rank.charge_comm_waited(false, rendezvous, exit, OpKind::Barrier, 0, None);
                    }
                }
                Phase::Bcast { root, count } => {
                    bcast(&mut ranks, network, *root as usize, *count);
                }
                Phase::BcastDerived { root } => {
                    let root = *root as usize;
                    let count = p + ranks[root].last_gather_counts.iter().sum::<usize>();
                    bcast(&mut ranks, network, root, count);
                }
                Phase::Gather { root, counts, sizes, targets } => {
                    let root = *root as usize;
                    // Deposits carry entry clocks; in lockstep every
                    // rank is at the phase boundary, so the fold runs
                    // over current clocks in rank order.
                    let max_entry = ranks.iter().map(|r| r.clock).max().expect("p >= 1");
                    let cost = SimTime::from_secs(network.gather_time(sizes, root));
                    let total_bytes: u64 = sizes.iter().sum();
                    let ready = ranks[root].clock.max(max_entry);
                    ranks[root].charge_comm_waited(
                        false,
                        ready,
                        ready + cost,
                        OpKind::Gather,
                        total_bytes,
                        None,
                    );
                    ranks[root].last_gather_counts.clear();
                    ranks[root].last_gather_counts.extend_from_slice(counts);
                    for (r, rank) in ranks.iter_mut().enumerate() {
                        if r != root {
                            let bytes = sizes[r];
                            let target = targets[r] as usize;
                            let cost =
                                SimTime::from_secs(network.p2p_time_between(r, target, bytes));
                            let exit = rank.clock + cost;
                            rank.charge_comm(false, exit, OpKind::Gather, bytes, Some(target));
                        }
                    }
                }
                Phase::P2p { steps } => {
                    msgs.clear();
                    for step in steps {
                        match *step {
                            P2pStep::Send { rank, dest, count } => {
                                let r = rank as usize;
                                let dest = dest as usize;
                                let bytes = (count * 8) as u64;
                                let sent_at = ranks[r].clock;
                                let cost =
                                    SimTime::from_secs(network.p2p_time_between(r, dest, bytes));
                                ranks[r].charge_comm(
                                    false,
                                    sent_at + cost,
                                    OpKind::Send,
                                    bytes,
                                    Some(dest),
                                );
                                msgs.push((sent_at, ranks[r].clock));
                            }
                            P2pStep::Recv { rank, source, count, slot } => {
                                let r = rank as usize;
                                let (sent_at, arrival) = msgs[slot as usize];
                                let bytes = (count * 8) as u64;
                                let exit = ranks[r].clock.max(arrival);
                                ranks[r].charge_comm_waited(
                                    false,
                                    sent_at,
                                    exit,
                                    OpKind::Recv,
                                    bytes,
                                    Some(source as usize),
                                );
                            }
                        }
                    }
                }
            }
        }
        ranks
    }
}
