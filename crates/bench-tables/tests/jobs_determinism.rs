//! Worker-pool determinism contract of the `bench-tables` binary: the
//! `--jobs N` flag bounds the experiment worker pool but must never
//! change a byte of output. `--jobs 1` (the sequential reference) and
//! `--jobs 8` must produce identical stdout and stderr for the pooled
//! experiments (the ladder curves and the frozen-noise campaigns).

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench-tables"))
        .args(args)
        .output()
        .expect("spawn bench-tables")
}

#[test]
fn jobs_flag_does_not_change_a_byte_of_output() {
    let ids = ["--quick", "t3", "t4", "f2", "t5", "ablate-noise"];
    let reference = run(&[&ids[..], &["--jobs", "1"]].concat());
    assert_eq!(reference.status.code(), Some(0), "reference run failed");
    assert!(!reference.stdout.is_empty(), "reference run produced no output");
    for jobs in ["2", "8"] {
        let pooled = run(&[&ids[..], &["--jobs", jobs]].concat());
        assert_eq!(pooled.status.code(), Some(0), "--jobs {jobs} run failed");
        assert_eq!(
            pooled.stdout, reference.stdout,
            "--jobs {jobs} stdout diverged from the --jobs 1 reference"
        );
        assert_eq!(
            pooled.stderr, reference.stderr,
            "--jobs {jobs} stderr diverged from the --jobs 1 reference"
        );
    }
}

#[test]
fn jobs_flag_requires_a_count() {
    let out = run(&["--jobs"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs needs a worker count"));
}

#[test]
fn jobs_flag_rejects_garbage() {
    let out = run(&["--jobs", "many"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs needs a worker count"));
}
