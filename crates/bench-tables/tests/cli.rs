//! Exit-code contract of the `bench-tables` binary.
//!
//! The CLI must fail loudly — unknown flags or experiment ids and
//! unwritable output paths exit non-zero with a one-line error on
//! stderr — so scripted pipelines (ci.sh, the paper-table refresh)
//! cannot silently run the wrong experiment set.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench-tables"))
        .args(args)
        .output()
        .expect("spawn bench-tables")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let err = stderr(&out);
    assert!(err.contains("usage: bench-tables"), "missing usage: {err}");
    assert!(err.contains("--faults"), "usage must mention --faults: {err}");
}

#[test]
fn unknown_flag_exits_two_with_one_line_error() {
    let out = run(&["--quick", "--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("error: unknown flag --no-such-flag"), "got: {err}");
}

#[test]
fn list_exits_zero_and_names_every_id() {
    let out = run(&["--list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in ["t1", "t3", "faults", "surface", "all"] {
        assert!(
            stdout.lines().any(|l| l.split_whitespace().next() == Some(id)),
            "--list must name {id}: {stdout}"
        );
    }
    // Listing must not run any experiment (tables render as `== title ==`).
    assert!(!stdout.contains("== "), "--list must not emit tables: {stdout}");
}

#[test]
fn repeated_jobs_flag_exits_two() {
    let out = run(&["--jobs", "2", "--jobs", "3", "t1"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("error: --jobs given twice"), "got: {err}");
    assert!(err.contains("worker count already fixed"), "got: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn unknown_experiment_id_exits_two() {
    let out = run(&["--quick", "t1", "no-such-table"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("error: unknown experiment id no-such-table"), "got: {err}");
}

#[test]
fn missing_flag_argument_exits_two() {
    let out = run(&["--metrics-out"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--metrics-out needs a file path"));
}

#[test]
fn unwritable_metrics_path_exits_one() {
    // /proc/nonexistent is not creatable on Linux; the CLI must report
    // the failure instead of panicking.
    let out = run(&["--quick", "t1", "--metrics-out", "/proc/nonexistent/metrics.json"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("error: cannot write metrics file"), "got: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn unwritable_trace_dir_exits_one() {
    let out = run(&["--quick", "t1", "--trace-out", "/proc/nonexistent/traces"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("error: cannot write trace directory"), "got: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn surface_id_emits_the_psi_surface_tables() {
    let out = run(&["--quick", "surface"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("X3 GE surface"), "missing GE matrix: {stdout}");
    assert!(stdout.contains("X3 MM inversions"), "missing MM inversions: {stdout}");
    assert!(stdout.contains("psi(C, C')"), "missing psi header: {stdout}");
}

fn stdout_of(args: &[&str]) -> Vec<u8> {
    let out = run(args);
    assert!(out.status.success(), "{args:?} exited with {:?}: {}", out.status, stderr(&out));
    out.stdout
}

// The analytic closed forms are an *optimization*, never a semantic
// change: every byte the suite prints must be identical whether cells
// are priced by the closed forms (default) or by the event-driven
// engine (`--no-analytic`). Run the real binary both ways and compare
// stdout byte-for-byte, including the opt-in fault and surface sweeps.

#[test]
fn no_analytic_is_byte_identical_on_the_quick_suite() {
    let fast = stdout_of(&["--quick"]);
    let slow = stdout_of(&["--quick", "--no-analytic"]);
    assert!(!fast.is_empty());
    assert_eq!(fast, slow, "--no-analytic changed the quick-suite output");
}

#[test]
fn no_analytic_is_byte_identical_on_the_fault_sweep() {
    let fast = stdout_of(&["--quick", "--faults"]);
    let slow = stdout_of(&["--quick", "--faults", "--no-analytic"]);
    assert!(!fast.is_empty());
    assert_eq!(fast, slow, "--no-analytic changed the fault-sweep output");
}

#[test]
fn no_analytic_is_byte_identical_on_the_surface_sweep() {
    let fast = stdout_of(&["--quick", "surface"]);
    let slow = stdout_of(&["--quick", "surface", "--no-analytic"]);
    assert!(!fast.is_empty());
    assert_eq!(fast, slow, "--no-analytic changed the surface-sweep output");
}

#[test]
fn misspelled_no_analytic_flag_exits_two() {
    let out = run(&["--quick", "--no-anaytic"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("error: unknown flag --no-anaytic"));
}

#[test]
fn faults_flag_emits_the_fault_sweep_table() {
    let out = run(&["--quick", "--faults"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scalability under injected faults"), "missing table: {stdout}");
    assert!(stdout.contains("straggler+drops"), "missing severity rows: {stdout}");
    assert!(stdout.contains("under faults: psi retention"), "missing annex line: {stdout}");
}
