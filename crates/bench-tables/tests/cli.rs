//! Exit-code contract of the `bench-tables` binary.
//!
//! The CLI must fail loudly — unknown flags or experiment ids and
//! unwritable output paths exit non-zero with a one-line error on
//! stderr — so scripted pipelines (ci.sh, the paper-table refresh)
//! cannot silently run the wrong experiment set.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench-tables"))
        .args(args)
        .output()
        .expect("spawn bench-tables")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let err = stderr(&out);
    assert!(err.contains("usage: bench-tables"), "missing usage: {err}");
    assert!(err.contains("--faults"), "usage must mention --faults: {err}");
}

#[test]
fn unknown_flag_exits_two_with_one_line_error() {
    let out = run(&["--quick", "--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("error: unknown flag --no-such-flag"), "got: {err}");
}

#[test]
fn list_exits_zero_and_names_every_id() {
    let out = run(&["--list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in ["t1", "t3", "faults", "surface", "mega", "all"] {
        assert!(
            stdout.lines().any(|l| l.split_whitespace().next() == Some(id)),
            "--list must name {id}: {stdout}"
        );
    }
    // Listing must not run any experiment (tables render as `== title ==`).
    assert!(!stdout.contains("== "), "--list must not emit tables: {stdout}");
}

#[test]
fn repeated_jobs_flag_exits_two() {
    let out = run(&["--jobs", "2", "--jobs", "3", "t1"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("error: --jobs given twice"), "got: {err}");
    assert!(err.contains("worker count already fixed"), "got: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn unknown_experiment_id_exits_two() {
    let out = run(&["--quick", "t1", "no-such-table"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("error: unknown experiment id no-such-table"), "got: {err}");
}

#[test]
fn missing_flag_argument_exits_two() {
    let out = run(&["--metrics-out"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--metrics-out needs a file path"));
}

#[test]
fn unwritable_metrics_path_exits_one() {
    // /proc/nonexistent is not creatable on Linux; the CLI must report
    // the failure instead of panicking.
    let out = run(&["--quick", "t1", "--metrics-out", "/proc/nonexistent/metrics.json"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("error: cannot write metrics file"), "got: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn unwritable_trace_dir_exits_one() {
    let out = run(&["--quick", "t1", "--trace-out", "/proc/nonexistent/traces"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("error: cannot write trace directory"), "got: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn surface_id_emits_the_psi_surface_tables() {
    let out = run(&["--quick", "surface"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("X3 GE surface"), "missing GE matrix: {stdout}");
    assert!(stdout.contains("X3 MM inversions"), "missing MM inversions: {stdout}");
    assert!(stdout.contains("psi(C, C')"), "missing psi header: {stdout}");
}

#[test]
fn mega_id_emits_the_mega_scale_tables() {
    let out = run(&["--quick", "mega"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("X4 MM mega inversions"), "missing inversions: {stdout}");
    assert!(stdout.contains("X4 MM mega surface"), "missing psi matrix: {stdout}");
    assert!(stdout.contains("X4 GE mega inversions"), "missing GE inversions: {stdout}");
    assert!(stdout.contains("X4 GE mega surface"), "missing GE psi matrix: {stdout}");
    assert!(stdout.contains("X4 power mega ceiling"), "missing ceiling: {stdout}");
    assert!(stdout.contains("heet-100000x8"), "missing the 10^5-rank preset: {stdout}");
    assert!(stdout.contains("heet-zipf-30000x8"), "missing the zipf preset: {stdout}");
}

fn stdout_of(args: &[&str]) -> Vec<u8> {
    let out = run(args);
    assert!(out.status.success(), "{args:?} exited with {:?}: {}", out.status, stderr(&out));
    out.stdout
}

// The analytic closed forms are an *optimization*, never a semantic
// change: every byte the suite prints must be identical whether cells
// are priced by the closed forms (default) or by the event-driven
// engine (`--no-analytic`). Run the real binary both ways and compare
// stdout byte-for-byte, including the opt-in fault and surface sweeps.

#[test]
fn no_analytic_is_byte_identical_on_the_quick_suite() {
    let fast = stdout_of(&["--quick"]);
    let slow = stdout_of(&["--quick", "--no-analytic"]);
    assert!(!fast.is_empty());
    assert_eq!(fast, slow, "--no-analytic changed the quick-suite output");
}

#[test]
fn no_analytic_is_byte_identical_on_the_fault_sweep() {
    let fast = stdout_of(&["--quick", "--faults"]);
    let slow = stdout_of(&["--quick", "--faults", "--no-analytic"]);
    assert!(!fast.is_empty());
    assert_eq!(fast, slow, "--no-analytic changed the fault-sweep output");
}

#[test]
fn no_analytic_is_byte_identical_on_the_surface_sweep() {
    let fast = stdout_of(&["--quick", "surface"]);
    let slow = stdout_of(&["--quick", "surface", "--no-analytic"]);
    assert!(!fast.is_empty());
    assert_eq!(fast, slow, "--no-analytic changed the surface-sweep output");
}

#[test]
fn no_analytic_is_byte_identical_on_the_mega_sweep() {
    // The largest oracle-affordable configuration: `--no-analytic`
    // materializes every quick preset (up to 10⁵ ranks) and prices it
    // per rank, so this is also the acceptance check that the
    // aggregated path changed nothing but the cost.
    let fast = stdout_of(&["--quick", "mega"]);
    let slow = stdout_of(&["--quick", "mega", "--no-analytic"]);
    assert!(!fast.is_empty());
    assert_eq!(fast, slow, "--no-analytic changed the mega-sweep output");
}

#[test]
fn misspelled_no_analytic_flag_exits_two() {
    let out = run(&["--quick", "--no-anaytic"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("error: unknown flag --no-anaytic"));
}

#[test]
fn faults_flag_emits_the_fault_sweep_table() {
    let out = run(&["--quick", "--faults"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scalability under injected faults"), "missing table: {stdout}");
    assert!(stdout.contains("straggler+drops"), "missing severity rows: {stdout}");
    assert!(stdout.contains("under faults: psi retention"), "missing annex line: {stdout}");
}

// The `--stats-out` telemetry document has a two-tier determinism
// contract (DESIGN.md §11): the whole file is byte-identical across
// repeated runs and `--jobs` values; the engine-independent sections
// (memo, pool, closed-form cell totals) are additionally identical
// across engines, while the engine-dependent sections (path breakdown,
// ready-queue work) change only with `--no-analytic`.

fn stats_doc(dir: &std::path::Path, name: &str, args: &[&str]) -> Vec<u8> {
    let path = dir.join(name);
    let path_str = path.to_str().expect("utf-8 temp path");
    let mut full: Vec<&str> = args.to_vec();
    full.extend_from_slice(&["--stats-out", path_str]);
    let out = run(&full);
    assert!(out.status.success(), "{full:?} exited with {:?}: {}", out.status, stderr(&out));
    assert!(stderr(&out).contains(&format!("wrote {path_str}")), "missing wrote line");
    std::fs::read(&path).expect("stats file written")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-tables-stats-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn stats_doc_is_byte_identical_across_runs_and_jobs() {
    for (tag, base) in [
        ("quick", vec!["--quick"]),
        ("faults", vec!["--quick", "--faults"]),
        ("surface", vec!["--quick", "surface"]),
        ("mega", vec!["--quick", "mega"]),
    ] {
        let dir = temp_dir(tag);
        let j1 = stats_doc(&dir, "j1.json", &[&base[..], &["--jobs", "1"]].concat());
        let j4 = stats_doc(&dir, "j4.json", &[&base[..], &["--jobs", "4"]].concat());
        let j4b = stats_doc(&dir, "j4b.json", &[&base[..], &["--jobs", "4"]].concat());
        assert!(!j1.is_empty());
        assert_eq!(j1, j4, "{tag}: --jobs changed the stats document");
        assert_eq!(j4, j4b, "{tag}: repeated run changed the stats document");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn stats_doc_splits_engine_dependent_from_engine_independent() {
    use hetsim_obs::Json;
    let dir = temp_dir("engines");
    let fast = stats_doc(&dir, "fast.json", &["--quick"]);
    let slow = stats_doc(&dir, "slow.json", &["--quick", "--no-analytic"]);
    std::fs::remove_dir_all(&dir).ok();
    let parse = |bytes: &[u8]| {
        Json::parse(std::str::from_utf8(bytes).expect("utf-8 stats")).expect("stats parses")
    };
    let (fast, slow) = (parse(&fast), parse(&slow));
    let obj = |doc: &Json, key: &str| doc.as_obj().expect("object")[key].clone();
    // Engine-independent: the memo and pool sections must not notice
    // which engine priced the cells.
    assert_eq!(obj(&fast, "memo"), obj(&slow, "memo"), "memo section is engine-dependent");
    assert_eq!(obj(&fast, "pool"), obj(&slow, "pool"), "pool section is engine-dependent");
    // Engine-dependent: the default run prices through the kernel
    // closed forms; --no-analytic forces everything onto the scheduler.
    let engine = |doc: &Json| obj(doc, "engine").as_obj().expect("engine object").clone();
    let (fe, se) = (engine(&fast), engine(&slow));
    assert_ne!(fe["closed_form"], se["closed_form"], "closed forms must vanish when disabled");
    assert_eq!(se["closed_form"].as_obj().map(|m| m.len()), Some(0));
    let forced = |paths: &Json| {
        paths.as_obj().expect("paths")["event_driven"].as_obj().expect("event_driven")["forced"]
            .as_num()
            .expect("count")
    };
    assert_eq!(forced(&fe["paths"]), 0.0, "nothing is forced by default");
    assert!(forced(&se["paths"]) > 0.0, "--no-analytic must force the scheduler");
    // Both engines report full analytic coverage: forced runs are not
    // fallbacks, and the fault-free quick ladder never falls back.
    for doc in [&fast, &slow] {
        let summary = obj(doc, "summary");
        let summary = summary.as_obj().expect("summary object");
        assert_eq!(summary["analytic_coverage_percent"].as_num(), Some(100.0));
    }
}

#[test]
fn quick_stats_doc_reports_full_analytic_coverage_inline() {
    // The exact byte sequence the ci.sh coverage gate greps for.
    let dir = temp_dir("coverage");
    let doc = stats_doc(&dir, "quick.json", &["--quick"]);
    std::fs::remove_dir_all(&dir).ok();
    let text = String::from_utf8(doc).expect("utf-8 stats");
    assert!(
        text.contains("\"analytic_coverage_percent\":100,"),
        "coverage gate pattern missing: {text}"
    );
    assert!(text.contains("\"schema\":\"hetscale-telemetry/2\""), "schema missing: {text}");
}

#[test]
fn stats_out_prints_per_id_summaries_on_stderr() {
    let dir = temp_dir("summaries");
    let path = dir.join("stats.json");
    let out = run(&["--quick", "t2", "--stats-out", path.to_str().expect("utf-8")]);
    assert!(out.status.success());
    let err = stderr(&out);
    assert!(err.contains("telemetry t2: analytic "), "missing per-id summary: {err}");
    assert!(err.contains(", memo hit "), "missing memo half: {err}");
    std::fs::remove_dir_all(&dir).ok();
    // Without the flag, no telemetry chatter reaches stderr.
    let silent = run(&["--quick", "t2"]);
    assert!(!stderr(&silent).contains("telemetry "), "summaries must be opt-in");
}

#[test]
fn unwritable_stats_path_exits_one() {
    let out = run(&["--quick", "t1", "--stats-out", "/proc/nonexistent/stats.json"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("error: cannot write stats file"), "got: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

// The recovery sweep (DESIGN.md §12) has the same determinism contract
// as every other id: byte-identical across repeated runs, worker
// counts, and engines. Its fault streams re-seed through `--seed`,
// whose default must reproduce the historical bytes exactly.

#[test]
fn recover_id_emits_sweep_daly_table_and_recovery_annex() {
    let out = run(&["--quick", "recover"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("psi retention under MTBF death streams"), "missing sweep: {stdout}");
    assert!(stdout.contains("checkpoint-restart"), "missing CR rows: {stdout}");
    assert!(stdout.contains("shrink-rebalance"), "missing shrink rows: {stdout}");
    assert!(stdout.contains("measured optimal checkpoint interval vs Young/Daly"), "{stdout}");
    assert!(stdout.contains("recovery overhead"), "missing annex decomposition: {stdout}");
}

#[test]
fn recover_is_byte_identical_across_runs_jobs_and_engines() {
    let base = stdout_of(&["--quick", "recover"]);
    assert!(!base.is_empty());
    assert_eq!(base, stdout_of(&["--quick", "recover"]), "repeated run changed recover output");
    assert_eq!(base, stdout_of(&["--quick", "recover", "--jobs", "1"]), "--jobs 1 changed output");
    assert_eq!(base, stdout_of(&["--quick", "recover", "--jobs", "4"]), "--jobs 4 changed output");
    assert_eq!(
        base,
        stdout_of(&["--quick", "recover", "--no-analytic"]),
        "--no-analytic changed the recover output"
    );
}

#[test]
fn seed_default_reproduces_historical_bytes_and_reseeding_moves_them() {
    // 1592590336 == 0x5eed_0000, the seed baked in before the flag
    // existed: passing it explicitly must be a byte-level no-op.
    let default_bytes = stdout_of(&["--quick", "recover"]);
    let explicit = stdout_of(&["--quick", "recover", "--seed", "1592590336"]);
    assert_eq!(default_bytes, explicit, "explicit default seed changed the bytes");
    // A different seed draws different death streams — but is itself
    // perfectly reproducible.
    let reseeded = stdout_of(&["--quick", "recover", "--seed", "7"]);
    assert_ne!(default_bytes, reseeded, "--seed 7 must move the fault streams");
    assert_eq!(reseeded, stdout_of(&["--quick", "recover", "--seed", "7"]), "seed 7 not stable");
    // The faults sweep re-seeds through the same base.
    let faults = stdout_of(&["--quick", "--faults"]);
    assert_ne!(faults, stdout_of(&["--quick", "--faults", "--seed", "7"]), "faults ignore --seed");
}

#[test]
fn seed_flag_rejects_garbage_repeats_and_missing_argument() {
    let out = run(&["--quick", "recover", "--seed", "banana"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("error: --seed needs an unsigned integer"));

    let out = run(&["--quick", "recover", "--seed", "7", "--seed", "7"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("error: --seed given twice"), "got: {err}");
    assert!(err.contains("already fixed"), "got: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");

    let out = run(&["--quick", "recover", "--seed"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("error: --seed needs an unsigned integer"));
}

#[test]
fn usage_and_list_cover_recover_and_seed() {
    let err = stderr(&run(&["--help"]));
    assert!(err.contains("--seed N"), "usage must document --seed: {err}");
    assert!(err.contains("recover"), "usage must mention recover: {err}");
    let stdout = String::from_utf8_lossy(&run(&["--list"]).stdout).into_owned();
    assert!(
        stdout.lines().any(|l| l.split_whitespace().next() == Some("recover")),
        "--list must name recover: {stdout}"
    );
}

#[test]
fn recover_stats_doc_reports_the_typed_recovery_fallback() {
    // The lockstep closed forms reject recovery ops, so every recovery
    // cell must surface the typed `recovery-ops` fallback reason in the
    // telemetry document — the tag ci.sh greps for.
    let dir = temp_dir("recover");
    let doc = stats_doc(&dir, "recover.json", &["--quick", "recover"]);
    std::fs::remove_dir_all(&dir).ok();
    let text = String::from_utf8(doc).expect("utf-8 stats");
    assert!(text.contains("recovery-ops"), "typed fallback reason missing: {text}");
}

#[test]
fn recover_stats_doc_is_byte_identical_across_runs_and_jobs() {
    let dir = temp_dir("recover-jobs");
    let j1 = stats_doc(&dir, "j1.json", &["--quick", "recover", "--jobs", "1"]);
    let j4 = stats_doc(&dir, "j4.json", &["--quick", "recover", "--jobs", "4"]);
    let j4b = stats_doc(&dir, "j4b.json", &["--quick", "recover", "--jobs", "4"]);
    std::fs::remove_dir_all(&dir).ok();
    assert!(!j1.is_empty());
    assert_eq!(j1, j4, "recover: --jobs changed the stats document");
    assert_eq!(j4, j4b, "recover: repeated run changed the stats document");
}

#[test]
fn profile_doc_declares_itself_non_deterministic() {
    use hetsim_obs::Json;
    let dir = temp_dir("profile");
    let path = dir.join("profile.json");
    let path_str = path.to_str().expect("utf-8");
    let out = run(&["--quick", "t2", "--profile-out", path_str]);
    assert!(out.status.success(), "exit: {:?}: {}", out.status, stderr(&out));
    let text = std::fs::read_to_string(&path).expect("profile written");
    std::fs::remove_dir_all(&dir).ok();
    let doc = Json::parse(&text).expect("profile parses");
    let doc = doc.as_obj().expect("object top level");
    assert_eq!(doc["deterministic"], Json::Bool(false));
    assert_eq!(doc["schema"].as_str(), Some("hetscale-profile/1"));
    let ids = doc["ids"].as_obj().expect("ids object");
    assert!(ids.contains_key("t2"), "t2 lap missing: {text}");
    assert!(doc["total_us"].as_num().expect("total") >= 0.0);
}
