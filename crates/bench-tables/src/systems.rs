//! [`AlgorithmSystem`] adapters binding the kernels to Sunwulf
//! configurations — the concrete algorithm–system combinations the
//! paper evaluates.
//!
//! Both adapters run the *timing-mode* kernels (proven timing-equivalent
//! to the real ones by the kernels crate's tests), so curve sweeps over
//! thousands of matrix ranks stay cheap while producing exactly the
//! virtual times the arithmetic-executing kernels would.

use crate::params::MEGA_POWER_ITERS;
use hetsim_cluster::classed::ClassedCluster;
use hetsim_cluster::cluster::ClusterSpec;
use hetsim_cluster::network::NetworkModel;
use kernels::ge::ge_parallel_timed;
use kernels::mega::{ge_mega, mm_mega, power_mega};
use kernels::mm::mm_parallel_timed;
use kernels::power::{power_parallel_timed, power_work};
use kernels::stencil::{stencil_parallel_timed, stencil_work};
use kernels::workload::{ge_work, mm_work};
use scalability::metric::AlgorithmSystem;

/// Sweep count used by the stencil scalability experiments: grows with
/// the grid (`⌈n/8⌉`) so total work is `Θ(N³)` like the paper's kernels
/// and the one-time distribution cost vanishes relatively.
pub fn stencil_iters(n: usize) -> usize {
    n.div_ceil(8).max(1)
}

/// Sweep count for the power-method scalability experiments (`⌈n/4⌉`,
/// same Θ(N³)-total-work rationale).
pub fn power_iters(n: usize) -> usize {
    n.div_ceil(4).max(1)
}

/// Parallel GE on one cluster configuration.
pub struct GeSystem<'a, N: NetworkModel> {
    /// The configuration.
    pub cluster: &'a ClusterSpec,
    /// The interconnect model.
    pub network: &'a N,
}

impl<'a, N: NetworkModel> GeSystem<'a, N> {
    /// Binds GE to a configuration.
    pub fn new(cluster: &'a ClusterSpec, network: &'a N) -> Self {
        GeSystem { cluster, network }
    }
}

impl<N: NetworkModel> AlgorithmSystem for GeSystem<'_, N> {
    fn label(&self) -> String {
        format!("GE on {}", self.cluster.label)
    }
    fn marked_speed_flops(&self) -> f64 {
        self.cluster.marked_speed_flops()
    }
    fn work(&self, n: usize) -> f64 {
        ge_work(n)
    }
    fn execute(&self, n: usize) -> f64 {
        crate::memo::cached("ge", self.cluster, self.network, n, None, || {
            ge_parallel_timed(self.cluster, self.network, n)
        })
        .makespan
        .as_secs()
    }
}

/// HoHe parallel MM on one cluster configuration.
pub struct MmSystem<'a, N: NetworkModel> {
    /// The configuration.
    pub cluster: &'a ClusterSpec,
    /// The interconnect model.
    pub network: &'a N,
}

impl<'a, N: NetworkModel> MmSystem<'a, N> {
    /// Binds MM to a configuration.
    pub fn new(cluster: &'a ClusterSpec, network: &'a N) -> Self {
        MmSystem { cluster, network }
    }
}

impl<N: NetworkModel> AlgorithmSystem for MmSystem<'_, N> {
    fn label(&self) -> String {
        format!("MM on {}", self.cluster.label)
    }
    fn marked_speed_flops(&self) -> f64 {
        self.cluster.marked_speed_flops()
    }
    fn work(&self, n: usize) -> f64 {
        mm_work(n)
    }
    fn execute(&self, n: usize) -> f64 {
        crate::memo::cached("mm", self.cluster, self.network, n, None, || {
            mm_parallel_timed(self.cluster, self.network, n)
        })
        .makespan
        .as_secs()
    }
}

/// Jacobi stencil (halo-exchange) on one cluster configuration — the
/// third algorithm–system combination, beyond the paper's two.
pub struct StencilSystem<'a, N: NetworkModel> {
    /// The configuration.
    pub cluster: &'a ClusterSpec,
    /// The interconnect model.
    pub network: &'a N,
}

impl<'a, N: NetworkModel> StencilSystem<'a, N> {
    /// Binds the stencil to a configuration.
    pub fn new(cluster: &'a ClusterSpec, network: &'a N) -> Self {
        StencilSystem { cluster, network }
    }
}

impl<N: NetworkModel> AlgorithmSystem for StencilSystem<'_, N> {
    fn label(&self) -> String {
        format!("Stencil on {}", self.cluster.label)
    }
    fn marked_speed_flops(&self) -> f64 {
        self.cluster.marked_speed_flops()
    }
    fn work(&self, n: usize) -> f64 {
        stencil_work(n, stencil_iters(n))
    }
    fn execute(&self, n: usize) -> f64 {
        // `stencil_iters(n)` is a pure function of `n`, so the kernel
        // tag + `n` still pin the cell.
        crate::memo::cached("stencil", self.cluster, self.network, n, None, || {
            stencil_parallel_timed(self.cluster, self.network, n, stencil_iters(n))
        })
        .makespan
        .as_secs()
    }
}

/// Power iteration on one cluster configuration — the fourth
/// combination (per-iteration allgather).
pub struct PowerSystem<'a, N: NetworkModel> {
    /// The configuration.
    pub cluster: &'a ClusterSpec,
    /// The interconnect model.
    pub network: &'a N,
}

impl<'a, N: NetworkModel> PowerSystem<'a, N> {
    /// Binds the power method to a configuration.
    pub fn new(cluster: &'a ClusterSpec, network: &'a N) -> Self {
        PowerSystem { cluster, network }
    }
}

impl<N: NetworkModel> AlgorithmSystem for PowerSystem<'_, N> {
    fn label(&self) -> String {
        format!("Power on {}", self.cluster.label)
    }
    fn marked_speed_flops(&self) -> f64 {
        self.cluster.marked_speed_flops()
    }
    fn work(&self, n: usize) -> f64 {
        power_work(n, power_iters(n))
    }
    fn execute(&self, n: usize) -> f64 {
        crate::memo::cached("power", self.cluster, self.network, n, None, || {
            power_parallel_timed(self.cluster, self.network, n, power_iters(n))
        })
        .makespan
        .as_secs()
    }
}

/// HoHe MM on a class-compressed mega machine (X4). The analytic path
/// prices the cell in O(classes) through [`mm_mega`] — no rank vector,
/// no `BlockDistribution` — so 10⁷-rank cells cost the same as 10³;
/// under `--no-analytic` the cluster is materialized and priced per
/// rank (the oracle reference, affordable only at the small presets).
/// Mega cells bypass the memo cache on purpose: its fingerprint walks
/// a materialized cluster, which is exactly the O(P) pass this adapter
/// exists to avoid.
pub struct MegaMmSystem<'a, N: NetworkModel> {
    /// The class-compressed configuration.
    pub cluster: &'a ClassedCluster,
    /// The interconnect model.
    pub network: &'a N,
}

impl<'a, N: NetworkModel> MegaMmSystem<'a, N> {
    /// Binds MM to a classed configuration.
    pub fn new(cluster: &'a ClassedCluster, network: &'a N) -> Self {
        MegaMmSystem { cluster, network }
    }
}

impl<N: NetworkModel> AlgorithmSystem for MegaMmSystem<'_, N> {
    fn label(&self) -> String {
        format!("MM on {}", self.cluster.label)
    }
    fn marked_speed_flops(&self) -> f64 {
        self.cluster.marked_speed_flops()
    }
    fn work(&self, n: usize) -> f64 {
        mm_work(n)
    }
    fn execute(&self, n: usize) -> f64 {
        if hetsim_mpi::analytic_enabled() {
            mm_mega(self.cluster, self.network, n)
                .expect("the mega network prices per class")
                .makespan
                .as_secs()
        } else {
            mm_parallel_timed(&self.cluster.materialize(), self.network, n).makespan.as_secs()
        }
    }
}

/// Cyclic-deal GE on a class-compressed mega machine (X4). The
/// analytic path prices the cell in Θ(N·classes) through [`ge_mega`]
/// (GE's lockstep rounds are inherently Θ(N); only the per-round state
/// compresses to O(classes)). Under `--no-analytic` the *small*
/// presets materialize and run the per-rank engine — the oracle
/// reference; above [`MegaGeSystem::ORACLE_MAX_RANKS`] the per-rank GE
/// walk is Θ(N·P) ≈ 10¹⁰⁺ events, so those cells stay on the
/// aggregated form, which is bit-identical anyway (the byte-equality
/// gate in ci.sh exercises exactly this split).
pub struct MegaGeSystem<'a, N: NetworkModel> {
    /// The class-compressed configuration.
    pub cluster: &'a ClassedCluster,
    /// The interconnect model.
    pub network: &'a N,
}

impl<'a, N: NetworkModel> MegaGeSystem<'a, N> {
    /// Largest preset the `--no-analytic` oracle path materializes.
    pub const ORACLE_MAX_RANKS: usize = 1_000;

    /// Binds GE to a classed configuration.
    pub fn new(cluster: &'a ClassedCluster, network: &'a N) -> Self {
        MegaGeSystem { cluster, network }
    }
}

impl<N: NetworkModel> AlgorithmSystem for MegaGeSystem<'_, N> {
    fn label(&self) -> String {
        format!("GE on {}", self.cluster.label)
    }
    fn marked_speed_flops(&self) -> f64 {
        self.cluster.marked_speed_flops()
    }
    fn work(&self, n: usize) -> f64 {
        ge_work(n)
    }
    fn execute(&self, n: usize) -> f64 {
        if !hetsim_mpi::analytic_enabled() && self.cluster.size() <= Self::ORACLE_MAX_RANKS {
            ge_parallel_timed(&self.cluster.materialize(), self.network, n).makespan.as_secs()
        } else {
            ge_mega(self.cluster, self.network, n)
                .expect("the mega network prices per class")
                .makespan
                .as_secs()
        }
    }
}

/// Power iteration on a class-compressed mega machine (X4), with the
/// fixed [`MEGA_POWER_ITERS`] sweep count. Same two-path contract as
/// [`MegaMmSystem`]: O(classes) through [`power_mega`] by default, the
/// materialized per-rank oracle under `--no-analytic`.
pub struct MegaPowerSystem<'a, N: NetworkModel> {
    /// The class-compressed configuration.
    pub cluster: &'a ClassedCluster,
    /// The interconnect model.
    pub network: &'a N,
}

impl<'a, N: NetworkModel> MegaPowerSystem<'a, N> {
    /// Binds the power method to a classed configuration.
    pub fn new(cluster: &'a ClassedCluster, network: &'a N) -> Self {
        MegaPowerSystem { cluster, network }
    }

    /// Seconds the serial hub scatter alone takes at size `n` — the
    /// zero-sweep protocol, priced by whichever engine is active. The
    /// mega ceiling table divides work by this to get the BSF-style
    /// saturation bound `E_s ≤ W/(C·T_scatter)`.
    pub fn scatter_floor_secs(&self, n: usize) -> f64 {
        if hetsim_mpi::analytic_enabled() {
            power_mega(self.cluster, self.network, n, 0)
                .expect("the mega network prices per class")
                .makespan
                .as_secs()
        } else {
            power_parallel_timed(&self.cluster.materialize(), self.network, n, 0).makespan.as_secs()
        }
    }
}

impl<N: NetworkModel> AlgorithmSystem for MegaPowerSystem<'_, N> {
    fn label(&self) -> String {
        format!("Power on {}", self.cluster.label)
    }
    fn marked_speed_flops(&self) -> f64 {
        self.cluster.marked_speed_flops()
    }
    fn work(&self, n: usize) -> f64 {
        power_work(n, MEGA_POWER_ITERS)
    }
    fn execute(&self, n: usize) -> f64 {
        if hetsim_mpi::analytic_enabled() {
            power_mega(self.cluster, self.network, n, MEGA_POWER_ITERS)
                .expect("the mega network prices per class")
                .makespan
                .as_secs()
        } else {
            power_parallel_timed(&self.cluster.materialize(), self.network, n, MEGA_POWER_ITERS)
                .makespan
                .as_secs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_cluster::sunwulf;

    #[test]
    fn ge_system_measures_sane_efficiency() {
        let cluster = sunwulf::ge_config(2);
        let net = sunwulf::sunwulf_network();
        let sys = GeSystem::new(&cluster, &net);
        let m = sys.measure(300);
        let e = m.speed_efficiency();
        assert!(e > 0.05 && e < 0.95, "E_s(300) = {e}");
    }

    #[test]
    fn ge_two_node_anchor_matches_paper_ballpark() {
        // The paper's surviving anchor: on two nodes, E_s ≈ 0.3 near
        // N = 310 (measured 0.312 at N = 310).
        let cluster = sunwulf::ge_config(2);
        let net = sunwulf::sunwulf_network();
        let sys = GeSystem::new(&cluster, &net);
        let e310 = sys.measure(310).speed_efficiency();
        assert!((0.2..=0.45).contains(&e310), "E_s(310) = {e310}, expected near the paper's 0.312");
    }

    #[test]
    fn mm_system_is_more_efficient_than_ge_at_scale() {
        let net = sunwulf::sunwulf_network();
        let ge_cluster = sunwulf::ge_config(8);
        let mm_cluster = sunwulf::mm_config(8);
        let ge = GeSystem::new(&ge_cluster, &net);
        let mm = MmSystem::new(&mm_cluster, &net);
        let n = 256;
        assert!(
            mm.measure(n).speed_efficiency() > ge.measure(n).speed_efficiency(),
            "MM should out-scale GE"
        );
    }

    #[test]
    fn stencil_outscales_both_paper_kernels_at_fixed_size() {
        // Halo-only communication: at a matched problem size the stencil
        // wastes the least of its marked speed.
        let net = sunwulf::sunwulf_network();
        let cluster = sunwulf::ge_config(8);
        let st = StencilSystem::new(&cluster, &net);
        let ge = GeSystem::new(&cluster, &net);
        let n = 256;
        assert!(
            st.measure(n).speed_efficiency() > ge.measure(n).speed_efficiency(),
            "stencil should out-scale GE"
        );
    }

    #[test]
    fn stencil_iters_grow_with_n() {
        assert_eq!(stencil_iters(8), 1);
        assert_eq!(stencil_iters(64), 8);
        assert_eq!(stencil_iters(65), 9);
        assert!(stencil_iters(1) >= 1);
    }

    #[test]
    fn labels_identify_configurations() {
        let cluster = sunwulf::ge_config(4);
        let net = sunwulf::sunwulf_network();
        assert_eq!(GeSystem::new(&cluster, &net).label(), "GE on sunwulf-ge-4");
    }
}
