//! Assembling and exporting the telemetry documents (`--stats-out`,
//! `--profile-out`) and the per-id stderr summaries.
//!
//! [`report`] merges the three counter sources — the engine
//! (`hetsim_mpi::telemetry`), the memo cache ([`crate::memo`]), and the
//! worker pool ([`crate::pool`]) — into one
//! [`hetsim_obs::TelemetryReport`]. The stats document is deterministic
//! (byte-identical across runs and `--jobs`; engine-dependent sections
//! change only with `--no-analytic`). The profile document is the
//! opposite by design: wall-clock laps and per-worker cell counts,
//! flagged `"deterministic": false` (DESIGN.md §11).

use crate::stopwatch::Stopwatch;
use crate::{memo, pool};
use hetsim_obs::{Json, MemoKernelStats, PoolStats, TelemetryReport};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Snapshots every deterministic counter into one combined report.
pub fn report() -> TelemetryReport {
    let memo = memo::snapshot()
        .into_iter()
        .map(|(kernel, c)| {
            (
                kernel.to_string(),
                MemoKernelStats {
                    touches: c.touches,
                    entries: c.entries,
                    hits: c.touches - c.entries,
                    bypasses: c.bypasses,
                },
            )
        })
        .collect();
    let p = pool::snapshot();
    TelemetryReport {
        engine: hetsim_mpi::telemetry::snapshot(),
        memo,
        pool: PoolStats {
            batches: p.batches,
            cells: p.cells,
            queue_high_water: p.queue_high_water,
        },
    }
}

/// Writes the deterministic stats document (`--stats-out`).
pub fn write_stats(path: &Path, report: &TelemetryReport) -> io::Result<()> {
    std::fs::write(path, format!("{}\n", report.to_json()))
}

/// Writes the wall-clock profile document (`--profile-out`). Everything
/// in it is non-deterministic except the shape; the document says so
/// itself (`"deterministic": false`).
pub fn write_profile(path: &Path, watch: &Stopwatch) -> io::Result<()> {
    let (record_ns, simulate_ns) = hetsim_mpi::telemetry::wall_clock_ns();
    let ids = watch
        .laps()
        .iter()
        .map(|(label, us)| (label.clone(), Json::int(*us)))
        .collect::<BTreeMap<_, _>>();
    let worker_cells = Json::Arr(pool::worker_cells().into_iter().map(Json::int).collect());
    let doc = Json::Obj(
        [
            ("deterministic".to_string(), Json::Bool(false)),
            ("ids".to_string(), Json::Obj(ids)),
            (
                "phases".to_string(),
                Json::Obj(
                    [
                        ("record_us".to_string(), Json::int(record_ns / 1_000)),
                        ("simulate_us".to_string(), Json::int(simulate_ns / 1_000)),
                    ]
                    .into_iter()
                    .collect(),
                ),
            ),
            (
                "pool".to_string(),
                Json::Obj(
                    [
                        ("worker_cells".to_string(), worker_cells),
                        ("workers".to_string(), Json::int(pool::jobs() as u64)),
                    ]
                    .into_iter()
                    .collect(),
                ),
            ),
            ("schema".to_string(), Json::str("hetscale-profile/1")),
            ("total_us".to_string(), Json::int(watch.total_us())),
        ]
        .into_iter()
        .collect(),
    );
    std::fs::write(path, format!("{doc}\n"))
}

/// Per-id telemetry deltas for the one-line stderr summaries.
///
/// Counters are process-cumulative; this tracks the totals at the last
/// [`IdSummaries::line`] call so each line reports only the id's own
/// contribution.
pub struct IdSummaries {
    analytic_cells: u64,
    fallbacks: u64,
    memo_touches: u64,
    memo_hits: u64,
    agg_ranks: u64,
    ranks: u64,
}

struct IdDelta {
    analytic: u64,
    fallbacks: u64,
    touches: u64,
    hits: u64,
    agg_ranks: u64,
    ranks: u64,
}

impl IdSummaries {
    /// Starts from the counters' current state.
    pub fn new() -> IdSummaries {
        let mut s = IdSummaries {
            analytic_cells: 0,
            fallbacks: 0,
            memo_touches: 0,
            memo_hits: 0,
            agg_ranks: 0,
            ranks: 0,
        };
        s.advance();
        s
    }

    fn advance(&mut self) -> IdDelta {
        let engine = hetsim_mpi::telemetry::snapshot();
        let memo = memo::snapshot();
        let touches: u64 = memo.values().map(|c| c.touches).sum();
        let hits: u64 = memo.values().map(|c| c.touches - c.entries).sum();
        let analytic = engine.analytic_cells();
        let fallbacks = engine.event_driven_fallback;
        let delta = IdDelta {
            analytic: analytic - self.analytic_cells,
            fallbacks: fallbacks - self.fallbacks,
            touches: touches - self.memo_touches,
            hits: hits - self.memo_hits,
            agg_ranks: engine.aggregated_ranks - self.agg_ranks,
            ranks: engine.ranks_simulated - self.ranks,
        };
        self.analytic_cells = analytic;
        self.fallbacks = fallbacks;
        self.memo_touches = touches;
        self.memo_hits = hits;
        self.agg_ranks = engine.aggregated_ranks;
        self.ranks = engine.ranks_simulated;
        delta
    }

    /// The summary line for everything since the previous call:
    /// `telemetry {id}: analytic P%, memo hit Q%, agg R%` (`-` where the
    /// id priced nothing eligible; `agg` is the share of simulated ranks
    /// priced through class-aggregated representatives).
    pub fn line(&mut self, id: &str) -> String {
        let d = self.advance();
        let coverage = percent(d.analytic, d.analytic + d.fallbacks);
        let hit_rate = percent(d.hits, d.touches);
        let agg = percent(d.agg_ranks, d.ranks);
        format!("telemetry {id}: analytic {coverage}, memo hit {hit_rate}, agg {agg}")
    }
}

impl Default for IdSummaries {
    fn default() -> IdSummaries {
        IdSummaries::new()
    }
}

fn percent(num: u64, denom: u64) -> String {
    if denom == 0 {
        return "-".to_string();
    }
    let value = 100.0 * num as f64 / denom as f64;
    if value.fract() == 0.0 {
        format!("{value:.0}%")
    } else {
        format!("{value:.1}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_formats_integers_fractions_and_empty_denominators() {
        assert_eq!(percent(3, 0), "-");
        assert_eq!(percent(3, 3), "100%");
        assert_eq!(percent(0, 4), "0%");
        assert_eq!(percent(7, 8), "87.5%");
    }

    #[test]
    fn report_merges_all_three_sources() {
        let report = report();
        // Hits are derived, never stored: touches - entries per kernel.
        for stats in report.memo.values() {
            assert_eq!(stats.hits, stats.touches - stats.entries);
        }
        // The document serializes and parses under the declared schema.
        let text = report.to_json().to_string();
        let parsed = Json::parse(&text).expect("stats document parses");
        let doc = parsed.as_obj().expect("object top level");
        assert_eq!(doc["schema"].as_str(), Some("hetscale-telemetry/2"));
    }

    #[test]
    fn id_summaries_report_deltas_not_totals() {
        let mut sums = IdSummaries::new();
        // No counter movement between construction and the first line:
        // every denominator for this "id" may be zero or tiny, but the
        // line always has the fixed shape.
        let line = sums.line("t0");
        assert!(line.starts_with("telemetry t0: analytic "));
        assert!(line.contains(", memo hit "));
        assert!(line.contains(", agg "));
    }
}
