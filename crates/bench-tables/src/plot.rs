//! Terminal scatter/line plots — the "figure" half of reproducing
//! figures. Renders one or more `(x, y)` series on a character grid
//! with axes, per-series glyphs, and an optional horizontal target line
//! (the `E_s = 0.3` threshold the paper reads its required `N` from).

use std::fmt;

/// One plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Plot glyph for this series' points.
    pub glyph: char,
    /// `(x, y)` samples.
    pub points: Vec<(f64, f64)>,
}

/// A multi-series character plot.
#[derive(Debug, Clone, PartialEq)]
pub struct AsciiPlot {
    /// Plot title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Plot area width in characters.
    pub width: usize,
    /// Plot area height in characters.
    pub height: usize,
    series: Vec<Series>,
    hline: Option<(f64, String)>,
}

/// Default glyph cycle for successive series.
pub const GLYPHS: [char; 6] = ['o', '+', 'x', '*', '#', '@'];

impl AsciiPlot {
    /// Creates an empty plot with an 72×20 character canvas.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> AsciiPlot {
        AsciiPlot {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            width: 72,
            height: 20,
            series: Vec::new(),
            hline: None,
        }
    }

    /// Adds a series; the glyph cycles through [`GLYPHS`].
    ///
    /// # Panics
    /// Panics when a point is not finite.
    pub fn add_series(&mut self, label: impl Into<String>, points: Vec<(f64, f64)>) {
        assert!(
            points.iter().all(|(x, y)| x.is_finite() && y.is_finite()),
            "plot points must be finite"
        );
        let glyph = GLYPHS[self.series.len() % GLYPHS.len()];
        self.series.push(Series { label: label.into(), glyph, points });
    }

    /// Draws a horizontal reference line at `y` with a margin label
    /// (e.g. the target efficiency).
    pub fn with_hline(&mut self, y: f64, label: impl Into<String>) {
        assert!(y.is_finite(), "hline level must be finite");
        self.hline = Some((y, label.into()));
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut pts = self.series.iter().flat_map(|s| s.points.iter());
        let first = pts.next()?;
        let (mut x0, mut x1, mut y0, mut y1) = (first.0, first.0, first.1, first.1);
        for &(x, y) in pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if let Some((h, _)) = &self.hline {
            y0 = y0.min(*h);
            y1 = y1.max(*h);
        }
        // Degenerate ranges get a unit of padding so division is safe.
        if x0 == x1 {
            x1 = x0 + 1.0;
        }
        if y0 == y1 {
            y1 = y0 + 1.0;
        }
        Some((x0, x1, y0, y1))
    }
}

impl fmt::Display for AsciiPlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let Some((x0, x1, y0, y1)) = self.bounds() else {
            return writeln!(f, "== {} == (no data)", self.title);
        };
        let (w, h) = (self.width, self.height);
        let mut grid = vec![vec![' '; w]; h];

        // Reference line first so points draw over it.
        if let Some((level, _)) = &self.hline {
            let row = ((y1 - level) / (y1 - y0) * (h - 1) as f64).round() as usize;
            if row < h {
                for cell in grid[row].iter_mut() {
                    *cell = '-';
                }
            }
        }
        for s in &self.series {
            for &(x, y) in &s.points {
                let col = ((x - x0) / (x1 - x0) * (w - 1) as f64).round() as usize;
                let row = ((y1 - y) / (y1 - y0) * (h - 1) as f64).round() as usize;
                if row < h && col < w {
                    grid[row][col] = s.glyph;
                }
            }
        }

        writeln!(f, "== {} ==", self.title)?;
        let y_hi = format!("{y1:.3}");
        let y_lo = format!("{y0:.3}");
        let margin = y_hi.len().max(y_lo.len()).max(self.y_label.chars().count());
        writeln!(f, "{:>margin$}", self.y_label, margin = margin)?;
        for (i, row) in grid.iter().enumerate() {
            let tick = if i == 0 {
                y_hi.clone()
            } else if i == h - 1 {
                y_lo.clone()
            } else {
                String::new()
            };
            writeln!(f, "{tick:>margin$} |{}|", row.iter().collect::<String>(), margin = margin)?;
        }
        writeln!(f, "{:>margin$} +{}+", "", "-".repeat(w), margin = margin)?;
        let lo_tick = format!("{x0:.0}");
        let hi_tick = format!("{x1:.0}");
        let pad = w.saturating_sub(lo_tick.len() + hi_tick.len()).max(1);
        writeln!(f, "{:>margin$}  {lo_tick}{}{hi_tick}", "", " ".repeat(pad), margin = margin)?;
        writeln!(f, "{:>margin$}  ({})", "", self.x_label, margin = margin)?;
        for s in &self.series {
            writeln!(f, "   {}  {}", s.glyph, s.label)?;
        }
        if let Some((level, label)) = &self.hline {
            writeln!(f, "   -  {label} (y = {level})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_plot() -> AsciiPlot {
        let mut p = AsciiPlot::new("demo", "N", "E_s");
        p.add_series("2 nodes", vec![(100.0, 0.1), (200.0, 0.3), (400.0, 0.6)]);
        p.add_series("4 nodes", vec![(100.0, 0.05), (200.0, 0.15), (400.0, 0.35)]);
        p.with_hline(0.3, "target");
        p
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let text = format!("{}", demo_plot());
        assert!(text.contains("== demo =="));
        assert!(text.contains("E_s"));
        assert!(text.contains("(N)"));
        assert!(text.contains("o  2 nodes"));
        assert!(text.contains("+  4 nodes"));
        assert!(text.contains("target (y = 0.3)"));
    }

    #[test]
    fn points_land_in_the_grid() {
        let text = format!("{}", demo_plot());
        assert!(text.matches('o').count() >= 3, "all series-1 points visible");
        assert!(text.matches('+').count() >= 3);
        assert!(text.contains('-'), "reference line drawn");
    }

    #[test]
    fn higher_y_draws_higher_on_screen() {
        let mut p = AsciiPlot::new("t", "x", "y");
        p.add_series("s", vec![(0.0, 0.0), (1.0, 1.0)]);
        let text = format!("{p}");
        let rows: Vec<&str> = text.lines().filter(|l| l.contains('|')).collect();
        let top_hit = rows.iter().position(|l| l.contains('o')).unwrap();
        let bottom_hit = rows.iter().rposition(|l| l.contains('o')).unwrap();
        assert!(top_hit < bottom_hit, "two distinct rows used");
    }

    #[test]
    fn empty_plot_degrades_gracefully() {
        let p = AsciiPlot::new("empty", "x", "y");
        let text = format!("{p}");
        assert!(text.contains("no data"));
    }

    #[test]
    fn degenerate_single_point_is_fine() {
        let mut p = AsciiPlot::new("pt", "x", "y");
        p.add_series("s", vec![(5.0, 5.0)]);
        let text = format!("{p}");
        assert!(text.contains('o'));
    }

    #[test]
    fn glyphs_cycle_across_many_series() {
        let mut p = AsciiPlot::new("many", "x", "y");
        for i in 0..8 {
            p.add_series(format!("s{i}"), vec![(i as f64, i as f64)]);
        }
        assert_eq!(p.series_count(), 8);
        let text = format!("{p}");
        assert!(text.contains("@  s5"));
        assert!(text.contains("o  s6"), "glyphs wrap around");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_points_rejected() {
        let mut p = AsciiPlot::new("bad", "x", "y");
        p.add_series("s", vec![(f64::NAN, 0.0)]);
    }
}
