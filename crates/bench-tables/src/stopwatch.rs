//! Single wall-clock source for the binary's self-timing.
//!
//! Two consumers share it: the `BENCH_TABLES_STOPWATCH=1` stderr line
//! the ci.sh perf gate thresholds, and the `--profile-out` document's
//! total and per-id laps. Both read the *same* [`Stopwatch`], so the
//! gate and the profile can never disagree about what was measured.
//!
//! Wall-clock is inherently non-deterministic; everything here is
//! excluded from the byte-identity guarantees (DESIGN.md §11) and never
//! reaches stdout or the `--stats-out` document.

use std::time::Instant;

/// Wall-clock timer with named laps.
pub struct Stopwatch {
    start: Instant,
    last: Instant,
    laps: Vec<(String, u64)>,
}

impl Stopwatch {
    /// Starts timing now.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Stopwatch {
        let now = Instant::now();
        Stopwatch { start: now, last: now, laps: Vec::new() }
    }

    /// Closes the current lap under `label` (µs since the previous lap
    /// boundary, or since start for the first lap).
    pub fn lap(&mut self, label: &str) {
        let now = Instant::now();
        self.laps.push((label.to_string(), now.duration_since(self.last).as_micros() as u64));
        self.last = now;
    }

    /// The recorded `(label, µs)` laps, in recording order.
    pub fn laps(&self) -> &[(String, u64)] {
        &self.laps
    }

    /// Total µs since construction.
    pub fn total_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// The exact stderr line the ci.sh perf gate parses.
    pub fn stderr_line(&self) -> String {
        format!("stopwatch: {} us", self.total_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_accumulate_in_order_and_line_has_gate_shape() {
        let mut watch = Stopwatch::new();
        watch.lap("first");
        watch.lap("second");
        assert_eq!(watch.laps().len(), 2);
        assert_eq!(watch.laps()[0].0, "first");
        assert_eq!(watch.laps()[1].0, "second");
        let line = watch.stderr_line();
        assert!(line.starts_with("stopwatch: "));
        assert!(line.ends_with(" us"));
        let middle = &line["stopwatch: ".len()..line.len() - " us".len()];
        assert!(middle.parse::<u64>().is_ok(), "gate parses {middle:?} as an integer");
    }
}
