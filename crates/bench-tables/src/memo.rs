//! Cross-cell memoization of timed-kernel runs.
//!
//! Many experiments price the *same* `(kernel, cluster, network, N)`
//! cell: the GE ladder rung reappears in the figure-1 plot, the §4.4
//! inversion probes revisit ladder sizes, and the isospeed/isoefficiency
//! baselines re-measure the curves the tables already produced. Every
//! such cell is a pure function of its structural inputs (the timing
//! engines are deterministic), so a process-wide cache returns the
//! previously computed [`TimingOutcome`] — bit-identical by
//! construction, which is why memoization cannot perturb any table.
//!
//! Keys are *structural fingerprints*, not labels: the cluster's
//! per-rank speed bits ([`ClusterSpec::fingerprint`]), the network
//! model's tagged parameter bits ([`NetworkModel::fingerprint`]), and
//! the fault plan's flattened schedule
//! ([`hetsim_cluster::faults::FaultPlan::fingerprint`]). A model
//! without a stable structural identity (`fingerprint() == None`)
//! bypasses the cache entirely.
//!
//! The cache sits *behind* the worker pool: workers race only on the
//! map lock, never on cell results, and assembly order stays cell
//! order — `--jobs` byte-identity is untouched. Two workers may compute
//! the same cell concurrently (the lock is released during compute);
//! both results are identical, so last-insert-wins is harmless.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use hetsim_cluster::cluster::ClusterSpec;
use hetsim_cluster::faults::FaultPlan;
use hetsim_cluster::network::NetworkModel;
use kernels::TimingOutcome;

/// Structural identity of one timed-kernel cell.
#[derive(Hash, PartialEq, Eq)]
struct MemoKey {
    kernel: &'static str,
    cluster: Vec<u64>,
    network: Vec<u64>,
    n: usize,
    faults: Option<Vec<u64>>,
}

static CACHE: OnceLock<Mutex<HashMap<MemoKey, TimingOutcome>>> = OnceLock::new();

/// Returns the memoized outcome for the cell, computing (and caching)
/// it on first touch. `compute` must be the pure timed-kernel run the
/// key describes; `kernel` must also pin any hidden size parameters
/// (e.g. the stencil's `iters(n)` sweep count, a pure function of `n`).
pub fn cached<N: NetworkModel>(
    kernel: &'static str,
    cluster: &ClusterSpec,
    network: &N,
    n: usize,
    faults: Option<&FaultPlan>,
    compute: impl FnOnce() -> TimingOutcome,
) -> TimingOutcome {
    let Some(net_fp) = network.fingerprint() else {
        return compute();
    };
    let key = MemoKey {
        kernel,
        cluster: cluster.fingerprint(),
        network: net_fp,
        n,
        faults: faults.map(FaultPlan::fingerprint),
    };
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("memo cache poisoned").get(&key) {
        return hit.clone();
    }
    let out = compute();
    cache.lock().expect("memo cache poisoned").insert(key, out.clone());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_cluster::network::{JitteredNetwork, MpichEthernet};
    use hetsim_cluster::sunwulf;
    use kernels::ge::ge_parallel_timed;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn second_touch_skips_compute_and_matches() {
        let cluster = sunwulf::ge_config(3);
        // A parameter point no other test uses, so the first touch
        // really computes.
        let net = MpichEthernet::new(0.31e-3, 1.01e8);
        let calls = AtomicUsize::new(0);
        let run = || {
            cached("ge", &cluster, &net, 97, None, || {
                calls.fetch_add(1, Ordering::Relaxed);
                ge_parallel_timed(&cluster, &net, 97)
            })
        };
        let first = run();
        let second = run();
        assert_eq!(calls.load(Ordering::Relaxed), 1, "second touch must hit the cache");
        assert_eq!(first, second);
        assert_eq!(first, ge_parallel_timed(&cluster, &net, 97));
    }

    #[test]
    fn distinct_networks_do_not_collide() {
        let cluster = sunwulf::ge_config(2);
        let a = JitteredNetwork::new(sunwulf::sunwulf_network(), 0.05, 1);
        let b = JitteredNetwork::new(sunwulf::sunwulf_network(), 0.05, 2);
        let ra = cached("ge", &cluster, &a, 83, None, || ge_parallel_timed(&cluster, &a, 83));
        let rb = cached("ge", &cluster, &b, 83, None, || ge_parallel_timed(&cluster, &b, 83));
        assert_ne!(ra.makespan, rb.makespan, "different seeds must key different cells");
        assert_eq!(rb, ge_parallel_timed(&cluster, &b, 83));
    }

    #[test]
    fn fingerprintless_networks_bypass_the_cache() {
        struct Opaque;
        impl NetworkModel for Opaque {
            fn p2p_time(&self, _bytes: u64) -> f64 {
                1e-4
            }
            fn bcast_time(&self, _p: usize, _bytes: u64) -> f64 {
                1e-4
            }
            fn barrier_time(&self, _p: usize) -> f64 {
                1e-4
            }
            fn gather_time(&self, _sizes: &[u64], _root: usize) -> f64 {
                1e-4
            }
            fn label(&self) -> &'static str {
                "opaque"
            }
        }
        let cluster = sunwulf::ge_config(2);
        let calls = AtomicUsize::new(0);
        for _ in 0..2 {
            cached("ge", &cluster, &Opaque, 61, None, || {
                calls.fetch_add(1, Ordering::Relaxed);
                ge_parallel_timed(&cluster, &Opaque, 61)
            });
        }
        assert_eq!(calls.load(Ordering::Relaxed), 2, "no fingerprint — every touch computes");
    }
}
