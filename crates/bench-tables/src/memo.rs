//! Cross-cell memoization of timed-kernel runs.
//!
//! Many experiments price the *same* `(kernel, cluster, network, N)`
//! cell: the GE ladder rung reappears in the figure-1 plot, the §4.4
//! inversion probes revisit ladder sizes, and the isospeed/isoefficiency
//! baselines re-measure the curves the tables already produced. Every
//! such cell is a pure function of its structural inputs (the timing
//! engines are deterministic), so a process-wide cache returns the
//! previously computed [`TimingOutcome`] — bit-identical by
//! construction, which is why memoization cannot perturb any table.
//!
//! Keys are *structural fingerprints*, not labels: the cluster's
//! per-rank speed bits ([`ClusterSpec::fingerprint`]), the network
//! model's tagged parameter bits ([`NetworkModel::fingerprint`]), and
//! the fault plan's flattened schedule
//! ([`hetsim_cluster::faults::FaultPlan::fingerprint`]). A model
//! without a stable structural identity (`fingerprint() == None`)
//! bypasses the cache entirely.
//!
//! The cache sits *behind* the worker pool: workers race only on the
//! map lock, never on cell results, and assembly order stays cell
//! order — `--jobs` byte-identity is untouched. Each cell is an
//! `Arc<OnceLock<_>>` slot handed out under the map lock, so every cell
//! computes **exactly once** even when two workers touch it
//! concurrently (the second blocks on `get_or_init` instead of
//! recomputing), which makes the per-kernel touch/entry counters in
//! [`snapshot`] pure functions of the touch multiset — byte-stable
//! across runs and `--jobs` values (DESIGN.md §11).

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};

use hetsim_cluster::cluster::ClusterSpec;
use hetsim_cluster::faults::FaultPlan;
use hetsim_cluster::network::NetworkModel;
use kernels::TimingOutcome;
use parking_lot::Mutex;

/// Structural identity of one timed-kernel cell.
#[derive(Hash, PartialEq, Eq)]
struct MemoKey {
    kernel: &'static str,
    cluster: Vec<u64>,
    network: Vec<u64>,
    n: usize,
    faults: Option<Vec<u64>>,
}

/// One cell: the result slot plus how many lookups landed on it.
struct Slot {
    cell: Arc<OnceLock<TimingOutcome>>,
    touches: u64,
}

static CACHE: OnceLock<Mutex<HashMap<MemoKey, Slot>>> = OnceLock::new();
static BYPASSES: Mutex<BTreeMap<&'static str, u64>> = Mutex::new(BTreeMap::new());

/// Per-kernel memo-cache counters (see [`snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoCounts {
    /// Lookups against fingerprintable networks.
    pub touches: u64,
    /// Distinct cells those lookups created (first touches).
    pub entries: u64,
    /// Lookups skipped because the network has no fingerprint.
    pub bypasses: u64,
}

/// Returns the memoized outcome for the cell, computing (and caching)
/// it on first touch. `compute` must be the pure timed-kernel run the
/// key describes; `kernel` must also pin any hidden size parameters
/// (e.g. the stencil's `iters(n)` sweep count, a pure function of `n`).
pub fn cached<N: NetworkModel>(
    kernel: &'static str,
    cluster: &ClusterSpec,
    network: &N,
    n: usize,
    faults: Option<&FaultPlan>,
    compute: impl FnOnce() -> TimingOutcome,
) -> TimingOutcome {
    let Some(net_fp) = network.fingerprint() else {
        *BYPASSES.lock().entry(kernel).or_insert(0) += 1;
        return compute();
    };
    let key = MemoKey {
        kernel,
        cluster: cluster.fingerprint(),
        network: net_fp,
        n,
        faults: faults.map(FaultPlan::fingerprint),
    };
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let cell = {
        let mut map = cache.lock();
        let slot =
            map.entry(key).or_insert_with(|| Slot { cell: Arc::new(OnceLock::new()), touches: 0 });
        slot.touches += 1;
        Arc::clone(&slot.cell)
    };
    cell.get_or_init(compute).clone()
}

/// Per-kernel counters: touches, entries (distinct cells), bypasses.
/// Hits are the difference — every touch after a cell's first is served
/// from the cache by construction.
pub fn snapshot() -> BTreeMap<&'static str, MemoCounts> {
    let mut out: BTreeMap<&'static str, MemoCounts> = BTreeMap::new();
    if let Some(cache) = CACHE.get() {
        for (key, slot) in cache.lock().iter() {
            let counts = out.entry(key.kernel).or_default();
            counts.touches += slot.touches;
            counts.entries += 1;
        }
    }
    for (&kernel, &bypasses) in BYPASSES.lock().iter() {
        out.entry(kernel).or_default().bypasses += bypasses;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_cluster::network::{JitteredNetwork, MpichEthernet};
    use hetsim_cluster::sunwulf;
    use kernels::ge::ge_parallel_timed;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn second_touch_skips_compute_and_matches() {
        let cluster = sunwulf::ge_config(3);
        // A parameter point no other test uses, so the first touch
        // really computes.
        let net = MpichEthernet::new(0.31e-3, 1.01e8);
        let calls = AtomicUsize::new(0);
        let run = || {
            cached("ge", &cluster, &net, 97, None, || {
                calls.fetch_add(1, Ordering::Relaxed);
                ge_parallel_timed(&cluster, &net, 97)
            })
        };
        let first = run();
        let second = run();
        assert_eq!(calls.load(Ordering::Relaxed), 1, "second touch must hit the cache");
        assert_eq!(first, second);
        assert_eq!(first, ge_parallel_timed(&cluster, &net, 97));
    }

    #[test]
    fn distinct_networks_do_not_collide() {
        let cluster = sunwulf::ge_config(2);
        let a = JitteredNetwork::new(sunwulf::sunwulf_network(), 0.05, 1);
        let b = JitteredNetwork::new(sunwulf::sunwulf_network(), 0.05, 2);
        let ra = cached("ge", &cluster, &a, 83, None, || ge_parallel_timed(&cluster, &a, 83));
        let rb = cached("ge", &cluster, &b, 83, None, || ge_parallel_timed(&cluster, &b, 83));
        assert_ne!(ra.makespan, rb.makespan, "different seeds must key different cells");
        assert_eq!(rb, ge_parallel_timed(&cluster, &b, 83));
    }

    #[test]
    fn fingerprintless_networks_bypass_the_cache() {
        struct Opaque;
        impl NetworkModel for Opaque {
            fn p2p_time(&self, _bytes: u64) -> f64 {
                1e-4
            }
            fn bcast_time(&self, _p: usize, _bytes: u64) -> f64 {
                1e-4
            }
            fn barrier_time(&self, _p: usize) -> f64 {
                1e-4
            }
            fn gather_time(&self, _sizes: &[u64], _root: usize) -> f64 {
                1e-4
            }
            fn label(&self) -> &'static str {
                "opaque"
            }
        }
        let cluster = sunwulf::ge_config(2);
        let calls = AtomicUsize::new(0);
        for _ in 0..2 {
            cached("memo-bypass-test", &cluster, &Opaque, 61, None, || {
                calls.fetch_add(1, Ordering::Relaxed);
                ge_parallel_timed(&cluster, &Opaque, 61)
            });
        }
        assert_eq!(calls.load(Ordering::Relaxed), 2, "no fingerprint — every touch computes");
        let counts = snapshot()["memo-bypass-test"];
        assert_eq!(counts.bypasses, 2);
        assert_eq!(counts.touches, 0, "bypasses are not cache touches");
    }

    #[test]
    fn snapshot_pins_touches_and_entries_for_overlapping_ladders() {
        // Two "ladders" under a kernel label no other test uses, sharing
        // the rung n=40: four touches land on three distinct cells, so
        // exactly one touch is a hit.
        let cluster = sunwulf::ge_config(2);
        let net = MpichEthernet::new(0.29e-3, 1.07e8);
        for ladder in [[40usize, 56], [40, 72]] {
            for n in ladder {
                cached("memo-stats-test", &cluster, &net, n, None, || {
                    ge_parallel_timed(&cluster, &net, n)
                });
            }
        }
        let counts = snapshot()["memo-stats-test"];
        assert_eq!(counts.touches, 4);
        assert_eq!(counts.entries, 3);
        assert_eq!(counts.touches - counts.entries, 1, "the shared rung hits once");
        assert_eq!(counts.bypasses, 0);
    }
}
