//! Plain-text and CSV rendering of experiment tables.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A titled table of string cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title, printed above the grid.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each must have `headers.len()` cells (enforced by
    /// [`Table::push_row`]).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the grid (assumptions, targets).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders as CSV (headers + rows; title and notes as `#` comments).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = format!("# {}\n", self.title);
        for note in &self.notes {
            out.push_str(&format!("# {note}\n"));
        }
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths over headers and cells.
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let header_line: Vec<String> =
            self.headers.iter().zip(&widths).map(|(h, w)| format!("{h:>w$}", w = w)).collect();
        writeln!(f, "{}", header_line.join("  "))?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (cols.max(1) - 1)))?;
        for row in &self.rows {
            let line: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a float with engineering-friendly precision for table cells.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["N", "E_s"]);
        t.push_row(vec!["100".into(), "0.25".into()]);
        t.push_row(vec!["200".into(), "0.31".into()]);
        t.push_note("target 0.3");
        t
    }

    #[test]
    fn display_contains_everything() {
        let s = format!("{}", sample());
        assert!(s.contains("Demo"));
        assert!(s.contains("E_s"));
        assert!(s.contains("0.31"));
        assert!(s.contains("target 0.3"));
    }

    #[test]
    fn columns_align() {
        let s = format!("{}", sample());
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows right-align: the last char column of "N" values
        // lines up.
        assert!(lines[1].trim_start().starts_with('N'));
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn ragged_row_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes_and_structures() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec!["1,5".into(), "plain".into()]);
        t.push_note("n");
        let csv = t.to_csv();
        assert!(csv.starts_with("# T\n# n\na,b\n"));
        assert!(csv.contains("\"1,5\",plain"));
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.3123), "0.3123");
        assert_eq!(fnum(310.4), "310.4");
        assert!(fnum(2.07e7).contains('e'));
        assert!(fnum(1e-5).contains('e'));
    }
}
