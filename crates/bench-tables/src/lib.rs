//! # bench-tables — regenerating the paper's evaluation section
//!
//! One function per table/figure of the paper, returning a structured
//! [`table::Table`] that the `bench-tables` binary prints (and can dump
//! as CSV). The experiment index lives in DESIGN.md; the paper-vs-
//! measured record lives in EXPERIMENTS.md.
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | t1 | Table 1 — marked speeds of Sunwulf nodes | [`experiments::t1::table1`] |
//! | t2 | Table 2 — GE on two nodes | [`experiments::t2::table2`] |
//! | f1 | Fig. 1 — speed-efficiency on two nodes + required N | [`experiments::f1::figure1`] |
//! | t3/t4 | Tables 3, 4 — required rank and measured ψ (GE) | [`experiments::t3t4::table3_and_4`] |
//! | f2/t5 | Fig. 2, Table 5 — MM curves and measured ψ | [`experiments::f2t5::figure2_and_table5`] |
//! | t6/t7 | Tables 6, 7 — predicted required rank and ψ | [`experiments::t6t7::table6_and_7`] |
//! | x1 | §4.4.3 — GE vs MM comparison | [`experiments::compare::comparison`] |
//! | x2 | extension — three-combination comparison (+ stencil) | [`experiments::x2::three_way_comparison`] |
//! | d1 | extension — overhead decomposition by operation | [`experiments::decomp::overhead_decomposition`] |
//! | b1 | extension — baseline metrics side by side | [`experiments::baselines::baseline_comparison`] |
//! | a1 | ablation — distribution strategy | [`experiments::ablate::ablate_distribution`] |
//! | a2 | ablation — network-model fidelity | [`experiments::ablate::ablate_network`] |
//! | a3 | ablation — trend-line degree | [`experiments::ablate::ablate_fit_degree`] |
//! | e1 | extension — multi-parameter marked performance | [`experiments::ext::extension_marked_performance`] |
//!
//! Beyond the tables, the binary's `--trace-out DIR` and
//! `--metrics-out FILE` flags export per-operation traces and a
//! combined metrics document for the kernels (see [`obs`]);
//! `--stats-out FILE` exports the deterministic telemetry document and
//! `--profile-out FILE` the wall-clock profile (see [`stats`],
//! DESIGN.md §11).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod memo;
pub mod obs;
pub mod params;
pub mod plot;
pub mod pool;
pub mod seed;
pub mod stats;
pub mod stopwatch;
pub mod systems;
pub mod table;

pub use params::ExperimentParams;
pub use plot::AsciiPlot;
pub use systems::{GeSystem, MmSystem, PowerSystem, StencilSystem};
pub use table::Table;
