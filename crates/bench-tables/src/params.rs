//! Shared experiment parameters: ladders, sweeps, targets.
//!
//! Everything tunable about the reproduction lives here, in one place,
//! with the paper's corresponding choice noted. `ExperimentParams::full()`
//! mirrors the paper (ladders to 32 nodes); `ExperimentParams::quick()`
//! shrinks sweeps for smoke tests and CI.

use serde::{Deserialize, Serialize};

/// Tunable knobs for the experiment suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// Node counts of the GE ladder (paper: 2, 4, 8, 16, 32).
    pub ge_ladder: Vec<usize>,
    /// Node counts of the MM ladder (paper: 2, 4, 8, 16, 32).
    pub mm_ladder: Vec<usize>,
    /// Target speed-efficiency for GE (paper: 0.3).
    pub ge_target: f64,
    /// Target speed-efficiency for MM (paper: 0.2).
    pub mm_target: f64,
    /// Problem sizes swept for the GE efficiency curves.
    pub ge_sizes: Vec<usize>,
    /// Problem sizes swept for the MM efficiency curves.
    pub mm_sizes: Vec<usize>,
    /// Trend-line polynomial degree (paper: "polynomial trend line").
    pub fit_degree: usize,
}

impl ExperimentParams {
    /// The paper-scale configuration.
    pub fn full() -> ExperimentParams {
        ExperimentParams {
            ge_ladder: vec![2, 4, 8, 16, 32],
            mm_ladder: vec![2, 4, 8, 16, 32],
            ge_target: 0.3,
            mm_target: 0.2,
            // Geometric-ish sweep wide enough that every rung's required
            // N (from ~290 at p = 2 to ~4700 at p = 32) is interior.
            ge_sizes: vec![60, 120, 240, 420, 700, 1100, 1700, 2600, 3800, 5200],
            // MM saturates fast (overhead is O(N²) against O(N³) work);
            // small sizes resolve the target crossing (required N runs
            // from ~30 at p = 2 to ~230 at p = 32), larger ones the
            // curve shape.
            mm_sizes: vec![12, 16, 24, 32, 48, 64, 96, 128, 176, 240, 330, 450],
            fit_degree: 3,
        }
    }

    /// A fast configuration for smoke tests: 3-rung ladders, short sweeps.
    pub fn quick() -> ExperimentParams {
        ExperimentParams {
            ge_ladder: vec![2, 4, 8],
            mm_ladder: vec![2, 4, 8],
            ge_target: 0.3,
            mm_target: 0.2,
            ge_sizes: vec![60, 100, 160, 260, 420, 700, 1100, 1700],
            mm_sizes: vec![12, 16, 24, 32, 48, 64, 96, 128, 176],
            fit_degree: 3,
        }
    }
}

/// Node counts of the ψ-surface sweep (X3). The full sweep extends the
/// paper's ladder onto scaled Sunwulf rungs up to the whole 85-node
/// machine (1 server + 64 SunBlades + 20 V210s ⇒ 85 ranks); quick stops
/// at 16 nodes so the smoke run stays fast.
pub fn surface_rungs(quick: bool) -> Vec<usize> {
    if quick {
        vec![2, 4, 8, 16]
    } else {
        vec![2, 4, 8, 16, 32, 64, 85]
    }
}

/// Relative multipliers of the per-rung anchor size — one column of the
/// ψ surface. Wide enough that the target-efficiency crossing is
/// interior at every rung, dense enough near 1.0 that the fitted-trend
/// inversion resolves the crossing sharply.
const SURFACE_GRID: [f64; 9] = [0.45, 0.6, 0.75, 0.9, 1.0, 1.15, 1.35, 1.55, 1.8];

/// Dense problem-size grid for one GE surface rung. The measured GE
/// ladder pins required `N` ≈ 150·p across the paper's rungs (301 at
/// p = 2, 4727 at p = 32 — Table 3), so the anchor extrapolates
/// linearly to the scaled rungs and the grid brackets it.
pub fn surface_ge_sizes(p: usize) -> Vec<usize> {
    let anchor = 150.0 * p as f64;
    SURFACE_GRID.iter().map(|m| (m * anchor).round() as usize).collect()
}

/// Dense problem-size grid for one MM surface rung. MM's required `N`
/// grows sublinearly (≈ 20 at p = 2 crossing to ≈ 210 at p = 32 — the
/// Fig. 2 sweep), consistent with a `N ∝ p^0.86` power law; the anchor
/// follows it so the crossing stays interior out to 85 nodes.
pub fn surface_mm_sizes(p: usize) -> Vec<usize> {
    let anchor = 20.0 * (p as f64 / 2.0).powf(0.856);
    SURFACE_GRID.iter().map(|m| (m * anchor).round().max(4.0) as usize).collect()
}

/// One machine of the X4 mega-scale sweep: a rank count plus the
/// speed-ladder shape of its HEET preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MegaPreset {
    /// Total ranks.
    pub ranks: usize,
    /// Harmonic (Zipf-spread) speed decay instead of the linear ladder
    /// — same endpoints and tier populations, sagging interior tiers.
    pub zipf: bool,
}

impl MegaPreset {
    /// Short tag for table axes: the rank count, with the ladder shape
    /// when it is not the default linear one.
    pub fn tag(&self) -> String {
        if self.zipf {
            format!("{} (zipf)", self.ranks)
        } else {
            self.ranks.to_string()
        }
    }
}

/// Presets of the X4 mega-scale sweep: HEET machines from 10³ to 10⁷
/// ranks, every cell priced in O(classes) through the class-aggregated
/// closed forms. One heavy-tailed (Zipf-spread) rung rides between the
/// 10⁴ and 10⁵ linear machines so the sweep crosses ladder shapes, not
/// just sizes. Quick stops at the 10⁵ preset (the interactive,
/// ci.sh-gated point that is still affordable for the per-rank oracle
/// under `--no-analytic`); full adds the 10⁶ and 10⁷ machines.
pub fn mega_presets(quick: bool) -> Vec<MegaPreset> {
    let mut presets = vec![
        MegaPreset { ranks: 1_000, zipf: false },
        MegaPreset { ranks: 10_000, zipf: false },
        MegaPreset { ranks: 30_000, zipf: true },
        MegaPreset { ranks: 100_000, zipf: false },
    ];
    if !quick {
        presets.push(MegaPreset { ranks: 1_000_000, zipf: false });
        presets.push(MegaPreset { ranks: 10_000_000, zipf: false });
    }
    presets
}

/// Speed-tier cap of the mega HEET machines — the same 8-tier shape the
/// engine-equivalence extremes use at 85 nodes, scaled out.
pub const MEGA_MAX_CLASSES: usize = 8;

/// Marked speed of the slowest mega tier (Mflop/s) — Sunwulf's V210
/// per-CPU class, so the mega machines read as scaled-out Sunwulfs.
pub const MEGA_BASE_MFLOPS: f64 = 45.0;

/// Fastest-to-slowest marked-speed ratio of the mega machines.
pub const MEGA_SPREAD: f64 = 2.4;

/// Fixed sweep count of the mega power-iteration cells. The ladder's
/// `⌈n/4⌉` rule would put `O(n)` collective phases in every cell; a
/// fixed count keeps evaluation `O(classes · iters)` at any rank count.
pub const MEGA_POWER_ITERS: usize = 4;

/// Dense problem-size grid for one MM mega rung. MM's Θ(N³) work
/// against Θ(N²)-byte collectives keeps the target crossing finite;
/// measured across all five presets the crossing sits at `N* ≈ 3.2·p`
/// (the `O(p·α)` scatter/gather serialization is the binding overhead,
/// so `N*` grows linearly, not with `p·log p`). The anchor follows it
/// so the crossing stays interior from 10³ to 10⁷ ranks.
pub fn mega_mm_sizes(p: usize) -> Vec<usize> {
    let anchor = 3.2 * p as f64;
    SURFACE_GRID.iter().map(|m| (m * anchor).round().max(4.0) as usize).collect()
}

/// Dense problem-size grid for one power mega rung. With a fixed sweep
/// count, work is Θ(N²) against the Θ(N²) bytes the hub scatters
/// serially, so `E_s` saturates instead of crossing any target; the
/// grid's job is to reach the plateau. The scatter overtakes the
/// per-sweep `O(p·α)` allgather serialization once
/// `8N²/β ≳ iters·p·α`, i.e. `N ≳ 350·√p` on the Sunwulf network, so
/// an anchor of `1000·√p` puts the top of the grid deep inside the
/// plateau at every preset.
pub fn mega_power_sizes(p: usize) -> Vec<usize> {
    let anchor = 1000.0 * (p as f64).sqrt();
    SURFACE_GRID.iter().map(|m| (m * anchor).round().max(4.0) as usize).collect()
}

/// Relative multipliers of the GE mega anchor. Denser and narrower than
/// [`SURFACE_GRID`]: the GE cells never reach their crossing (see
/// [`mega_ge_sizes`]), so the grid's job is to pin the low-size band
/// the reciprocal trend extrapolates from.
const MEGA_GE_GRID: [f64; 5] = [1.0, 1.25, 1.6, 2.0, 2.5];

/// Dense problem-size grid for one GE mega rung. GE walks Θ(N)
/// lockstep broadcast + barrier rounds, so a cell costs Θ(N·classes)
/// even aggregated — and its target crossing sits near `N* ≈ 150·p`
/// (the X3 surface trend), unaffordable to sample at 10⁷ ranks. The
/// grid instead samples a dense band anchored at `2·p` — above the
/// `n ≈ p` regime change where ranks still hold single rows — and the
/// sweep inverts the *reciprocal* trend
/// ([`scalability::metric::EfficiencyCurve::required_n_extrapolated`]),
/// which reaches crossings beyond the sampled range.
pub fn mega_ge_sizes(p: usize) -> Vec<usize> {
    let anchor = 2.0 * p as f64;
    MEGA_GE_GRID.iter().map(|m| (m * anchor).round().max(4.0) as usize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper_ladders() {
        let p = ExperimentParams::full();
        assert_eq!(p.ge_ladder, vec![2, 4, 8, 16, 32]);
        assert_eq!(p.mm_ladder, vec![2, 4, 8, 16, 32]);
        assert_eq!(p.ge_target, 0.3);
        assert_eq!(p.mm_target, 0.2);
    }

    #[test]
    fn sweeps_are_sorted_and_distinct() {
        for p in [ExperimentParams::full(), ExperimentParams::quick()] {
            assert!(p.ge_sizes.windows(2).all(|w| w[0] < w[1]));
            assert!(p.mm_sizes.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn quick_is_a_strict_subscale_of_full() {
        let q = ExperimentParams::quick();
        let f = ExperimentParams::full();
        assert!(q.ge_ladder.len() < f.ge_ladder.len());
        assert!(q.ge_sizes.last().unwrap() < f.ge_sizes.last().unwrap());
    }

    #[test]
    fn surface_rungs_extend_the_paper_ladder() {
        let full = surface_rungs(false);
        assert_eq!(*full.last().unwrap(), 85, "full sweep reaches the whole machine");
        assert!(full.windows(2).all(|w| w[0] < w[1]));
        let quick = surface_rungs(true);
        assert!(quick.len() < full.len());
        assert!(quick.iter().all(|p| full.contains(p)));
    }

    #[test]
    fn mega_presets_span_three_to_seven_decades() {
        let full = mega_presets(false);
        let ranks: Vec<usize> = full.iter().map(|p| p.ranks).collect();
        assert_eq!(ranks, vec![1_000, 10_000, 30_000, 100_000, 1_000_000, 10_000_000]);
        let quick = mega_presets(true);
        assert_eq!(quick.last().unwrap().ranks, 100_000, "quick must price a >= 10^5-rank preset");
        assert!(quick.iter().all(|p| full.contains(p)));
        // Exactly one heavy-tailed rung, present in both scales, with a
        // distinct rank count so every preset pair is a genuine jump.
        assert_eq!(quick.iter().filter(|p| p.zipf).count(), 1);
        assert_eq!(full.iter().filter(|p| p.zipf).count(), 1);
        let zipf = quick.iter().find(|p| p.zipf).unwrap();
        assert_eq!(zipf.tag(), "30000 (zipf)");
        assert!(ranks.windows(2).all(|w| w[0] < w[1]), "rank counts strictly increase");
    }

    #[test]
    fn mega_grids_are_increasing_and_bracket_the_measured_crossings() {
        // The MM crossing measured at N* ≈ 3.2·p must be interior to
        // every preset's grid or the inversion cannot succeed; the
        // power grid must reach past the scatter-dominance threshold
        // N ≈ 350·√p so the ceiling is measured in its plateau.
        for preset in mega_presets(false) {
            let p = preset.ranks;
            let mm = mega_mm_sizes(p);
            assert!(mm.windows(2).all(|w| w[0] < w[1]), "MM grid not increasing at p = {p}");
            let crossing = (3.2 * p as f64) as usize;
            assert!(
                mm[0] < crossing && crossing < *mm.last().unwrap(),
                "MM crossing {crossing} exits grid at p = {p}"
            );
            let pw = mega_power_sizes(p);
            assert!(pw.windows(2).all(|w| w[0] < w[1]), "power grid not increasing at p = {p}");
            let plateau = (350.0 * (p as f64).sqrt()) as usize;
            assert!(*pw.last().unwrap() > 2 * plateau, "power grid too shallow at p = {p}");
            // The GE band sits entirely above the n ≈ p regime change
            // and below the ≈ 150·p crossing — it is an extrapolation
            // base, not a bracketing grid.
            let ge = mega_ge_sizes(p);
            assert!(ge.windows(2).all(|w| w[0] < w[1]), "GE grid not increasing at p = {p}");
            assert!(ge[0] >= 2 * p, "GE band dips into the single-row regime at p = {p}");
            assert!(*ge.last().unwrap() < 150 * p, "GE band reaches the crossing at p = {p}");
        }
    }

    #[test]
    fn surface_grids_bracket_the_measured_anchors() {
        // Table 3: required N = 301 at p = 2, 4727 at p = 32; the MM
        // sweep crosses 0.2 near N ≈ 210 at p = 32. Each anchor must be
        // interior to its rung's grid or the inversion cannot succeed.
        for (p, n) in [(2usize, 301usize), (32, 4727)] {
            let grid = surface_ge_sizes(p);
            assert!(grid.windows(2).all(|w| w[0] < w[1]), "GE grid not increasing at p = {p}");
            assert!(grid[0] < n && n < *grid.last().unwrap(), "GE anchor {n} exits grid {grid:?}");
        }
        for (p, n) in [(2usize, 20usize), (32, 210)] {
            let grid = surface_mm_sizes(p);
            assert!(grid.windows(2).all(|w| w[0] < w[1]), "MM grid not increasing at p = {p}");
            assert!(grid[0] < n && n < *grid.last().unwrap(), "MM anchor {n} exits grid {grid:?}");
        }
    }
}
