//! Shared experiment parameters: ladders, sweeps, targets.
//!
//! Everything tunable about the reproduction lives here, in one place,
//! with the paper's corresponding choice noted. `ExperimentParams::full()`
//! mirrors the paper (ladders to 32 nodes); `ExperimentParams::quick()`
//! shrinks sweeps for smoke tests and CI.

use serde::{Deserialize, Serialize};

/// Tunable knobs for the experiment suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// Node counts of the GE ladder (paper: 2, 4, 8, 16, 32).
    pub ge_ladder: Vec<usize>,
    /// Node counts of the MM ladder (paper: 2, 4, 8, 16, 32).
    pub mm_ladder: Vec<usize>,
    /// Target speed-efficiency for GE (paper: 0.3).
    pub ge_target: f64,
    /// Target speed-efficiency for MM (paper: 0.2).
    pub mm_target: f64,
    /// Problem sizes swept for the GE efficiency curves.
    pub ge_sizes: Vec<usize>,
    /// Problem sizes swept for the MM efficiency curves.
    pub mm_sizes: Vec<usize>,
    /// Trend-line polynomial degree (paper: "polynomial trend line").
    pub fit_degree: usize,
}

impl ExperimentParams {
    /// The paper-scale configuration.
    pub fn full() -> ExperimentParams {
        ExperimentParams {
            ge_ladder: vec![2, 4, 8, 16, 32],
            mm_ladder: vec![2, 4, 8, 16, 32],
            ge_target: 0.3,
            mm_target: 0.2,
            // Geometric-ish sweep wide enough that every rung's required
            // N (from ~290 at p = 2 to ~4700 at p = 32) is interior.
            ge_sizes: vec![60, 120, 240, 420, 700, 1100, 1700, 2600, 3800, 5200],
            // MM saturates fast (overhead is O(N²) against O(N³) work);
            // small sizes resolve the target crossing (required N runs
            // from ~30 at p = 2 to ~230 at p = 32), larger ones the
            // curve shape.
            mm_sizes: vec![12, 16, 24, 32, 48, 64, 96, 128, 176, 240, 330, 450],
            fit_degree: 3,
        }
    }

    /// A fast configuration for smoke tests: 3-rung ladders, short sweeps.
    pub fn quick() -> ExperimentParams {
        ExperimentParams {
            ge_ladder: vec![2, 4, 8],
            mm_ladder: vec![2, 4, 8],
            ge_target: 0.3,
            mm_target: 0.2,
            ge_sizes: vec![60, 100, 160, 260, 420, 700, 1100, 1700],
            mm_sizes: vec![12, 16, 24, 32, 48, 64, 96, 128, 176],
            fit_degree: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper_ladders() {
        let p = ExperimentParams::full();
        assert_eq!(p.ge_ladder, vec![2, 4, 8, 16, 32]);
        assert_eq!(p.mm_ladder, vec![2, 4, 8, 16, 32]);
        assert_eq!(p.ge_target, 0.3);
        assert_eq!(p.mm_target, 0.2);
    }

    #[test]
    fn sweeps_are_sorted_and_distinct() {
        for p in [ExperimentParams::full(), ExperimentParams::quick()] {
            assert!(p.ge_sizes.windows(2).all(|w| w[0] < w[1]));
            assert!(p.mm_sizes.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn quick_is_a_strict_subscale_of_full() {
        let q = ExperimentParams::quick();
        let f = ExperimentParams::full();
        assert!(q.ge_ladder.len() < f.ge_ladder.len());
        assert!(q.ge_sizes.last().unwrap() < f.ge_sizes.last().unwrap());
    }
}
