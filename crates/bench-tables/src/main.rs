//! `bench-tables` — regenerate the paper's tables and figures.
//!
//! ```text
//! bench-tables [--quick] [--faults] [--no-analytic] [--jobs N] [--list] [--csv DIR] [--trace-out DIR] [--metrics-out FILE] [--stats-out FILE] [--profile-out FILE] [ids...]
//!   ids: t1 t2 f1 t3 t4 f2 t5 t6 t7 compare x2 decomp ablate-dist
//!        ablate-net ablate-fit ablate-place ext-mp faults surface mega all   (default: all)
//! ```
//!
//! `--list` prints every id with a one-line description and exits.
//!
//! `--no-analytic` disables the lockstep closed forms and prices every
//! cell on the event-driven fast engine instead. The closed forms are
//! an optimization, not a semantic change, so output is byte-identical
//! either way (pinned by `tests/cli.rs`); the flag exists to make that
//! claim checkable from the command line and in ci.sh.
//!
//! `--jobs N` bounds the worker pool the experiment cells run on
//! (default: the machine's available parallelism). Output is
//! byte-identical for every worker count; `--jobs 1` is the sequential
//! reference.
//!
//! `faults` (or the `--faults` shorthand) runs the deterministic
//! fault-injection sweep — degraded nodes, lossy links with
//! retry/timeout/backoff, and a declared node death — and reports
//! scalability under each severity. It is opt-in: `all` excludes it.
//!
//! `surface` runs the X3 ψ-surface sweep: every ordered rung pair of a
//! scaled Sunwulf ladder (up to the whole 85-node machine), per kernel,
//! with fitted-trend inversions per rung. Also opt-in: `all` excludes it.
//!
//! `mega` runs the X4 mega-scale sweep: ψ and required-N inversions on
//! class-compressed HEET machines from 10³ to 10⁷ ranks, every cell
//! priced in O(classes) through the class-aggregated closed forms
//! (under `--no-analytic`: materialized and priced per rank, affordable
//! up to the 10⁵ preset). Also opt-in: `all` excludes it.
//!
//! `--trace-out` writes Chrome-trace JSON plus round-trippable JSONL
//! traces of one observed run per kernel; `--metrics-out` writes the
//! combined metrics document (per-kind fractions, activity split,
//! imbalance, critical path). Both are deterministic: repeated
//! invocations produce byte-identical files.
//!
//! `--stats-out` writes the deterministic telemetry document — engine
//! path selection, fallback reasons, ready-queue work, memo-cache and
//! worker-pool counters — and turns on one-line per-id summaries on
//! stderr (analytic coverage, memo hit rate). The file is byte-identical
//! across runs and `--jobs` values; the engine-dependent sections change
//! only with `--no-analytic` (DESIGN.md §11, pinned by `tests/cli.rs`).
//! `--profile-out` writes the wall-clock profile (per-id laps, engine
//! phase split, per-worker cells); it is **not** deterministic and says
//! so in the document.

use bench_tables::experiments::{
    ablate, baselines, compare, decomp, ext, f1, f2t5, faults, mega, noise, recover, surface, t1,
    t2, t3t4, t6t7, validate, x2,
};
use bench_tables::stats::{self, IdSummaries};
use bench_tables::stopwatch::Stopwatch;
use bench_tables::{obs, ExperimentParams, Table};
use std::collections::BTreeSet;
use std::path::Path;

/// One wall-clock lap per id, plus (when `--stats-out` is active) a
/// one-line telemetry delta on stderr after each id completes.
struct Checkpoints {
    watch: Stopwatch,
    sums: Option<IdSummaries>,
}

impl Checkpoints {
    fn mark(&mut self, id: &str) {
        self.watch.lap(id);
        if let Some(sums) = &mut self.sums {
            eprintln!("{}", sums.line(id));
        }
    }
}

/// Every experiment id the CLI accepts, with the one-line description
/// `--list` prints. `faults` (via the id or `--faults`) and `surface`
/// are opt-in: neither is part of `all`.
const KNOWN_IDS_WITH_DESCRIPTIONS: &[(&str, &str)] = &[
    ("t1", "Table 1 — the Sunwulf node inventory and marked speeds"),
    ("t2", "Table 2 — GE speed-efficiency samples on the two-node system"),
    ("f1", "Fig. 1 — GE efficiency curve and trend line at two nodes"),
    ("t3", "Table 3 — required rank for the GE target per ladder rung"),
    ("t4", "Table 4 — measured GE scalability between consecutive rungs"),
    ("f2", "Fig. 2 — MM speed-efficiency curves across the ladder"),
    ("t5", "Table 5 — measured MM scalability between consecutive rungs"),
    ("t6", "Table 6 — predicted vs measured required rank (GE)"),
    ("t7", "Table 7 — predicted vs measured scalability (GE)"),
    ("compare", "GE vs MM scalability comparison (§4.4.3)"),
    ("x2", "extension — three-way GE/MM/stencil/power scalability"),
    ("decomp", "extension — overhead decomposition of the GE ladder"),
    ("ablate-dist", "ablation — row-distribution strategies"),
    ("ablate-net", "ablation — network-model throughput regimes"),
    ("ablate-fit", "ablation — trend-line polynomial degree"),
    ("ablate-place", "ablation — rank placement on segmented networks"),
    ("ablate-sched", "ablation — collective scheduling variants"),
    ("ablate-noise", "ablation — required-N read-off under frozen noise"),
    ("validate", "model validation against the analytic predictions"),
    ("baselines", "baseline metrics (speedup, iso-efficiency) side by side"),
    ("ext-mp", "extension — marked-performance composition rules"),
    ("faults", "opt-in — scalability under deterministic fault injection"),
    ("recover", "opt-in — mid-run failure recovery under MTBF death streams"),
    ("surface", "opt-in — psi(C, C') surface over scaled Sunwulf rungs"),
    ("mega", "opt-in — psi sweep on classed HEET machines, 10^3..10^7 ranks"),
    ("all", "every id above except the opt-in ones (the default)"),
];

fn known_id(id: &str) -> bool {
    KNOWN_IDS_WITH_DESCRIPTIONS.iter().any(|(known, _)| *known == id)
}

fn main() {
    // One wall-clock source for both self-timing surfaces: the
    // `BENCH_TABLES_STOPWATCH=1` stderr line the ci.sh perf gate
    // thresholds (process startup is linker/loader cost, not ladder
    // cost) and the `--profile-out` document. Stdout stays
    // byte-identical with or without either.
    let watch = Stopwatch::new();
    let stopwatch_env = std::env::var_os("BENCH_TABLES_STOPWATCH").is_some();
    let mut quick = false;
    let mut csv_dir: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut stats_path: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut ids: BTreeSet<String> = BTreeSet::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--no-analytic" => hetsim_mpi::set_analytic_enabled(false),
            "--faults" => {
                ids.insert("faults".to_string());
            }
            "--csv" => {
                csv_dir = Some(args.next().unwrap_or_else(|| usage("--csv needs a directory")))
            }
            "--trace-out" => {
                trace_dir =
                    Some(args.next().unwrap_or_else(|| usage("--trace-out needs a directory")))
            }
            "--metrics-out" => {
                metrics_path =
                    Some(args.next().unwrap_or_else(|| usage("--metrics-out needs a file path")))
            }
            "--stats-out" => {
                stats_path =
                    Some(args.next().unwrap_or_else(|| usage("--stats-out needs a file path")))
            }
            "--profile-out" => {
                profile_path =
                    Some(args.next().unwrap_or_else(|| usage("--profile-out needs a file path")))
            }
            "--jobs" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| usage("--jobs needs a worker count"));
                bench_tables::pool::set_jobs(n)
                    .unwrap_or_else(|e| usage(&format!("--jobs given twice: {e}")));
            }
            "--seed" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| usage("--seed needs an unsigned integer"));
                bench_tables::seed::set_plan_seed(n)
                    .unwrap_or_else(|e| usage(&format!("--seed given twice: {e}")));
            }
            "--list" => list(),
            "--help" | "-h" => usage(""),
            flag if flag.starts_with('-') => usage(&format!("unknown flag {flag}")),
            id if !known_id(id) => usage(&format!("unknown experiment id {id}")),
            id => {
                ids.insert(id.to_string());
            }
        }
    }
    let faults_requested = ids.contains("faults");
    let recover_requested = ids.contains("recover");
    let surface_requested = ids.contains("surface");
    let mega_requested = ids.contains("mega");
    if ids.is_empty() || ids.contains("all") {
        ids = [
            "t1",
            "t2",
            "f1",
            "t3",
            "t4",
            "f2",
            "t5",
            "t6",
            "t7",
            "compare",
            "x2",
            "decomp",
            "ablate-dist",
            "ablate-net",
            "ablate-fit",
            "ablate-place",
            "ablate-sched",
            "ablate-noise",
            "validate",
            "baselines",
            "ext-mp",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let params = if quick { ExperimentParams::quick() } else { ExperimentParams::full() };
    let mut emitted: Vec<Table> = Vec::new();
    let mut emit = |t: Table| {
        println!("{t}");
        emitted.push(t);
    };

    let wants = |id: &str| ids.contains(id);
    let mut cp = Checkpoints { watch, sums: stats_path.is_some().then(IdSummaries::new) };

    if wants("t1") {
        emit(t1::table1());
        cp.mark("t1");
    }
    if wants("t2") {
        emit(t2::table2(&params.ge_sizes));
        cp.mark("t2");
    }
    if wants("f1") {
        emit(f1::figure1(&params.ge_sizes, params.ge_target, params.fit_degree));
        println!("{}", f1::figure1_plot(&params.ge_sizes, params.ge_target, params.fit_degree));
        cp.mark("f1");
    }

    // The GE ladder feeds t3, t4, t6, t7 and the comparison; the MM
    // ladder feeds f2, t5 and the comparison. Run each at most once.
    // (The summary lines attribute the pricing to the ladder, not to
    // the tables that later re-read it.)
    let need_ge = ["t3", "t4", "t6", "t7", "compare", "x2"].iter().any(|id| wants(id));
    let need_mm = ["f2", "t5", "compare", "x2"].iter().any(|id| wants(id));
    let ge_ladder = need_ge.then(|| t3t4::table3_and_4(&params));
    if need_ge {
        cp.mark("ge-ladder");
    }
    let mm_ladder = need_mm.then(|| f2t5::figure2_and_table5(&params));
    if need_mm {
        cp.mark("mm-ladder");
    }

    if let Some((t3, t4, _)) = &ge_ladder {
        if wants("t3") {
            emit(t3.clone());
        }
        if wants("t4") {
            emit(t4.clone());
        }
    }
    if let Some((f2, t5, _)) = &mm_ladder {
        if wants("f2") {
            emit(f2.clone());
            println!("{}", f2t5::figure2_plot(&params));
        }
        if wants("t5") {
            emit(t5.clone());
        }
    }
    if wants("t6") || wants("t7") {
        let (_, _, ladder) = ge_ladder.as_ref().expect("ladder computed above");
        let (t6, t7) = t6t7::table6_and_7(&params, ladder);
        if wants("t6") {
            emit(t6);
        }
        if wants("t7") {
            emit(t7);
        }
        cp.mark("t6t7");
    }
    if wants("compare") {
        let (_, _, ge) = ge_ladder.as_ref().expect("ladder computed above");
        let (_, _, mm) = mm_ladder.as_ref().expect("ladder computed above");
        emit(compare::comparison(ge, mm));
        cp.mark("compare");
    }
    if wants("x2") {
        let (_, _, ge) = ge_ladder.as_ref().expect("ladder computed above");
        let (_, _, mm) = mm_ladder.as_ref().expect("ladder computed above");
        let st = x2::stencil_ladder(&params, quick);
        let pw = x2::power_ladder(&params, quick);
        emit(x2::three_way_comparison(ge, mm, &st, &pw));
        println!("{}", x2::psi_ladder_plot(ge, mm, &st, &pw));
        cp.mark("x2");
    }
    if wants("decomp") {
        emit(decomp::overhead_decomposition(&params.ge_ladder, if quick { 192 } else { 384 }));
        cp.mark("decomp");
    }
    if wants("ablate-dist") {
        emit(ablate::ablate_distribution(if quick { 128 } else { 256 }));
        cp.mark("ablate-dist");
    }
    if wants("ablate-net") {
        emit(ablate::ablate_network(if quick { 128 } else { 256 }));
        cp.mark("ablate-net");
    }
    if wants("ablate-place") {
        emit(ablate::ablate_placement(if quick { 96 } else { 192 }));
        cp.mark("ablate-place");
    }
    if wants("ablate-sched") {
        emit(ablate::ablate_scheduling());
        cp.mark("ablate-sched");
    }
    if wants("ablate-fit") {
        emit(ablate::ablate_fit_degree(&params.ge_sizes, params.ge_target));
        cp.mark("ablate-fit");
    }
    if wants("ablate-noise") {
        let seeds = if quick { 6 } else { 12 };
        emit(noise::ablate_noise(&params.ge_sizes, params.ge_target, params.fit_degree, seeds));
        cp.mark("ablate-noise");
    }
    if wants("validate") {
        let (ladder, sizes): (&[usize], &[usize]) = if quick {
            (&[2, 4, 8], &[96, 192, 384])
        } else {
            (&[2, 4, 8, 16], &[96, 192, 384, 768])
        };
        emit(validate::model_validation(ladder, sizes));
        cp.mark("validate");
    }
    if wants("baselines") {
        emit(baselines::baseline_comparison(&params));
        cp.mark("baselines");
    }
    if wants("ext-mp") {
        emit(ext::extension_marked_performance());
        cp.mark("ext-mp");
    }
    if faults_requested {
        let (table, report) = faults::scalability_under_faults(&params, quick);
        emit(table);
        println!("{report}");
        cp.mark("faults");
    }
    if recover_requested {
        let (tables, report) = recover::recovery_sweep(&params, quick);
        for table in tables {
            emit(table);
        }
        println!("{report}");
        cp.mark("recover");
    }
    if surface_requested {
        for table in surface::psi_surface(&params, quick) {
            emit(table);
        }
        cp.mark("surface");
    }
    if mega_requested {
        for table in mega::mega_sweep(&params, quick) {
            emit(table);
        }
        cp.mark("mega");
    }

    if trace_dir.is_some() || metrics_path.is_some() {
        let mut runs = obs::observed_runs(quick);
        if faults_requested {
            runs.extend(obs::observed_runs_faulted(quick));
        }
        if recover_requested {
            runs.extend(obs::observed_runs_recovered(quick));
        }
        if let Some(dir) = &trace_dir {
            let written = obs::write_trace_dir(Path::new(dir), &runs)
                .unwrap_or_else(|e| fail(&format!("cannot write trace directory {dir}: {e}")));
            for path in written {
                eprintln!("wrote {path}");
            }
        }
        if let Some(path) = &metrics_path {
            obs::write_metrics(Path::new(path), &runs)
                .unwrap_or_else(|e| fail(&format!("cannot write metrics file {path}: {e}")));
            eprintln!("wrote {path}");
        }
        cp.mark("obs");
    }

    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| fail(&format!("cannot create csv directory {dir}: {e}")));
        for table in &emitted {
            let slug: String = table
                .title
                .chars()
                .take_while(|&c| c != '—')
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_lowercase();
            let path = format!("{dir}/{slug}.csv");
            std::fs::write(&path, table.to_csv())
                .unwrap_or_else(|e| fail(&format!("cannot write csv file {path}: {e}")));
            eprintln!("wrote {path}");
        }
    }

    if let Some(path) = &stats_path {
        let report = stats::report();
        stats::write_stats(Path::new(path), &report)
            .unwrap_or_else(|e| fail(&format!("cannot write stats file {path}: {e}")));
        for warning in report.warnings() {
            eprintln!("{warning}");
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = &profile_path {
        stats::write_profile(Path::new(path), &cp.watch)
            .unwrap_or_else(|e| fail(&format!("cannot write profile file {path}: {e}")));
        eprintln!("wrote {path}");
    }

    if stopwatch_env {
        eprintln!("{}", cp.watch.stderr_line());
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// `--list`: every accepted id with its one-line description, to stdout.
fn list() -> ! {
    let width =
        KNOWN_IDS_WITH_DESCRIPTIONS.iter().map(|(id, _)| id.len()).max().unwrap_or_default();
    for (id, description) in KNOWN_IDS_WITH_DESCRIPTIONS {
        println!("{id:width$}  {description}");
    }
    std::process::exit(0);
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: bench-tables [--quick] [--faults] [--no-analytic] [--jobs N] [--seed N] [--list] [--csv DIR] [--trace-out DIR] [--metrics-out FILE] [--stats-out FILE] [--profile-out FILE] [ids...]\n\
         ids: t1 t2 f1 t3 t4 f2 t5 t6 t7 compare x2 decomp ablate-dist ablate-net ablate-fit ablate-place ablate-sched ablate-noise validate baselines ext-mp faults recover surface mega all\n\
         `faults` (or --faults) runs the fault-injection sweep; `recover` runs the mid-run failure-recovery sweep (checkpoint/restart vs shrink-rebalance under MTBF death streams); `surface` runs the psi-surface sweep on scaled Sunwulf rungs; `mega` runs the class-aggregated psi sweep on HEET machines up to 10^7 ranks. All four are opt-in and not part of `all`.\n\
         `--no-analytic` forces the event-driven engine on every cell (output is byte-identical to the default closed-form path).\n\
         `--jobs N` caps the experiment worker pool (default: available parallelism; output is byte-identical for every N).\n\
         `--seed N` re-bases every fault-plan seed (faults + recover sweeps; default 1592590336 = 0x5eed0000 reproduces the historical bytes; same seed twice => same bytes).\n\
         `--stats-out FILE` writes the deterministic telemetry document (engine paths, fallback reasons, memo and pool counters) and prints per-id summaries on stderr.\n\
         `--profile-out FILE` writes the wall-clock profile (non-deterministic by nature; the document says so).\n\
         `--list` prints every id with a one-line description and exits."
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
