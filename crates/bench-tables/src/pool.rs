//! Bounded scoped worker pool with deterministic output assembly.
//!
//! The experiment ladders decompose into independent `(experiment,
//! configuration)` cells — one efficiency curve per cluster rung, one
//! frozen-noise campaign per `(σ, seed)` pair. Each cell is a pure
//! function of its inputs (the timing engines are deterministic), so
//! the only thing parallelism could perturb is *assembly order*. This
//! pool removes that hazard by construction: workers pull cell indices
//! from a shared counter and deposit results into the slot owned by
//! that index, so the returned `Vec` is always in cell order and the
//! rendered tables are byte-identical for every worker count.
//!
//! The worker count is fixed once per process — `--jobs N` on the
//! `bench-tables` binary, defaulting to the machine's available
//! parallelism. `--jobs 1` short-circuits to a plain sequential loop
//! and serves as the reference the determinism tests compare against.
//!
//! Built on `std::thread::scope` (the vendored crossbeam shim does not
//! provide scoped threads); a panicking cell propagates when the scope
//! joins, exactly like the sequential loop.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

static JOBS: OnceLock<usize> = OnceLock::new();

// Deterministic pool counters: pure functions of the dispatched batches
// (never of which worker ran what), so they are byte-stable across runs
// and worker counts (DESIGN.md §11).
static BATCHES: AtomicU64 = AtomicU64::new(0);
static CELLS: AtomicU64 = AtomicU64::new(0);
static QUEUE_HIGH_WATER: AtomicU64 = AtomicU64::new(0);
// Per-worker cell counts — scheduling-dependent, profile export only.
static WORKER_CELLS: parking_lot::Mutex<Vec<u64>> = parking_lot::Mutex::new(Vec::new());

/// Deterministic worker-pool counters (see [`snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolCounts {
    /// Non-empty batches dispatched through the pool.
    pub batches: u64,
    /// Cells across those batches.
    pub cells: u64,
    /// Largest single batch — the queue's high-water mark.
    pub queue_high_water: u64,
}

/// Snapshot of the deterministic pool counters.
pub fn snapshot() -> PoolCounts {
    PoolCounts {
        batches: BATCHES.load(Ordering::Relaxed),
        cells: CELLS.load(Ordering::Relaxed),
        queue_high_water: QUEUE_HIGH_WATER.load(Ordering::Relaxed),
    }
}

/// Cells executed per worker slot. **Not deterministic** — which worker
/// pulls which cell depends on OS scheduling; profile export only.
pub fn worker_cells() -> Vec<u64> {
    WORKER_CELLS.lock().clone()
}

fn add_worker_cells(worker: usize, cells: u64) {
    let mut counts = WORKER_CELLS.lock();
    if counts.len() <= worker {
        counts.resize(worker + 1, 0);
    }
    counts[worker] += cells;
}

/// The worker count was already fixed — [`set_jobs`] was called twice
/// (or after the pool's first use defaulted it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobsAlreadySet;

impl std::fmt::Display for JobsAlreadySet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker count already fixed for this process")
    }
}

impl std::error::Error for JobsAlreadySet {}

/// Fixes the worker count for the rest of the process. Call at most
/// once, before any parallel work; zero is clamped to one.
///
/// # Errors
/// Returns [`JobsAlreadySet`] when the worker count was already fixed
/// (a second call, or a call after the pool defaulted it on first use).
pub fn set_jobs(n: usize) -> Result<(), JobsAlreadySet> {
    JOBS.set(n.max(1)).map_err(|_| JobsAlreadySet)
}

/// The worker count: the value fixed by [`set_jobs`], or the machine's
/// available parallelism when none was set.
pub fn jobs() -> usize {
    *JOBS.get_or_init(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1))
}

/// Runs `f(index, &items[index])` for every cell on up to [`jobs`]
/// workers and returns the results **in cell order**, regardless of
/// which worker finished which cell when.
pub fn run_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_indexed_on(jobs(), items, f)
}

/// [`run_indexed`] with an explicit worker count (the determinism tests
/// compare worker counts directly, without touching the process-wide
/// setting).
pub fn run_indexed_on<T, R, F>(max_workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if !items.is_empty() {
        BATCHES.fetch_add(1, Ordering::Relaxed);
        CELLS.fetch_add(items.len() as u64, Ordering::Relaxed);
        QUEUE_HIGH_WATER.fetch_max(items.len() as u64, Ordering::Relaxed);
    }
    let workers = max_workers.min(items.len());
    if workers <= 1 {
        add_worker_cells(0, items.len() as u64);
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let (next, slots, f) = (&next, &slots, &f);
        for worker in 0..workers {
            scope.spawn(move || {
                let mut mine = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(i, &items[i]);
                    *slots[i].lock().expect("cell slot poisoned") = Some(r);
                    mine += 1;
                }
                add_worker_cells(worker, mine);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("cell slot poisoned").expect("every cell ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_cell_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = run_indexed(&items, |i, &item| {
            assert_eq!(i, item);
            item * item
        });
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<usize> = Vec::new();
        assert!(run_indexed(&items, |_, &i| i).is_empty());
    }

    #[test]
    fn single_cell_runs_inline() {
        let items = [7usize];
        assert_eq!(run_indexed(&items, |_, &i| i + 1), vec![8]);
    }

    #[test]
    fn worker_count_does_not_change_the_result() {
        let items: Vec<usize> = (0..64).collect();
        let reference = run_indexed_on(1, &items, |_, &i| (i * 31) % 17);
        for workers in [2, 4, 8, 64] {
            assert_eq!(
                run_indexed_on(workers, &items, |_, &i| (i * 31) % 17),
                reference,
                "assembly diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn second_set_jobs_reports_instead_of_panicking() {
        // The process-wide slot may or may not be taken already
        // (depending on test order), so drive both outcomes through the
        // first call's result: whichever way it lands, the *second*
        // call must return the error — never panic.
        let _ = set_jobs(3);
        let err = set_jobs(5).expect_err("second set_jobs must be rejected");
        assert_eq!(err.to_string(), "worker count already fixed for this process");
    }

    #[test]
    fn counters_track_batches_cells_and_high_water() {
        // Counters are process-global and other tests run concurrently,
        // so assert monotone deltas, not absolutes.
        let before = snapshot();
        let items: Vec<usize> = (0..40).collect();
        run_indexed_on(4, &items, |_, &i| i);
        run_indexed_on(1, &items[..3], |_, &i| i);
        let after = snapshot();
        assert!(after.batches >= before.batches + 2);
        assert!(after.cells >= before.cells + 43);
        assert!(after.queue_high_water >= 40);
        let attributed: u64 = worker_cells().iter().sum();
        assert!(attributed >= 43, "every cell lands on some worker slot");
    }

    #[test]
    fn parallel_path_covers_every_cell_once() {
        use std::sync::atomic::AtomicUsize;
        let calls = AtomicUsize::new(0);
        let items: Vec<usize> = (0..50).collect();
        let out = run_indexed_on(8, &items, |i, &item| {
            calls.fetch_add(1, Ordering::SeqCst);
            assert_eq!(i, item);
            item
        });
        assert_eq!(calls.load(Ordering::SeqCst), 50);
        assert_eq!(out, items);
    }
}
