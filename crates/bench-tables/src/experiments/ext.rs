//! E1 — the paper's future-work extension, demonstrated: multi-parameter
//! *marked performance* ratings and their effect on the effective system
//! speed that feeds the metric.

use crate::table::{fnum, Table};
use scalability::marked_performance::{
    effective_marked_speed, effective_system_speed, MarkedPerformance, ResourceProfile,
};

/// Plausible multi-axis ratings for the three Sunwulf node types
/// (compute Mflop/s as reconstructed; memory and network axes scaled to
/// the hardware era: SunBlade's narrow memory system, V210's DDR).
pub fn sunwulf_marked_performance() -> Vec<(&'static str, MarkedPerformance)> {
    vec![
        ("Server node (1 CPU)", MarkedPerformance::new(45.0, 350.0, 12.5).expect("valid")),
        ("SunBlade", MarkedPerformance::new(50.0, 250.0, 12.5).expect("valid")),
        ("SunFire V210 (1 CPU)", MarkedPerformance::new(110.0, 1500.0, 12.5).expect("valid")),
    ]
}

/// Builds the extension table: effective marked speed of each node type
/// under the three application profiles, plus the effective system speed
/// of the 8-node MM configuration per profile.
pub fn extension_marked_performance() -> Table {
    let nodes = sunwulf_marked_performance();
    let profiles: [(&str, ResourceProfile); 3] = [
        ("compute-bound", ResourceProfile::compute_bound()),
        ("memory-bound", ResourceProfile::memory_bound()),
        ("network-bound", ResourceProfile::network_bound()),
    ];

    let mut t = Table::new(
        "Extension E1 — multi-parameter marked performance (effective Mflop/s)",
        &["Node type", "compute-bound", "memory-bound", "network-bound"],
    );
    for (label, perf) in &nodes {
        let mut row = vec![label.to_string()];
        for (_, profile) in &profiles {
            row.push(fnum(effective_marked_speed(perf, profile)));
        }
        t.push_row(row);
    }

    // Effective C of the paper's 8-node MM system: 1 server + 3 blades +
    // 4 V210s.
    let system: Vec<MarkedPerformance> = {
        let by_name = |name: &str| {
            nodes
                .iter()
                .find(|(l, _)| l.contains(name))
                .map(|(_, p)| *p)
                .expect("node type present")
        };
        let mut v = vec![by_name("Server")];
        v.extend(std::iter::repeat_n(by_name("SunBlade"), 3));
        v.extend(std::iter::repeat_n(by_name("V210"), 4));
        v
    };
    for (name, profile) in &profiles {
        t.push_note(format!(
            "effective C of the 8-node MM system under {name}: {:.2} Mflop/s",
            effective_system_speed(&system, profile)
        ));
    }
    t.push_note("scalar marked speed is the compute-bound column's limit as demands vanish");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_reorder_node_rankings() {
        let t = extension_marked_performance();
        // Compute-bound: V210 (row 2) beats SunBlade (row 1).
        let get = |row: usize, col: usize| -> f64 { t.rows[row][col].parse().unwrap() };
        assert!(get(2, 1) > get(1, 1));
        // Network-bound: the shared 12.5 MB/s NIC flattens the field —
        // spread under 2× where compute-bound spread is ~2.4×.
        let net_spread = get(2, 3) / get(1, 3).min(get(0, 3));
        let comp_spread = get(2, 1) / get(1, 1).min(get(0, 1));
        assert!(net_spread < comp_spread, "net {net_spread} vs comp {comp_spread}");
    }

    #[test]
    fn effective_speeds_never_exceed_compute_rating() {
        let t = extension_marked_performance();
        let compute_ratings = [45.0, 50.0, 110.0];
        for (row, &rating) in t.rows.iter().zip(&compute_ratings) {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v <= rating + 1e-9, "{row:?}");
            }
        }
    }

    #[test]
    fn system_notes_are_emitted_per_profile() {
        let t = extension_marked_performance();
        assert!(t.notes.iter().filter(|n| n.contains("effective C")).count() == 3);
    }
}
