//! X3 (extension) — high-resolution ψ-surface sweep on scaled Sunwulf.
//!
//! The paper evaluates ψ only between *consecutive* rungs of a
//! five-rung ladder (Tables 4 and 5). This sweep extends the ladder
//! onto scaled Sunwulf configurations — up to the whole 85-node machine
//! — and evaluates ψ(C, C′) for **every** ordered rung pair, giving the
//! full scalability surface instead of its first off-diagonal. Per
//! kernel it reports:
//!
//! * the fitted-trend inversion per rung (required `N` for the target
//!   efficiency, read off the polynomial trend line exactly as the
//!   paper does; rungs whose grid never brackets the target show `-`);
//! * the ψ(C, C′) matrix over all rung pairs (diagonal ≡ 1 by
//!   definition; ψ is directional, so only the scaling-up half is
//!   defined).
//!
//! Every `(kernel, rung)` curve is an independent cell on the worker
//! pool; the per-cell sweeps are dense `N` grids anchored to the
//! measured ladder (see [`crate::params`]). The sweep is opt-in (the
//! `surface` id) — it is not part of `all` — and composes with
//! `--jobs`, `--csv`, and the observability exports like any other id.

use crate::params::{surface_ge_sizes, surface_mm_sizes, surface_rungs, ExperimentParams};
use crate::pool;
use crate::systems::{GeSystem, MmSystem};
use crate::table::{fnum, Table};
use hetsim_cluster::sunwulf;
use scalability::isospeed_efficiency_scalability;
use scalability::metric::{AlgorithmSystem, EfficiencyCurve};

/// One measured rung of the surface: the fitted-trend inversion, or
/// `None` when the grid never brackets the target efficiency.
struct Rung {
    label: String,
    c_flops: f64,
    inverted: Option<(usize, f64)>, // (required N, W at N)
}

/// Measures one kernel's rungs (each an independent pool cell — the
/// caller flattens both kernels into one cell list) and reads the
/// required `N` off the trend line.
fn measure_rung(kernel: &'static str, p: usize, params: &ExperimentParams) -> Rung {
    let net = sunwulf::sunwulf_network();
    match kernel {
        "ge" => {
            let cluster = sunwulf::ge_config(p);
            let sys = GeSystem::new(&cluster, &net);
            let curve = EfficiencyCurve::measure(&sys, &surface_ge_sizes(p));
            let inverted = curve
                .required_n(params.ge_target, params.fit_degree)
                .ok()
                .map(|n| n.round().max(1.0) as usize)
                .map(|n| (n, sys.work(n)));
            Rung { label: sys.label(), c_flops: sys.marked_speed_flops(), inverted }
        }
        "mm" => {
            let cluster = sunwulf::mm_config(p);
            let sys = MmSystem::new(&cluster, &net);
            let curve = EfficiencyCurve::measure(&sys, &surface_mm_sizes(p));
            let inverted = curve
                .required_n(params.mm_target, params.fit_degree)
                .ok()
                .map(|n| n.round().max(1.0) as usize)
                .map(|n| (n, sys.work(n)));
            Rung { label: sys.label(), c_flops: sys.marked_speed_flops(), inverted }
        }
        other => unreachable!("unknown surface kernel {other}"),
    }
}

/// Renders one kernel's inversion table and ψ matrix.
fn render(kernel_name: &str, target: f64, rungs: &[usize], measured: &[Rung]) -> (Table, Table) {
    // Titles keep a distinct pre-dash prefix per table so the `--csv`
    // slugs (title up to the em-dash) do not collide.
    let mut inv = Table::new(
        format!("X3 {kernel_name} inversions — fitted-trend required N per rung (E_s = {target})"),
        &["System", "Marked speed (Mflop/s)", "Required N", "Workload W (flop)"],
    );
    for r in measured {
        let (n_cell, w_cell) = match r.inverted {
            Some((n, w)) => (n.to_string(), fnum(w)),
            None => ("-".to_string(), "-".to_string()),
        };
        inv.push_row(vec![r.label.clone(), fnum(r.c_flops / 1e6), n_cell, w_cell]);
    }
    inv.push_note("`-`: the rung's size grid never brackets the target efficiency");

    let headers: Vec<String> =
        std::iter::once("p".to_string()).chain(rungs.iter().map(|p| format!("p' = {p}"))).collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut matrix = Table::new(
        format!("X3 {kernel_name} surface — psi(C, C') over scaled Sunwulf rungs (E_s = {target})"),
        &header_refs,
    );
    for (i, from) in measured.iter().enumerate() {
        let mut row = vec![rungs[i].to_string()];
        for (j, to) in measured.iter().enumerate() {
            row.push(match (i.cmp(&j), &from.inverted, &to.inverted) {
                (std::cmp::Ordering::Equal, _, _) => "1.0000".to_string(),
                (std::cmp::Ordering::Greater, _, _) => String::new(),
                (_, Some((_, w)), Some((_, w_prime))) => {
                    fnum(isospeed_efficiency_scalability(from.c_flops, *w, to.c_flops, *w_prime))
                }
                _ => "-".to_string(),
            });
        }
        matrix.push_row(row);
    }
    matrix.push_note("rows: base configuration C; columns: scaled configuration C'");
    matrix.push_note("psi is directional (C scaled up to C'): the lower triangle is undefined");
    (inv, matrix)
}

/// Runs the ψ-surface sweep and returns the four tables (GE inversions,
/// GE matrix, MM inversions, MM matrix).
pub fn psi_surface(params: &ExperimentParams, quick: bool) -> Vec<Table> {
    let rungs = surface_rungs(quick);
    // Flatten both kernels' rungs into one cell list so the pool keeps
    // every worker busy across the GE/MM cost imbalance.
    let cells: Vec<(&'static str, usize)> =
        ["ge", "mm"].iter().flat_map(|&k| rungs.iter().map(move |&p| (k, p))).collect();
    let measured: Vec<Rung> =
        pool::run_indexed(&cells, |_, &(kernel, p)| measure_rung(kernel, p, params));
    let (ge, mm) = measured.split_at(rungs.len());
    let (ge_inv, ge_mat) = render("GE", params.ge_target, &rungs, ge);
    let (mm_inv, mm_mat) = render("MM", params.mm_target, &rungs, mm);
    vec![ge_inv, ge_mat, mm_inv, mm_mat]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_tables_have_the_expected_shape() {
        let params = ExperimentParams::quick();
        let tables = psi_surface(&params, true);
        assert_eq!(tables.len(), 4, "GE inversions, GE matrix, MM inversions, MM matrix");
        let rungs = surface_rungs(true);
        for t in &tables {
            assert_eq!(t.rows.len(), rungs.len(), "one row per rung in {}", t.title);
        }
        // Matrix tables: one label column + one column per rung.
        for t in [&tables[1], &tables[3]] {
            assert_eq!(t.headers.len(), rungs.len() + 1, "{}", t.title);
        }
    }

    #[test]
    fn surface_diagonal_is_one_and_upper_triangle_is_in_unit_interval() {
        let params = ExperimentParams::quick();
        let tables = psi_surface(&params, true);
        for t in [&tables[1], &tables[3]] {
            for (i, row) in t.rows.iter().enumerate() {
                assert_eq!(row[i + 1], "1.0000", "diagonal of {}", t.title);
                for (j, cell) in row.iter().enumerate().skip(1) {
                    let j = j - 1;
                    if j < i {
                        assert!(cell.is_empty(), "lower triangle of {}", t.title);
                    } else if j > i && cell != "-" {
                        let psi: f64 = cell.parse().expect("psi cell parses");
                        assert!(
                            psi > 0.0 && psi < 1.0,
                            "psi({i}, {j}) = {psi} out of (0, 1) in {}",
                            t.title
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn quick_rungs_all_invert() {
        // The quick grids are anchored to the measured ladder, so every
        // quick rung's inversion must succeed (no `-` rows).
        let params = ExperimentParams::quick();
        let tables = psi_surface(&params, true);
        for t in [&tables[0], &tables[2]] {
            for row in &t.rows {
                assert_ne!(row[2], "-", "inversion failed in {}: {row:?}", t.title);
            }
        }
    }

    #[test]
    fn surface_psi_decays_along_long_jumps() {
        // ψ over a long jump (2 → 16) must not exceed ψ over the first
        // short jump (2 → 4): scaling further away cannot get *easier*.
        let params = ExperimentParams::quick();
        let tables = psi_surface(&params, true);
        for t in [&tables[1], &tables[3]] {
            let first = &t.rows[0];
            let short: f64 = first[2].parse().expect("psi(2,4) parses");
            let long: f64 = first[4].parse().expect("psi(2,16) parses");
            assert!(long <= short, "psi(2,16) = {long} > psi(2,4) = {short} in {}", t.title);
        }
    }
}
