//! Fig. 1 — speed-efficiency vs matrix size on two nodes, with the
//! polynomial trend line, the required N for the 0.3 target, and the
//! paper's verification step (measure E_s back at the required N).

use crate::plot::AsciiPlot;
use crate::systems::GeSystem;
use crate::table::{fnum, Table};
use hetsim_cluster::sunwulf;
use scalability::metric::{AlgorithmSystem, EfficiencyCurve};

/// Regenerates Fig. 1 as a data table: the sampled curve, the fitted
/// trend line's readout at each sample, the inverted required `N` for
/// `target`, and the verification measurement at that `N`.
pub fn figure1(sizes: &[usize], target: f64, fit_degree: usize) -> Table {
    let cluster = sunwulf::ge_config(2);
    let net = sunwulf::sunwulf_network();
    let sys = GeSystem::new(&cluster, &net);
    let curve = EfficiencyCurve::measure(&sys, sizes);
    let fit = curve.fit(fit_degree).expect("enough samples for the trend line");

    let mut t = Table::new(
        "Fig. 1 — Speed-efficiency on two nodes (samples + trend line)",
        &["Rank N", "E_s (measured)", "E_s (trend line)"],
    );
    for (x, y) in curve.series.iter() {
        t.push_row(vec![fnum(x), fnum(y), fnum(fit.poly.eval(x))]);
    }
    t.push_note(format!("trend line R² = {:.6}", fit.r_squared));

    match curve.required_n(target, fit_degree) {
        Ok(n_req) => {
            let n_int = n_req.round() as usize;
            let verify = sys.measure(n_int).speed_efficiency();
            t.push_note(format!("required N for E_s = {target}: {n_req:.1} (paper: ~310)"));
            t.push_note(format!(
                "verification: measured E_s({n_int}) = {verify:.4} (paper: 0.312 at 310)"
            ));
        }
        Err(e) => t.push_note(format!("required N for E_s = {target}: not reached ({e})")),
    }
    t
}

/// Renders Fig. 1 as a terminal plot: measured samples, the dense trend
/// line, and the target-efficiency reference line.
pub fn figure1_plot(sizes: &[usize], target: f64, fit_degree: usize) -> AsciiPlot {
    let cluster = sunwulf::ge_config(2);
    let net = sunwulf::sunwulf_network();
    let sys = GeSystem::new(&cluster, &net);
    let curve = EfficiencyCurve::measure(&sys, sizes);

    let mut plot = AsciiPlot::new("Fig. 1 — Speed-efficiency on two nodes", "rank N", "E_s");
    plot.add_series("measured", curve.series.iter().collect());
    if let Ok(fit) = curve.fit(fit_degree) {
        if let Some((lo, hi)) = curve.series.x_range() {
            let dense: Vec<(f64, f64)> = (0..=60)
                .map(|i| {
                    let x = lo + (hi - lo) * i as f64 / 60.0;
                    (x, fit.poly.eval(x))
                })
                .collect();
            plot.add_series("trend line", dense);
        }
    }
    plot.with_hline(target, "target efficiency");
    plot
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes() -> Vec<usize> {
        vec![60, 100, 160, 260, 420, 700]
    }

    #[test]
    fn trend_line_fits_well() {
        let t = figure1(&sizes(), 0.3, 3);
        let r2_note = t.notes.iter().find(|n| n.contains("R²")).unwrap();
        let r2: f64 = r2_note.split("= ").nth(1).unwrap().parse().unwrap();
        assert!(r2 > 0.98, "trend line R² = {r2}");
    }

    #[test]
    fn plot_shows_samples_trend_and_target() {
        let plot = figure1_plot(&sizes(), 0.3, 3);
        assert_eq!(plot.series_count(), 2);
        let text = format!("{plot}");
        assert!(text.contains("measured"));
        assert!(text.contains("trend line"));
        assert!(text.contains("target efficiency"));
    }

    #[test]
    fn required_n_is_reported_and_verifies() {
        let t = figure1(&sizes(), 0.3, 3);
        let req_note = t.notes.iter().find(|n| n.contains("required N")).unwrap();
        assert!(req_note.contains("required N for E_s = 0.3"), "{req_note}");
        let verify_note = t.notes.iter().find(|n| n.contains("verification")).unwrap();
        // The verification measurement must land close to the target —
        // the paper's own check (0.312 against 0.3).
        let measured: f64 = verify_note
            .split("= ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((measured - 0.3).abs() < 0.05, "verified E_s = {measured}");
    }
}
