//! B1 (extension) — the §2 baseline metrics computed side by side on
//! one concrete scenario, quantifying the paper's qualitative critique
//! of each:
//!
//! * classic isospeed sees processor counts, not marked speeds — on a
//!   heterogeneous ladder its ψ diverges from the heterogeneity-aware
//!   value;
//! * isoefficiency and Pastor–Bosque need a sequential baseline of the
//!   full problem on one node — which stops *fitting in memory* long
//!   before the parallel runs do;
//! * productivity moves with the price tag at fixed hardware.

use crate::params::ExperimentParams;
use crate::systems::GeSystem;
use crate::table::{fnum, Table};
use hetsim_cluster::memory::{ge_feasible, max_feasible};
use hetsim_cluster::sunwulf;
use hetsim_cluster::ClusterSpec;
use kernels::ge::ge_parallel_timed;
use kernels::workload::ge_work;
use scalability::baselines::isoefficiency::parallel_efficiency;
use scalability::baselines::isospeed::isospeed_psi;
use scalability::baselines::pastor_bosque::heterogeneous_efficiency;
use scalability::baselines::productivity::{productivity_scalability, ProductivityModel};
use scalability::function::isospeed_efficiency_scalability;
use scalability::metric::required_n_for_efficiency;

/// Computes every metric on the GE 2 → 4 node scenario and reports each
/// one's verdict plus its structural caveat.
pub fn baseline_comparison(params: &ExperimentParams) -> Table {
    let net = sunwulf::sunwulf_network();
    let small = sunwulf::ge_config(2);
    let big = sunwulf::ge_config(4);
    let sys_small = GeSystem::new(&small, &net);
    let sys_big = GeSystem::new(&big, &net);

    let n1 = required_n_for_efficiency(
        &sys_small,
        params.ge_target,
        &params.ge_sizes,
        params.fit_degree,
    )
    .expect("target reachable")
    .round() as usize;
    let n2 =
        required_n_for_efficiency(&sys_big, params.ge_target, &params.ge_sizes, params.fit_degree)
            .expect("target reachable")
            .round() as usize;
    let (w1, w2) = (ge_work(n1), ge_work(n2));
    let t1 = ge_parallel_timed(&small, &net, n1).makespan.as_secs();

    let mut t = Table::new(
        "Extension B1 — every metric on the GE 2 -> 4 node scenario",
        &["Metric", "Value", "Caveat quantified"],
    );

    // 1. Isospeed-efficiency (the paper).
    let psi = isospeed_efficiency_scalability(
        small.marked_speed_flops(),
        w1,
        big.marked_speed_flops(),
        w2,
    );
    t.push_row(vec![
        "isospeed-efficiency psi".into(),
        fnum(psi),
        "defined over C; no caveat — the reference value".into(),
    ]);

    // 2. Classic isospeed: counts processors, misprices heterogeneity.
    let psi_iso = isospeed_psi(small.size(), w1, big.size(), w2);
    t.push_row(vec![
        "isospeed psi (p-based)".into(),
        fnum(psi_iso),
        format!(
            "{:.0}% off the C-based value on this heterogeneous ladder",
            (psi_iso / psi - 1.0).abs() * 100.0
        ),
    ]);

    // 3. Isoefficiency: needs T_seq of the full problem on one node.
    let one_blade =
        ClusterSpec::new("one-blade", vec![sunwulf::sunblade_node(1)]).expect("non-empty");
    let t_seq = w1 / one_blade.marked_speed_flops();
    let e_par = parallel_efficiency(t_seq, t1, small.size());
    let seq_cap = max_feasible(&one_blade, ge_feasible);
    t.push_row(vec![
        "isoefficiency E".into(),
        fnum(e_par),
        format!("sequential baseline capped at N = {seq_cap} by one node's memory"),
    ]);

    // 4. Productivity: the price tag moves the verdict.
    let base_model = ProductivityModel {
        throughput: 1.0 / t1,
        response_time: t1,
        cost_per_sec: 2.0,
        half_value_response: 10.0,
    };
    let t2_scaled = ge_parallel_timed(&big, &net, n2).makespan.as_secs();
    let paid = ProductivityModel {
        throughput: 1.0 / t2_scaled,
        response_time: t2_scaled,
        cost_per_sec: 4.0,
        half_value_response: 10.0,
    };
    let discounted = ProductivityModel { cost_per_sec: 2.0, ..paid };
    let psi_prod = productivity_scalability(&base_model, &paid);
    let psi_disc = productivity_scalability(&base_model, &discounted);
    t.push_row(vec![
        "productivity psi".into(),
        fnum(psi_prod),
        format!("a 50% discount changes it to {} at fixed hardware", fnum(psi_disc)),
    ]);

    // 5. Pastor–Bosque: heterogeneity-aware but sequential-anchored.
    let c_ref = sunwulf::SUNBLADE_MFLOPS * 1e6;
    let e_pb = heterogeneous_efficiency(w1 / c_ref, t1, small.marked_speed_flops(), c_ref);
    t.push_row(vec![
        "Pastor-Bosque E_het".into(),
        fnum(e_pb),
        "equals E_s when T_seq is rated, but must be *measured* on one node".into(),
    ]);

    t.push_note(format!("scenario: required N for E_s = {}: {n1} -> {n2}", params.ge_target));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_and_p_based_psi_differ_on_heterogeneous_ladders() {
        let t = baseline_comparison(&ExperimentParams::quick());
        let psi: f64 = t.rows[0][1].parse().unwrap();
        let psi_iso: f64 = t.rows[1][1].parse().unwrap();
        assert!(psi > 0.0 && psi < 1.0);
        // The 2-node rung is heterogeneous (server ≠ SunBlade), so the
        // p-based value must differ from the C-based one.
        assert!((psi_iso - psi).abs() / psi > 0.02, "p-based {psi_iso} vs C-based {psi}");
    }

    #[test]
    fn pastor_bosque_matches_speed_efficiency_with_rated_baseline() {
        // With T_seq = W/C_ref (rated, not measured), E_het = E_s — the
        // operational difference is *how* T_seq is obtained.
        let t = baseline_comparison(&ExperimentParams::quick());
        let e_pb: f64 = t.rows[4][1].parse().unwrap();
        assert!((e_pb - 0.3).abs() < 0.05, "E_het = {e_pb} should sit at the target");
    }

    #[test]
    fn sequential_memory_cap_is_reported() {
        let t = baseline_comparison(&ExperimentParams::quick());
        assert!(t.rows[2][2].contains("capped at N ="));
    }
}
