//! Scalability under faults — the `--faults` experiment family.
//!
//! The paper's ψ assumes every node delivers its marked speed and every
//! message arrives. This sweep asks what remains of ψ when the *scaled*
//! system is faulty: the base configuration runs clean, the scaled
//! configuration runs under a deterministic [`FaultPlan`] of increasing
//! severity (stragglers, lossy links, a dead node). Retention is
//! `ψ_faulted / ψ_fault-free` for the same base→scaled step; the empty
//! plan retains exactly 1 because the faulted runtime path is
//! bit-identical to the baseline without a plan.

use crate::params::ExperimentParams;
use crate::systems::{GeSystem, MmSystem};
use crate::table::{fnum, Table};
use hetpart::repartition_after_deaths;
use hetsim_cluster::cluster::ClusterSpec;
use hetsim_cluster::faults::FaultPlan;
use hetsim_cluster::network::NetworkModel;
use hetsim_cluster::sunwulf;
use hetsim_cluster::time::SimTime;
use kernels::ge::{ge_parallel_timed_faulted, ge_parallel_timed_faulted_traced};
use kernels::mm::{mm_parallel_timed_faulted, mm_parallel_timed_faulted_traced};
use kernels::workload::{ge_work, mm_work};
use scalability::metric::{AlgorithmSystem, ScalabilityLadder};
use scalability::report::{analyze, RobustnessAnnex, ScalabilityReport};

/// Link-drop probability used by the lossy severities, in per-mille.
/// 2% per logical message: enough to surface retry overhead on every
/// run without pushing the target efficiency out of reach.
pub const DROP_PER_MILLE: u16 = 20;

/// Target speed-efficiency for the GE fault sweep. Lower than the
/// paper's 0.3 so the *degraded* efficiency curves still cross it
/// inside the standard size sweeps (straggler+drops tops out just
/// under 0.3 at the quick sweep's largest rank).
pub const GE_FAULTS_TARGET: f64 = 0.25;

/// Straggler speed multiplier: affected ranks run at half speed.
pub const STRAGGLER_MULTIPLIER: f64 = 0.5;

/// Which kernel a faulted system wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    Ge,
    Mm,
}

impl Kernel {
    fn name(self) -> &'static str {
        match self {
            Kernel::Ge => "GE",
            Kernel::Mm => "MM",
        }
    }
}

/// The fault severities swept, in escalating order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Empty plan: must retain ψ exactly (bit-equal runtime path).
    None,
    /// Every rank `r ≡ 1 (mod 4)` runs at half speed from t = 0.
    Straggler,
    /// Every link drops 2% of logical messages (seeded schedule).
    Drops,
    /// Stragglers and drops combined.
    StragglerDrops,
    /// The last rank is dead at t = 0; survivors repartition and run
    /// with honestly reduced marked speed `C'`.
    Death,
}

impl Severity {
    /// All severities, in table order.
    pub const ALL: [Severity; 5] = [
        Severity::None,
        Severity::Straggler,
        Severity::Drops,
        Severity::StragglerDrops,
        Severity::Death,
    ];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::None => "none",
            Severity::Straggler => "straggler",
            Severity::Drops => "drops",
            Severity::StragglerDrops => "straggler+drops",
            Severity::Death => "death",
        }
    }

    /// Builds the fault plan for a `p`-rank scaled configuration. The
    /// seed derives from the process-wide base (`--seed N`, default the
    /// historical `0x5eed_0000` — `crate::seed`).
    pub fn plan(self, p: usize) -> FaultPlan {
        let seed = crate::seed::plan_seed() + p as u64;
        let stragglers = |mut plan: FaultPlan| {
            for r in (0..p).filter(|r| r % 4 == 1) {
                plan = plan.with_straggler(r, STRAGGLER_MULTIPLIER);
            }
            plan
        };
        match self {
            Severity::None => FaultPlan::new(seed),
            Severity::Straggler => stragglers(FaultPlan::new(seed)),
            Severity::Drops => FaultPlan::new(seed).with_link_drops(DROP_PER_MILLE),
            Severity::StragglerDrops => {
                stragglers(FaultPlan::new(seed).with_link_drops(DROP_PER_MILLE))
            }
            Severity::Death => FaultPlan::new(seed).with_death(p - 1, SimTime::ZERO),
        }
    }
}

/// A kernel bound to a (possibly death-reduced) cluster under a fault
/// plan with deaths already resolved.
struct FaultedSystem<'a, N: NetworkModel> {
    kernel: Kernel,
    severity: Severity,
    cluster: ClusterSpec,
    network: &'a N,
    plan: FaultPlan,
}

impl<'a, N: NetworkModel> FaultedSystem<'a, N> {
    /// Binds `kernel` on the `p`-rank scaled configuration under
    /// `severity`, resolving declared deaths into the surviving cluster.
    fn new(kernel: Kernel, severity: Severity, p: usize, network: &'a N) -> Self {
        let cluster = match kernel {
            Kernel::Ge => sunwulf::ge_config(p),
            Kernel::Mm => sunwulf::mm_config(p),
        };
        let plan = severity.plan(p);
        let (cluster, plan) = if plan.deaths().is_empty() {
            (cluster, plan)
        } else {
            let survivors = plan.surviving_cluster(&cluster).expect("not all nodes die");
            (survivors, plan.for_survivors(p))
        };
        FaultedSystem { kernel, severity, cluster, network, plan }
    }
}

impl<N: NetworkModel> AlgorithmSystem for FaultedSystem<'_, N> {
    fn label(&self) -> String {
        format!("{}+{} on {}", self.kernel.name(), self.severity.label(), self.cluster.label)
    }
    fn marked_speed_flops(&self) -> f64 {
        self.cluster.marked_speed_flops()
    }
    fn work(&self, n: usize) -> f64 {
        match self.kernel {
            Kernel::Ge => ge_work(n),
            Kernel::Mm => mm_work(n),
        }
    }
    fn execute(&self, n: usize) -> f64 {
        match self.kernel {
            Kernel::Ge => {
                crate::memo::cached("ge", &self.cluster, self.network, n, Some(&self.plan), || {
                    ge_parallel_timed_faulted(&self.cluster, self.network, &self.plan, n)
                })
                .makespan
                .as_secs()
            }
            Kernel::Mm => {
                crate::memo::cached("mm", &self.cluster, self.network, n, Some(&self.plan), || {
                    mm_parallel_timed_faulted(&self.cluster, self.network, &self.plan, n)
                })
                .makespan
                .as_secs()
            }
        }
    }
}

/// One measured row of the fault sweep.
struct SweepRow {
    kernel: Kernel,
    severity: Severity,
    psi: f64,
    annex: RobustnessAnnex,
    ladder: ScalabilityLadder,
}

fn measure_kernel<N: NetworkModel>(
    kernel: Kernel,
    params: &ExperimentParams,
    net: &N,
    p_base: usize,
    p_scaled: usize,
    repr_n: usize,
) -> Vec<SweepRow> {
    let (target, sizes): (f64, &[usize]) = match kernel {
        Kernel::Ge => (GE_FAULTS_TARGET, &params.ge_sizes),
        Kernel::Mm => (params.mm_target, &params.mm_sizes),
    };
    let base_cluster = match kernel {
        Kernel::Ge => sunwulf::ge_config(p_base),
        Kernel::Mm => sunwulf::mm_config(p_base),
    };

    let base_ge = GeSystem { cluster: &base_cluster, network: net };
    let base_mm = MmSystem { cluster: &base_cluster, network: net };
    let measure_step = |scaled: &dyn AlgorithmSystem| -> ScalabilityLadder {
        let base: &dyn AlgorithmSystem = match kernel {
            Kernel::Ge => &base_ge,
            Kernel::Mm => &base_mm,
        };
        ScalabilityLadder::measure(&[base, scaled], target, sizes, params.fit_degree)
            .expect("fault sweep rung reaches the target efficiency")
    };

    let mut rows = Vec::new();
    let mut psi_baseline = f64::NAN;
    for severity in Severity::ALL {
        let faulted = FaultedSystem::new(kernel, severity, p_scaled, net);
        let ladder = measure_step(&faulted);
        let psi = ladder.steps[0].psi;
        if severity == Severity::None {
            psi_baseline = psi;
        }
        // Representative traced run at a fixed size: retry fraction and
        // (for deaths) the survivor repartition.
        let traces = match kernel {
            Kernel::Ge => {
                ge_parallel_timed_faulted_traced(&faulted.cluster, net, &faulted.plan, repr_n).1
            }
            Kernel::Mm => {
                mm_parallel_timed_faulted_traced(&faulted.cluster, net, &faulted.plan, repr_n).1
            }
        };
        let dead: Vec<usize> = severity.plan(p_scaled).deaths().keys().copied().collect();
        let repartition_cost_secs = if dead.is_empty() {
            0.0
        } else {
            let full = match kernel {
                Kernel::Ge => sunwulf::ge_config(p_scaled),
                Kernel::Mm => sunwulf::mm_config(p_scaled),
            };
            let speeds: Vec<f64> = full.nodes().iter().map(|nd| nd.marked_speed_flops()).collect();
            let row_bytes = 8 * (repr_n + 1) as u64;
            let moved = repartition_after_deaths(repr_n, &speeds, &dead, row_bytes);
            // Priced as one bulk survivor-to-survivor transfer.
            net.p2p_time_between(0, 1, moved.moved_bytes)
        };
        let annex = RobustnessAnnex::from_comparison(
            psi_baseline,
            psi,
            &traces,
            repartition_cost_secs,
            dead,
        );
        rows.push(SweepRow { kernel, severity, psi, annex, ladder });
    }
    rows
}

/// Runs the fault sweep and returns the scalability-under-faults table
/// plus a demo report (the GE straggler+drops step with its
/// [`RobustnessAnnex`] attached).
pub fn scalability_under_faults(
    params: &ExperimentParams,
    quick: bool,
) -> (Table, ScalabilityReport) {
    let net = sunwulf::sunwulf_network();
    let (p_base, p_scaled) = if quick { (4, 8) } else { (8, 16) };
    let (ge_repr, mm_repr) = if quick { (192, 128) } else { (384, 256) };

    let ge_rows = measure_kernel(Kernel::Ge, params, &net, p_base, p_scaled, ge_repr);
    let mm_rows = measure_kernel(Kernel::Mm, params, &net, p_base, p_scaled, mm_repr);

    let mut table = Table::new(
        format!("Faults — scalability under injected faults ({p_base} -> {p_scaled} nodes)"),
        &["Kernel", "Severity", "psi", "psi retention", "Retry share", "Repartition (s)"],
    );
    for row in ge_rows.iter().chain(&mm_rows) {
        table.push_row(vec![
            row.kernel.name().to_string(),
            row.severity.label().to_string(),
            fnum(row.psi),
            fnum(row.annex.psi_retention),
            format!("{:.1}%", row.annex.retry_overhead_fraction * 100.0),
            if row.annex.dead_ranks.is_empty() {
                "-".to_string()
            } else {
                format!("{:.5}", row.annex.repartition_cost_secs)
            },
        ]);
    }
    table.push_note(format!(
        "stragglers: ranks r = 1 mod 4 at {STRAGGLER_MULTIPLIER}x speed; drops: \
         {DROP_PER_MILLE} per mille per logical message; death: last rank dead at t = 0 \
         (survivors repartitioned, C' honestly reduced)"
    ));
    table.push_note(
        "severity none uses the faulted runtime with an empty plan: retention 1 certifies \
         the fault path is bit-identical to the baseline",
    );

    // Demo report: the straggler+drops GE step, annex attached.
    let demo_row = &ge_rows[3];
    debug_assert_eq!(demo_row.severity, Severity::StragglerDrops);
    let report = analyze(&demo_row.ladder).with_robustness(demo_row.annex.clone());
    (table, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_sweep_shape_and_retention() {
        let params = ExperimentParams::quick();
        let (table, report) = scalability_under_faults(&params, true);
        // 2 kernels x 5 severities.
        assert_eq!(table.rows.len(), 10);

        let retention = |row: &[String]| row[3].parse::<f64>().unwrap();
        for row in &table.rows {
            let r = retention(row);
            match row[1].as_str() {
                // Empty plan: the faulted path is bit-identical, so
                // retention is exactly 1.
                "none" => assert_eq!(r, 1.0, "{row:?}"),
                "straggler" | "drops" | "straggler+drops" => {
                    assert!(r < 1.0, "severity {} must lose scalability: {row:?}", row[1]);
                    assert!(r > 0.0, "{row:?}");
                }
                "death" => {
                    assert!(r.is_finite() && r > 0.0, "{row:?}");
                    // Dead node: repartition cost is reported.
                    assert_ne!(row[5], "-", "{row:?}");
                }
                other => panic!("unexpected severity {other}"),
            }
        }
        // Drops surface retry overhead in the annex column.
        let drops_rows: Vec<_> = table.rows.iter().filter(|r| r[1].contains("drops")).collect();
        assert!(drops_rows.iter().any(|r| r[4] != "0.0%"), "{drops_rows:?}");

        // The demo report carries the robustness annex.
        let annex = report.robustness.as_ref().expect("annex attached");
        assert!(annex.psi_retention < 1.0);
        let text = format!("{report}");
        assert!(text.contains("under faults"));
    }

    #[test]
    fn severity_plans_are_deterministic_and_distinct() {
        for severity in Severity::ALL {
            assert_eq!(severity.plan(8), severity.plan(8));
        }
        assert!(Severity::None.plan(8).is_empty());
        assert!(!Severity::Straggler.plan(8).is_empty());
        assert_eq!(Severity::Drops.plan(8).drop_per_mille(), DROP_PER_MILLE);
        assert_eq!(Severity::Death.plan(8).deaths().keys().copied().collect::<Vec<_>>(), vec![7]);
    }
}
