//! §4.4.3 — comparison of the two algorithm–system combinations: the
//! isospeed-efficiency metric quantifies that MM-Sunwulf is more
//! scalable than GE-Sunwulf (less communication, no sequential stage).

use crate::table::{fnum, Table};
use scalability::metric::ScalabilityLadder;

/// Builds the comparison table from the two measured ladders.
pub fn comparison(ge: &ScalabilityLadder, mm: &ScalabilityLadder) -> Table {
    let mut t = Table::new(
        "§4.4.3 — GE vs MM scalability on Sunwulf",
        &["Step", "psi (GE)", "psi (MM)", "MM more scalable?"],
    );
    for (g, m) in ge.steps.iter().zip(&mm.steps) {
        t.push_row(vec![
            format!("{} -> {}", short(&g.from), short(&g.to)),
            fnum(g.psi),
            fnum(m.psi),
            if m.psi > g.psi { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.push_note(format!(
        "geometric means: GE {:.4}, MM {:.4}",
        ge.geometric_mean_psi(),
        mm.geometric_mean_psi()
    ));
    t.push_note(
        "paper: the GE algorithm has a sequential portion and more communication, \
         so its scalability should be smaller — confirmed when every row says yes",
    );
    t
}

fn short(label: &str) -> String {
    label.split(" on ").nth(1).unwrap_or(label).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{f2t5::figure2_and_table5, t3t4::table3_and_4};
    use crate::params::ExperimentParams;

    #[test]
    fn mm_beats_ge_at_every_step() {
        let params = ExperimentParams::quick();
        let (_t3, _t4, ge) = table3_and_4(&params);
        let (_f2, _t5, mm) = figure2_and_table5(&params);
        let t = comparison(&ge, &mm);
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            assert_eq!(row[3], "yes", "step {} should favour MM: {row:?}", row[0]);
        }
    }
}
