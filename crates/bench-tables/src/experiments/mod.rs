//! One module per reproduced artifact. See the crate docs for the index.

pub mod ablate;
pub mod baselines;
pub mod compare;
pub mod decomp;
pub mod ext;
pub mod f1;
pub mod f2t5;
pub mod faults;
pub mod mega;
pub mod noise;
pub mod recover;
pub mod surface;
pub mod t1;
pub mod t2;
pub mod t3t4;
pub mod t6t7;
pub mod validate;
pub mod x2;
