//! Mid-run failure recovery — the opt-in `recover` experiment (R2).
//!
//! The `--faults` sweep (R1) injects faults that are *declared before
//! launch*; this sweep asks what ψ survives when the scaled system
//! instead fails **mid-run** under a seeded MTBF death stream and has
//! to recover in virtual time. Two policies compete
//! ([`RecoveryPolicy`], DESIGN.md §12):
//!
//! - **checkpoint/restart** at the Young/Daly-optimal interval
//!   `sqrt(2 · δ · MTBF)` for that cell's per-checkpoint cost δ, and
//! - **shrink-and-rebalance** — drop the dead rank, repartition the
//!   survivors via `hetpart::rebalance`, replay the lost work.
//!
//! MTBF is *size-relative*: each swept cell `n` gets
//! `MTBF = factor × T(n)` where `T(n)` is the work-proportional run
//! estimate, so the sampled death lands at the same progress fraction
//! at every size and the efficiency curves stay smooth enough for the
//! fitted-trend inversion. Everything — death placement, checkpoint
//! cadence, repartition — is a pure function of (plan seed base,
//! cluster, n), so the sweep is byte-identical across runs, `--jobs`
//! worker counts, and `--no-analytic` (recovery programs reject the
//! lockstep analyzer with the typed `recovery-ops` fallback and price
//! on the event-driven engine either way).
//!
//! The second table is the Daly check: at a fixed representative size,
//! mean makespan over a deterministic seed campaign across interval
//! multipliers `[0.25, 0.5, 1, 2, 4] × daly`; the measured optimum must
//! agree with the prediction within one grid step (pinned by tests and
//! EXPERIMENTS.md "R2").

use crate::params::ExperimentParams;
use crate::systems::{GeSystem, MmSystem};
use crate::table::{fnum, Table};
use hetpart::{BlockDistribution, CyclicDistribution, Distribution};
use hetsim_cluster::cluster::ClusterSpec;
use hetsim_cluster::faults::{
    checkpoint_cost_secs, daly_interval, FaultPlan, RecoveryPolicy, DETECT_TIMEOUT_SECS,
};
use hetsim_cluster::network::NetworkModel;
use hetsim_cluster::sunwulf;
use kernels::ge::{ge_parallel_timed_recoverable, ge_parallel_timed_recoverable_traced};
use kernels::mm::{mm_parallel_timed_recoverable, mm_parallel_timed_recoverable_traced};
use kernels::recover::estimated_run_secs;
use kernels::workload::{ge_work, mm_work};
use kernels::RecoveryOutcome;
use scalability::metric::{AlgorithmSystem, ScalabilityLadder};
use scalability::report::{analyze, RecoveryBreakdown, RobustnessAnnex, ScalabilityReport};

/// MTBF severities, as multiples of the cell's estimated run time
/// `T(n)`: from "a failure is unlikely but possible" down to "the
/// machine almost always loses a node early".
pub const MTBF_FACTORS: [f64; 3] = [4.0, 1.0, 0.25];

/// Interval grid of the Daly check, as multiples of the predicted
/// optimum. One grid step is a factor of two: the agreement criterion.
pub const DALY_GRID: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// Salt separating the recovery sweep's plan seeds from the `--faults`
/// severity plans (both derive from `crate::seed::plan_seed()`).
pub const RECOVER_SEED_SALT: u64 = 0x7ec0;

/// Salt separating the Daly seed campaign's streams from the ladder's.
pub const DALY_SEED_SALT: u64 = 0xda10;

/// Which kernel a recoverable system wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    Ge,
    Mm,
}

impl Kernel {
    fn name(self) -> &'static str {
        match self {
            Kernel::Ge => "GE",
            Kernel::Mm => "MM",
        }
    }

    fn config(self, p: usize) -> ClusterSpec {
        match self {
            Kernel::Ge => sunwulf::ge_config(p),
            Kernel::Mm => sunwulf::mm_config(p),
        }
    }

    fn work(self, n: usize) -> f64 {
        match self {
            Kernel::Ge => ge_work(n),
            Kernel::Mm => mm_work(n),
        }
    }

    /// Representative size for the traced decomposition run and the
    /// Daly campaign: large enough that the estimated run dwarfs the
    /// fixed checkpoint latency (`T ≫ δ`), so interval choice matters.
    /// Checkpointing only pays when `T ≳ 20 δ` (below that, the ~0.26 T
    /// a single expected failure loses without checkpoints is cheaper
    /// than the `~1.15 √(δT)` the Daly strategy costs), so these sizes
    /// keep `T/δ ≳ 40`.
    fn repr_n(self, quick: bool) -> usize {
        match (self, quick) {
            (Kernel::Ge, true) => 1024,
            (Kernel::Ge, false) => 1536,
            (Kernel::Mm, true) => 640,
            (Kernel::Mm, false) => 1024,
        }
    }

    /// Problem sizes swept for the recovery efficiency curves. The
    /// standard sweeps stop where runs last milliseconds, but the
    /// recovery floors are *absolute* (0.05 s detector timeout, 0.02 s
    /// checkpoint latency), so the degraded target crossing only exists
    /// at sizes where a run lasts long enough to amortize one recovery;
    /// these grids extend the standard ones until it is interior.
    fn recover_sizes(self, quick: bool) -> Vec<usize> {
        match (self, quick) {
            (Kernel::Ge, true) => vec![260, 420, 700, 1100, 1700, 2600],
            (Kernel::Ge, false) => vec![700, 1100, 1700, 2600, 3800, 5200],
            (Kernel::Mm, true) => vec![24, 48, 96, 176, 330, 640, 900],
            (Kernel::Mm, false) => vec![48, 96, 176, 330, 640, 1200, 1800],
        }
    }

    /// Per-checkpoint makespan cost δ at size `n`: the slowest rank's
    /// coordinated checkpoint write, the exact bytes the recoverable
    /// kernels charge (GE: cyclic rows of `n + 1` doubles; MM:
    /// proportional block rows of `n` doubles).
    fn checkpoint_delta_secs(self, cluster: &ClusterSpec, n: usize) -> f64 {
        let speeds: Vec<f64> = cluster.nodes().iter().map(|nd| nd.marked_speed_mflops).collect();
        let p = cluster.size();
        let bytes = |r: usize| -> u64 {
            match self {
                Kernel::Ge => {
                    let dist = CyclicDistribution::fine(n, &speeds);
                    dist.rows_of(r).len() as u64 * ((n + 1) * 8) as u64
                }
                Kernel::Mm => {
                    let dist = BlockDistribution::proportional(n, &speeds);
                    dist.range_of(r).len() as u64 * (n * 8) as u64
                }
            }
        };
        (0..p).map(|r| checkpoint_cost_secs(bytes(r))).fold(0.0, f64::max)
    }
}

/// Which recovery policy a sweep row exercises (the concrete
/// [`RecoveryPolicy`] is derived per cell: the checkpoint interval is
/// the Daly optimum for that cell's MTBF and δ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PolicyKind {
    CheckpointRestart,
    ShrinkRebalance,
}

impl PolicyKind {
    fn label(self) -> &'static str {
        match self {
            PolicyKind::CheckpointRestart => "checkpoint-restart",
            PolicyKind::ShrinkRebalance => "shrink-rebalance",
        }
    }

    /// Memo-cache label. The checkpoint interval is not part of the
    /// memo key, but it is a pure function of key components (plan
    /// MTBF, cluster, n), so one label per (kernel, policy) is sound.
    fn memo_label(self, kernel: Kernel) -> &'static str {
        match (kernel, self) {
            (Kernel::Ge, PolicyKind::CheckpointRestart) => "ge-rec-cr",
            (Kernel::Ge, PolicyKind::ShrinkRebalance) => "ge-rec-sr",
            (Kernel::Mm, PolicyKind::CheckpointRestart) => "mm-rec-cr",
            (Kernel::Mm, PolicyKind::ShrinkRebalance) => "mm-rec-sr",
        }
    }
}

/// Plan seed of the recovery sweep for a `p`-rank scaled configuration.
fn recover_seed(p: usize) -> u64 {
    crate::seed::plan_seed() + RECOVER_SEED_SALT + p as u64
}

/// A kernel bound to the scaled configuration under an MTBF death
/// stream and a recovery policy. `mtbf_factor == None` is the clean
/// baseline: an empty plan, which the recoverable drivers degenerate to
/// the bit-exact baseline op stream for.
struct RecoverableSystem<'a, N: NetworkModel> {
    kernel: Kernel,
    mtbf_factor: Option<f64>,
    policy: PolicyKind,
    cluster: ClusterSpec,
    network: &'a N,
}

impl<N: NetworkModel> RecoverableSystem<'_, N> {
    fn plan_for(&self, n: usize) -> FaultPlan {
        let seed = recover_seed(self.cluster.size());
        match self.mtbf_factor {
            None => FaultPlan::new(seed),
            Some(factor) => {
                let est = estimated_run_secs(&self.cluster, self.kernel.work(n));
                FaultPlan::new(seed).with_mtbf(factor * est)
            }
        }
    }

    fn policy_for(&self, n: usize) -> RecoveryPolicy {
        match self.policy {
            PolicyKind::ShrinkRebalance => RecoveryPolicy::ShrinkRebalance,
            PolicyKind::CheckpointRestart => {
                let est = estimated_run_secs(&self.cluster, self.kernel.work(n));
                let mtbf = self.mtbf_factor.unwrap_or(1.0) * est;
                let delta = self.kernel.checkpoint_delta_secs(&self.cluster, n);
                RecoveryPolicy::CheckpointRestart { interval_secs: daly_interval(mtbf, delta) }
            }
        }
    }
}

impl<N: NetworkModel> AlgorithmSystem for RecoverableSystem<'_, N> {
    fn label(&self) -> String {
        let mtbf = match self.mtbf_factor {
            None => "clean".to_string(),
            Some(f) => format!("mtbf {f}xT"),
        };
        format!("{}+{}+{} on {}", self.kernel.name(), mtbf, self.policy.label(), self.cluster.label)
    }
    fn marked_speed_flops(&self) -> f64 {
        // The machine was sold as the full cluster; a mid-run death does
        // not shrink `C` honestly the way a declared death does — the
        // loss shows up in ψ retention instead.
        self.cluster.marked_speed_flops()
    }
    fn work(&self, n: usize) -> f64 {
        self.kernel.work(n)
    }
    fn execute(&self, n: usize) -> f64 {
        let plan = self.plan_for(n);
        let policy = self.policy_for(n);
        let label = self.policy.memo_label(self.kernel);
        crate::memo::cached(label, &self.cluster, self.network, n, Some(&plan), || {
            match self.kernel {
                Kernel::Ge => {
                    ge_parallel_timed_recoverable(&self.cluster, self.network, &plan, policy, n)
                        .timing
                }
                Kernel::Mm => {
                    mm_parallel_timed_recoverable(&self.cluster, self.network, &plan, policy, n)
                        .timing
                }
            }
        })
        .makespan
        .as_secs()
    }
}

/// One measured row of the recovery sweep.
struct SweepRow {
    kernel: Kernel,
    mtbf_factor: Option<f64>,
    policy: PolicyKind,
    interval_secs: Option<f64>,
    psi: f64,
    outcome: RecoveryOutcome,
    annex: RobustnessAnnex,
    ladder: ScalabilityLadder,
}

fn measure_kernel<N: NetworkModel>(
    kernel: Kernel,
    params: &ExperimentParams,
    net: &N,
    p_base: usize,
    p_scaled: usize,
    repr_n: usize,
    quick: bool,
) -> Vec<SweepRow> {
    let target = match kernel {
        Kernel::Ge => super::faults::GE_FAULTS_TARGET,
        Kernel::Mm => params.mm_target,
    };
    let sizes = kernel.recover_sizes(quick);
    let sizes: &[usize] = &sizes;
    let base_cluster = kernel.config(p_base);
    let base_ge = GeSystem { cluster: &base_cluster, network: net };
    let base_mm = MmSystem { cluster: &base_cluster, network: net };

    let mut specs: Vec<(Option<f64>, PolicyKind)> = vec![(None, PolicyKind::ShrinkRebalance)];
    for factor in MTBF_FACTORS {
        specs.push((Some(factor), PolicyKind::CheckpointRestart));
        specs.push((Some(factor), PolicyKind::ShrinkRebalance));
    }

    let mut rows = Vec::new();
    let mut psi_baseline = f64::NAN;
    for (mtbf_factor, policy) in specs {
        let system = RecoverableSystem {
            kernel,
            mtbf_factor,
            policy,
            cluster: kernel.config(p_scaled),
            network: net,
        };
        let base: &dyn AlgorithmSystem = match kernel {
            Kernel::Ge => &base_ge,
            Kernel::Mm => &base_mm,
        };
        let ladder = ScalabilityLadder::measure(&[base, &system], target, sizes, params.fit_degree)
            .expect("recovery sweep rung reaches the target efficiency");
        let psi = ladder.steps[0].psi;
        if mtbf_factor.is_none() {
            psi_baseline = psi;
        }

        // Representative traced run: the recovery spans feed the annex's
        // overhead breakdown; the typed decomposition comes from the
        // driver's own accounting.
        let plan = system.plan_for(repr_n);
        let cell_policy = system.policy_for(repr_n);
        let (outcome, traces) = match kernel {
            Kernel::Ge => ge_parallel_timed_recoverable_traced(
                &system.cluster,
                net,
                &plan,
                cell_policy,
                repr_n,
            ),
            Kernel::Mm => mm_parallel_timed_recoverable_traced(
                &system.cluster,
                net,
                &plan,
                cell_policy,
                repr_n,
            ),
        };
        let dead: Vec<usize> = outcome.death.map(|ev| ev.rank).into_iter().collect();
        let mut annex = RobustnessAnnex::from_comparison(
            psi_baseline,
            psi,
            &traces,
            outcome.overhead.rebalance_secs,
            dead,
        );
        if mtbf_factor.is_some() {
            annex = annex.with_recovery(RecoveryBreakdown {
                checkpoint_tax_secs: outcome.overhead.checkpoint_secs,
                detect_secs: outcome.overhead.detect_secs,
                lost_work_secs: outcome.overhead.lost_work_secs,
                rebalance_cost_secs: outcome.overhead.rebalance_secs,
            });
        }
        let interval_secs = match cell_policy {
            RecoveryPolicy::CheckpointRestart { interval_secs } if mtbf_factor.is_some() => {
                Some(interval_secs)
            }
            _ => None,
        };
        rows.push(SweepRow {
            kernel,
            mtbf_factor,
            policy,
            interval_secs,
            psi,
            outcome,
            annex,
            ladder,
        });
    }
    rows
}

/// Result of one kernel's Daly check: mean makespans over the seed
/// campaign per interval multiplier, and where measurement and
/// prediction land.
pub struct DalyCheck {
    /// Kernel name ("GE" / "MM").
    pub kernel: &'static str,
    /// Representative size the campaign prices.
    pub n: usize,
    /// Seeds per interval multiplier in the campaign.
    pub seeds: u64,
    /// The predicted Young/Daly interval in virtual seconds.
    pub daly_secs: f64,
    /// Mean makespan per [`DALY_GRID`] multiplier (campaign order).
    pub mean_makespans: Vec<f64>,
    /// The multiplier with the smallest mean makespan.
    pub measured_multiplier: f64,
}

impl DalyCheck {
    /// True when the measured optimum is within one grid step (a factor
    /// of two) of the Daly prediction — the R2 acceptance criterion.
    pub fn agrees(&self) -> bool {
        (0.5..=2.0).contains(&self.measured_multiplier)
    }
}

fn daly_check(kernel: Kernel, p: usize, quick: bool) -> DalyCheck {
    let net = sunwulf::sunwulf_network();
    let cluster = kernel.config(p);
    let n = kernel.repr_n(quick);
    let est = estimated_run_secs(&cluster, kernel.work(n));
    // Daly's formula takes the *system* MTBF. Death times are sampled
    // per rank, and the first failure is the minimum over `p` ranks, so
    // per-rank MTBF `p * T` makes the machine-level MTBF `T` — one
    // expected failure per run, landing anywhere in it. (Per-rank `T`
    // would put the first death at `~T/p`, so early that lost work is
    // negligible and "never checkpoint" always wins.)
    let mtbf = p as f64 * est;
    let delta = kernel.checkpoint_delta_secs(&cluster, n);
    let daly = daly_interval(est, delta);
    let seeds = if quick { 16 } else { 24 };

    // One campaign cell per (multiplier, seed); the pool assembles
    // results in cell order, so the means below are fixed-order sums
    // and the table is byte-identical for every `--jobs N`.
    let cells: Vec<(usize, u64)> =
        (0..DALY_GRID.len()).flat_map(|mi| (0..seeds).map(move |s| (mi, s))).collect();
    let makespans = crate::pool::run_indexed(&cells, |_, &(mi, s)| {
        let plan = FaultPlan::new(crate::seed::plan_seed() + DALY_SEED_SALT + s).with_mtbf(mtbf);
        let policy = RecoveryPolicy::CheckpointRestart { interval_secs: DALY_GRID[mi] * daly };
        let outcome = match kernel {
            Kernel::Ge => ge_parallel_timed_recoverable(&cluster, &net, &plan, policy, n),
            Kernel::Mm => mm_parallel_timed_recoverable(&cluster, &net, &plan, policy, n),
        };
        outcome.timing.makespan.as_secs()
    });

    let mean_makespans: Vec<f64> = (0..DALY_GRID.len())
        .map(|mi| {
            let sum: f64 = (0..seeds as usize).map(|s| makespans[mi * seeds as usize + s]).sum();
            sum / seeds as f64
        })
        .collect();
    let best = mean_makespans
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("makespans are finite"))
        .map(|(i, _)| i)
        .expect("non-empty grid");
    DalyCheck {
        kernel: kernel.name(),
        n,
        seeds,
        daly_secs: daly,
        mean_makespans,
        measured_multiplier: DALY_GRID[best],
    }
}

/// Runs both kernels' Daly campaigns (used directly by the shape tests).
pub fn daly_checks(quick: bool) -> Vec<DalyCheck> {
    let p = if quick { 8 } else { 16 };
    vec![daly_check(Kernel::Ge, p, quick), daly_check(Kernel::Mm, p, quick)]
}

/// Inputs of the traced GE checkpoint-restart run the observability
/// exports publish when `recover` is requested: the scaled cluster, the
/// 1×T MTBF plan, the Daly-interval policy, and the representative size.
pub fn ge_observed_inputs(quick: bool) -> (ClusterSpec, FaultPlan, RecoveryPolicy, usize) {
    observed_inputs(Kernel::Ge, PolicyKind::CheckpointRestart, quick)
}

/// Inputs of the traced MM shrink-rebalance run for the observability
/// exports (0.25×T MTBF: the death lands early, so the detect, lost-work
/// and rebalance spans all appear in the trace).
pub fn mm_observed_inputs(quick: bool) -> (ClusterSpec, FaultPlan, RecoveryPolicy, usize) {
    observed_inputs(Kernel::Mm, PolicyKind::ShrinkRebalance, quick)
}

fn observed_inputs(
    kernel: Kernel,
    policy: PolicyKind,
    quick: bool,
) -> (ClusterSpec, FaultPlan, RecoveryPolicy, usize) {
    let p = if quick { 8 } else { 16 };
    let factor = match policy {
        PolicyKind::CheckpointRestart => 1.0,
        PolicyKind::ShrinkRebalance => 0.25,
    };
    let system = RecoverableSystem {
        kernel,
        mtbf_factor: Some(factor),
        policy,
        cluster: kernel.config(p),
        network: &sunwulf::sunwulf_network(),
    };
    let n = kernel.repr_n(quick);
    let plan = system.plan_for(n);
    let cell_policy = system.policy_for(n);
    (system.cluster, plan, cell_policy, n)
}

/// Runs the recovery sweep: the ψ-retention table (MTBF × policy with
/// the overhead decomposition), the Daly-interval check table, and a
/// demo report (the GE 1×T checkpoint-restart step with its recovery
/// annex attached).
pub fn recovery_sweep(params: &ExperimentParams, quick: bool) -> (Vec<Table>, ScalabilityReport) {
    let net = sunwulf::sunwulf_network();
    let (p_base, p_scaled) = if quick { (4, 8) } else { (8, 16) };

    let ge_rows =
        measure_kernel(Kernel::Ge, params, &net, p_base, p_scaled, Kernel::Ge.repr_n(quick), quick);
    let mm_rows =
        measure_kernel(Kernel::Mm, params, &net, p_base, p_scaled, Kernel::Mm.repr_n(quick), quick);

    let mut sweep = Table::new(
        format!("Recover — psi retention under MTBF death streams ({p_base} -> {p_scaled} nodes)"),
        &[
            "Kernel",
            "MTBF",
            "Policy",
            "Interval (s)",
            "psi",
            "psi retention",
            "Ckpt (s)",
            "Lost (s)",
            "Rebal (s)",
            "Death",
        ],
    );
    let psi_base = |rows: &[SweepRow]| rows[0].psi;
    for (rows, base) in [(&ge_rows, psi_base(&ge_rows)), (&mm_rows, psi_base(&mm_rows))] {
        for row in rows.iter() {
            let oh = &row.outcome.overhead;
            sweep.push_row(vec![
                row.kernel.name().to_string(),
                row.mtbf_factor.map_or("-".to_string(), |f| format!("{f}xT")),
                if row.mtbf_factor.is_none() {
                    "none".to_string()
                } else {
                    row.policy.label().to_string()
                },
                row.interval_secs.map_or("-".to_string(), |i| format!("{i:.4}")),
                fnum(row.psi),
                fnum(row.psi / base),
                if row.mtbf_factor.is_none() {
                    "-".to_string()
                } else {
                    format!("{:.4}", oh.checkpoint_secs)
                },
                if row.mtbf_factor.is_none() {
                    "-".to_string()
                } else {
                    format!("{:.4}", oh.lost_work_secs)
                },
                if row.mtbf_factor.is_none() {
                    "-".to_string()
                } else {
                    format!("{:.4}", oh.rebalance_secs)
                },
                row.outcome
                    .death
                    .map_or("-".to_string(), |ev| format!("r{}@i{}", ev.rank, ev.iteration)),
            ]);
        }
    }
    sweep.push_note(format!(
        "MTBF is size-relative (factor x estimated run T(n)); checkpoint intervals are the \
         Young/Daly optimum sqrt(2*delta*MTBF) per cell; detector timeout {DETECT_TIMEOUT_SECS}s \
         per surviving rank when a death fires"
    ));
    sweep.push_note(
        "decomposition columns price the representative traced run; MTBF `-` is the clean \
         baseline: the recoverable path degenerates to the bit-exact baseline op stream",
    );

    let checks = daly_checks(quick);
    let mut daly = Table::new(
        "Recover — measured optimal checkpoint interval vs Young/Daly",
        &["Kernel", "Interval/Daly", "Interval (s)", "Mean makespan (s)", "Optimum"],
    );
    for check in &checks {
        for (mi, &mult) in DALY_GRID.iter().enumerate() {
            let marker = if mult == check.measured_multiplier && mult == 1.0 {
                "measured = Daly"
            } else if mult == check.measured_multiplier {
                "measured"
            } else if mult == 1.0 {
                "Daly"
            } else {
                ""
            };
            daly.push_row(vec![
                check.kernel.to_string(),
                format!("{mult}x"),
                format!("{:.4}", mult * check.daly_secs),
                format!("{:.6}", check.mean_makespans[mi]),
                marker.to_string(),
            ]);
        }
    }
    daly.push_note(format!(
        "mean over a {}-seed campaign at 1xT MTBF (GE n = {}, MM n = {}); the measured optimum \
         must sit within one grid step (2x) of the 1x Daly prediction",
        checks[0].seeds, checks[0].n, checks[1].n,
    ));

    // Demo report: the GE 1xT checkpoint-restart step, recovery annex
    // attached.
    let demo = &ge_rows[3];
    debug_assert_eq!(demo.mtbf_factor, Some(1.0));
    debug_assert_eq!(demo.policy, PolicyKind::CheckpointRestart);
    let report = analyze(&demo.ladder).with_robustness(demo.annex.clone());
    (vec![sweep, daly], report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_sweep_shape_and_retention() {
        let params = ExperimentParams::quick();
        let (tables, report) = recovery_sweep(&params, true);
        assert_eq!(tables.len(), 2);
        let sweep = &tables[0];
        // 2 kernels x (1 baseline + 3 MTBF factors x 2 policies).
        assert_eq!(sweep.rows.len(), 14);

        for row in &sweep.rows {
            let retention: f64 = row[5].parse().unwrap();
            assert!(retention > 0.0 && retention.is_finite(), "retention not positive: {row:?}");
            if row[1] == "-" {
                assert_eq!(retention, 1.0, "clean baseline must retain psi exactly: {row:?}");
                assert_eq!(row[2], "none");
            }
        }
        // Shrink rows must actually diverge from the baseline and fire a
        // death. Retention may exceed 1 — losing a rank pushes the
        // iso-efficiency crossing to a larger N where the achieved speed
        // is higher, exactly as the `--faults` death severity does.
        let shrink: Vec<_> = sweep.rows.iter().filter(|r| r[2] == "shrink-rebalance").collect();
        assert_eq!(shrink.len(), 6);
        for row in &shrink {
            let retention: f64 = row[5].parse().unwrap();
            assert_ne!(retention, 1.0, "shrink under deaths must move psi: {row:?}");
            assert_ne!(row[9], "-", "every MTBF severity must fire a death: {row:?}");
        }
        // Checkpoint-restart rows price a checkpoint tax at the
        // representative size (T >> delta there), and the tax must cost
        // scalability: retention strictly below the clean baseline.
        let cr: Vec<_> = sweep.rows.iter().filter(|r| r[2] == "checkpoint-restart").collect();
        assert_eq!(cr.len(), 6);
        for row in &cr {
            assert_ne!(row[3], "-", "checkpoint rows report their Daly interval: {row:?}");
            let tax: f64 = row[6].parse().unwrap();
            assert!(tax > 0.0, "checkpoint tax missing: {row:?}");
            let retention: f64 = row[5].parse().unwrap();
            assert!(retention < 1.0, "checkpoint tax must cost psi: {row:?}");
        }

        // The demo report carries the recovery decomposition.
        let annex = report.robustness.as_ref().expect("annex attached");
        let recovery = annex.recovery.as_ref().expect("recovery breakdown attached");
        assert!(recovery.checkpoint_tax_secs > 0.0);
        let text = format!("{report}");
        assert!(text.contains("recovery overhead"), "report misses recovery line: {text}");
    }

    #[test]
    fn measured_optimum_agrees_with_daly_within_grid_resolution() {
        for check in daly_checks(true) {
            assert!(
                check.agrees(),
                "{}: measured optimum {}x daly ({} s) is more than one grid step from 1x; means {:?}",
                check.kernel,
                check.measured_multiplier,
                check.daly_secs,
                check.mean_makespans,
            );
            // The grid must be non-degenerate: the extremes must both be
            // measurably worse than the optimum, or the campaign is not
            // actually resolving an interior minimum.
            let best = check.mean_makespans.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(check.mean_makespans[0] > best, "{}: left edge not worse", check.kernel);
            assert!(
                check.mean_makespans[DALY_GRID.len() - 1] > best,
                "{}: right edge not worse",
                check.kernel
            );
        }
    }

    #[test]
    fn observed_inputs_fire_recovery_spans() {
        use hetsim_mpi::trace::OpKind;
        let (cluster, plan, policy, n) = ge_observed_inputs(true);
        let (_, traces) = ge_parallel_timed_recoverable_traced(
            &cluster,
            &sunwulf::sunwulf_network(),
            &plan,
            policy,
            n,
        );
        let kinds: Vec<OpKind> =
            traces.iter().flat_map(|t| t.records.iter().map(|r| r.kind)).collect();
        assert!(kinds.contains(&OpKind::Checkpoint), "GE obs run must checkpoint");

        let (cluster, plan, policy, n) = mm_observed_inputs(true);
        let (outcome, traces) = mm_parallel_timed_recoverable_traced(
            &cluster,
            &sunwulf::sunwulf_network(),
            &plan,
            policy,
            n,
        );
        assert!(outcome.death.is_some(), "MM obs run must lose a rank");
        let kinds: Vec<OpKind> =
            traces.iter().flat_map(|t| t.records.iter().map(|r| r.kind)).collect();
        assert!(kinds.contains(&OpKind::Detect));
        assert!(kinds.contains(&OpKind::Rebalance));
    }
}
