//! X2 (extension) — three algorithm–system combinations on one ladder.
//!
//! The paper compares GE (per-iteration broadcast + barrier) and MM
//! (root-serialized distribution only). Adding a halo-exchange stencil
//! — per-iteration communication independent of the process count —
//! completes the spectrum the metric is meant to resolve: over the
//! ladder, `psi(stencil) > psi(MM) > psi(GE)` (geometric means).
//!
//! One structural subtlety the metric surfaces: the stencil's *first*
//! doubling (2 → 4 nodes) is its worst step, because at `p = 2` every
//! rank is a boundary rank with a single neighbour, while `p ≥ 3`
//! introduces interior ranks carrying two halo exchanges per sweep — a
//! one-time per-rank overhead jump that later doublings do not repeat
//! (their ψ climbs toward the Corollary-1 ideal).

use crate::params::ExperimentParams;
use crate::plot::AsciiPlot;
use crate::systems::{PowerSystem, StencilSystem};
use crate::table::{fnum, Table};
use hetsim_cluster::sunwulf;
use scalability::execution_time::execution_time_ratio;
use scalability::metric::{AlgorithmSystem, ScalabilityLadder};

/// Problem sizes swept for the stencil curves (required `N` runs from
/// ~100 at 2 nodes to ~400 at 32 nodes at target 0.3).
pub fn stencil_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![24, 32, 48, 64, 96, 128, 176, 240, 330]
    } else {
        vec![24, 32, 48, 64, 96, 128, 176, 240, 330, 450, 600]
    }
}

/// Measures the stencil ladder on the GE configurations (same systems,
/// third workload) at target efficiency 0.3.
pub fn stencil_ladder(params: &ExperimentParams, quick: bool) -> ScalabilityLadder {
    let net = sunwulf::sunwulf_network();
    let clusters: Vec<_> = params.ge_ladder.iter().map(|&p| sunwulf::ge_config(p)).collect();
    let systems: Vec<StencilSystem<_>> =
        clusters.iter().map(|c| StencilSystem::new(c, &net)).collect();
    let dyn_systems: Vec<&dyn AlgorithmSystem> =
        systems.iter().map(|s| s as &dyn AlgorithmSystem).collect();
    ScalabilityLadder::measure(&dyn_systems, 0.3, &stencil_sizes(quick), params.fit_degree)
        .expect("every stencil rung reaches the target efficiency")
}

/// Problem sizes swept for the power-method curves.
pub fn power_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![48, 64, 96, 128, 192, 280, 400, 560, 800]
    } else {
        vec![48, 64, 96, 128, 192, 280, 400, 560, 800, 1200, 1700, 2400]
    }
}

/// Measures the power-method ladder on the GE configurations (fourth
/// workload) at target efficiency 0.3.
pub fn power_ladder(params: &ExperimentParams, quick: bool) -> ScalabilityLadder {
    let net = sunwulf::sunwulf_network();
    let clusters: Vec<_> = params.ge_ladder.iter().map(|&p| sunwulf::ge_config(p)).collect();
    let systems: Vec<PowerSystem<_>> = clusters.iter().map(|c| PowerSystem::new(c, &net)).collect();
    let dyn_systems: Vec<&dyn AlgorithmSystem> =
        systems.iter().map(|s| s as &dyn AlgorithmSystem).collect();
    ScalabilityLadder::measure(&dyn_systems, 0.3, &power_sizes(quick), params.fit_degree)
        .expect("every power rung reaches the target efficiency")
}

/// Builds the four-way comparison table from the measured ladders.
pub fn three_way_comparison(
    ge: &ScalabilityLadder,
    mm: &ScalabilityLadder,
    stencil: &ScalabilityLadder,
    power: &ScalabilityLadder,
) -> Table {
    let mut t = Table::new(
        "Extension X2 — four combinations on the Sunwulf ladder",
        &["Step", "psi (GE)", "psi (Power)", "psi (MM)", "psi (Stencil)", "T'/T (Stencil)"],
    );
    for (((g, m), s), w) in ge.steps.iter().zip(&mm.steps).zip(&stencil.steps).zip(&power.steps) {
        t.push_row(vec![
            format!("{} -> {}", short(&g.from), short(&g.to)),
            fnum(g.psi),
            fnum(w.psi),
            fnum(m.psi),
            fnum(s.psi),
            fnum(execution_time_ratio(s.psi)),
        ]);
    }
    t.push_note(format!(
        "geometric means: GE {:.4}, Power {:.4}, MM {:.4}, Stencil {:.4}",
        ge.geometric_mean_psi(),
        power.geometric_mean_psi(),
        mm.geometric_mean_psi(),
        stencil.geometric_mean_psi()
    ));
    t.push_note(
        "per-iteration latency structure sets the psi class: p-independent \
         (stencil) > one-time (MM) > per-iteration O(p) collective (GE ~ Power)",
    );
    t.push_note(
        "power iteration's allgather looks milder than GE's bcast+barrier, yet \
         lands in the same class — the collective's flavour is second-order",
    );
    t.push_note(
        "the stencil's weak first step is the 2-node boundary-to-interior \
         transition: p >= 3 adds a second halo exchange per interior rank, once",
    );
    t.push_note(
        "T'/T = 1/psi is the execution-time cost of holding E_s while scaling \
         (Sun, JPDC 2002)",
    );
    t
}

fn short(label: &str) -> String {
    label.split(" on ").nth(1).unwrap_or(label).to_string()
}

/// Renders the four ψ ladders as one plot: rung index against ψ.
pub fn psi_ladder_plot(
    ge: &ScalabilityLadder,
    mm: &ScalabilityLadder,
    stencil: &ScalabilityLadder,
    power: &ScalabilityLadder,
) -> AsciiPlot {
    let mut plot = AsciiPlot::new(
        "Extension X2 — psi per doubling, four combinations",
        "doubling step",
        "psi",
    );
    for (label, ladder) in [("GE", ge), ("Power", power), ("MM", mm), ("Stencil", stencil)] {
        let pts: Vec<(f64, f64)> =
            ladder.steps.iter().enumerate().map(|(i, s)| ((i + 1) as f64, s.psi)).collect();
        plot.add_series(label, pts);
    }
    plot.with_hline(1.0, "perfect scalability");
    plot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{f2t5::figure2_and_table5, t3t4::table3_and_4};

    #[test]
    fn geometric_means_order_the_combination_classes() {
        let params = ExperimentParams::quick();
        let (_t3, _t4, ge) = table3_and_4(&params);
        let (_f2, _t5, mm) = figure2_and_table5(&params);
        let st = stencil_ladder(&params, true);
        let pw = power_ladder(&params, true);
        let (g, m, s, w) = (
            ge.geometric_mean_psi(),
            mm.geometric_mean_psi(),
            st.geometric_mean_psi(),
            pw.geometric_mean_psi(),
        );
        assert!(s > m && m > g, "class ordering violated: GE {g}, MM {m}, stencil {s}");
        assert!(m > w, "MM {m} must beat the per-iteration-collective class ({w})");
        // Power and GE share a class: within 2x of one another.
        let ratio = (w / g).max(g / w);
        assert!(ratio < 2.0, "power {w} and GE {g} should be same-class (ratio {ratio})");
    }

    #[test]
    fn psi_ladder_plot_has_four_series() {
        let params = ExperimentParams::quick();
        let (_t3, _t4, ge) = table3_and_4(&params);
        let (_f2, _t5, mm) = figure2_and_table5(&params);
        let st = stencil_ladder(&params, true);
        let pw = power_ladder(&params, true);
        let plot = psi_ladder_plot(&ge, &mm, &st, &pw);
        assert_eq!(plot.series_count(), 4);
        let text = format!("{plot}");
        assert!(text.contains("Stencil") && text.contains("perfect scalability"));
    }

    #[test]
    fn stencil_beats_ge_at_every_step_and_climbs() {
        let params = ExperimentParams::quick();
        let (_t3, _t4, ge) = table3_and_4(&params);
        let st = stencil_ladder(&params, true);
        for (g, s) in ge.steps.iter().zip(&st.steps) {
            assert!(s.psi > g.psi, "stencil {} vs GE {} at {}", s.psi, g.psi, g.from);
        }
        // After the one-time boundary-to-interior transition, ψ climbs
        // toward the Corollary-1 ideal.
        assert!(
            st.steps.last().unwrap().psi > st.steps[0].psi,
            "later doublings must scale better than the first: {:?}",
            st.steps.iter().map(|s| s.psi).collect::<Vec<_>>()
        );
        assert!(st.steps.last().unwrap().psi > 0.4);
    }
}
