//! A6 (extension) — trend-line robustness against measurement noise.
//!
//! The paper reads required problem sizes off *polynomial trend lines*
//! rather than raw samples — a methodological choice that matters only
//! when measurements are rough. This study freezes ±σ noise into the
//! network costs ([`hetsim_cluster::network::JitteredNetwork`]) and
//! compares three read-off strategies for the GE two-node required `N`:
//!
//! * **nearest sample** — the sampled `N` whose measured `E_s` is
//!   closest to the target (no interpolation at all);
//! * **piecewise linear** — invert the raw sample polyline;
//! * **trend line** — the paper's polynomial fit + inversion.
//!
//! Reported per σ: each strategy's worst absolute deviation of the
//! recovered `N` from the noise-free trend-line reference, over several
//! independent frozen-noise campaigns. The nearest-sample strategy
//! carries grid-quantization error even without noise; the piecewise
//! inversion amplifies single-sample noise locally; the paper's global
//! fit smooths both.

use crate::pool;
use crate::systems::GeSystem;
use crate::table::{fnum, Table};
use hetsim_cluster::network::JitteredNetwork;
use hetsim_cluster::sunwulf;
use kernels::ge::ge_parallel_timed_many;
use scalability::measure::Measurement;
use scalability::metric::{AlgorithmSystem, EfficiencyCurve};

/// Campaigns per batched pricing call: large enough that the shared
/// elimination state amortizes across a chunk, small enough that the
/// pool still has chunks to hand out under `--jobs`.
const CHUNK: usize = 12;

/// Read-off strategies under comparison.
fn read_offs(curve: &EfficiencyCurve, target: f64, degree: usize) -> Option<[f64; 3]> {
    // Nearest sample.
    let nearest = curve
        .series
        .iter()
        .min_by(|a, b| (a.1 - target).abs().total_cmp(&(b.1 - target).abs()))
        .map(|(x, _)| x)?;
    // Piecewise linear.
    let linear = curve.series.invert_linear(target).ok()?;
    // Trend line (with the built-in linear fallback stripped out: we
    // want the raw poly behaviour, so call fit+invert directly).
    let fit = curve.fit(degree).ok()?;
    let (lo, hi) = curve.series.x_range()?;
    let poly = numfit::invert_monotone(|x| fit.poly.eval(x), lo, hi, target, 1e-6).ok()?;
    Some([nearest, linear, poly])
}

/// Runs the noise study: `seeds` independent measurement campaigns per
/// noise level σ.
pub fn ablate_noise(sizes: &[usize], target: f64, degree: usize, seeds: u64) -> Table {
    let cluster = sunwulf::ge_config(2);
    let mut t = Table::new(
        "Ablation A6 — required-N read-off under frozen measurement noise (GE, 2 nodes)",
        &["sigma", "nearest-sample dev", "piecewise dev", "trend-line dev"],
    );

    // Noise-free reference.
    let clean_net = sunwulf::sunwulf_network();
    let clean_curve = EfficiencyCurve::measure(&GeSystem::new(&cluster, &clean_net), sizes);
    let reference = read_offs(&clean_curve, target, degree).expect("clean curve inverts")[2];

    // Every (σ, seed) campaign is an independent cell. The campaigns
    // differ only in their jittered network, so chunks of them are
    // priced through the *batched* GE evaluator
    // ([`kernels::ge::ge_parallel_timed_many`]), which computes the
    // network-independent elimination state once per chunk — each
    // campaign's result is bit-identical to a standalone
    // `EfficiencyCurve::measure` (the batch equality is pinned in
    // kernels). Chunks run on the pool and results assemble in cell
    // order, so the table is identical to the sequential sweep at
    // every `--jobs` value.
    const SIGMAS: [f64; 4] = [0.02, 0.05, 0.10, 0.15];
    let cells: Vec<(f64, u64)> =
        SIGMAS.iter().flat_map(|&sigma| (0..seeds).map(move |seed| (sigma, seed))).collect();
    let chunks: Vec<&[(f64, u64)]> = cells.chunks(CHUNK).collect();
    let sys = GeSystem::new(&cluster, &clean_net);
    let (label, work_flops, marked): (String, Vec<f64>, f64) =
        (sys.label(), sizes.iter().map(|&n| sys.work(n)).collect(), sys.marked_speed_flops());
    let campaigns: Vec<Option<[f64; 3]>> = pool::run_indexed(&chunks, |_, chunk| {
        let nets: Vec<JitteredNetwork<_>> = chunk
            .iter()
            .map(|&(sigma, seed)| JitteredNetwork::new(sunwulf::sunwulf_network(), sigma, seed + 1))
            .collect();
        let mut measurements: Vec<Vec<Measurement>> =
            vec![Vec::with_capacity(sizes.len()); nets.len()];
        for (k, &n) in sizes.iter().enumerate() {
            let outcomes = ge_parallel_timed_many(&cluster, &nets, n);
            for (per_campaign, outcome) in measurements.iter_mut().zip(outcomes) {
                per_campaign.push(Measurement {
                    n,
                    work_flops: work_flops[k],
                    time_secs: outcome.makespan.as_secs(),
                    marked_speed_flops: marked,
                });
            }
        }
        measurements
            .into_iter()
            .map(|m| {
                let curve = EfficiencyCurve::from_measurements(label.clone(), m);
                read_offs(&curve, target, degree)
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();

    for (row, &sigma) in SIGMAS.iter().enumerate() {
        let mut worst = [0.0f64; 3];
        let mut usable = 0u64;
        for values in campaigns[row * seeds as usize..(row + 1) * seeds as usize].iter().flatten() {
            usable += 1;
            for (slot, &v) in worst.iter_mut().zip(values) {
                *slot = slot.max((v - reference).abs());
            }
        }
        let cells: Vec<String> =
            worst.iter().map(|&d| if usable == 0 { "-".to_string() } else { fnum(d) }).collect();
        t.push_row(vec![
            format!("{:.0}%", sigma * 100.0),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    t.push_note(format!("noise-free trend-line reference: N = {reference:.1}"));
    t.push_note(format!(
        "{seeds} frozen-noise campaigns per sigma; cells = worst |recovered N − reference|"
    ));
    t.push_note(
        "the paper's polynomial read-off carries neither the nearest-sample's \
         grid-quantization error nor the piecewise inversion's local noise \
         amplification — its rationale, demonstrated",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes() -> Vec<usize> {
        vec![60, 100, 160, 260, 420, 700]
    }

    #[test]
    fn trend_line_deviates_least_at_low_noise() {
        let t = ablate_noise(&sizes(), 0.3, 3, 6);
        // At the 2% row the nearest sample already carries its full
        // grid-quantization error while the fit stays near the
        // reference.
        let first = &t.rows[0];
        let nearest: f64 = first[1].parse().unwrap();
        let poly: f64 = first[3].parse().unwrap();
        assert!(poly < nearest, "poly dev {poly} must undercut nearest-sample dev {nearest}");
    }

    #[test]
    fn fit_deviation_grows_with_noise_but_stays_bounded() {
        let t = ablate_noise(&sizes(), 0.3, 3, 6);
        let first: f64 = t.rows[0][3].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[3].parse().unwrap();
        assert!(last >= first, "noise must not shrink the deviation: {first} -> {last}");
        // Even at 15% noise the fitted read-off stays within ~15% of the
        // reference N (~301).
        assert!(last < 50.0, "poly dev at 15% noise = {last}");
    }

    #[test]
    fn reference_matches_the_clean_experiment() {
        let t = ablate_noise(&sizes(), 0.3, 3, 2);
        let note = t.notes.iter().find(|n| n.contains("reference")).unwrap();
        let n: f64 = note.split("N = ").nth(1).unwrap().parse().unwrap();
        assert!((250.0..360.0).contains(&n), "reference N = {n}");
    }
}
