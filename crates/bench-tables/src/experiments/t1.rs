//! Table 1 — marked speed of Sunwulf nodes (Mflop/s), measured with the
//! NPB-flavoured suite per node type (§4.3).

use crate::table::{fnum, Table};
use hetsim_cluster::sunwulf;
use marked_speed::rate_node;

/// Regenerates Table 1: per-kernel and average marked speeds for the
/// three Sunwulf node types (server node restricted to one CPU, as in
/// the paper's table).
pub fn table1() -> Table {
    let nodes = [
        ("Server node (1 CPU)", sunwulf::server_node(1)),
        ("SunBlade", sunwulf::sunblade_node(1)),
        ("SunFire V210 (1 CPU)", sunwulf::v210_node(65, 1)),
    ];
    let mut t = Table::new(
        "Table 1 — Marked speed of Sunwulf nodes (Mflop/s)",
        &["Node type", "LU", "FT", "BT", "Marked speed (avg)"],
    );
    for (label, node) in nodes {
        let rating = rate_node(&node);
        let mut cells = vec![label.to_string()];
        for r in &rating.per_kernel {
            cells.push(fnum(r.mflops));
        }
        cells.push(fnum(rating.marked_speed_mflops));
        t.push_row(cells);
    }
    t.push_note(
        "node constants are reconstructions (the published table is illegible); \
         see EXPERIMENTS.md",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_cluster::sunwulf::{SERVER_CPU_MFLOPS, SUNBLADE_MFLOPS, V210_CPU_MFLOPS};

    #[test]
    fn averages_recover_the_node_constants() {
        let t = table1();
        assert_eq!(t.rows.len(), 3);
        let avg: Vec<f64> =
            t.rows.iter().map(|r| r.last().unwrap().parse::<f64>().unwrap()).collect();
        assert!((avg[0] - SERVER_CPU_MFLOPS).abs() < 0.1);
        assert!((avg[1] - SUNBLADE_MFLOPS).abs() < 0.1);
        assert!((avg[2] - V210_CPU_MFLOPS).abs() < 0.5);
    }

    #[test]
    fn v210_is_fastest_node_type() {
        let t = table1();
        let avg: Vec<f64> =
            t.rows.iter().map(|r| r.last().unwrap().parse::<f64>().unwrap()).collect();
        assert!(avg[2] > avg[0] && avg[2] > avg[1]);
    }
}
