//! Fig. 2 & Table 5 — the MM experiment: speed-efficiency curves at
//! every configuration of the mixed SunBlade/V210 ladder, and the
//! measured scalability at the 0.2 target.

use crate::params::ExperimentParams;
use crate::plot::AsciiPlot;
use crate::pool;
use crate::systems::MmSystem;
use crate::table::{fnum, Table};
use hetsim_cluster::sunwulf;
use scalability::metric::{AlgorithmSystem, EfficiencyCurve, ScalabilityLadder};

/// Runs the MM ladder and returns `(Fig. 2 data, Table 5, ladder)`.
pub fn figure2_and_table5(params: &ExperimentParams) -> (Table, Table, ScalabilityLadder) {
    let net = sunwulf::sunwulf_network();
    let clusters: Vec<_> = params.mm_ladder.iter().map(|&p| sunwulf::mm_config(p)).collect();
    let systems: Vec<MmSystem<_>> = clusters.iter().map(|c| MmSystem::new(c, &net)).collect();

    // Fig. 2: one efficiency column per configuration.
    let mut headers: Vec<String> = vec!["Rank N".to_string()];
    headers.extend(params.mm_ladder.iter().map(|p| format!("{p} nodes")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut f2 = Table::new("Fig. 2 — Speed-efficiency of MM on Sunwulf", &header_refs);

    // Each configuration's curve is an independent cell; measure them on
    // the pool, then reuse the same curves for the ladder read-off.
    let curves: Vec<EfficiencyCurve> =
        pool::run_indexed(&systems, |_, s| EfficiencyCurve::measure(s, &params.mm_sizes));
    for (i, &n) in params.mm_sizes.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for curve in &curves {
            row.push(fnum(curve.series.ys()[i]));
        }
        f2.push_row(row);
    }

    let dyn_systems: Vec<&dyn AlgorithmSystem> =
        systems.iter().map(|s| s as &dyn AlgorithmSystem).collect();
    let ladder =
        ScalabilityLadder::from_curves(&dyn_systems, &curves, params.mm_target, params.fit_degree)
            .expect("every MM rung reaches the target efficiency");

    let mut t5 = Table::new("Table 5 — Measured scalability of MM on Sunwulf", &["Step", "psi"]);
    for step in &ladder.steps {
        t5.push_row(vec![format!("psi({}, {})", step.from, step.to), fnum(step.psi)]);
    }
    t5.push_note(format!("geometric mean psi = {:.4}", ladder.geometric_mean_psi()));
    t5.push_note(format!("target speed-efficiency = {}", params.mm_target));
    (f2, t5, ladder)
}

/// Renders Fig. 2 as a terminal plot: one curve per configuration plus
/// the target-efficiency line the ψ ladder reads from.
pub fn figure2_plot(params: &ExperimentParams) -> AsciiPlot {
    let net = sunwulf::sunwulf_network();
    let clusters: Vec<_> = params.mm_ladder.iter().map(|&p| sunwulf::mm_config(p)).collect();
    let systems: Vec<MmSystem<_>> = clusters.iter().map(|c| MmSystem::new(c, &net)).collect();
    let curves = pool::run_indexed(&systems, |_, s| EfficiencyCurve::measure(s, &params.mm_sizes));
    let mut plot = AsciiPlot::new("Fig. 2 — Speed-efficiency of MM on Sunwulf", "rank N", "E_s");
    for (&p, curve) in params.mm_ladder.iter().zip(&curves) {
        plot.add_series(format!("{p} nodes"), curve.series.iter().collect());
    }
    plot.with_hline(params.mm_target, "target efficiency");
    plot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm_curves_rise_and_larger_systems_lag() {
        let params = ExperimentParams::quick();
        let (f2, _t5, _) = figure2_and_table5(&params);
        // Each column rises with N.
        for col in 1..=params.mm_ladder.len() {
            let es: Vec<f64> = f2.rows.iter().map(|r| r[col].parse::<f64>().unwrap()).collect();
            assert!(es.windows(2).all(|w| w[1] >= w[0] - 1e-9), "column {col} not rising: {es:?}");
        }
        // At a fixed small N, bigger systems are less efficient (the
        // Fig. 2 family ordering).
        let first = &f2.rows[1];
        let row: Vec<f64> = first[1..].iter().map(|c| c.parse().unwrap()).collect();
        assert!(row.windows(2).all(|w| w[1] <= w[0] + 1e-9), "family ordering at small N: {row:?}");
    }

    #[test]
    fn plot_has_one_series_per_configuration() {
        let params = ExperimentParams::quick();
        let plot = figure2_plot(&params);
        assert_eq!(plot.series_count(), params.mm_ladder.len());
        let text = format!("{plot}");
        assert!(text.contains("2 nodes") && text.contains("8 nodes"));
    }

    #[test]
    fn mm_psi_is_high_and_below_one() {
        let params = ExperimentParams::quick();
        let (_f2, _t5, ladder) = figure2_and_table5(&params);
        for step in &ladder.steps {
            assert!(step.psi > 0.2 && step.psi <= 1.0, "psi = {}", step.psi);
        }
    }
}
