//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! * **Distribution strategy** — what speed-proportional distribution
//!   buys over a speed-blind equal split on a heterogeneous system.
//! * **Network-model fidelity** — how the interconnect model
//!   (constant-latency, switched, shared medium) moves speed-efficiency
//!   and the required problem size.
//! * **Trend-line degree** — stability of the required-`N` readout and
//!   of ψ against the polynomial degree of the paper's trend line.

use crate::systems::GeSystem;
use crate::table::{fnum, Table};
use hetpart::{BlockDistribution, CyclicDistribution};
use hetsim_cluster::network::{
    ConstantLatency, MpichEthernet, NetworkModel, SharedEthernet, SwitchedNetwork,
};
use hetsim_cluster::selfsched::{dynamic_schedule, static_schedule};
use hetsim_cluster::sunwulf;
use hetsim_cluster::time::SimTime;
use hetsim_cluster::topology::SegmentedNetwork;
use kernels::ge::ge_parallel_timed_with;
use kernels::mm::{mm_parallel_timed, mm_parallel_timed_with};
use kernels::workload::{ge_work, mm_work};
use scalability::measure::speed_efficiency;
use scalability::metric::EfficiencyCurve;

/// A1 — proportional vs homogeneous distribution on heterogeneous
/// configurations, for both kernels, at a fixed problem size.
pub fn ablate_distribution(n: usize) -> Table {
    let net = sunwulf::sunwulf_network();
    let mut t = Table::new(
        format!("Ablation A1 — distribution strategy at N = {n}"),
        &["Kernel", "System", "Strategy", "T (s)", "Speed-efficiency"],
    );

    for &p in &[4usize, 8] {
        // GE on the GE ladder.
        let cluster = sunwulf::ge_config(p);
        let speeds: Vec<f64> = cluster.nodes().iter().map(|nd| nd.marked_speed_mflops).collect();
        let c = cluster.marked_speed_flops();
        let strategies = [
            ("heterogeneous", CyclicDistribution::fine(n, &speeds)),
            ("homogeneous", CyclicDistribution::fine(n, &vec![1.0; p])),
        ];
        for (name, dist) in strategies {
            let out = ge_parallel_timed_with(&cluster, &net, n, &dist);
            let time = out.makespan.as_secs();
            t.push_row(vec![
                "GE".into(),
                cluster.label.clone(),
                name.into(),
                fnum(time),
                fnum(speed_efficiency(ge_work(n), time, c)),
            ]);
        }

        // MM on the MM ladder.
        let cluster = sunwulf::mm_config(p);
        let speeds: Vec<f64> = cluster.nodes().iter().map(|nd| nd.marked_speed_mflops).collect();
        let c = cluster.marked_speed_flops();
        let strategies = [
            ("heterogeneous", BlockDistribution::proportional(n, &speeds)),
            ("homogeneous", BlockDistribution::homogeneous(n, p)),
        ];
        for (name, dist) in strategies {
            let out = mm_parallel_timed_with(&cluster, &net, n, &dist);
            let time = out.makespan.as_secs();
            t.push_row(vec![
                "MM".into(),
                cluster.label.clone(),
                name.into(),
                fnum(time),
                fnum(speed_efficiency(mm_work(n), time, c)),
            ]);
        }
    }
    t.push_note("heterogeneous = rows proportional to marked speed (the paper's scheme)");
    t
}

/// A2 — network-model fidelity: speed-efficiency of GE at a fixed size
/// under three interconnect models with matched latency/bandwidth.
pub fn ablate_network(n: usize) -> Table {
    let alpha = 0.3e-3;
    let beta = 12.5e6;
    let models: Vec<(&str, Box<dyn NetworkModel>)> = vec![
        ("constant-latency", Box::new(ConstantLatency::new(alpha))),
        ("switched", Box::new(SwitchedNetwork::new(alpha, beta))),
        ("shared-ethernet", Box::new(SharedEthernet::new(alpha, beta))),
    ];
    let mut t = Table::new(
        format!("Ablation A2 — network model fidelity (GE, N = {n})"),
        &["Model", "p", "T (s)", "Speed-efficiency"],
    );
    for (name, net) in &models {
        for &p in &[2usize, 8] {
            let cluster = sunwulf::ge_config(p);
            let speeds: Vec<f64> =
                cluster.nodes().iter().map(|nd| nd.marked_speed_mflops).collect();
            let dist = CyclicDistribution::fine(n, &speeds);
            let out = ge_parallel_timed_with(&cluster, &net.as_ref(), n, &dist);
            let time = out.makespan.as_secs();
            t.push_row(vec![
                name.to_string(),
                p.to_string(),
                fnum(time),
                fnum(speed_efficiency(ge_work(n), time, cluster.marked_speed_flops())),
            ]);
        }
    }
    t.push_note("matched α = 0.3 ms, β = 12.5 MB/s across models");
    t
}

/// A4 — node placement across network segments: the same 8-node MM
/// system (same marked speed `C`) on a two-switch fabric, with rank 0's
/// distribution partners either co-located on its segment or spread
/// across the uplink.
pub fn ablate_placement(n: usize) -> Table {
    let cluster = sunwulf::mm_config(8);
    let local = MpichEthernet::new(0.1e-3, 1e8);
    let uplink = MpichEthernet::new(0.8e-3, 1.25e7);

    // Layouts: root + its 7 partners packed onto one switch vs split
    // 4 + 4 across the uplink (the root's segment holds ranks 0..4).
    let layouts: [(&str, Vec<usize>); 3] = [
        ("one switch", vec![0; 8]),
        ("split 4 + 4", vec![0, 0, 0, 0, 1, 1, 1, 1]),
        ("root isolated", vec![0, 1, 1, 1, 1, 1, 1, 1]),
    ];

    let mut t = Table::new(
        format!("Ablation A4 — node placement across segments (MM, N = {n})"),
        &["Layout", "T (s)", "Speed-efficiency"],
    );
    for (name, map) in layouts {
        let net = SegmentedNetwork::new(map, local, uplink);
        let out = mm_parallel_timed(&cluster, &net, n);
        let time = out.makespan.as_secs();
        t.push_row(vec![
            name.to_string(),
            fnum(time),
            fnum(speed_efficiency(mm_work(n), time, cluster.marked_speed_flops())),
        ]);
    }
    t.push_note("identical nodes and marked speed C in every layout — only placement differs");
    t.push_note("the metric charges the *system* for placement: same C, different E_s and psi");
    t
}

/// A5 — static (marked-speed-proportional) vs dynamic (self-scheduled)
/// work assignment as one node's true speed drifts from its rating.
///
/// The paper's methodology treats marked speed as a constant; this
/// study quantifies the cost of that assumption: with accurate ratings
/// the static split wins (no grant traffic), but once a node delivers
/// a fraction of its rating, the dynamic scheduler's adaptivity pays
/// for its latency many times over.
pub fn ablate_scheduling() -> Table {
    // The 8-node MM configuration's marked speeds, as flop/s.
    let cluster = sunwulf::mm_config(8);
    let rated: Vec<f64> = cluster.nodes().iter().map(|n| n.marked_speed_flops()).collect();
    // 512 chunks of 2 Mflop each (a 1024-rank MM row-block at 2 rows per
    // chunk is the same order).
    let chunks = vec![2e6f64; 512];
    let grant = SimTime::from_micros(600.0); // request + reply at α = 0.3 ms

    let mut t = Table::new(
        "Ablation A5 — static vs dynamic scheduling under speed misestimation",
        &["True speed of node 7", "T static (s)", "T dynamic (s)", "winner"],
    );
    for &factor in &[1.0f64, 0.7, 0.5, 0.25] {
        let mut true_speeds = rated.clone();
        let last = true_speeds.len() - 1;
        true_speeds[last] *= factor;
        let s = static_schedule(&rated, &true_speeds, &chunks);
        let d = dynamic_schedule(&true_speeds, &chunks, grant);
        t.push_row(vec![
            format!("{:.0}% of rating", factor * 100.0),
            fnum(s.makespan.as_secs()),
            fnum(d.makespan.as_secs()),
            if s.makespan <= d.makespan { "static" } else { "dynamic" }.to_string(),
        ]);
    }
    t.push_note(
        "static = proportional by marked speed (the paper's scheme), priced at true speeds",
    );
    t.push_note("dynamic = master-worker self-scheduling, 0.6 ms per chunk grant");
    t.push_note(
        "marked speed as a constant is sound while ratings hold; staleness flips the verdict",
    );
    t
}

/// A3 — trend-line degree: required `N` for the GE 0.3 target on two
/// nodes, read from polynomial fits of degree 2..=5.
pub fn ablate_fit_degree(sizes: &[usize], target: f64) -> Table {
    let cluster = sunwulf::ge_config(2);
    let net = sunwulf::sunwulf_network();
    let sys = GeSystem::new(&cluster, &net);
    let curve = EfficiencyCurve::measure(&sys, sizes);

    let mut t = Table::new(
        format!("Ablation A3 — trend-line degree (GE 2 nodes, target {target})"),
        &["Degree", "Required N", "Fit R²"],
    );
    for degree in 2..=5 {
        let n = curve.required_n(target, degree);
        let r2 = curve.fit(degree).map(|f| f.r_squared);
        t.push_row(vec![
            degree.to_string(),
            n.map(fnum).unwrap_or_else(|e| format!("({e})")),
            r2.map(|v| format!("{v:.6}")).unwrap_or_else(|e| format!("({e})")),
        ]);
    }
    t.push_note("a stable readout across degrees validates the paper's trend-line method");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heterogeneous_distribution_wins_on_heterogeneous_clusters() {
        let t = ablate_distribution(192);
        // Rows come in (het, hom) pairs: het must be at least as fast.
        for pair in t.rows.chunks(2) {
            let t_het: f64 = pair[0][3].parse().unwrap();
            let t_hom: f64 = pair[1][3].parse().unwrap();
            assert!(
                t_het <= t_hom * 1.001,
                "{} {}: het {t_het} vs hom {t_hom}",
                pair[0][0],
                pair[0][1]
            );
        }
        // And strictly better for MM at p = 8 (V210s idle under equal
        // splits).
        let mm8: Vec<&Vec<String>> =
            t.rows.iter().filter(|r| r[0] == "MM" && r[1].contains("8")).collect();
        let t_het: f64 = mm8[0][3].parse().unwrap();
        let t_hom: f64 = mm8[1][3].parse().unwrap();
        assert!(t_het < t_hom * 0.95, "het {t_het} vs hom {t_hom}");
    }

    #[test]
    fn richer_network_models_cost_more() {
        let t = ablate_network(256);
        // At p = 8, shared ethernet must be slowest, constant latency
        // fastest (at these parameter values).
        let at_p8 = |model: &str, col: usize| -> f64 {
            t.rows.iter().find(|r| r[0] == model && r[1] == "8").unwrap()[col].parse().unwrap()
        };
        let tc = at_p8("constant-latency", 2);
        let ts = at_p8("switched", 2);
        let te = at_p8("shared-ethernet", 2);
        assert!(tc < ts && ts < te, "times: constant {tc}, switched {ts}, shared {te}");
        // Efficiency orders the other way.
        let ec = at_p8("constant-latency", 3);
        let ee = at_p8("shared-ethernet", 3);
        assert!(ec > ee, "efficiencies: constant {ec}, shared {ee}");
    }

    #[test]
    fn scheduling_verdict_flips_with_staleness() {
        let t = ablate_scheduling();
        assert_eq!(t.rows[0][3], "static", "accurate ratings favour static: {t}");
        assert_eq!(t.rows.last().unwrap()[3], "dynamic", "a 4x-degraded node favours dynamic: {t}");
    }

    #[test]
    fn placement_changes_efficiency_at_constant_c() {
        let t = ablate_placement(128);
        let es: Vec<f64> = t.rows.iter().map(|r| r[2].parse::<f64>().unwrap()).collect();
        // One switch is best; isolating the root (every transfer crosses
        // the uplink) is worst.
        assert!(es[0] > es[1], "one switch {} vs split {}", es[0], es[1]);
        assert!(es[1] > es[2], "split {} vs isolated root {}", es[1], es[2]);
    }

    #[test]
    fn required_n_is_stable_across_fit_degrees() {
        let sizes = vec![60, 100, 160, 260, 420, 700];
        let t = ablate_fit_degree(&sizes, 0.3);
        let ns: Vec<f64> = t.rows.iter().filter_map(|r| r[1].parse::<f64>().ok()).collect();
        assert!(ns.len() >= 3, "most degrees should invert: {t}");
        let min = ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = ns.iter().copied().fold(0.0, f64::max);
        assert!(max / min < 1.2, "readout unstable: {ns:?}");
    }
}
