//! Tables 3 & 4 — the GE ladder: required rank for the 0.3 target at
//! every configuration (Table 3) and the measured isospeed-efficiency
//! scalability between consecutive configurations (Table 4).

use crate::params::ExperimentParams;
use crate::pool;
use crate::systems::GeSystem;
use crate::table::{fnum, Table};
use hetsim_cluster::memory::{ge_feasible, max_feasible};
use hetsim_cluster::sunwulf;
use scalability::metric::{AlgorithmSystem, EfficiencyCurve, ScalabilityLadder};

/// Runs the GE ladder and returns `(Table 3, Table 4, ladder)`.
pub fn table3_and_4(params: &ExperimentParams) -> (Table, Table, ScalabilityLadder) {
    let net = sunwulf::sunwulf_network();
    let clusters: Vec<_> = params.ge_ladder.iter().map(|&p| sunwulf::ge_config(p)).collect();
    let systems: Vec<GeSystem<_>> = clusters.iter().map(|c| GeSystem::new(c, &net)).collect();
    // Each rung's curve is an independent cell; measure them on the pool.
    let curves = pool::run_indexed(&systems, |_, s| EfficiencyCurve::measure(s, &params.ge_sizes));
    let dyn_systems: Vec<&dyn AlgorithmSystem> =
        systems.iter().map(|s| s as &dyn AlgorithmSystem).collect();
    let ladder =
        ScalabilityLadder::from_curves(&dyn_systems, &curves, params.ge_target, params.fit_degree)
            .expect("every GE rung reaches the target efficiency");

    let mut t3 = Table::new(
        format!("Table 3 — Required rank for E_s = {} (GE)", params.ge_target),
        &["System", "Rank N", "Workload W (flop)", "Marked speed (Mflop/s)"],
    );
    for (label, c_flops, n, w) in &ladder.required {
        t3.push_row(vec![label.clone(), n.to_string(), fnum(*w), fnum(c_flops / 1e6)]);
    }
    t3.push_note("paper anchors: N ≈ 310 at 2 nodes, ≈ 480 at 4 nodes");
    // Physical-memory caveat: flag any rung whose required rank would
    // not fit the real machines' memory (the simulator has no such cap).
    for ((label, _, n, _), cluster) in ladder.required.iter().zip(&clusters) {
        if !ge_feasible(cluster, *n) {
            t3.push_note(format!(
                "{label}: required N = {n} exceeds the physical nodes' memory \
                 (max feasible ≈ {})",
                max_feasible(cluster, ge_feasible)
            ));
        }
    }

    let mut t4 = Table::new("Table 4 — Measured scalability of GE on Sunwulf", &["Step", "psi"]);
    for step in &ladder.steps {
        t4.push_row(vec![format!("psi({}, {})", step.from, step.to), fnum(step.psi)]);
    }
    t4.push_note(format!("geometric mean psi = {:.4}", ladder.geometric_mean_psi()));
    (t3, t4, ladder)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ge_ladder_shapes_match_paper() {
        let params = ExperimentParams::quick();
        let (t3, t4, ladder) = table3_and_4(&params);
        assert_eq!(t3.rows.len(), params.ge_ladder.len());
        assert_eq!(t4.rows.len(), params.ge_ladder.len() - 1);

        // Required N grows with the system.
        let ns: Vec<usize> = ladder.required.iter().map(|r| r.2).collect();
        assert!(ns.windows(2).all(|w| w[1] > w[0]), "required N: {ns:?}");

        // Every step's psi is in (0, 1): GE is scalable but imperfect.
        for step in &ladder.steps {
            assert!(step.psi > 0.0 && step.psi < 1.0, "psi = {}", step.psi);
        }
    }

    #[test]
    fn two_node_required_rank_is_near_the_papers() {
        let params = ExperimentParams::quick();
        let (_t3, _t4, ladder) = table3_and_4(&params);
        let n2 = ladder.required[0].2;
        assert!((200..=450).contains(&n2), "2-node required N = {n2}, paper reads ~310");
    }
}
