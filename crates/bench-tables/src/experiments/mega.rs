//! X4 (extension) — mega-scale ψ sweep on class-compressed HEET
//! machines, 10³ → 10⁷ ranks.
//!
//! The surface sweep (X3) tops out at the 85-node Sunwulf because its
//! cells walk one clock per rank. This sweep prices machines four
//! orders of magnitude larger by never materializing a rank: each
//! preset is a [`ClassedCluster`] (a run-length-encoded speed ladder
//! with [`crate::params::MEGA_MAX_CLASSES`] tiers), and every cell
//! runs the class-aggregated closed forms ([`kernels::mega`]) whose
//! cost is O(classes), not O(P). It reports:
//!
//! * **MM** — the fitted-trend inversion per preset (required `N` for
//!   the target efficiency, read off the polynomial trend line exactly
//!   as the paper does) and the ψ(C, C′) matrix over all ordered
//!   preset pairs. MM's Θ(N³) work outgrows its Θ(N²) distributed
//!   bytes, so a finite `N′` holds the target at every preset.
//! * **Power iteration** (fixed [`crate::params::MEGA_POWER_ITERS`]
//!   sweeps) — the measured saturation ceiling. With a fixed sweep
//!   count, work is Θ(N²) against the Θ(N²) bytes the hub pushes
//!   serially at distribution, so `E_s` saturates at
//!   `≈ iters·β/(4C)` — falling like `1/P` — and **no** problem size
//!   reaches the target on the larger presets. The table pins the
//!   measured ceiling against that serial-scatter bound (the
//!   BSF-style analytic check, priced by the same engine as a
//!   scatter-only plan instead of a hand-expanded formula).
//!
//! Under `--no-analytic` the same cells materialize their clusters and
//! run on the per-rank engine — the oracle reference, affordable up to
//! the 10⁵ preset, byte-identical where it runs (gated by ci.sh). The
//! sweep is opt-in (the `mega` id, not part of `all`) and composes
//! with `--quick`, `--jobs`, `--csv`, and the observability exports
//! like any other id.

use crate::params::{
    mega_ge_sizes, mega_mm_sizes, mega_power_sizes, mega_presets, ExperimentParams, MegaPreset,
    MEGA_BASE_MFLOPS, MEGA_MAX_CLASSES, MEGA_SPREAD,
};
use crate::pool;
use crate::systems::{MegaGeSystem, MegaMmSystem, MegaPowerSystem};
use crate::table::{fnum, Table};
use hetsim_cluster::classed::ClassedCluster;
use hetsim_cluster::sunwulf;
use scalability::isospeed_efficiency_scalability;
use scalability::metric::{AlgorithmSystem, EfficiencyCurve};

/// One measured MM preset: the fitted-trend inversion, or `None` when
/// the grid never brackets the target efficiency.
struct Rung {
    label: String,
    c_flops: f64,
    inverted: Option<(usize, f64)>, // (required N, W at N)
}

/// One measured power preset: the efficiency at the grid ends, the
/// serial-scatter bound, and the scatter's share of the wall clock.
struct Ceiling {
    label: String,
    c_flops: f64,
    e_bottom: f64,
    e_top: f64,
    bound: f64,
    scatter_share: f64,
}

/// One `(kernel, preset)` pool cell's result.
enum Cell {
    Mm(Rung),
    Ge(Rung),
    Power(Ceiling),
}

/// The mega machine at one preset — the HEET shapes pinned in
/// [`crate::params`].
fn mega_cluster(preset: MegaPreset) -> ClassedCluster {
    if preset.zipf {
        ClassedCluster::heet_zipf(preset.ranks, MEGA_MAX_CLASSES, MEGA_BASE_MFLOPS, MEGA_SPREAD)
    } else {
        ClassedCluster::heet(preset.ranks, MEGA_MAX_CLASSES, MEGA_BASE_MFLOPS, MEGA_SPREAD)
    }
}

/// Measures one `(kernel, preset)` cell.
fn measure_cell(kernel: &'static str, preset: MegaPreset, params: &ExperimentParams) -> Cell {
    let net = sunwulf::sunwulf_network();
    let cluster = mega_cluster(preset);
    let p = preset.ranks;
    match kernel {
        "mm" => {
            let sys = MegaMmSystem::new(&cluster, &net);
            let curve = EfficiencyCurve::measure(&sys, &mega_mm_sizes(p));
            let inverted = curve
                .required_n(params.mm_target, params.fit_degree)
                .ok()
                .map(|n| n.round().max(1.0) as usize)
                .map(|n| (n, sys.work(n)));
            Cell::Mm(Rung { label: sys.label(), c_flops: sys.marked_speed_flops(), inverted })
        }
        "ge" => {
            // GE's crossing (N* ≈ 150·p) is unaffordable to sample at
            // mega scale, so the inversion extrapolates the reciprocal
            // trend past the measured band (see `mega_ge_sizes`).
            let sys = MegaGeSystem::new(&cluster, &net);
            let curve = EfficiencyCurve::measure(&sys, &mega_ge_sizes(p));
            let inverted = curve
                .required_n_extrapolated(params.ge_target, params.fit_degree)
                .ok()
                .map(|n| n.round().max(1.0) as usize)
                .map(|n| (n, sys.work(n)));
            Cell::Ge(Rung { label: sys.label(), c_flops: sys.marked_speed_flops(), inverted })
        }
        "power" => {
            let sys = MegaPowerSystem::new(&cluster, &net);
            let sizes = mega_power_sizes(p);
            let top = *sizes.last().expect("non-empty grid");
            let bottom = sys.measure(sizes[0]);
            let at_top = sys.measure(top);
            let scatter_secs = sys.scatter_floor_secs(top);
            let c = sys.marked_speed_flops();
            Cell::Power(Ceiling {
                label: sys.label(),
                c_flops: c,
                e_bottom: bottom.speed_efficiency(),
                e_top: at_top.speed_efficiency(),
                bound: sys.work(top) / (c * scatter_secs),
                scatter_share: scatter_secs / at_top.time_secs,
            })
        }
        other => unreachable!("unknown mega kernel {other}"),
    }
}

/// Renders one kernel's inversion table and ψ matrix. `trend` names
/// how the required `N` was read off the efficiency curve (MM brackets
/// its crossing, GE extrapolates the reciprocal trend past its band).
fn render_inversions(
    kernel: &str,
    trend: &str,
    target: f64,
    presets: &[MegaPreset],
    measured: &[Rung],
) -> (Table, Table) {
    // Titles keep a distinct pre-dash prefix per table so the `--csv`
    // slugs (title up to the em-dash) do not collide.
    let mut inv = Table::new(
        format!("X4 {kernel} mega inversions — {trend} required N per preset (E_s = {target})"),
        &["System", "Marked speed (Mflop/s)", "Required N", "Workload W (flop)"],
    );
    for r in measured {
        let (n_cell, w_cell) = match r.inverted {
            Some((n, w)) => (n.to_string(), fnum(w)),
            None => ("-".to_string(), "-".to_string()),
        };
        inv.push_row(vec![r.label.clone(), fnum(r.c_flops / 1e6), n_cell, w_cell]);
    }
    inv.push_note("`-`: the preset's trend never reaches the target efficiency");

    let headers: Vec<String> = std::iter::once("p".to_string())
        .chain(presets.iter().map(|p| format!("p' = {}", p.tag())))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut matrix = Table::new(
        format!("X4 {kernel} mega surface — psi(C, C') over HEET presets (E_s = {target})"),
        &header_refs,
    );
    for (i, from) in measured.iter().enumerate() {
        let mut row = vec![presets[i].tag()];
        for (j, to) in measured.iter().enumerate() {
            row.push(match (i.cmp(&j), &from.inverted, &to.inverted) {
                (std::cmp::Ordering::Equal, _, _) => "1.0000".to_string(),
                (std::cmp::Ordering::Greater, _, _) => String::new(),
                (_, Some((_, w)), Some((_, w_prime))) => {
                    fnum(isospeed_efficiency_scalability(from.c_flops, *w, to.c_flops, *w_prime))
                }
                _ => "-".to_string(),
            });
        }
        matrix.push_row(row);
    }
    matrix.push_note("rows: base configuration C; columns: scaled configuration C'");
    matrix.push_note("psi is directional (C scaled up to C'): the lower triangle is undefined");
    (inv, matrix)
}

/// Renders the power saturation-ceiling table.
fn render_power(measured: &[Ceiling]) -> Table {
    let mut t = Table::new(
        "X4 power mega ceiling — fixed-sweep saturation E_s vs serial-scatter bound".to_string(),
        &[
            "System",
            "Marked speed (Mflop/s)",
            "E_s (grid bottom)",
            "E_s (grid top)",
            "Scatter bound",
            "Scatter share",
        ],
    );
    for c in measured {
        t.push_row(vec![
            c.label.clone(),
            fnum(c.c_flops / 1e6),
            fnum(c.e_bottom),
            fnum(c.e_top),
            fnum(c.bound),
            fnum(c.scatter_share),
        ]);
    }
    t.push_note(
        "fixed sweeps put Theta(N^2) work against the Theta(N^2) bytes the hub scatters \
         serially, so E_s saturates at W / (C * T_scatter) ~ iters*beta/(4C) and no N \
         reaches the MM target at scale",
    );
    t.push_note("scatter share: serial-scatter seconds / total seconds at the grid top");
    t
}

/// Runs the mega sweep and returns the five tables (MM inversions, MM
/// ψ matrix, GE inversions, GE ψ matrix, power ceiling).
pub fn mega_sweep(params: &ExperimentParams, quick: bool) -> Vec<Table> {
    let presets = mega_presets(quick);
    // Flatten all kernels' presets into one cell list so the pool
    // keeps every worker busy across the per-kernel cost imbalance.
    let cells: Vec<(&'static str, MegaPreset)> =
        ["mm", "ge", "power"].iter().flat_map(|&k| presets.iter().map(move |&p| (k, p))).collect();
    let measured: Vec<Cell> =
        pool::run_indexed(&cells, |_, &(kernel, p)| measure_cell(kernel, p, params));
    let mut mm = Vec::new();
    let mut ge = Vec::new();
    let mut power = Vec::new();
    for cell in measured {
        match cell {
            Cell::Mm(r) => mm.push(r),
            Cell::Ge(r) => ge.push(r),
            Cell::Power(c) => power.push(c),
        }
    }
    let (mm_inv, mm_mat) = render_inversions("MM", "fitted-trend", params.mm_target, &presets, &mm);
    let (ge_inv, ge_mat) =
        render_inversions("GE", "reciprocal-trend", params.ge_target, &presets, &ge);
    vec![mm_inv, mm_mat, ge_inv, ge_mat, render_power(&power)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mega_tables_have_the_expected_shape() {
        let params = ExperimentParams::quick();
        let tables = mega_sweep(&params, true);
        assert_eq!(tables.len(), 5, "MM inv, MM psi, GE inv, GE psi, power ceiling");
        let presets = mega_presets(true);
        for t in &tables {
            assert_eq!(t.rows.len(), presets.len(), "one row per preset in {}", t.title);
        }
        for matrix in [&tables[1], &tables[3]] {
            assert_eq!(matrix.headers.len(), presets.len() + 1, "{}", matrix.title);
        }
        assert_eq!(tables[4].headers.len(), 6, "{}", tables[4].title);
    }

    #[test]
    fn quick_presets_all_invert_for_mm() {
        // The quick grids are anchored to the measured crossing
        // (N* ≈ 3.2·p), so every quick preset's MM inversion must
        // succeed (no `-` rows).
        let params = ExperimentParams::quick();
        let tables = mega_sweep(&params, true);
        for row in &tables[0].rows {
            assert_ne!(row[2], "-", "MM inversion failed: {row:?}");
        }
    }

    #[test]
    fn quick_presets_all_invert_for_ge() {
        // The GE band never brackets its crossing, but the reciprocal
        // trend must still reach the target at every quick preset.
        let params = ExperimentParams::quick();
        let tables = mega_sweep(&params, true);
        let presets = mega_presets(true);
        for (row, preset) in tables[2].rows.iter().zip(&presets) {
            assert_ne!(row[2], "-", "GE inversion failed: {row:?}");
            // The X3 surface pins GE's required N near 150·p; the
            // extrapolated crossings should land on the same trend
            // (generously bracketed — it is an extrapolation).
            let n: f64 = row[2].parse().expect("required N parses");
            let p = preset.ranks as f64;
            assert!(
                n > 20.0 * p && n < 1000.0 * p,
                "GE required N = {n} off-trend at p = {p} ({row:?})"
            );
        }
    }

    #[test]
    fn psi_matrices_have_unit_diagonals_and_unit_interval_upper_triangles() {
        let params = ExperimentParams::quick();
        let tables = mega_sweep(&params, true);
        for t in [&tables[1], &tables[3]] {
            for (i, row) in t.rows.iter().enumerate() {
                assert_eq!(row[i + 1], "1.0000", "diagonal of {}", t.title);
                for (j, cell) in row.iter().enumerate().skip(1) {
                    let j = j - 1;
                    if j < i {
                        assert!(cell.is_empty(), "lower triangle of {}", t.title);
                    } else if j > i && cell != "-" {
                        let psi: f64 = cell.parse().expect("psi cell parses");
                        assert!(
                            psi > 0.0 && psi < 1.0,
                            "psi({i}, {j}) = {psi} out of (0, 1) in {}",
                            t.title
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn psi_decays_along_long_jumps() {
        // ψ over the 10³ → 10⁵ jump must not exceed ψ over 10³ → 10⁴:
        // scaling further away cannot get *easier*. Holds for both
        // kernels' matrices (columns: 10⁴ is index 2, 10⁵ index 4 —
        // the zipf rung sits between them).
        let params = ExperimentParams::quick();
        let tables = mega_sweep(&params, true);
        for t in [&tables[1], &tables[3]] {
            let first = &t.rows[0];
            let short: f64 = first[2].parse().expect("psi(1e3,1e4) parses");
            let long: f64 = first[4].parse().expect("psi(1e3,1e5) parses");
            assert!(long <= short, "psi(1e3,1e5) = {long} > psi(1e3,1e4) = {short} in {}", t.title);
        }
    }

    #[test]
    fn power_ceiling_is_bounded_and_decays_with_scale() {
        let params = ExperimentParams::quick();
        let tables = mega_sweep(&params, true);
        let mut prev_top = f64::INFINITY;
        for row in &tables[4].rows {
            let e_bottom: f64 = row[2].parse().expect("bottom parses");
            let e_top: f64 = row[3].parse().expect("top parses");
            let bound: f64 = row[4].parse().expect("bound parses");
            let share: f64 = row[5].parse().expect("share parses");
            // Measured efficiency approaches the serial-scatter bound
            // from below as the grid deepens into the plateau.
            assert!(e_bottom <= e_top, "curve must rise toward the ceiling: {row:?}");
            // The exact values satisfy `e_top < bound` strictly (the
            // wall clock includes the sweeps); the rendered cells are
            // rounded to 4 decimals, so allow a tie at that precision.
            assert!(e_top <= bound * 1.0001, "measured E_s must stay under the bound: {row:?}");
            assert!(e_top > 0.5 * bound, "grid top must sit in the plateau: {row:?}");
            assert!(share > 0.5, "the serial scatter must dominate at the grid top: {row:?}");
            // The ceiling falls like 1/P across presets: fixed-sweep
            // power cannot hold any fixed target at mega scale.
            assert!(e_top < prev_top, "ceiling must decay with P: {row:?}");
            prev_top = e_top;
        }
    }

    #[test]
    fn full_presets_reach_ten_million_ranks() {
        // The whole point of the aggregated engine: the 10⁷-rank preset
        // prices like any other. Run only its own cells (the full sweep
        // re-prices the smaller ones) and require the MM inversion to
        // succeed with the crossing interior to the grid, and the power
        // ceiling to sit under its bound.
        let params = ExperimentParams::full();
        let preset = MegaPreset { ranks: 10_000_000, zipf: false };
        let p = preset.ranks;
        match measure_cell("mm", preset, &params) {
            Cell::Mm(rung) => {
                let (n, _) = rung
                    .inverted
                    .unwrap_or_else(|| panic!("10^7-rank MM inversion failed ({})", rung.label));
                let grid = mega_mm_sizes(p);
                assert!(
                    grid[0] < n && n < *grid.last().unwrap(),
                    "MM required N = {n} exits the grid {grid:?}"
                );
            }
            _ => unreachable!(),
        }
        match measure_cell("power", preset, &params) {
            Cell::Power(c) => {
                assert!(c.e_top < c.bound, "E_s {} over bound {}", c.e_top, c.bound);
                assert!(c.scatter_share > 0.5, "share {}", c.scatter_share);
            }
            _ => unreachable!(),
        }
        // GE walks Θ(N) rounds per cell, so exercise the full-scale
        // trend at the 10⁶ preset (the 10⁷ cell is interactive-budget
        // territory: ~10⁸ aggregated rounds across its grid).
        let preset = MegaPreset { ranks: 1_000_000, zipf: false };
        match measure_cell("ge", preset, &params) {
            Cell::Ge(rung) => {
                let (n, _) = rung
                    .inverted
                    .unwrap_or_else(|| panic!("10^6-rank GE inversion failed ({})", rung.label));
                assert!(
                    n > 20 * preset.ranks && n < 1000 * preset.ranks,
                    "GE required N = {n} off-trend at p = {}",
                    preset.ranks
                );
            }
            _ => unreachable!(),
        }
    }
}
