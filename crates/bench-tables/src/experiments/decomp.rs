//! D1 (extension) — overhead decomposition by operation kind.
//!
//! Theorem 1 attributes lost scalability to `t₀ + T_o`; per-operation
//! tracing splits `T_o` into broadcast, barrier and point-to-point
//! (distribution/collection) time, showing *which* mechanism burns the
//! budget at each ladder rung — and why GE's ψ behaves as it does (the
//! barrier term grows linearly in `p`, the broadcast in `log p`).

use crate::table::{fnum, Table};
use hetsim_cluster::sunwulf;
use hetsim_mpi::trace::{OpKind, OverheadBreakdown};
use kernels::ge::ge_parallel_timed_traced;

/// Runs traced GE at problem size `n` on each ladder rung and tabulates
/// the share of total rank-time per operation kind.
pub fn overhead_decomposition(ladder: &[usize], n: usize) -> Table {
    let net = sunwulf::sunwulf_network();
    let mut t = Table::new(
        format!("Extension D1 — GE overhead decomposition at N = {n}"),
        &["Nodes", "compute %", "bcast %", "barrier %", "wait %", "p2p %", "other %", "T_o %"],
    );
    for &p in ladder {
        let cluster = sunwulf::ge_config(p);
        let (_outcome, traces) = ge_parallel_timed_traced(&cluster, &net, n);
        let b = OverheadBreakdown::from_traces(&traces);
        let pct = |k: OpKind| b.fraction(k) * 100.0;
        let p2p = pct(OpKind::Send) + pct(OpKind::Recv);
        let other = pct(OpKind::Gather) + pct(OpKind::Scatter);
        t.push_row(vec![
            p.to_string(),
            fnum(pct(OpKind::Compute)),
            fnum(pct(OpKind::Bcast)),
            fnum(pct(OpKind::Barrier)),
            fnum(pct(OpKind::Wait)),
            fnum(p2p),
            fnum(other),
            fnum(b.overhead_fraction() * 100.0),
        ]);
    }
    t.push_note("percent of summed rank time; T_o % = everything except compute");
    t.push_note(
        "wait % is idle time blocked on a straggler; the remaining columns \
         are the operations' own costs",
    );
    t.push_note(
        "barrier share grows fastest with p (linear MPICH-1 barrier) — the \
         mechanism behind GE's low psi",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_share_grows_with_p() {
        let t = overhead_decomposition(&[2, 4, 8], 192);
        let to: Vec<f64> =
            t.rows.iter().map(|r| r.last().unwrap().parse::<f64>().unwrap()).collect();
        assert!(to.windows(2).all(|w| w[1] > w[0]), "T_o%: {to:?}");
        // Shares are percentages of a whole.
        for row in &t.rows {
            let sum: f64 = row[1..7].iter().map(|c| c.parse::<f64>().unwrap()).sum();
            assert!((sum - 100.0).abs() < 1.0, "shares must sum to ~100: {row:?}");
        }
    }

    #[test]
    fn barrier_share_overtakes_bcast_share() {
        // Linear barrier vs log-p broadcast: by p = 8 the barrier's own
        // cost must dominate the collective overhead (idle time blocked
        // at either collective is attributed to wait %, not here).
        let t = overhead_decomposition(&[8], 192);
        let row = &t.rows[0];
        let bcast: f64 = row[2].parse().unwrap();
        let barrier: f64 = row[3].parse().unwrap();
        assert!(barrier > bcast, "barrier {barrier}% vs bcast {bcast}%");
    }

    #[test]
    fn wait_share_is_positive_on_heterogeneous_rungs() {
        // Sunwulf rungs mix node speeds, so some rank always idles at
        // the iteration barrier — the wait column must catch it.
        let t = overhead_decomposition(&[4], 192);
        let wait: f64 = t.rows[0][4].parse().unwrap();
        assert!(wait > 0.0, "wait share = {wait}%");
    }
}
