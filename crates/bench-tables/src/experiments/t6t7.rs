//! Tables 6 & 7 — the prediction pipeline (§4.5): calibrate machine
//! parameters on the simulated interconnect, predict the required rank
//! per configuration from the analytic GE overhead model, predict ψ by
//! Corollary 2, and compare against the measured ladder.

use crate::params::ExperimentParams;
use crate::table::{fnum, Table};
use hetsim_cluster::calibrate::calibrate;
use hetsim_cluster::sunwulf;
use numfit::stats::relative_error;
use scalability::metric::{required_n_for_efficiency, ScalabilityLadder};
use scalability::predict::{psi_predicted_corollary2, GePredictor};

/// Runs the prediction pipeline and returns `(Table 6, Table 7)`.
/// `measured` is the ladder from the Tables 3/4 experiment, used for the
/// predicted-vs-measured comparison the paper closes with.
pub fn table6_and_7(params: &ExperimentParams, measured: &ScalabilityLadder) -> (Table, Table) {
    let net = sunwulf::sunwulf_network();
    let machine = calibrate(&net).expect("calibration micro-benchmarks fit");

    let predictors: Vec<GePredictor> = params
        .ge_ladder
        .iter()
        .map(|&p| GePredictor::new(&sunwulf::ge_config(p), machine))
        .collect();

    let mut t6 = Table::new(
        format!("Table 6 — Predicted required rank for E_s = {}", params.ge_target),
        &["Nodes", "N (predicted)", "N (measured)"],
    );
    let mut required = Vec::with_capacity(predictors.len());
    for (g, &p) in predictors.iter().zip(&params.ge_ladder) {
        let n_pred =
            required_n_for_efficiency(g, params.ge_target, &params.ge_sizes, params.fit_degree)
                .expect("predicted efficiency reaches the target")
                .round() as usize;
        required.push(n_pred);
        let n_meas = measured
            .required
            .iter()
            .find(|(label, ..)| label.contains(&format!("ge-{p}")))
            .map(|(_, _, n, _)| n.to_string())
            .unwrap_or_else(|| "-".to_string());
        t6.push_row(vec![p.to_string(), n_pred.to_string(), n_meas]);
    }
    t6.push_note("predicted from the calibrated T_send/T_bcast/T_barrier model, α ≈ 0");

    let mut t7 = Table::new(
        "Table 7 — Predicted scalability of GE on Sunwulf vs measured",
        &["Step", "psi (predicted)", "psi (measured)", "rel. error"],
    );
    for (w, step) in measured.steps.iter().enumerate() {
        let psi_pred = psi_predicted_corollary2(
            &predictors[w],
            required[w],
            &predictors[w + 1],
            required[w + 1],
        );
        let err = relative_error(psi_pred, step.psi);
        t7.push_row(vec![
            format!("psi({} -> {} nodes)", params.ge_ladder[w], params.ge_ladder[w + 1]),
            fnum(psi_pred),
            fnum(step.psi),
            format!("{:.1}%", err * 100.0),
        ]);
    }
    t7.push_note("paper: \"the predicted scalability is close to our measured scalability\"");
    (t6, t7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::t3t4::table3_and_4;

    #[test]
    fn prediction_tracks_measurement() {
        let params = ExperimentParams::quick();
        let (_t3, _t4, ladder) = table3_and_4(&params);
        let (t6, t7) = table6_and_7(&params, &ladder);

        // Predicted required N within 30% of measured at every rung.
        for row in &t6.rows {
            let pred: f64 = row[1].parse().unwrap();
            let meas: f64 = row[2].parse().unwrap();
            let err = relative_error(pred, meas);
            assert!(err < 0.30, "rung {}: predicted {pred} vs measured {meas}", row[0]);
        }

        // Predicted psi within 30% of measured at every step — the
        // paper's "close to measured" claim, with slack for the
        // reconstructed constants.
        for row in &t7.rows {
            let err: f64 = row[3].trim_end_matches('%').parse().unwrap();
            assert!(err < 30.0, "step {}: psi error {err}%", row[0]);
        }
    }
}
