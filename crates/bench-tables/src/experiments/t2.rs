//! Table 2 — GE on two nodes: workload, execution time, achieved speed
//! and speed-efficiency at a sweep of matrix ranks (§4.4.1).

use crate::systems::GeSystem;
use crate::table::{fnum, Table};
use hetsim_cluster::sunwulf;
use scalability::metric::AlgorithmSystem;

/// Regenerates Table 2 on the two-node GE configuration (server with two
/// CPUs + one SunBlade).
pub fn table2(sizes: &[usize]) -> Table {
    let cluster = sunwulf::ge_config(2);
    let net = sunwulf::sunwulf_network();
    let sys = GeSystem::new(&cluster, &net);
    let mut t = Table::new(
        format!("Table 2 — GE on two nodes (C = {:.2} Mflop/s)", cluster.marked_speed_mflops()),
        &[
            "Rank N",
            "Workload W (flop)",
            "Execution time T (s)",
            "Achieved speed (Mflop/s)",
            "Speed-efficiency",
        ],
    );
    for &n in sizes {
        let m = sys.measure(n);
        t.push_row(vec![
            n.to_string(),
            fnum(m.work_flops),
            fnum(m.time_secs),
            fnum(m.achieved_speed_mflops()),
            fnum(m.speed_efficiency()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_column_increases_with_n() {
        let t = table2(&[60, 120, 240, 480]);
        let es: Vec<f64> =
            t.rows.iter().map(|r| r.last().unwrap().parse::<f64>().unwrap()).collect();
        assert!(es.windows(2).all(|w| w[0] < w[1]), "E column: {es:?}");
        assert!(es.iter().all(|&e| e > 0.0 && e < 1.0));
    }

    #[test]
    fn speed_is_work_over_time() {
        let t = table2(&[100]);
        let row = &t.rows[0];
        let w: f64 = row[1].parse().unwrap();
        let time: f64 = row[2].parse().unwrap();
        let s: f64 = row[3].parse().unwrap();
        assert!((s - w / time / 1e6).abs() / s < 1e-2);
    }
}
