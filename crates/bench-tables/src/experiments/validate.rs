//! V1 (extension) — model validation: the analytic predictors against
//! the simulated (virtual-time SPMD) kernels for all four workloads,
//! across a (configuration, problem size) grid.
//!
//! The §4.5 prediction pipeline stands on the overhead models being
//! faithful; this experiment measures that faithfulness directly as a
//! relative-error table, kernel by kernel. GE's model carries the
//! sequential back-substitution term and shrinking broadcasts, MM's the
//! root-serialized distribution, the stencil's the p-independent halo
//! exchange, and the power method's the two-phase allgather — each
//! validated against the engine that actually executes the protocol.

use crate::systems::{power_iters, stencil_iters};
use crate::table::{fnum, Table};
use hetsim_cluster::calibrate::calibrate;
use hetsim_cluster::sunwulf;
use kernels::ge::ge_parallel_timed;
use kernels::mm::mm_parallel_timed;
use kernels::power::power_parallel_timed;
use kernels::stencil::stencil_parallel_timed;
use numfit::stats::relative_error;
use scalability::predict::{GePredictor, MmPredictor, PowerPredictor, StencilPredictor};

/// Runs the validation grid: for each kernel × configuration, the worst
/// and mean relative error of the predicted time over `sizes`.
pub fn model_validation(ladder: &[usize], sizes: &[usize]) -> Table {
    let net = sunwulf::sunwulf_network();
    let machine = calibrate(&net).expect("calibration fits");

    let mut t = Table::new(
        "Extension V1 — analytic models vs simulated kernels (relative error of T)",
        &["Kernel", "Nodes", "mean error", "worst error", "worst at N"],
    );

    for &p in ladder {
        let cluster = sunwulf::ge_config(p);
        // (kernel label, predicted time fn, simulated time fn)
        type TimeFn<'a> = Box<dyn Fn(usize) -> f64 + 'a>;
        let ge_pred = GePredictor::new(&cluster, machine);
        let mm_pred = MmPredictor::new(&cluster, machine);
        let st_pred = StencilPredictor::new(&cluster, machine, stencil_iters);
        let pw_pred = PowerPredictor::new(&cluster, machine, power_iters);
        let rows: Vec<(&str, TimeFn, TimeFn)> = vec![
            (
                "GE",
                Box::new(move |n| ge_pred.predicted_time_secs(n)),
                Box::new(|n| ge_parallel_timed(&cluster, &net, n).makespan.as_secs()),
            ),
            (
                "MM",
                Box::new(move |n| mm_pred.predicted_time_secs(n)),
                Box::new(|n| mm_parallel_timed(&cluster, &net, n).makespan.as_secs()),
            ),
            (
                "Stencil",
                Box::new(move |n| st_pred.predicted_time_secs(n)),
                Box::new(|n| {
                    stencil_parallel_timed(&cluster, &net, n, stencil_iters(n)).makespan.as_secs()
                }),
            ),
            (
                "Power",
                Box::new(move |n| pw_pred.predicted_time_secs(n)),
                Box::new(|n| {
                    power_parallel_timed(&cluster, &net, n, power_iters(n)).makespan.as_secs()
                }),
            ),
        ];
        for (label, predicted, simulated) in rows {
            let mut worst = 0.0f64;
            let mut worst_n = 0usize;
            let mut sum = 0.0f64;
            for &n in sizes {
                let err = relative_error(predicted(n), simulated(n));
                sum += err;
                if err > worst {
                    worst = err;
                    worst_n = n;
                }
            }
            t.push_row(vec![
                label.to_string(),
                p.to_string(),
                format!("{:.1}%", sum / sizes.len() as f64 * 100.0),
                format!("{:.1}%", worst * 100.0),
                worst_n.to_string(),
            ]);
        }
        let _ = fnum(0.0); // keep the formatting helper linked for CSV use
    }
    t.push_note("simulated = virtual-time SPMD protocol run; predicted = closed-form model");
    t.push_note("per-workload models share one machine calibration (T_send/T_bcast/T_barrier)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_tracks_its_kernel_within_a_quarter() {
        let t = model_validation(&[2, 4, 8], &[96, 192, 384]);
        assert_eq!(t.rows.len(), 12);
        for row in &t.rows {
            let worst: f64 = row[3].trim_end_matches('%').parse().unwrap();
            assert!(worst < 25.0, "{} at {} nodes: worst error {worst}%", row[0], row[1]);
        }
    }

    #[test]
    fn mean_error_never_exceeds_worst() {
        let t = model_validation(&[2, 4], &[96, 256]);
        for row in &t.rows {
            let mean: f64 = row[2].trim_end_matches('%').parse().unwrap();
            let worst: f64 = row[3].trim_end_matches('%').parse().unwrap();
            assert!(mean <= worst + 1e-9, "{row:?}");
        }
    }
}
