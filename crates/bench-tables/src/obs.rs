//! Observability outputs for the experiment suite.
//!
//! Backs the `--trace-out DIR` and `--metrics-out FILE` flags of the
//! `bench-tables` binary: runs each kernel once on a Sunwulf rung with
//! per-operation tracing, then exports
//!
//! - `DIR/<run>.trace.json` — Chrome trace-viewer format (open at
//!   `chrome://tracing` or <https://ui.perfetto.dev>), one timeline row
//!   per rank;
//! - `DIR/<run>.jsonl` — the compact record-per-line form that
//!   [`hetsim_obs::parse_trace_jsonl`] round-trips bit-exactly;
//! - `FILE` — one JSON document combining, per run, the metrics-registry
//!   snapshot (per-kind time fractions summing to 1), the per-rank
//!   compute/transfer/wait split, load-imbalance ratios, and the
//!   critical-path summary.
//!
//! Everything here is a pure function of virtual time, so both outputs
//! are byte-identical across repeated invocations — the same guarantee
//! the simulator makes for the timings themselves.

use hetsim_cluster::sunwulf;
use hetsim_cluster::time::SimTime;
use hetsim_mpi::trace::RankTrace;
use hetsim_obs::{
    chrome_trace_json, critical_path, load_imbalance, rank_activity, trace_jsonl, Json,
    MetricsRegistry,
};
use kernels::ge::ge_parallel_timed_traced;
use kernels::mm::mm_parallel_timed_traced;
use kernels::power::power_parallel_timed_traced;
use kernels::stencil::stencil_parallel_timed_traced;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// One traced benchmark run, named after the output files it produces.
pub struct ObservedRun {
    /// File-name slug (`ge-p8-n192`, ...).
    pub name: String,
    /// Per-rank operation traces of the run.
    pub traces: Vec<RankTrace>,
}

/// Runs the four kernels once each on a Sunwulf configuration with
/// tracing enabled. Quick mode uses the smoke-test rung and the
/// decomposition experiment's problem sizes; full mode the top rung.
pub fn observed_runs(quick: bool) -> Vec<ObservedRun> {
    let net = sunwulf::sunwulf_network();
    let p = if quick { 8 } else { 32 };
    let ge_n = if quick { 192 } else { 384 };
    let mm_n = if quick { 128 } else { 256 };
    let grid_n = if quick { 128 } else { 256 };
    let ge_cluster = sunwulf::ge_config(p);
    let mm_cluster = sunwulf::mm_config(p);
    vec![
        ObservedRun {
            name: format!("ge-p{p}-n{ge_n}"),
            traces: ge_parallel_timed_traced(&ge_cluster, &net, ge_n).1,
        },
        ObservedRun {
            name: format!("mm-p{p}-n{mm_n}"),
            traces: mm_parallel_timed_traced(&mm_cluster, &net, mm_n).1,
        },
        ObservedRun {
            name: format!("stencil-p{p}-n{grid_n}"),
            traces: stencil_parallel_timed_traced(
                &ge_cluster,
                &net,
                grid_n,
                crate::systems::stencil_iters(grid_n),
            )
            .1,
        },
        ObservedRun {
            name: format!("power-p{p}-n{grid_n}"),
            traces: power_parallel_timed_traced(
                &ge_cluster,
                &net,
                grid_n,
                crate::systems::power_iters(grid_n),
            )
            .1,
        },
    ]
}

/// Traced GE and MM runs under the fault sweep's straggler+drops plan,
/// appended to [`observed_runs`] when the `faults` experiment is
/// requested. The `-faulted` suffix keeps the slugs (and therefore the
/// output files) disjoint from the clean runs; the plan is seeded, so
/// these exports share the byte-stability guarantee.
pub fn observed_runs_faulted(quick: bool) -> Vec<ObservedRun> {
    use crate::experiments::faults::Severity;
    use kernels::ge::ge_parallel_timed_faulted_traced;
    use kernels::mm::mm_parallel_timed_faulted_traced;
    let net = sunwulf::sunwulf_network();
    let p = if quick { 8 } else { 16 };
    let ge_n = if quick { 192 } else { 384 };
    let mm_n = if quick { 128 } else { 256 };
    let plan = Severity::StragglerDrops.plan(p);
    let ge_cluster = sunwulf::ge_config(p);
    let mm_cluster = sunwulf::mm_config(p);
    vec![
        ObservedRun {
            name: format!("ge-p{p}-n{ge_n}-faulted"),
            traces: ge_parallel_timed_faulted_traced(&ge_cluster, &net, &plan, ge_n).1,
        },
        ObservedRun {
            name: format!("mm-p{p}-n{mm_n}-faulted"),
            traces: mm_parallel_timed_faulted_traced(&mm_cluster, &net, &plan, mm_n).1,
        },
    ]
}

/// Traced recoverable GE and MM runs — GE under checkpoint/restart at
/// the Daly interval, MM under shrink-rebalance with an early death —
/// appended to [`observed_runs`] when the `recover` experiment is
/// requested. The recovery charges appear as typed spans (`Checkpoint`,
/// `Detect`, `LostWork`, `Rebalance`); plans are seeded, so the exports
/// share the byte-stability guarantee.
pub fn observed_runs_recovered(quick: bool) -> Vec<ObservedRun> {
    use crate::experiments::recover::{ge_observed_inputs, mm_observed_inputs};
    use kernels::ge::ge_parallel_timed_recoverable_traced;
    use kernels::mm::mm_parallel_timed_recoverable_traced;
    let net = sunwulf::sunwulf_network();
    let (ge_cluster, ge_plan, ge_policy, ge_n) = ge_observed_inputs(quick);
    let (mm_cluster, mm_plan, mm_policy, mm_n) = mm_observed_inputs(quick);
    let ge_p = ge_cluster.size();
    let mm_p = mm_cluster.size();
    vec![
        ObservedRun {
            name: format!("ge-p{ge_p}-n{ge_n}-recover-ckpt"),
            traces: ge_parallel_timed_recoverable_traced(
                &ge_cluster,
                &net,
                &ge_plan,
                ge_policy,
                ge_n,
            )
            .1,
        },
        ObservedRun {
            name: format!("mm-p{mm_p}-n{mm_n}-recover-shrink"),
            traces: mm_parallel_timed_recoverable_traced(
                &mm_cluster,
                &net,
                &mm_plan,
                mm_policy,
                mm_n,
            )
            .1,
        },
    ]
}

/// Writes the two trace files per run into `dir` (created if missing)
/// and returns the paths written.
pub fn write_trace_dir(dir: &Path, runs: &[ObservedRun]) -> io::Result<Vec<String>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for run in runs {
        let chrome = dir.join(format!("{}.trace.json", run.name));
        std::fs::write(&chrome, chrome_trace_json(&run.traces))?;
        written.push(chrome.display().to_string());
        let jsonl = dir.join(format!("{}.jsonl", run.name));
        std::fs::write(&jsonl, trace_jsonl(&run.traces))?;
        written.push(jsonl.display().to_string());
    }
    Ok(written)
}

/// Builds the combined metrics document for a set of observed runs.
///
/// Shape: `{"schema": ..., "runs": {name: {"metrics": <registry
/// snapshot>, "activity": [...], "imbalance": {...}, "critical_path":
/// {...}}}}`. The registry snapshot's `fractions` cover every
/// [`hetsim_mpi::trace::OpKind`] and sum to 1.
pub fn metrics_json(runs: &[ObservedRun]) -> Json {
    let mut by_name = BTreeMap::new();
    for run in runs {
        let mut obj = BTreeMap::new();
        obj.insert(
            "metrics".to_string(),
            MetricsRegistry::from_traces(&run.traces).snapshot().to_json(),
        );
        let activity = rank_activity(&run.traces);
        obj.insert(
            "activity".to_string(),
            Json::Arr(
                activity
                    .iter()
                    .map(|a| {
                        let mut row = BTreeMap::new();
                        row.insert("rank".to_string(), Json::int(a.rank as u64));
                        row.insert("compute".to_string(), Json::Num(a.compute.as_secs()));
                        row.insert("transfer".to_string(), Json::Num(a.transfer.as_secs()));
                        row.insert("wait".to_string(), Json::Num(a.wait.as_secs()));
                        Json::Obj(row)
                    })
                    .collect(),
            ),
        );
        let compute: Vec<SimTime> = activity.iter().map(|a| a.compute).collect();
        let busy: Vec<SimTime> = activity.iter().map(|a| a.compute + a.transfer).collect();
        let mut imb = BTreeMap::new();
        imb.insert("compute".to_string(), Json::Num(load_imbalance(&compute)));
        imb.insert("busy".to_string(), Json::Num(load_imbalance(&busy)));
        obj.insert("imbalance".to_string(), Json::Obj(imb));
        obj.insert("critical_path".to_string(), critical_path(&run.traces).to_json());
        by_name.insert(run.name.clone(), Json::Obj(obj));
    }
    let mut root = BTreeMap::new();
    root.insert("schema".to_string(), Json::str("hetscale-metrics/1"));
    root.insert("runs".to_string(), Json::Obj(by_name));
    Json::Obj(root)
}

/// Writes the combined metrics document to `path` (parent directories
/// created if missing).
pub fn write_metrics(path: &Path, runs: &[ObservedRun]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, format!("{}\n", metrics_json(runs)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_mpi::trace::OpKind;

    fn small_run() -> ObservedRun {
        let cluster = sunwulf::ge_config(4);
        let net = sunwulf::sunwulf_network();
        ObservedRun {
            name: "ge-p4-n96".to_string(),
            traces: ge_parallel_timed_traced(&cluster, &net, 96).1,
        }
    }

    #[test]
    fn metrics_document_has_expected_shape() {
        let doc = metrics_json(&[small_run()]);
        let root = doc.as_obj().unwrap();
        assert_eq!(root["schema"].as_str(), Some("hetscale-metrics/1"));
        let run = root["runs"].as_obj().unwrap()["ge-p4-n96"].as_obj().unwrap();
        for key in ["metrics", "activity", "imbalance", "critical_path"] {
            assert!(run.contains_key(key), "missing {key}");
        }
        assert_eq!(run["activity"].as_arr().unwrap().len(), 4);
        assert!(run["imbalance"].as_obj().unwrap()["compute"].as_num().unwrap() >= 1.0);
    }

    #[test]
    fn metrics_fractions_cover_all_kinds_and_sum_to_one() {
        let doc = metrics_json(&[small_run()]);
        let run = doc.as_obj().unwrap()["runs"].as_obj().unwrap()["ge-p4-n96"].as_obj().unwrap();
        let fractions = run["metrics"].as_obj().unwrap()["fractions"].as_obj().unwrap();
        assert_eq!(fractions.len(), OpKind::ALL.len());
        let sum: f64 = fractions.values().map(|v| v.as_num().unwrap()).sum();
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
    }

    #[test]
    fn metrics_document_is_byte_stable() {
        let a = metrics_json(&[small_run()]).to_string();
        let b = metrics_json(&[small_run()]).to_string();
        assert_eq!(a, b);
        // And parses back as valid JSON.
        Json::parse(&a).unwrap();
    }

    #[test]
    fn faulted_runs_carry_retry_spans_and_stay_byte_stable() {
        let runs = observed_runs_faulted(true);
        assert_eq!(runs.len(), 2);
        for run in &runs {
            assert!(run.name.ends_with("-faulted"), "slug {} misses suffix", run.name);
        }
        let retries: usize = runs
            .iter()
            .flat_map(|r| r.traces.iter())
            .flat_map(|t| t.records.iter())
            .filter(|rec| rec.kind == OpKind::Retry)
            .count();
        assert!(retries > 0, "straggler+drops plan must charge retry spans");
        let a = metrics_json(&runs).to_string();
        let b = metrics_json(&observed_runs_faulted(true)).to_string();
        assert_eq!(a, b, "faulted metrics export must be byte-stable");
    }

    #[test]
    fn observed_run_names_are_distinct_slugs() {
        let runs = observed_runs(true);
        let names: Vec<&str> = runs.iter().map(|r| r.name.as_str()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate run names: {names:?}");
        for name in names {
            assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
        }
    }
}
