//! Process-wide fault-plan seed base (`--seed N`).
//!
//! Every seeded fault stream in the experiment suite — the `--faults`
//! severity plans and the `recover` sweep's MTBF death streams — derives
//! its [`hetsim_cluster::faults::FaultPlan`] seed from one base value,
//! fixed once per process exactly like the worker count
//! (`crate::pool`). The default is the historical constant
//! `0x5eed_0000`, so runs without `--seed` are byte-identical to every
//! release before the flag existed; any other value re-seeds the whole
//! family of plans deterministically (same `--seed` twice ⇒ same bytes).

use std::sync::OnceLock;

static SEED: OnceLock<u64> = OnceLock::new();

/// The historical plan-seed base: the value every seeded sweep used
/// before `--seed` existed, and the default when the flag is absent.
pub const DEFAULT_PLAN_SEED: u64 = 0x5eed_0000;

/// The seed base was already fixed — [`set_plan_seed`] was called twice
/// (or after a sweep's first plan defaulted it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedAlreadySet;

impl std::fmt::Display for SeedAlreadySet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault-plan seed already fixed for this process")
    }
}

impl std::error::Error for SeedAlreadySet {}

/// Fixes the plan-seed base for the rest of the process. Call at most
/// once, before any sweep builds a plan.
///
/// # Errors
/// Returns [`SeedAlreadySet`] when the base was already fixed (a second
/// call, or a call after the first plan defaulted it).
pub fn set_plan_seed(seed: u64) -> Result<(), SeedAlreadySet> {
    SEED.set(seed).map_err(|_| SeedAlreadySet)
}

/// The plan-seed base: the value fixed by [`set_plan_seed`], or
/// [`DEFAULT_PLAN_SEED`] when none was set.
pub fn plan_seed() -> u64 {
    *SEED.get_or_init(|| DEFAULT_PLAN_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_historical_constant() {
        assert_eq!(DEFAULT_PLAN_SEED, 0x5eed_0000);
        // In-process the slot may already be taken by another test; the
        // read must be *some* fixed value either way.
        assert_eq!(plan_seed(), plan_seed());
    }

    #[test]
    fn second_set_reports_instead_of_panicking() {
        let _ = set_plan_seed(11);
        let err = set_plan_seed(12).expect_err("second set_plan_seed must be rejected");
        assert_eq!(err.to_string(), "fault-plan seed already fixed for this process");
    }
}
