//! Minimal offline re-implementation of the `bytes` surface this
//! workspace uses: an immutable, cheaply cloneable byte buffer (same
//! constraint as the `crates/proptest` shim: no network access to
//! crates.io). Backed by `Arc<[u8]>` — clone is a refcount bump, as
//! message payloads expect.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer (stand-in for
/// `bytes::Bytes`).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static byte slice (copies it; the real crate borrows,
    /// but no caller relies on zero-copy statics).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(bytes) }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(data) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn round_trips_vecs_and_clones_cheaply() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
