//! Runtime micro-benchmarks: hetsim-mpi point-to-point and collective
//! throughput, and the discrete-event engine's event rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsim_cluster::engine::Simulator;
use hetsim_cluster::netsim::{SharedMedium, TransferRequest};
use hetsim_cluster::network::MpichEthernet;
use hetsim_cluster::{ClusterSpec, SimTime};
use hetsim_mpi::{run_spmd, Tag};
use std::hint::black_box;

fn net() -> MpichEthernet {
    MpichEthernet::new(0.3e-3, 1e8)
}

fn bench_p2p_pingpong(c: &mut Criterion) {
    let cluster = ClusterSpec::homogeneous(2, 50.0);
    let mut group = c.benchmark_group("runtime_p2p");
    for elems in [16usize, 1024, 16384] {
        group.bench_with_input(BenchmarkId::new("pingpong", elems), &elems, |b, &elems| {
            let payload = vec![1.0f64; elems];
            b.iter(|| {
                run_spmd(&cluster, &net(), |rank| {
                    for i in 0..8u32 {
                        if rank.rank() == 0 {
                            rank.send_f64s(1, Tag(i), &payload);
                            let _ = rank.recv_f64s(1, Tag(i));
                        } else {
                            let got = rank.recv_f64s(0, Tag(i));
                            rank.send_f64s(0, Tag(i), &got);
                        }
                    }
                    black_box(rank.clock())
                })
            })
        });
    }
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_collectives");
    for p in [4usize, 16] {
        let cluster = ClusterSpec::homogeneous(p, 50.0);
        group.bench_with_input(BenchmarkId::new("barrier_x32", p), &p, |b, _| {
            b.iter(|| {
                run_spmd(&cluster, &net(), |rank| {
                    for _ in 0..32 {
                        rank.barrier();
                    }
                    black_box(rank.clock())
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("bcast_1k_x32", p), &p, |b, _| {
            let payload = vec![1.0f64; 1024];
            b.iter(|| {
                run_spmd(&cluster, &net(), |rank| {
                    for _ in 0..32 {
                        if rank.rank() == 0 {
                            rank.broadcast_f64s(0, Some(&payload));
                        } else {
                            rank.broadcast_f64s(0, None);
                        }
                    }
                    black_box(rank.clock())
                })
            })
        });
    }
    group.finish();
}

fn bench_event_engine(c: &mut Criterion) {
    c.bench_function("des_engine_100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            sim.schedule(SimTime::ZERO, 0u64);
            sim.run(100_000, |_, n, sched| {
                sched.schedule_in(SimTime::from_micros(1.0), n + 1);
            });
            black_box(sim.now())
        })
    });
}

fn bench_shared_medium(c: &mut Criterion) {
    let medium = SharedMedium::new(1e-4, 1.25e7);
    let requests: Vec<TransferRequest> = (0..1000)
        .map(|i| TransferRequest {
            ready: SimTime::from_micros((i % 37) as f64 * 10.0),
            bytes: 512 * (1 + i as u64 % 16),
            source: i % 8,
            dest: (i + 1) % 8,
        })
        .collect();
    c.bench_function("netsim_1000_transfers", |b| b.iter(|| black_box(medium.simulate(&requests))));
}

criterion_group! {
    name = runtime_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_p2p_pingpong, bench_collectives, bench_event_engine, bench_shared_medium
}
criterion_main!(runtime_benches);
