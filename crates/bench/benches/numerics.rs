//! Numerics benches: the fitting and inversion primitives behind the
//! trend-line methodology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use numfit::{invert_monotone, polyfit, Polynomial};
use std::hint::black_box;

fn efficiency_like_samples(n: usize) -> (Vec<f64>, Vec<f64>) {
    let xs: Vec<f64> = (1..=n).map(|i| 50.0 * i as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|&x| x / (x + 700.0)).collect();
    (xs, ys)
}

fn bench_polyfit(c: &mut Criterion) {
    let mut group = c.benchmark_group("polyfit");
    for samples in [8usize, 32, 128] {
        let (xs, ys) = efficiency_like_samples(samples);
        for degree in [3usize, 5] {
            group.bench_with_input(
                BenchmarkId::new(format!("deg{degree}"), samples),
                &samples,
                |b, _| b.iter(|| black_box(polyfit(&xs, &ys, degree).unwrap())),
            );
        }
    }
    group.finish();
}

fn bench_inversion(c: &mut Criterion) {
    let (xs, ys) = efficiency_like_samples(32);
    let fit = polyfit(&xs, &ys, 3).unwrap();
    c.bench_function("invert_required_n", |b| {
        b.iter(|| {
            black_box(invert_monotone(|x| fit.poly.eval(x), 50.0, 1600.0, 0.3, 1e-6).unwrap())
        })
    });
}

fn bench_poly_eval(c: &mut Criterion) {
    let poly = Polynomial::new(vec![0.1, -2.0, 3.0e-3, 4.0e-6, -1.0e-9]);
    let xs: Vec<f64> = (0..4096).map(|i| i as f64).collect();
    c.bench_function("poly_eval_4096", |b| b.iter(|| black_box(poly.eval_many(&xs))));
}

fn bench_solver(c: &mut Criterion) {
    use numfit::solve::{solve_dense, DenseSystem};
    let n = 8usize;
    let mut state = 1u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    };
    let a: Vec<f64> = (0..n * n).map(|_| next()).collect();
    let b: Vec<f64> = (0..n).map(|_| next()).collect();
    let system = DenseSystem::new(a, b).unwrap();
    c.bench_function("dense_solve_8x8", |bch| {
        bch.iter(|| black_box(solve_dense(&system).unwrap()))
    });
}

criterion_group! {
    name = numerics_benches;
    config = Criterion::default().sample_size(20);
    targets = bench_polyfit, bench_inversion, bench_poly_eval, bench_solver
}
criterion_main!(numerics_benches);
