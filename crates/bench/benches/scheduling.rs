//! Benches for the extension workloads (stencil, power iteration) and
//! the static/dynamic scheduling simulations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsim_cluster::network::MpichEthernet;
use hetsim_cluster::selfsched::{dynamic_schedule, static_schedule};
use hetsim_cluster::{ClusterSpec, SimTime};
use kernels::matrix::Matrix;
use kernels::power::{power_parallel, power_parallel_timed};
use kernels::stencil::{stencil_parallel, stencil_parallel_timed};
use std::hint::black_box;

fn net() -> MpichEthernet {
    MpichEthernet::new(0.3e-3, 1e8)
}

fn bench_stencil(c: &mut Criterion) {
    let n = 64;
    let iters = 8;
    let u0 = Matrix::random(n, n, 1);
    let mut group = c.benchmark_group("stencil");
    for p in [2usize, 4, 8] {
        let cluster = ClusterSpec::homogeneous(p, 50.0);
        group.bench_with_input(BenchmarkId::new("parallel_real", p), &p, |b, _| {
            b.iter(|| black_box(stencil_parallel(&cluster, &net(), &u0, iters)))
        });
        group.bench_with_input(BenchmarkId::new("parallel_timed", p), &p, |b, _| {
            b.iter(|| black_box(stencil_parallel_timed(&cluster, &net(), n, iters)))
        });
    }
    group.finish();
}

fn bench_power(c: &mut Criterion) {
    let n = 48;
    let iters = 8;
    let a = Matrix::random_diagonally_dominant(n, 2);
    let mut group = c.benchmark_group("power");
    for p in [2usize, 4, 8] {
        let cluster = ClusterSpec::homogeneous(p, 50.0);
        group.bench_with_input(BenchmarkId::new("parallel_real", p), &p, |b, _| {
            b.iter(|| black_box(power_parallel(&cluster, &net(), &a, iters)))
        });
        group.bench_with_input(BenchmarkId::new("parallel_timed", p), &p, |b, _| {
            b.iter(|| black_box(power_parallel_timed(&cluster, &net(), n, iters)))
        });
    }
    group.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let speeds: Vec<f64> = (0..8).map(|i| 5e7 + 1e7 * (i % 3) as f64).collect();
    let chunks = vec![1e6f64; 1024];
    let mut group = c.benchmark_group("selfsched");
    group.bench_function("static_1024_chunks", |b| {
        b.iter(|| black_box(static_schedule(&speeds, &speeds, &chunks)))
    });
    group.bench_function("dynamic_1024_chunks", |b| {
        b.iter(|| black_box(dynamic_schedule(&speeds, &chunks, SimTime::from_micros(100.0))))
    });
    group.finish();
}

criterion_group! {
    name = scheduling_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stencil, bench_power, bench_schedulers
}
criterion_main!(scheduling_benches);
