//! Per-rank versus class-aggregated pricing at mega scale — the cost
//! claim behind the X4 sweep (DESIGN.md §13).
//!
//! For HEET machines of 10³, 10⁴, and 10⁵ ranks (the same
//! `mega_presets` shape the `mega` experiment id sweeps), each kernel
//! cell is priced up to three ways:
//!
//! * `aggregated` — [`mm_mega`] / [`ge_mega`] / [`power_mega`] on the
//!   compressed [`ClassedCluster`]: O(classes) state, no rank vector;
//! * `per_rank` — the per-rank closed forms on the pre-materialized
//!   [`ClusterSpec`], the O(P) walk the aggregated path replaces.
//!   Materialization and the O(P) distributions are built *outside*
//!   the timer, so the measured gap is a lower bound on the real
//!   sweep's saving. GE's form is Θ(N·P), so its reference stops at
//!   10⁴ ranks;
//! * `event_driven` — GE only, the pre-recorded program replayed on
//!   the event queue: Θ(N·P) queue operations, affordable at 10³.
//!
//! The paths are bit-identical in output (`mega_matches_per_rank_*`
//! in `kernels::mega`); this bench pins that the aggregated cost is
//! flat in P for MM/power and Θ(N·classes) for GE while the per-rank
//! cost grows with P. Numbers are recorded in `BENCH_MEGASCALE.json`
//! at the repo root.

use bench_tables::params::{
    mega_ge_sizes, mega_mm_sizes, MEGA_BASE_MFLOPS, MEGA_MAX_CLASSES, MEGA_POWER_ITERS, MEGA_SPREAD,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetpart::{BlockDistribution, CyclicDistribution};
use hetsim_cluster::sunwulf::sunwulf_network;
use hetsim_cluster::ClassedCluster;
use hetsim_mpi::record_spmd;
use kernels::ge::ge_timed_body;
use kernels::mega::{ge_mega, mm_mega, power_mega};
use kernels::{ge_closed_form, mm_closed_form, power_closed_form};
use std::hint::black_box;

/// The presets the per-rank reference can still afford. (The `mega`
/// sweep itself continues to 10⁶ and 10⁷ ranks on the aggregated path
/// alone.)
const PRESETS: [usize; 3] = [1_000, 10_000, 100_000];

fn bench_megascale(c: &mut Criterion) {
    let net = sunwulf_network();
    let mut group = c.benchmark_group("megascale");
    for p in PRESETS {
        let cluster = ClassedCluster::heet(p, MEGA_MAX_CLASSES, MEGA_BASE_MFLOPS, MEGA_SPREAD);
        // The grid anchor — the size whose crossing the sweep inverts.
        let n = mega_mm_sizes(p)[4];
        let spec = cluster.materialize();
        let speeds: Vec<f64> = spec.nodes().iter().map(|nd| nd.marked_speed_mflops).collect();
        let dist = BlockDistribution::proportional(n, &speeds);

        group.bench_with_input(BenchmarkId::new("mm_aggregated", p), &p, |b, _| {
            b.iter(|| black_box(mm_mega(&cluster, &net, n).unwrap().makespan))
        });
        group.bench_with_input(BenchmarkId::new("mm_per_rank", p), &p, |b, _| {
            b.iter(|| black_box(mm_closed_form(&spec, &net, n, &dist).makespan))
        });
        group.bench_with_input(BenchmarkId::new("power_aggregated", p), &p, |b, _| {
            b.iter(|| black_box(power_mega(&cluster, &net, n, MEGA_POWER_ITERS).unwrap().makespan))
        });
        group.bench_with_input(BenchmarkId::new("power_per_rank", p), &p, |b, _| {
            b.iter(|| {
                black_box(power_closed_form(&spec, &net, n, MEGA_POWER_ITERS, &dist).makespan)
            })
        });

        // GE walks Θ(N) lockstep rounds, so even aggregated a cell
        // costs Θ(N · classes) — and the per-rank closed form pays
        // Θ(N · P). At the grid anchor N = 2P that is 2P² rank-rounds:
        // affordable to 10⁴ ranks, a multi-minute cell at 10⁵, so the
        // per-rank reference stops at 10⁴ (the aggregated path runs
        // everywhere).
        let ge_n = mega_ge_sizes(p)[0];
        let cyclic = CyclicDistribution::fine(ge_n, &speeds);
        group.bench_with_input(BenchmarkId::new("ge_aggregated", p), &p, |b, _| {
            b.iter(|| black_box(ge_mega(&cluster, &net, ge_n).unwrap().makespan))
        });
        if p <= 10_000 {
            group.bench_with_input(BenchmarkId::new("ge_per_rank", p), &p, |b, _| {
                b.iter(|| black_box(ge_closed_form(&spec, &net, ge_n, &cyclic).makespan))
            });
        }
        // The event-driven engine replays every broadcast + barrier as
        // per-rank events — Θ(N · P) queue operations; affordable only
        // on the 10³-rank preset. The recording is built outside the
        // timer, mirroring the pre-materialized spec above.
        if p <= 1_000 {
            let program = record_spmd(&spec, |t| ge_timed_body(t, &cyclic, ge_n));
            group.bench_with_input(BenchmarkId::new("ge_event_driven", p), &p, |b, _| {
                b.iter(|| black_box(program.simulate_event_driven(&spec, &net).makespan()))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = megascale_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_megascale
}
criterion_main!(megascale_benches);
