//! One Criterion bench per paper artifact: regenerates each table/figure
//! at a bounded sweep so `cargo bench` exercises the full reproduction
//! pipeline and tracks its cost over time.

use bench_tables::experiments::{ablate, compare, ext, f1, f2t5, t1, t2, t3t4, t6t7};
use bench_tables::ExperimentParams;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Bench-sized parameters: 2-rung ladders, short sweeps — the shape of
/// the full experiment at a fraction of the cost.
fn bench_params() -> ExperimentParams {
    ExperimentParams {
        ge_ladder: vec![2, 4],
        mm_ladder: vec![2, 4],
        ge_target: 0.3,
        mm_target: 0.2,
        ge_sizes: vec![60, 100, 160, 260, 420, 700],
        mm_sizes: vec![12, 16, 24, 32, 48, 64, 96],
        fit_degree: 3,
    }
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("t1_marked_speeds", |b| b.iter(|| black_box(t1::table1())));
}

fn bench_table2(c: &mut Criterion) {
    let sizes = [60usize, 120, 240];
    c.bench_function("t2_ge_two_nodes", |b| b.iter(|| black_box(t2::table2(&sizes))));
}

fn bench_figure1(c: &mut Criterion) {
    let p = bench_params();
    c.bench_function("f1_efficiency_curve", |b| {
        b.iter(|| black_box(f1::figure1(&p.ge_sizes, p.ge_target, p.fit_degree)))
    });
}

fn bench_tables34(c: &mut Criterion) {
    let p = bench_params();
    c.bench_function("t3_t4_ge_ladder", |b| b.iter(|| black_box(t3t4::table3_and_4(&p))));
}

fn bench_fig2_table5(c: &mut Criterion) {
    let p = bench_params();
    c.bench_function("f2_t5_mm_ladder", |b| b.iter(|| black_box(f2t5::figure2_and_table5(&p))));
}

fn bench_tables67(c: &mut Criterion) {
    let p = bench_params();
    let (_, _, ladder) = t3t4::table3_and_4(&p);
    c.bench_function("t6_t7_prediction", |b| b.iter(|| black_box(t6t7::table6_and_7(&p, &ladder))));
}

fn bench_compare(c: &mut Criterion) {
    let p = bench_params();
    let (_, _, ge) = t3t4::table3_and_4(&p);
    let (_, _, mm) = f2t5::figure2_and_table5(&p);
    c.bench_function("x1_ge_vs_mm_comparison", |b| {
        b.iter(|| black_box(compare::comparison(&ge, &mm)))
    });
}

fn bench_ablations(c: &mut Criterion) {
    c.bench_function("a1_ablate_distribution", |b| {
        b.iter(|| black_box(ablate::ablate_distribution(96)))
    });
    c.bench_function("a2_ablate_network", |b| b.iter(|| black_box(ablate::ablate_network(96))));
    let sizes = [60usize, 100, 160, 260, 420, 700];
    c.bench_function("a3_ablate_fit_degree", |b| {
        b.iter(|| black_box(ablate::ablate_fit_degree(&sizes, 0.3)))
    });
}

fn bench_extension(c: &mut Criterion) {
    c.bench_function("e1_marked_performance", |b| {
        b.iter(|| black_box(ext::extension_marked_performance()))
    });
}

criterion_group! {
    name = paper_tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_figure1, bench_tables34,
              bench_fig2_table5, bench_tables67, bench_compare,
              bench_ablations, bench_extension
}
criterion_main!(paper_tables);
