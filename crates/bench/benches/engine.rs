//! Phase-resolved cost of the fast timing engine, against the
//! thread-per-rank oracle runtime. The fast path is two phases —
//! record (run the body once per rank, deduplicate into rank classes)
//! and simulate (replay the op lists on the indexed ready-queue
//! scheduler) — and the bench groups mirror that split:
//!
//! * `record_phase` — [`record_spmd`] alone;
//! * `simulate_phase` — replaying a pre-recorded [`SpmdProgram`], the
//!   cost the cross-cell memo and the noise campaigns amortize down to;
//! * `end_to_end` — record + simulate ([`run_spmd_fast`]) next to the
//!   threaded oracle and the production timed kernels.
//!
//! Each group carries a scaled-Sunwulf case (`ge_config(64)` — 8× the
//! paper's 8-node rung, heterogeneous speeds so class dedup is partial)
//! alongside the homogeneous baseline.
//!
//! Both engines produce bit-identical `SpmdOutcome`s (enforced by the
//! `fast_matches_threaded` and `engine_equivalence` tests); this bench
//! records what that equivalence costs per phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsim_cluster::network::MpichEthernet;
use hetsim_cluster::{sunwulf, ClusterSpec};
use hetsim_mpi::{record_spmd, run_spmd, run_spmd_fast, SpmdTimer, Tag};
use kernels::ge::ge_parallel_timed;
use kernels::mm::mm_parallel_timed;
use std::hint::black_box;

fn net() -> MpichEthernet {
    MpichEthernet::new(0.3e-3, 1e8)
}

/// The bench clusters: a homogeneous baseline (dedup collapses to one
/// class) and the scaled Sunwulf GE rung at 64 nodes (8× the paper's
/// 8-node rung; two speed classes, so dedup is partial and the
/// ready-queue sees genuinely heterogeneous clocks).
fn clusters() -> Vec<(&'static str, ClusterSpec)> {
    vec![("homog_8", ClusterSpec::homogeneous(8, 50.0)), ("sunwulf_8x", sunwulf::ge_config(64))]
}

/// A collective-heavy synthetic program, generic over the timer so the
/// exact same body runs on both engines.
fn mixed_body<T: SpmdTimer>(t: &mut T, rounds: usize) {
    let me = t.rank();
    let p = t.size();
    for round in 0..rounds {
        t.compute_flops(1e5 * (me + 1) as f64);
        let next = (me + 1) % p;
        let prev = (me + p - 1) % p;
        t.send_count(next, Tag(round as u32), 256);
        t.recv_count(prev, Tag(round as u32), 256);
        t.barrier();
        t.broadcast_count(0, 512);
        t.gather_count(0, 64 + me);
        t.allgather_count(32);
    }
}

fn bench_record_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_phase");
    for (label, cluster) in clusters() {
        group.bench_with_input(BenchmarkId::new("mixed_x16", label), &cluster, |b, cluster| {
            b.iter(|| {
                let program = record_spmd(cluster, |t| mixed_body(t, 16));
                black_box(program.distinct_classes())
            })
        });
    }
    group.finish();
}

fn bench_simulate_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_phase");
    for (label, cluster) in clusters() {
        let program = record_spmd(&cluster, |t| mixed_body(t, 16));
        group.bench_with_input(BenchmarkId::new("mixed_x16", label), &cluster, |b, cluster| {
            b.iter(|| black_box(program.simulate(cluster, &net()).makespan()))
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    for (label, cluster) in clusters() {
        group.bench_with_input(
            BenchmarkId::new("fast_mixed_x16", label),
            &cluster,
            |b, cluster| {
                b.iter(|| {
                    black_box(run_spmd_fast(cluster, &net(), |t| mixed_body(t, 16)).makespan())
                })
            },
        );
    }
    // The oracle only at the homogeneous baseline: thread-per-rank at 64
    // ranks is exactly the cost the fast path exists to avoid.
    let homog = ClusterSpec::homogeneous(8, 50.0);
    group.bench_with_input(BenchmarkId::new("threaded_mixed_x16", "homog_8"), &homog, |b, cl| {
        b.iter(|| black_box(run_spmd(cl, &net(), |r| mixed_body(r, 16)).makespan()))
    });
    // Production timed kernels (GE routes through its closed-form
    // evaluator, MM through record + simulate) at bench sizes.
    for n in [128usize, 256] {
        group.bench_with_input(BenchmarkId::new("ge_timed", n), &n, |b, &n| {
            b.iter(|| black_box(ge_parallel_timed(&homog, &net(), n).makespan))
        });
        group.bench_with_input(BenchmarkId::new("mm_timed", n), &n, |b, &n| {
            b.iter(|| black_box(mm_parallel_timed(&homog, &net(), n).makespan))
        });
    }
    group.finish();
}

criterion_group! {
    name = engine_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_record_phase, bench_simulate_phase, bench_end_to_end
}
criterion_main!(engine_benches);
