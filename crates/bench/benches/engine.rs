//! Head-to-head of the two timing engines on identical programs: the
//! payload-free fast evaluator vs the thread-per-rank oracle runtime.
//! Both produce bit-identical `SpmdOutcome`s (enforced by the
//! `fast_matches_threaded` and `engine_equivalence` tests); this bench
//! records what that equivalence costs — or rather, what skipping
//! payload materialization and OS threads saves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsim_cluster::network::MpichEthernet;
use hetsim_cluster::ClusterSpec;
use hetsim_mpi::{run_spmd, run_spmd_fast, SpmdTimer, Tag};
use kernels::ge::ge_parallel_timed;
use kernels::mm::mm_parallel_timed;
use std::hint::black_box;

fn net() -> MpichEthernet {
    MpichEthernet::new(0.3e-3, 1e8)
}

/// A collective-heavy synthetic program, generic over the timer so the
/// exact same body runs on both engines.
fn mixed_body<T: SpmdTimer>(t: &mut T, rounds: usize) {
    let me = t.rank();
    let p = t.size();
    for round in 0..rounds {
        t.compute_flops(1e5 * (me + 1) as f64);
        let next = (me + 1) % p;
        let prev = (me + p - 1) % p;
        t.send_count(next, Tag(round as u32), 256);
        t.recv_count(prev, Tag(round as u32), 256);
        t.barrier();
        t.broadcast_count(0, 512);
        t.gather_count(0, 64 + me);
        t.allgather_count(32);
    }
}

fn bench_engines_mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_fastpath_vs_threaded");
    for p in [4usize, 8] {
        let cluster = ClusterSpec::homogeneous(p, 50.0);
        group.bench_with_input(BenchmarkId::new("fast_mixed_x16", p), &p, |b, _| {
            b.iter(|| black_box(run_spmd_fast(&cluster, &net(), |t| mixed_body(t, 16)).makespan()))
        });
        group.bench_with_input(BenchmarkId::new("threaded_mixed_x16", p), &p, |b, _| {
            b.iter(|| black_box(run_spmd(&cluster, &net(), |r| mixed_body(r, 16)).makespan()))
        });
    }
    group.finish();
}

fn bench_engines_kernels(c: &mut Criterion) {
    // The timed GE/MM kernels run on the fast engine in production;
    // their historical threaded cost is what `threaded_mixed_x16`
    // approximates. Here: absolute fast-path kernel cost at bench sizes.
    let cluster = ClusterSpec::homogeneous(8, 50.0);
    let mut group = c.benchmark_group("engine_fastpath_kernels");
    for n in [128usize, 256] {
        group.bench_with_input(BenchmarkId::new("ge_timed", n), &n, |b, &n| {
            b.iter(|| black_box(ge_parallel_timed(&cluster, &net(), n).makespan))
        });
        group.bench_with_input(BenchmarkId::new("mm_timed", n), &n, |b, &n| {
            b.iter(|| black_box(mm_parallel_timed(&cluster, &net(), n).makespan))
        });
    }
    group.finish();
}

criterion_group! {
    name = engine_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines_mixed, bench_engines_kernels
}
criterion_main!(engine_benches);
