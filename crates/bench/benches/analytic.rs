//! Lockstep closed forms against the event-driven scheduler — the
//! per-kernel cost of the two bit-identical evaluation paths.
//!
//! Each of the four kernel protocol bodies is recorded once, then
//! priced both ways on the same [`SpmdProgram`]:
//!
//! * `analytic` — the lockstep phase plan ([`simulate_analytic`]), the
//!   path the suite takes by default;
//! * `event_driven` — the ready-queue scheduler
//!   ([`simulate_event_driven`]), the reference `--no-analytic` forces.
//!
//! The `sunwulf_8x` group repeats the pair on the scaled Sunwulf rung
//! the `surface` sweep prices hardest (`ge_config(64)`, 8× the paper's
//! 8-node system, heterogeneous speeds), and `ge_batched` measures the
//! campaign-batched GE evaluator ([`ge_closed_form_many`]) that the
//! frozen-noise ablation leans on — one shared elimination pass priced
//! under 12 jittered networks at once, versus 12 standalone calls.
//!
//! Numbers from this bench (plus suite wall-clocks) are recorded in
//! `BENCH_ANALYTIC.json` at the repo root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetpart::{BlockDistribution, CyclicDistribution};
use hetsim_cluster::network::{JitteredNetwork, MpichEthernet};
use hetsim_cluster::{sunwulf, ClusterSpec};
use hetsim_mpi::record_spmd;
use kernels::ge::{ge_parallel_timed_many, ge_timed_body};
use kernels::mm::mm_timed_body;
use kernels::power::power_timed_body;
use kernels::stencil::stencil_timed_body;
use std::hint::black_box;

fn net() -> MpichEthernet {
    MpichEthernet::new(0.3e-3, 1e8)
}

fn speeds(cluster: &ClusterSpec) -> Vec<f64> {
    cluster.nodes().iter().map(|nd| nd.marked_speed_mflops).collect()
}

/// Record all four kernel bodies on `cluster` at size `n` and bench the
/// analytic and event-driven evaluations of each recording.
fn bench_pairs(c: &mut Criterion, group_name: &str, cluster: &ClusterSpec, n: usize) {
    let sp = speeds(cluster);
    let cyclic = CyclicDistribution::fine(n, &sp);
    let block = BlockDistribution::proportional(n, &sp);
    let iters = n.div_ceil(8);
    let programs = [
        ("ge", record_spmd(cluster, |t| ge_timed_body(t, &cyclic, n))),
        ("mm", record_spmd(cluster, |t| mm_timed_body(t, &block, n))),
        ("stencil", record_spmd(cluster, |t| stencil_timed_body(t, &block, n, iters))),
        ("power", record_spmd(cluster, |t| power_timed_body(t, &block, n, n.div_ceil(4)))),
    ];
    let mut group = c.benchmark_group(group_name);
    for (kernel, program) in &programs {
        assert!(program.is_lockstep(), "{kernel} recording must be lockstep");
        group.bench_with_input(BenchmarkId::new("analytic", kernel), program, |b, program| {
            b.iter(|| black_box(program.simulate_analytic(cluster, &net()).unwrap().makespan()))
        });
        group.bench_with_input(BenchmarkId::new("event_driven", kernel), program, |b, program| {
            b.iter(|| black_box(program.simulate_event_driven(cluster, &net()).makespan()))
        });
    }
    group.finish();
}

/// The four kernels on the paper's 8-node GE configuration.
fn bench_kernels_sunwulf(c: &mut Criterion) {
    bench_pairs(c, "analytic_vs_event_driven", &sunwulf::ge_config(8), 256);
}

/// The same pairs on the scaled 64-node rung the `surface` sweep walks.
fn bench_kernels_sunwulf_8x(c: &mut Criterion) {
    bench_pairs(c, "analytic_vs_event_driven_sunwulf_8x", &sunwulf::ge_config(64), 256);
}

/// The campaign-batched GE evaluator: 12 jittered networks priced in
/// one `ge_parallel_timed_many` call (shared elimination state) versus
/// twelve batch-of-1 calls.
fn bench_ge_batched(c: &mut Criterion) {
    let cluster = sunwulf::ge_config(2);
    let n = 420;
    let nets: Vec<JitteredNetwork<MpichEthernet>> = (0..12)
        .map(|seed| JitteredNetwork::new(sunwulf::sunwulf_network(), 0.05, seed + 1))
        .collect();
    let mut group = c.benchmark_group("ge_batched");
    group.bench_function("batched_12", |b| {
        b.iter(|| black_box(ge_parallel_timed_many(&cluster, &nets, n).len()))
    });
    group.bench_function("one_by_one_12", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for net in &nets {
                total += ge_parallel_timed_many(&cluster, std::slice::from_ref(net), n).len();
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group! {
    name = analytic_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels_sunwulf, bench_kernels_sunwulf_8x, bench_ge_batched
}
criterion_main!(analytic_benches);
