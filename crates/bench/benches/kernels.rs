//! Kernel benches: sequential references, parallel (real arithmetic)
//! versions, and timing-mode skeletons, on homogeneous and heterogeneous
//! clusters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetscale_bench::{BENCH_GE_N, BENCH_MM_N};
use hetsim_cluster::network::MpichEthernet;
use hetsim_cluster::{ClusterSpec, NodeSpec};
use kernels::ge::{ge_parallel, ge_parallel_timed, ge_sequential};
use kernels::matrix::Matrix;
use kernels::mm::{mm_parallel, mm_parallel_timed, mm_sequential};
use std::hint::black_box;

fn net() -> MpichEthernet {
    MpichEthernet::new(0.3e-3, 1e8)
}

fn het_cluster(p: usize) -> ClusterSpec {
    let nodes = (0..p)
        .map(|i| NodeSpec::synthetic(format!("n{i}"), 50.0 + 30.0 * (i % 3) as f64))
        .collect();
    ClusterSpec::new(format!("het-{p}"), nodes).expect("non-empty")
}

fn bench_ge(c: &mut Criterion) {
    let n = BENCH_GE_N;
    let a = Matrix::random_diagonally_dominant(n, 7);
    let x_true: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.01).collect();
    let b = a.matvec(&x_true);

    let mut group = c.benchmark_group("ge");
    group.bench_function("sequential", |bench| bench.iter(|| black_box(ge_sequential(&a, &b))));
    for p in [2usize, 4, 8] {
        let cluster = het_cluster(p);
        group.bench_with_input(BenchmarkId::new("parallel_real", p), &p, |bench, _| {
            bench.iter(|| black_box(ge_parallel(&cluster, &net(), &a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("parallel_timed", p), &p, |bench, _| {
            bench.iter(|| black_box(ge_parallel_timed(&cluster, &net(), n)))
        });
    }
    group.finish();
}

fn bench_mm(c: &mut Criterion) {
    let n = BENCH_MM_N;
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);

    let mut group = c.benchmark_group("mm");
    group.bench_function("sequential", |bench| bench.iter(|| black_box(mm_sequential(&a, &b))));
    for p in [2usize, 4, 8] {
        let cluster = het_cluster(p);
        group.bench_with_input(BenchmarkId::new("parallel_real", p), &p, |bench, _| {
            bench.iter(|| black_box(mm_parallel(&cluster, &net(), &a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("parallel_timed", p), &p, |bench, _| {
            bench.iter(|| black_box(mm_parallel_timed(&cluster, &net(), n)))
        });
    }
    group.finish();
}

fn bench_marked_speed_kernels(c: &mut Criterion) {
    use marked_speed::kernels::{run_kernel, BenchKernel};
    let mut group = c.benchmark_group("marked_speed");
    group.bench_function("lu_64", |b| b.iter(|| black_box(run_kernel(BenchKernel::Lu, 64))));
    group.bench_function("ft_1024", |b| b.iter(|| black_box(run_kernel(BenchKernel::Ft, 1024))));
    group.bench_function("bt_4096", |b| b.iter(|| black_box(run_kernel(BenchKernel::Bt, 4096))));
    group.finish();
}

criterion_group! {
    name = kernel_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ge, bench_mm, bench_marked_speed_kernels
}
criterion_main!(kernel_benches);
