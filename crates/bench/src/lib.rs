//! Shared helpers for the Criterion benchmark suite (see `benches/`).
//!
//! Each bench target regenerates one of the paper's artifacts (or a
//! scaled-down version bounded for benchmarking time) so `cargo bench`
//! doubles as a performance regression net and a reproduction driver:
//!
//! * `paper_tables` — tables T1–T7, figures F1/F2 at reduced sweeps.
//! * `kernels` — sequential vs parallel GE/MM, real and timing mode.
//! * `runtime` — hetsim-mpi point-to-point and collective throughput.
//! * `numerics` — polynomial fitting and required-N inversion.

/// Problem sizes used by the kernel benches: large enough to be
/// meaningful, small enough for Criterion's sample counts.
pub const BENCH_GE_N: usize = 96;
/// Matrix size for the MM kernel benches.
pub const BENCH_MM_N: usize = 64;
