//! No-op derive macros backing the offline `serde` stub: the stub's
//! `Serialize`/`Deserialize` traits are blanket-implemented for every
//! type, so the derives have nothing to generate — they only need to
//! exist so `#[derive(Serialize, Deserialize)]` parses.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]` (blanket impl lives in the stub).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]` (blanket impl lives in the stub).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
