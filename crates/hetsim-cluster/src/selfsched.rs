//! Dynamic self-scheduling on the discrete-event core — the classic
//! alternative to the paper's static speed-proportional distribution.
//!
//! The paper's methodology rests on marked speeds being "used as a
//! constant parameter": data is distributed proportionally *once*, so
//! the balance is only as good as the speed estimates. A master–worker
//! self-scheduler needs no estimates: workers pull the next chunk when
//! they finish the previous one, paying a per-grant latency instead.
//! This module simulates both deterministically and lets the
//! `ablate-sched` study quantify the crossover: with accurate marked
//! speeds static wins (no grant traffic); as a node's true speed drifts
//! from its rating, dynamic scheduling overtakes it.

use crate::engine::Simulator;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Result of one scheduling simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// Time the last chunk completes.
    pub makespan: SimTime,
    /// Chunks executed per worker.
    pub chunks_per_worker: Vec<usize>,
    /// Work (flops) executed per worker.
    pub work_per_worker: Vec<f64>,
}

/// Static schedule: chunk `i` goes to the worker owning it under a
/// proportional split by *estimated* speeds; execution runs at *true*
/// speeds. Workers start all their chunks back-to-back at `t = 0`.
///
/// # Panics
/// Panics on empty inputs, non-positive speeds, or negative chunk work.
pub fn static_schedule(
    estimated_speeds_flops: &[f64],
    true_speeds_flops: &[f64],
    chunk_flops: &[f64],
) -> ScheduleOutcome {
    assert_eq!(
        estimated_speeds_flops.len(),
        true_speeds_flops.len(),
        "one true speed per estimate"
    );
    assert!(!estimated_speeds_flops.is_empty(), "need at least one worker");
    assert!(true_speeds_flops.iter().all(|&s| s > 0.0), "true speeds must be positive");
    assert!(chunk_flops.iter().all(|&w| w >= 0.0), "chunk work must be ≥ 0");

    let total_work: f64 = chunk_flops.iter().sum();
    let p = estimated_speeds_flops.len();
    let counts = hetpart_counts(chunk_flops.len(), estimated_speeds_flops);
    let mut chunks_per_worker = vec![0usize; p];
    let mut work_per_worker = vec![0.0f64; p];
    let mut cursor = 0usize;
    for (w, &count) in counts.iter().enumerate() {
        for _ in 0..count {
            chunks_per_worker[w] += 1;
            work_per_worker[w] += chunk_flops[cursor];
            cursor += 1;
        }
    }
    debug_assert_eq!(cursor, chunk_flops.len());
    let makespan =
        work_per_worker.iter().zip(true_speeds_flops).map(|(&w, &s)| w / s).fold(0.0f64, f64::max);
    let _ = total_work;
    ScheduleOutcome { makespan: SimTime::from_secs(makespan), chunks_per_worker, work_per_worker }
}

/// Largest-remainder apportionment (local copy: `hetpart` sits above
/// this crate in the dependency graph, and the six-line core is not
/// worth inverting the layering for).
fn hetpart_counts(n: usize, weights: &[f64]) -> Vec<usize> {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "estimated speeds must not all be zero");
    let ideal: Vec<f64> = weights.iter().map(|w| n as f64 * w / total).collect();
    let mut counts: Vec<usize> = ideal.iter().map(|x| x.floor() as usize).collect();
    let mut leftover = n - counts.iter().sum::<usize>();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = ideal[a] - ideal[a].floor();
        let fb = ideal[b] - ideal[b].floor();
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    for &i in &order {
        if leftover == 0 {
            break;
        }
        counts[i] += 1;
        leftover -= 1;
    }
    counts
}

/// Events of the self-scheduling simulation.
#[derive(Debug)]
enum Ev {
    /// Worker `w` is ready for its next chunk (initially, or after
    /// finishing one).
    Ready(usize),
}

/// Dynamic self-scheduling: a master hands out chunks in order; each
/// grant costs `grant_latency` (request + reply on the wire), then the
/// worker computes the chunk at its *true* speed and comes back.
/// Deterministic: simultaneous requests are served in event-scheduling
/// order (worker index at t = 0, completion order afterwards).
///
/// # Panics
/// Panics on empty workers, non-positive speeds or latency < 0.
pub fn dynamic_schedule(
    true_speeds_flops: &[f64],
    chunk_flops: &[f64],
    grant_latency: SimTime,
) -> ScheduleOutcome {
    assert!(!true_speeds_flops.is_empty(), "need at least one worker");
    assert!(true_speeds_flops.iter().all(|&s| s > 0.0), "true speeds must be positive");
    assert!(grant_latency.as_secs() >= 0.0, "grant latency must be ≥ 0");

    let p = true_speeds_flops.len();
    let mut sim: Simulator<Ev> = Simulator::new();
    for w in 0..p {
        sim.schedule(SimTime::ZERO, Ev::Ready(w));
    }
    let mut next_chunk = 0usize;
    let mut chunks_per_worker = vec![0usize; p];
    let mut work_per_worker = vec![0.0f64; p];
    let mut makespan = SimTime::ZERO;
    sim.run_to_completion(|now, ev, sched| {
        let Ev::Ready(w) = ev;
        if next_chunk >= chunk_flops.len() {
            return; // nothing left; worker retires
        }
        let work = chunk_flops[next_chunk];
        next_chunk += 1;
        chunks_per_worker[w] += 1;
        work_per_worker[w] += work;
        let compute = SimTime::from_secs(work / true_speeds_flops[w]);
        let done = now + grant_latency + compute;
        makespan = makespan.max(done);
        sched.schedule_at(done, Ev::Ready(w));
    });
    ScheduleOutcome { makespan, chunks_per_worker, work_per_worker }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_chunks(n: usize, flops: f64) -> Vec<f64> {
        vec![flops; n]
    }

    #[test]
    fn static_with_accurate_estimates_is_balanced() {
        let speeds = [9e7, 5e7, 11e7];
        let out = static_schedule(&speeds, &speeds, &uniform_chunks(250, 1e6));
        // All workers finish within one chunk-time of each other.
        let times: Vec<f64> =
            out.work_per_worker.iter().zip(&speeds).map(|(&w, &s)| w / s).collect();
        let spread = times.iter().fold(0.0f64, |m, &t| m.max(t))
            - times.iter().fold(f64::INFINITY, |m, &t| m.min(t));
        assert!(spread < 1e6 / 5e7, "spread {spread}");
    }

    #[test]
    fn static_with_a_stale_estimate_is_dragged_by_the_slow_node() {
        let estimated = [1e8, 1e8];
        // Node 1 actually runs at a quarter of its rating.
        let true_speeds = [1e8, 2.5e7];
        let out = static_schedule(&estimated, &true_speeds, &uniform_chunks(100, 1e6));
        // Node 1 got half the work but runs 4x slower: ~2 s vs 0.5 s.
        assert!((out.makespan.as_secs() - 2.0).abs() < 0.05, "{:?}", out.makespan);
    }

    #[test]
    fn dynamic_adapts_to_stale_estimates() {
        let true_speeds = [1e8, 2.5e7];
        let out = dynamic_schedule(&true_speeds, &uniform_chunks(100, 1e6), SimTime::ZERO);
        // Work splits ~4:1 by true speed; makespan near the ideal
        // 100e6 / 1.25e8 = 0.8 s.
        assert!((out.makespan.as_secs() - 0.8).abs() < 0.05, "makespan {:?}", out.makespan);
        assert!(out.chunks_per_worker[0] > 3 * out.chunks_per_worker[1]);
    }

    #[test]
    fn dynamic_beats_static_under_misestimation() {
        let estimated = [1e8, 1e8, 1e8, 1e8];
        let mut true_speeds = estimated;
        true_speeds[3] = 2e7; // one node degraded 5x
        let chunks = uniform_chunks(400, 1e6);
        let s = static_schedule(&estimated, &true_speeds, &chunks);
        let d = dynamic_schedule(&true_speeds, &chunks, SimTime::from_micros(100.0));
        assert!(
            d.makespan.as_secs() < 0.5 * s.makespan.as_secs(),
            "dynamic {:?} vs static {:?}",
            d.makespan,
            s.makespan
        );
    }

    #[test]
    fn static_beats_dynamic_when_estimates_are_accurate_and_grants_cost() {
        let speeds = [1e8, 1e8];
        let chunks = uniform_chunks(1000, 1e5); // small chunks: grant-heavy
        let s = static_schedule(&speeds, &speeds, &chunks);
        let d = dynamic_schedule(&speeds, &chunks, SimTime::from_millis(1.0));
        assert!(
            s.makespan < d.makespan,
            "static {:?} must beat dynamic {:?} (grant latency dominates)",
            s.makespan,
            d.makespan
        );
    }

    #[test]
    fn all_chunks_are_executed_exactly_once() {
        let speeds = [7e7, 3e7, 5e7];
        let chunks: Vec<f64> = (1..=57).map(|i| 1e5 * i as f64).collect();
        for out in [
            static_schedule(&speeds, &speeds, &chunks),
            dynamic_schedule(&speeds, &chunks, SimTime::from_micros(50.0)),
        ] {
            assert_eq!(out.chunks_per_worker.iter().sum::<usize>(), 57);
            let total: f64 = out.work_per_worker.iter().sum();
            let expected: f64 = chunks.iter().sum();
            assert!((total - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn dynamic_is_deterministic() {
        let speeds = [9e7, 5e7, 11e7, 4.5e7];
        let chunks: Vec<f64> = (0..200).map(|i| 1e5 * (1 + i % 7) as f64).collect();
        let a = dynamic_schedule(&speeds, &chunks, SimTime::from_micros(80.0));
        let b = dynamic_schedule(&speeds, &chunks, SimTime::from_micros(80.0));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_chunks_finish_instantly() {
        let speeds = [1e8];
        let out = dynamic_schedule(&speeds, &[], SimTime::from_millis(1.0));
        assert_eq!(out.makespan, SimTime::ZERO);
        assert_eq!(out.chunks_per_worker, vec![0]);
    }

    #[test]
    fn single_worker_executes_sequentially() {
        let out = dynamic_schedule(&[1e8], &uniform_chunks(10, 1e7), SimTime::ZERO);
        assert!((out.makespan.as_secs() - 1.0).abs() < 1e-12);
        assert_eq!(out.chunks_per_worker, vec![10]);
    }

    #[test]
    #[should_panic(expected = "true speeds must be positive")]
    fn zero_speed_rejected() {
        dynamic_schedule(&[0.0], &[1.0], SimTime::ZERO);
    }
}
