//! Deterministic fault injection: degraded nodes, lossy links, deaths.
//!
//! The isospeed-efficiency metric assumes every node delivers its marked
//! speed `Cᵢ` and every message arrives. Real heterogeneous clusters do
//! not cooperate: nodes throttle, links drop packets, machines die
//! mid-job. A [`FaultPlan`] describes such a degraded regime *ahead of
//! time*, as data, so a run under faults stays a pure function of
//! (marked speeds, payload sizes, network model, fault plan) — the
//! simulator's core determinism invariant survives intact. Three fault
//! families are modeled:
//!
//! * **Node degradation** — per-rank [`SpeedWindow`]s multiply the
//!   node's marked speed over virtual-time intervals (a straggler is an
//!   open-ended window, a brown-out a bounded one). Compute spans that
//!   cross window boundaries are integrated piecewise.
//! * **Lossy links** — every point-to-point send consults a seeded drop
//!   schedule; each dropped attempt costs `timeout + backoff` of virtual
//!   time (exponential backoff, capped), charged by the runtime as
//!   `OpKind::Retry` spans. Whether attempt `a` of message `k` on link
//!   `(s, d)` drops is a hash of `(seed, s, d, k, a)` — deterministic,
//!   schedule-independent, and independent across links and messages.
//! * **Declared deaths** — a rank marked dead never joins the run; the
//!   blocking SPMD runtime cannot lose a member mid-collective, so
//!   deaths are resolved *before* launch: [`FaultPlan::surviving_cluster`]
//!   shrinks the machine, `hetpart` repartitions the survivors by marked
//!   speed, and the run completes with honestly reduced `C`.
//!
//! * **MTBF failure streams** — [`FaultPlan::with_mtbf`] gives every
//!   rank a seeded exponential death time. Unlike declared deaths these
//!   fire *mid-run* and are handled by a [`RecoveryPolicy`]
//!   (checkpoint/restart with a Young/Daly-optimal interval baseline,
//!   or shrink-and-rebalance through `hetpart`); the recovery protocol
//!   and its determinism argument live in DESIGN.md §12.
//!
//! Retry exhaustion (more consecutive drops than the policy allows)
//! surfaces as the typed [`FaultError`] from
//! [`FaultPlan::send_retry_charge`], never as arithmetic corruption;
//! resolving deaths against a cluster they fully annihilate surfaces as
//! [`FaultError::AllRanksDead`].

use crate::cluster::ClusterSpec;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One interval of degraded marked speed for one rank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedWindow {
    /// Virtual time the degradation begins.
    pub start: SimTime,
    /// Virtual time it ends; `None` means it never recovers.
    pub end: Option<SimTime>,
    /// Factor applied to the node's marked speed inside the window.
    /// Must be finite and `> 0` (a truly dead node is a death, not a
    /// multiplier — zero would stall virtual time forever).
    pub multiplier: f64,
}

impl SpeedWindow {
    fn validate(&self) {
        assert!(
            self.multiplier.is_finite() && self.multiplier > 0.0,
            "speed multiplier must be finite and > 0 (got {})",
            self.multiplier
        );
        if let Some(end) = self.end {
            assert!(end > self.start, "speed window must end after it starts");
        }
    }

    fn end_secs(&self) -> f64 {
        self.end.map_or(f64::INFINITY, SimTime::as_secs)
    }
}

/// Retry/timeout/backoff semantics for lossy links.
///
/// A dropped attempt `i` (0-based) costs `timeout + min(backoff_base ·
/// 2ⁱ, backoff_max)` of the sender's virtual time before the next
/// attempt; the successful attempt then pays the normal network cost.
/// The total charge for `d` drops is therefore monotone in `d` and never
/// exceeds `d · (timeout + backoff_max)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retransmissions allowed after the first attempt; a message whose
    /// drop schedule exceeds this count exhausts its retries.
    pub max_retries: u32,
    /// Virtual time lost detecting each dropped attempt.
    pub timeout: SimTime,
    /// Backoff before the first retransmission; doubles per attempt.
    pub backoff_base: SimTime,
    /// Cap on the exponential backoff.
    pub backoff_max: SimTime,
}

impl Default for RetryPolicy {
    /// Generous defaults scaled to the Sunwulf interconnect (0.3 ms
    /// latency): exhaustion never occurs below ~99.9% drop rates.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 8,
            timeout: SimTime::from_millis(5.0),
            backoff_base: SimTime::from_millis(1.0),
            backoff_max: SimTime::from_millis(20.0),
        }
    }
}

impl RetryPolicy {
    fn validate(&self) {
        for (what, t) in [
            ("timeout", self.timeout),
            ("backoff_base", self.backoff_base),
            ("backoff_max", self.backoff_max),
        ] {
            assert!(t.is_finite() && t.as_secs() >= 0.0, "{what} must be finite and ≥ 0");
        }
    }

    /// Total virtual time charged for `failed_attempts` consecutive
    /// drops (not including the eventual successful transfer).
    pub fn charge_for(&self, failed_attempts: u32) -> SimTime {
        let mut total = SimTime::ZERO;
        let mut backoff = self.backoff_base;
        for _ in 0..failed_attempts {
            total += self.timeout + backoff.min(self.backoff_max);
            backoff = backoff + backoff;
        }
        total
    }
}

/// Typed fault-model failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultError {
    /// A message's drop schedule outlasted the retry policy.
    RetriesExhausted {
        /// Sending rank.
        source: usize,
        /// Destination rank.
        dest: usize,
        /// Per-link message index (0-based).
        msg_index: u64,
        /// Attempts made (`max_retries + 1`), all dropped.
        attempts: u32,
    },
    /// The plan declares every rank dead: no surviving cluster exists.
    AllRanksDead {
        /// Size of the cluster the plan was resolved against.
        cluster_size: usize,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::RetriesExhausted { source, dest, msg_index, attempts } => write!(
                f,
                "retries exhausted: message {msg_index} on link {source}->{dest} \
                 dropped on all {attempts} attempts"
            ),
            FaultError::AllRanksDead { cluster_size } => {
                write!(f, "fault plan kills every node of the {cluster_size}-rank cluster")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// How a run recovers from a mid-computation node death (DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Coordinated checkpoints every `interval_secs` of estimated
    /// progress; on a death the machine detects the failure, rolls back
    /// to the last checkpoint, and replays the lost work at full
    /// strength (the dead node restarts).
    CheckpointRestart {
        /// Virtual seconds of progress between coordinated checkpoints.
        interval_secs: f64,
    },
    /// No checkpoints: on a death the survivors detect the failure,
    /// drop the dead rank, repartition the remaining rows by surviving
    /// marked speed (`hetpart::rebalance`), and redo the dead rank's
    /// in-flight work on the shrunken machine.
    ShrinkRebalance,
}

impl RecoveryPolicy {
    /// Short stable label for tables and memo keys.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryPolicy::CheckpointRestart { .. } => "checkpoint-restart",
            RecoveryPolicy::ShrinkRebalance => "shrink-rebalance",
        }
    }
}

/// Fixed latency of one coordinated checkpoint, independent of size —
/// the coordination barrier plus the I/O setup cost.
pub const CHECKPOINT_LATENCY_SECS: f64 = 0.02;

/// Bandwidth of the checkpoint store. Deliberately of the same order as
/// the Sunwulf interconnect: checkpoints go to a shared filer, not to
/// node-local disk.
pub const CHECKPOINT_BANDWIDTH_BYTES_PER_SEC: f64 = 5.0e7;

/// Bandwidth at which repartition traffic moves during shrink-rebalance
/// recovery (survivors reload state over the shared interconnect).
pub const REBALANCE_BANDWIDTH_BYTES_PER_SEC: f64 = 1.25e7;

/// Default timeout of the heartbeat failure detector: how long the
/// survivors wait before declaring a silent rank dead.
pub const DETECT_TIMEOUT_SECS: f64 = 0.05;

/// Virtual-time cost of writing `bytes` of checkpoint state — the exact
/// float-op sequence the runtime's `checkpoint` op charges (latency
/// plus bytes over store bandwidth; see `hetsim-mpi`).
pub fn checkpoint_cost_secs(bytes: u64) -> f64 {
    CHECKPOINT_LATENCY_SECS + bytes as f64 / CHECKPOINT_BANDWIDTH_BYTES_PER_SEC
}

/// Young/Daly optimal checkpoint interval `sqrt(2 · δ · MTBF)` for a
/// per-checkpoint cost `delta_secs` and a system MTBF — the analytic
/// baseline the R2 sweep's measured optimum is checked against.
pub fn daly_interval(mtbf_secs: f64, delta_secs: f64) -> f64 {
    (2.0 * delta_secs * mtbf_secs).sqrt()
}

/// The virtual-time cost of a send's failed attempts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryCharge {
    /// Consecutive dropped attempts before the success.
    pub failed_attempts: u32,
    /// Total timeout + backoff time charged for them.
    pub total: SimTime,
}

/// A complete, seed-driven description of one faulty regime.
///
/// Plans are plain data: two runs with the same plan (and the same
/// program, cluster, and network model) produce bit-identical virtual
/// times, traces, and metrics. An empty plan (no degradations, zero
/// drop rate, no deaths) leaves every existing code path bit-equal to a
/// fault-free run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    degradations: BTreeMap<usize, Vec<SpeedWindow>>,
    drop_per_mille: u16,
    retry: RetryPolicy,
    deaths: BTreeMap<usize, SimTime>,
    mtbf_secs: Option<f64>,
}

impl FaultPlan {
    /// An empty plan: nothing degraded, nothing dropped, nobody dead.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            degradations: BTreeMap::new(),
            drop_per_mille: 0,
            retry: RetryPolicy::default(),
            deaths: BTreeMap::new(),
            mtbf_secs: None,
        }
    }

    /// Adds a degradation window for `rank`.
    ///
    /// # Panics
    /// Panics on an invalid window or one overlapping an existing
    /// window of the same rank.
    pub fn with_degradation(mut self, rank: usize, window: SpeedWindow) -> FaultPlan {
        window.validate();
        let windows = self.degradations.entry(rank).or_default();
        windows.push(window);
        windows.sort_by_key(|w| w.start);
        for pair in windows.windows(2) {
            assert!(
                pair[1].start.as_secs() >= pair[0].end_secs(),
                "overlapping speed windows for rank {rank}"
            );
        }
        self
    }

    /// Permanent straggler: `rank` runs at `multiplier × ` marked speed
    /// from time zero, forever.
    pub fn with_straggler(self, rank: usize, multiplier: f64) -> FaultPlan {
        self.with_degradation(rank, SpeedWindow { start: SimTime::ZERO, end: None, multiplier })
    }

    /// Brown-out: `rank` runs at `multiplier × ` marked speed over
    /// `[start, end)`.
    pub fn with_brownout(
        self,
        rank: usize,
        start: SimTime,
        end: SimTime,
        multiplier: f64,
    ) -> FaultPlan {
        self.with_degradation(rank, SpeedWindow { start, end: Some(end), multiplier })
    }

    /// Makes every point-to-point link drop each attempt with
    /// probability `per_mille / 1000` (independently, per the seeded
    /// schedule).
    ///
    /// # Panics
    /// Panics when `per_mille ≥ 1000` (a link that never delivers can
    /// never finish).
    pub fn with_link_drops(mut self, per_mille: u16) -> FaultPlan {
        assert!(per_mille < 1000, "drop rate must be < 1000 per mille");
        self.drop_per_mille = per_mille;
        self
    }

    /// Replaces the retry policy.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> FaultPlan {
        policy.validate();
        self.retry = policy;
        self
    }

    /// Declares `rank` dead as of virtual time `at`. Deaths are resolved
    /// before launch (see the module docs): the dead rank is excluded by
    /// [`FaultPlan::surviving_cluster`] and its work repartitioned.
    pub fn with_death(mut self, rank: usize, at: SimTime) -> FaultPlan {
        self.deaths.insert(rank, at);
        self
    }

    /// Turns on the MTBF-driven failure stream: each rank draws one
    /// exponential death time with the given mean from the plan seed
    /// (see [`FaultPlan::sampled_death_time`]). Sampled deaths are
    /// *mid-run* events handled by a [`RecoveryPolicy`], unlike the
    /// declared deaths of [`FaultPlan::with_death`] which are resolved
    /// before launch.
    ///
    /// # Panics
    /// Panics unless `mtbf_secs` is finite and `> 0`.
    pub fn with_mtbf(mut self, mtbf_secs: f64) -> FaultPlan {
        assert!(mtbf_secs.is_finite() && mtbf_secs > 0.0, "MTBF must be finite and > 0");
        self.mtbf_secs = Some(mtbf_secs);
        self
    }

    /// The MTBF of the sampled failure stream, if one is configured.
    pub fn mtbf_secs(&self) -> Option<f64> {
        self.mtbf_secs
    }

    /// The seeded exponential death time of `rank`, or `None` when no
    /// MTBF stream is configured. Pure in `(seed, rank, mtbf)`: the
    /// inverse-CDF transform of a [`mix64`]-derived uniform in `(0, 1]`,
    /// so the stream is deterministic, seed-sensitive, and independent
    /// across ranks — and domain-separated from the link-drop schedule.
    pub fn sampled_death_time(&self, rank: usize) -> Option<SimTime> {
        let mtbf = self.mtbf_secs?;
        // Distinct stream tag keeps death rolls off the drop schedule.
        let h = mix64(
            mix64(self.seed ^ 0xdead_5eed_0f01_d1e5) ^ (rank as u64).wrapping_mul(0x9e37_79b9),
        );
        // 53 high bits → uniform in (0, 1]; u = 0 is impossible, so the
        // log below is always finite.
        let u = ((h >> 11) as f64 + 1.0) / 9_007_199_254_740_992.0;
        Some(SimTime::from_secs(-mtbf * u.ln()))
    }

    /// The first sampled death among `p` ranks: `(rank, time)` of the
    /// earliest exponential draw (ties break to the lower rank), or
    /// `None` when no MTBF stream is configured.
    pub fn first_sampled_death(&self, p: usize) -> Option<(usize, SimTime)> {
        (0..p).filter_map(|r| self.sampled_death_time(r).map(|t| (r, t))).min_by(|a, b| {
            a.1.partial_cmp(&b.1).expect("death times are finite").then(a.0.cmp(&b.0))
        })
    }

    /// The seed driving the drop schedule.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Link drop probability in per-mille.
    pub fn drop_per_mille(&self) -> u16 {
        self.drop_per_mille
    }

    /// The retry policy in force.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Declared deaths: rank → death time.
    pub fn deaths(&self) -> &BTreeMap<usize, SimTime> {
        &self.deaths
    }

    /// Structural identity for memoization keys: every field the runtime
    /// reads, flattened to words (floats as `to_bits`, maps in key
    /// order). Two plans with equal fingerprints charge identical
    /// degradation and retry time to any program.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut fp = vec![
            self.seed,
            self.drop_per_mille as u64,
            self.retry.max_retries as u64,
            self.retry.timeout.as_secs().to_bits(),
            self.retry.backoff_base.as_secs().to_bits(),
            self.retry.backoff_max.as_secs().to_bits(),
        ];
        for (&rank, windows) in &self.degradations {
            for w in windows {
                fp.push(rank as u64);
                fp.push(w.start.as_secs().to_bits());
                fp.push(w.end.map_or(u64::MAX, |e| e.as_secs().to_bits()));
                fp.push(w.multiplier.to_bits());
            }
        }
        for (&rank, &at) in &self.deaths {
            fp.push(u64::MAX);
            fp.push(rank as u64);
            fp.push(at.as_secs().to_bits());
        }
        if let Some(mtbf) = self.mtbf_secs {
            fp.push(u64::MAX - 1);
            fp.push(mtbf.to_bits());
        }
        fp
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.degradations.values().all(Vec::is_empty)
            && self.drop_per_mille == 0
            && self.deaths.is_empty()
            && self.mtbf_secs.is_none()
    }

    /// The degradation windows of `rank`, sorted by start; `None` when
    /// the rank is undegraded (callers use this to keep the fault-free
    /// arithmetic path untouched).
    pub fn windows_for(&self, rank: usize) -> Option<&[SpeedWindow]> {
        match self.degradations.get(&rank) {
            Some(w) if !w.is_empty() => Some(w),
            _ => None,
        }
    }

    /// End of a compute span of `flops` starting at `start` on a node of
    /// nominal speed `speed_flops`, integrating the rank's degradation
    /// windows piecewise. Without windows this is exactly
    /// `start + flops / speed_flops`.
    pub fn degraded_compute_end(
        &self,
        rank: usize,
        start: SimTime,
        flops: f64,
        speed_flops: f64,
    ) -> SimTime {
        match self.windows_for(rank) {
            Some(windows) => degraded_end(windows, start, flops, speed_flops),
            None => start + SimTime::from_secs(flops / speed_flops),
        }
    }

    /// Number of consecutive dropped attempts the schedule assigns to
    /// message `msg_index` on link `source → dest`, capped at
    /// `max_retries + 1` (the exhaustion threshold).
    pub fn planned_drops(&self, source: usize, dest: usize, msg_index: u64) -> u32 {
        if self.drop_per_mille == 0 {
            return 0;
        }
        let threshold = self.drop_per_mille as u64;
        let cap = self.retry.max_retries + 1;
        let mut drops = 0u32;
        while drops < cap
            && attempt_roll(self.seed, source, dest, msg_index, drops) % 1000 < threshold
        {
            drops += 1;
        }
        drops
    }

    /// The virtual-time retry charge for one send, or the typed error
    /// when the drop schedule exhausts the retry budget.
    pub fn send_retry_charge(
        &self,
        source: usize,
        dest: usize,
        msg_index: u64,
    ) -> Result<RetryCharge, FaultError> {
        let drops = self.planned_drops(source, dest, msg_index);
        if drops > self.retry.max_retries {
            return Err(FaultError::RetriesExhausted { source, dest, msg_index, attempts: drops });
        }
        Ok(RetryCharge { failed_attempts: drops, total: self.retry.charge_for(drops) })
    }

    /// Original rank indices still alive out of `p` ranks.
    pub fn survivors(&self, p: usize) -> Vec<usize> {
        (0..p).filter(|r| !self.deaths.contains_key(r)).collect()
    }

    /// The cluster with every declared-dead rank removed. Returns the
    /// cluster unchanged when nobody died.
    ///
    /// # Errors
    /// [`FaultError::AllRanksDead`] when the plan kills every node.
    pub fn surviving_cluster(&self, cluster: &ClusterSpec) -> Result<ClusterSpec, FaultError> {
        let keep = self.survivors(cluster.size());
        if keep.len() == cluster.size() {
            return Ok(cluster.clone());
        }
        if keep.is_empty() {
            return Err(FaultError::AllRanksDead { cluster_size: cluster.size() });
        }
        Ok(ClusterSpec::new(
            format!("{}-survivors", cluster.label),
            keep.iter().map(|&i| cluster.nodes()[i].clone()).collect(),
        )
        .expect("survivor list is non-empty"))
    }

    /// The plan re-expressed for the surviving ranks: deaths cleared,
    /// degradation windows re-keyed to the survivors' compacted rank
    /// ids (entries for dead ranks dropped). Use together with
    /// [`FaultPlan::surviving_cluster`] before launching the degraded
    /// run.
    pub fn for_survivors(&self, p: usize) -> FaultPlan {
        let keep = self.survivors(p);
        let degradations = keep
            .iter()
            .enumerate()
            .filter_map(|(new_id, &old_id)| {
                self.degradations
                    .get(&old_id)
                    .filter(|w| !w.is_empty())
                    .map(|w| (new_id, w.clone()))
            })
            .collect();
        FaultPlan {
            seed: self.seed,
            degradations,
            drop_per_mille: self.drop_per_mille,
            retry: self.retry,
            deaths: BTreeMap::new(),
            mtbf_secs: self.mtbf_secs,
        }
    }
}

/// Piecewise integration of `flops` of work starting at `start` against
/// sorted, non-overlapping degradation `windows` over a nominal speed.
/// Outside every window the multiplier is 1. Used by the runtime's
/// fault-aware compute path (`hetsim-mpi`), taking the window slice from
/// [`FaultPlan::windows_for`].
pub fn degraded_end(
    windows: &[SpeedWindow],
    start: SimTime,
    flops: f64,
    speed_flops: f64,
) -> SimTime {
    let mut t = start.as_secs();
    let mut remaining = flops;
    loop {
        // Active multiplier at t, and the next boundary after t.
        let mut multiplier = 1.0;
        let mut next = f64::INFINITY;
        for w in windows {
            let ws = w.start.as_secs();
            let we = w.end_secs();
            if t >= ws && t < we {
                multiplier = w.multiplier;
                next = next.min(we);
            } else if ws > t {
                next = next.min(ws);
            }
        }
        let speed = speed_flops * multiplier;
        if next.is_infinite() {
            t += remaining / speed;
            break;
        }
        let capacity = speed * (next - t);
        if remaining <= capacity {
            t += remaining / speed;
            break;
        }
        remaining -= capacity;
        t = next;
    }
    SimTime::from_secs(t)
}

/// Stateless 64-bit mix (Murmur3 finalizer): the only source of
/// "randomness" behind both seeded schedules — link drops
/// ([`attempt_roll`]) and MTBF death times
/// ([`FaultPlan::sampled_death_time`]).
fn mix64(mut z: u64) -> u64 {
    z ^= z >> 33;
    z = z.wrapping_mul(0xff51_afd7_ed55_8ccd);
    z ^= z >> 33;
    z = z.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^= z >> 33;
    z
}

/// Drop roll keyed on the full attempt identity: whether attempt `a` of
/// message `k` on link `(s, d)` drops is independent across all four.
fn attempt_roll(seed: u64, source: usize, dest: usize, msg_index: u64, attempt: u32) -> u64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for v in [source as u64, dest as u64, msg_index, attempt as u64] {
        h = mix64(h ^ v.wrapping_add(0x2545_f491_4f6c_dd1d));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_charges_nothing() {
        let plan = FaultPlan::new(7);
        assert!(plan.is_empty());
        assert_eq!(plan.planned_drops(0, 1, 0), 0);
        let charge = plan.send_retry_charge(0, 1, 0).unwrap();
        assert_eq!(charge.failed_attempts, 0);
        assert_eq!(charge.total, SimTime::ZERO);
        assert!(plan.windows_for(0).is_none());
    }

    #[test]
    fn undegraded_rank_end_is_exactly_nominal() {
        // Bit-equality, not approximate equality: the fault-free path
        // must reproduce the baseline arithmetic operation-for-operation.
        let plan = FaultPlan::new(1).with_straggler(2, 0.5);
        let start = SimTime::from_secs(0.1);
        let end = plan.degraded_compute_end(0, start, 1e8, 7e7);
        assert_eq!(end, start + SimTime::from_secs(1e8 / 7e7));
    }

    #[test]
    fn straggler_halves_speed_forever() {
        let plan = FaultPlan::new(1).with_straggler(0, 0.5);
        // 1e8 flop at 1e8 flop/s nominal = 1 s; at half speed 2 s.
        let end = plan.degraded_compute_end(0, SimTime::ZERO, 1e8, 1e8);
        assert!((end.as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn brownout_integrates_piecewise() {
        // Half speed over [1, 2): 1 s of work before the window, 0.5 s
        // of work inside costs 1 s, remaining 0.5 s after → ends at 3.0
        // for 2 s of nominal work starting at 0.5.
        let plan = FaultPlan::new(1).with_brownout(
            0,
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
            0.5,
        );
        let end = plan.degraded_compute_end(0, SimTime::from_secs(0.5), 2e8, 1e8);
        assert!((end.as_secs() - 3.0).abs() < 1e-12, "end = {}", end.as_secs());
    }

    #[test]
    fn compute_entirely_after_brownout_is_nominal_speed() {
        let plan = FaultPlan::new(1).with_brownout(
            0,
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
            0.5,
        );
        let end = plan.degraded_compute_end(0, SimTime::from_secs(5.0), 1e8, 1e8);
        assert!((end.as_secs() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn windows_merge_sorted_and_reject_overlap() {
        let plan = FaultPlan::new(1)
            .with_brownout(0, SimTime::from_secs(2.0), SimTime::from_secs(3.0), 0.5)
            .with_brownout(0, SimTime::from_secs(0.0), SimTime::from_secs(1.0), 0.25);
        let windows = plan.windows_for(0).unwrap();
        assert_eq!(windows.len(), 2);
        assert!(windows[0].start < windows[1].start);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_windows_panic() {
        let _ = FaultPlan::new(1)
            .with_brownout(0, SimTime::from_secs(0.0), SimTime::from_secs(2.0), 0.5)
            .with_brownout(0, SimTime::from_secs(1.0), SimTime::from_secs(3.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn zero_multiplier_is_rejected() {
        let _ = FaultPlan::new(1).with_straggler(0, 0.0);
    }

    #[test]
    fn drop_schedule_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(42).with_link_drops(500);
        let b = FaultPlan::new(42).with_link_drops(500);
        let c = FaultPlan::new(43).with_link_drops(500);
        let schedule =
            |p: &FaultPlan| (0..64).map(|k| p.planned_drops(0, 1, k)).collect::<Vec<_>>();
        assert_eq!(schedule(&a), schedule(&b));
        assert_ne!(schedule(&a), schedule(&c), "different seeds should differ somewhere");
        // At 50% some messages must drop and some must not.
        assert!(schedule(&a).iter().any(|&d| d > 0));
        assert!(schedule(&a).contains(&0));
    }

    #[test]
    fn drop_rate_scales_with_per_mille() {
        let count = |per_mille: u16| {
            let plan = FaultPlan::new(9).with_link_drops(per_mille);
            (0..1000).filter(|&k| plan.planned_drops(0, 1, k) > 0).count()
        };
        let light = count(50);
        let heavy = count(500);
        assert!(light < heavy, "light {light} vs heavy {heavy}");
        assert!((400..600).contains(&heavy), "≈50% expected, got {heavy}/1000");
    }

    #[test]
    fn exhaustion_surfaces_typed_error() {
        let plan = FaultPlan::new(3)
            .with_link_drops(999)
            .with_retry_policy(RetryPolicy { max_retries: 0, ..RetryPolicy::default() });
        // With a 99.9% drop rate and zero retries, some message on the
        // link must exhaust.
        let err = (0..64)
            .find_map(|k| plan.send_retry_charge(0, 1, k).err())
            .expect("an exhausted message");
        let FaultError::RetriesExhausted { source, dest, attempts, .. } = err else {
            panic!("expected RetriesExhausted, got {err:?}");
        };
        assert_eq!((source, dest), (0, 1));
        assert_eq!(attempts, 1);
        assert!(err.to_string().contains("retries exhausted"));
    }

    #[test]
    fn survivors_and_surviving_cluster() {
        let plan = FaultPlan::new(1).with_death(1, SimTime::ZERO);
        let cluster = ClusterSpec::homogeneous(3, 50.0);
        assert_eq!(plan.survivors(3), vec![0, 2]);
        let surv = plan.surviving_cluster(&cluster).unwrap();
        assert_eq!(surv.size(), 2);
        assert_eq!(surv.marked_speed_mflops(), 100.0);
        // Killing everyone is an error.
        let all_dead = FaultPlan::new(1)
            .with_death(0, SimTime::ZERO)
            .with_death(1, SimTime::ZERO)
            .with_death(2, SimTime::ZERO);
        assert!(all_dead.surviving_cluster(&cluster).is_err());
    }

    #[test]
    fn for_survivors_rekeys_degradations() {
        let plan = FaultPlan::new(1)
            .with_death(0, SimTime::ZERO)
            .with_straggler(2, 0.5)
            .with_link_drops(100);
        let remapped = plan.for_survivors(3);
        assert!(remapped.deaths().is_empty());
        // Old rank 2 is new rank 1 (survivors are [1, 2]).
        assert!(remapped.windows_for(1).is_some());
        assert!(remapped.windows_for(0).is_none());
        assert_eq!(remapped.drop_per_mille(), 100);
    }

    // Deterministic grid versions of the retry-math bounds; the
    // randomized (proptest) counterparts live in tests/fault_properties.rs.
    #[test]
    fn retry_charge_is_monotone_and_bounded_on_a_grid() {
        for (timeout_ms, base_ms, max_ms) in
            [(0.0, 0.0, 0.0), (5.0, 1.0, 20.0), (2.0, 10.0, 4.0), (7.5, 0.0, 100.0)]
        {
            let policy = RetryPolicy {
                max_retries: 32,
                timeout: SimTime::from_millis(timeout_ms),
                backoff_base: SimTime::from_millis(base_ms),
                backoff_max: SimTime::from_millis(max_ms),
            };
            let mut prev = SimTime::ZERO;
            for drops in 0u32..32 {
                let charge = policy.charge_for(drops);
                assert!(charge >= prev, "charge must be monotone in drop count");
                let bound = drops as f64 * (policy.timeout + policy.backoff_max).as_secs();
                assert!(
                    charge.as_secs() <= bound + 1e-12,
                    "charge {} exceeds bound {bound}",
                    charge.as_secs()
                );
                prev = charge;
            }
        }
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let policy = RetryPolicy {
            max_retries: 8,
            timeout: SimTime::ZERO,
            backoff_base: SimTime::from_millis(1.0),
            backoff_max: SimTime::from_millis(4.0),
        };
        // Backoffs: 1, 2, 4, 4, 4 ms → cumulative 1, 3, 7, 11, 15 ms.
        let expected = [0.0, 1.0, 3.0, 7.0, 11.0, 15.0];
        for (drops, ms) in expected.iter().enumerate() {
            assert!(
                (policy.charge_for(drops as u32).as_millis() - ms).abs() < 1e-12,
                "drops = {drops}"
            );
        }
    }

    #[test]
    fn mtbf_stream_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(42).with_mtbf(100.0);
        let b = FaultPlan::new(42).with_mtbf(100.0);
        let c = FaultPlan::new(43).with_mtbf(100.0);
        let stream =
            |p: &FaultPlan| (0..16).map(|r| p.sampled_death_time(r).unwrap()).collect::<Vec<_>>();
        assert_eq!(stream(&a), stream(&b));
        assert_ne!(stream(&a), stream(&c), "different seeds should differ somewhere");
        assert!(stream(&a).iter().all(|t| t.is_finite() && t.as_secs() > 0.0));
        // No MTBF ⇒ no stream.
        assert!(FaultPlan::new(42).sampled_death_time(0).is_none());
        assert!(FaultPlan::new(42).first_sampled_death(16).is_none());
    }

    #[test]
    fn mtbf_draws_have_roughly_exponential_mean() {
        // Sample mean over many ranks should land near the MTBF; the
        // draws are fixed by the seed so this is a deterministic check,
        // not a statistical one.
        let mtbf = 50.0;
        let plan = FaultPlan::new(7).with_mtbf(mtbf);
        let n = 4096;
        let sum: f64 = (0..n).map(|r| plan.sampled_death_time(r).unwrap().as_secs()).sum();
        let mean = sum / n as f64;
        assert!((mean - mtbf).abs() / mtbf < 0.1, "mean {mean} vs mtbf {mtbf}");
    }

    #[test]
    fn first_sampled_death_is_the_minimum() {
        let plan = FaultPlan::new(11).with_mtbf(30.0);
        let (rank, at) = plan.first_sampled_death(8).unwrap();
        for r in 0..8 {
            assert!(plan.sampled_death_time(r).unwrap() >= at, "rank {r} dies before {rank}");
        }
        assert_eq!(plan.sampled_death_time(rank).unwrap(), at);
    }

    #[test]
    fn mtbf_extends_fingerprint_and_emptiness() {
        let base = FaultPlan::new(5);
        let with = FaultPlan::new(5).with_mtbf(120.0);
        assert!(base.is_empty());
        assert!(!with.is_empty());
        assert_ne!(base.fingerprint(), with.fingerprint());
        assert_ne!(with.fingerprint(), FaultPlan::new(5).with_mtbf(121.0).fingerprint());
        // for_survivors carries the stream along.
        assert_eq!(with.for_survivors(4).mtbf_secs(), Some(120.0));
    }

    #[test]
    fn all_ranks_dead_is_typed() {
        let cluster = ClusterSpec::homogeneous(2, 50.0);
        let plan = FaultPlan::new(1).with_death(0, SimTime::ZERO).with_death(1, SimTime::ZERO);
        let err = plan.surviving_cluster(&cluster).unwrap_err();
        assert_eq!(err, FaultError::AllRanksDead { cluster_size: 2 });
        assert!(err.to_string().contains("kills every node"));
    }

    #[test]
    fn daly_interval_matches_closed_form() {
        // sqrt(2 · δ · MTBF): δ = 2 s, MTBF = 100 s ⇒ 20 s.
        assert!((daly_interval(100.0, 2.0) - 20.0).abs() < 1e-12);
        // Longer MTBF ⇒ sparser checkpoints; costlier checkpoints too.
        assert!(daly_interval(400.0, 2.0) > daly_interval(100.0, 2.0));
        assert!(daly_interval(100.0, 8.0) > daly_interval(100.0, 2.0));
    }

    #[test]
    fn checkpoint_cost_is_latency_plus_transfer() {
        assert_eq!(checkpoint_cost_secs(0), CHECKPOINT_LATENCY_SECS);
        let bytes = 1_000_000u64;
        let expected = CHECKPOINT_LATENCY_SECS + bytes as f64 / CHECKPOINT_BANDWIDTH_BYTES_PER_SEC;
        assert_eq!(checkpoint_cost_secs(bytes), expected);
    }

    #[test]
    fn recovery_policy_labels_are_stable() {
        assert_eq!(
            RecoveryPolicy::CheckpointRestart { interval_secs: 5.0 }.label(),
            "checkpoint-restart"
        );
        assert_eq!(RecoveryPolicy::ShrinkRebalance.label(), "shrink-rebalance");
    }

    #[test]
    fn degraded_end_composes_across_a_split() {
        // Splitting a compute span at any point lands at the same end
        // time: the integrator conserves work.
        let plan = FaultPlan::new(1).with_brownout(
            0,
            SimTime::from_secs(0.5),
            SimTime::from_secs(1.5),
            0.3,
        );
        let speed = 1e8;
        for split in [0.0, 0.1, 0.37, 0.5, 0.93, 1.0] {
            let flops = 2.4e8;
            let whole = plan.degraded_compute_end(0, SimTime::ZERO, flops, speed);
            let first = plan.degraded_compute_end(0, SimTime::ZERO, flops * split, speed);
            let both = plan.degraded_compute_end(0, first, flops * (1.0 - split), speed);
            assert!(
                (whole.as_secs() - both.as_secs()).abs() < 1e-9,
                "split {split}: whole {} vs split {}",
                whole.as_secs(),
                both.as_secs()
            );
        }
    }
}
