//! Reconstructed Sunwulf cluster, the paper's experimental platform.
//!
//! Sunwulf (Scalable Computing Software laboratory, IIT) consists of one
//! SunFire server node with four 480 MHz CPUs, 64 SunBlade nodes
//! (1 × 500 MHz CPU, 128 MB), and 20 SunFire V210 nodes (2 × 1 GHz CPUs,
//! 2 GB), on 100 Mb Ethernet under MPICH.
//!
//! The published table of NPB-measured marked speeds is not legible in
//! the surviving copy of the paper, so the constants below are
//! *reconstructions* chosen to be consistent with the hardware era and
//! with every worked example that does survive (see EXPERIMENTS.md).
//! Because the scalability function ψ is a ratio of `C·W` products, the
//! qualitative results (ψ < 1, MM more scalable than GE, prediction ≈
//! measurement) are insensitive to the exact scalars.

use crate::cluster::ClusterSpec;
use crate::network::MpichEthernet;
use crate::node::{NodeKind, NodeSpec};

/// Marked speed of one server-node CPU (480 MHz UltraSPARC II), Mflop/s.
pub const SERVER_CPU_MFLOPS: f64 = 45.0;
/// Marked speed of a SunBlade node (500 MHz), Mflop/s.
pub const SUNBLADE_MFLOPS: f64 = 50.0;
/// Marked speed of one SunFire V210 CPU (1 GHz), Mflop/s.
pub const V210_CPU_MFLOPS: f64 = 110.0;

/// The server node restricted to `cpus` of its four CPUs.
///
/// # Panics
/// Panics if `cpus` is 0 or greater than 4.
pub fn server_node(cpus: u32) -> NodeSpec {
    assert!((1..=4).contains(&cpus), "server node has 4 CPUs");
    NodeSpec::new("sunwulf", NodeKind::SunFireServer, SERVER_CPU_MFLOPS * cpus as f64, cpus, 4096)
        .expect("server node constants are valid")
}

/// SunBlade compute node `hpc-<index>` (1 ≤ index ≤ 64).
pub fn sunblade_node(index: u32) -> NodeSpec {
    NodeSpec::new(format!("hpc-{index}"), NodeKind::SunBlade, SUNBLADE_MFLOPS, 1, 128)
        .expect("SunBlade constants are valid")
}

/// SunFire V210 node `hpc-<index>` (65 ≤ index ≤ 84) with `cpus` ∈ {1, 2}.
///
/// # Panics
/// Panics if `cpus` is 0 or greater than 2.
pub fn v210_node(index: u32, cpus: u32) -> NodeSpec {
    assert!((1..=2).contains(&cpus), "V210 has 2 CPUs");
    NodeSpec::new(
        format!("hpc-{index}"),
        NodeKind::SunFireV210,
        V210_CPU_MFLOPS * cpus as f64,
        cpus,
        2048,
    )
    .expect("V210 constants are valid")
}

/// The GE experiment ladder (§4.4.1): `p` nodes where one node is the
/// server (with two CPUs) and the rest are SunBlades.
///
/// # Panics
/// Panics when `p < 2` (the experiment starts at two nodes).
pub fn ge_config(p: usize) -> ClusterSpec {
    assert!(p >= 2, "GE ladder starts at two nodes");
    let mut nodes = vec![server_node(2)];
    for i in 0..p - 1 {
        nodes.push(sunblade_node(40 + i as u32));
    }
    ClusterSpec::new(format!("sunwulf-ge-{p}"), nodes).expect("non-empty")
}

/// The MM experiment ladder (§4.4.2): `p` nodes, one of which is the
/// server (one CPU); of the rest, half are SunBlades and half are
/// single-CPU SunFire V210s. For `p = 8`: one server, three SunBlades and
/// four V210s, matching the paper's worked example.
///
/// # Panics
/// Panics when `p < 2`.
pub fn mm_config(p: usize) -> ClusterSpec {
    assert!(p >= 2, "MM ladder starts at two nodes");
    let mut nodes = vec![server_node(1)];
    let rest = p - 1;
    let v210s = p / 2; // half the nodes, as in the paper
    let blades = rest - v210s;
    for i in 0..blades {
        nodes.push(sunblade_node(1 + i as u32));
    }
    for i in 0..v210s {
        nodes.push(v210_node(65 + i as u32, 1));
    }
    ClusterSpec::new(format!("sunwulf-mm-{p}"), nodes).expect("non-empty")
}

/// The Sunwulf interconnect: MPICH over switched 100 Mb Ethernet.
///
/// Model choices, each anchored in the paper's §4.5 calibration:
/// latency α = 0.30 ms per message (MPICH-era software overhead; lands
/// the two-node GE experiment at the paper's required `N ≈ 310` for
/// `E_s = 0.3`); broadcast latency linear in `log p` (the paper fits
/// `T_bcast ≈ a·log p + b`); barrier linear in `p` (MPICH-1's linear
/// gather-and-release); and an *effective* throughput β = 100 MB/s — the
/// per-element `T_send` slope the paper's measurements imply, which on a
/// full-duplex switched fabric with eager-protocol overlap sits above
/// the naive 12.5 MB/s wire rate. The wire-rate regime (where the
/// MM-vs-GE scalability ordering inverts!) is studied in ablation A2;
/// see EXPERIMENTS.md for the full discussion.
pub fn sunwulf_network() -> MpichEthernet {
    MpichEthernet::new(0.30e-3, 1.0e8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_node_speed_scales_with_cpus() {
        assert_eq!(server_node(1).marked_speed_mflops, SERVER_CPU_MFLOPS);
        assert_eq!(server_node(2).marked_speed_mflops, 2.0 * SERVER_CPU_MFLOPS);
        assert_eq!(server_node(4).marked_speed_mflops, 4.0 * SERVER_CPU_MFLOPS);
    }

    #[test]
    #[should_panic(expected = "server node has 4 CPUs")]
    fn server_node_rejects_five_cpus() {
        server_node(5);
    }

    #[test]
    fn ge_config_composition() {
        // Two nodes: server (2 CPUs) + one SunBlade, as in §4.4.1.
        let c2 = ge_config(2);
        assert_eq!(c2.size(), 2);
        assert_eq!(c2.count_kind(NodeKind::SunFireServer), 1);
        assert_eq!(c2.count_kind(NodeKind::SunBlade), 1);
        assert_eq!(c2.marked_speed_mflops(), 2.0 * SERVER_CPU_MFLOPS + SUNBLADE_MFLOPS);

        let c32 = ge_config(32);
        assert_eq!(c32.size(), 32);
        assert_eq!(c32.count_kind(NodeKind::SunBlade), 31);
    }

    #[test]
    fn mm_config_matches_papers_eight_node_example() {
        // "one server node, three SunBlade compute nodes and four SunFire
        // V210 compute nodes".
        let c8 = mm_config(8);
        assert_eq!(c8.size(), 8);
        assert_eq!(c8.count_kind(NodeKind::SunFireServer), 1);
        assert_eq!(c8.count_kind(NodeKind::SunBlade), 3);
        assert_eq!(c8.count_kind(NodeKind::SunFireV210), 4);
    }

    #[test]
    fn mm_config_is_heterogeneous_at_every_rung() {
        for p in [2, 4, 8, 16, 32] {
            let c = mm_config(p);
            assert_eq!(c.size(), p);
            assert!(!c.is_homogeneous(), "p = {p} should be heterogeneous");
        }
    }

    #[test]
    fn ladder_marked_speed_is_monotone() {
        let mut prev = 0.0;
        for p in [2, 4, 8, 16, 32] {
            let c = ge_config(p).marked_speed_mflops();
            assert!(c > prev, "C must grow with the ladder");
            prev = c;
        }
    }

    #[test]
    fn v210_node_cpu_options() {
        assert_eq!(v210_node(65, 1).marked_speed_mflops, V210_CPU_MFLOPS);
        assert_eq!(v210_node(65, 2).marked_speed_mflops, 2.0 * V210_CPU_MFLOPS);
    }

    #[test]
    fn papers_worked_marked_speed_example_shape() {
        // §4.3: server (1 CPU) + one SunBlade + two 1-CPU V210s. With the
        // reconstructed constants the sum is just Σ Cᵢ; the check here is
        // the composition rule, not the absolute value.
        let nodes = vec![server_node(1), sunblade_node(1), v210_node(65, 1), v210_node(66, 1)];
        let c = ClusterSpec::new("example", nodes).unwrap();
        assert_eq!(
            c.marked_speed_mflops(),
            SERVER_CPU_MFLOPS + SUNBLADE_MFLOPS + 2.0 * V210_CPU_MFLOPS
        );
    }
}
