//! Segmented (multi-switch) network topology.
//!
//! Real installations of Sunwulf's era rarely hung 85 nodes off one
//! switch: nodes were grouped into segments joined by uplinks, making
//! communication cost depend on *where* a rank sits. This module adds
//! that dimension: a [`SegmentedNetwork`] prices intra-segment traffic
//! with one flat model and anything crossing segments with another
//! (typically slower) one. Point-to-point costs are fully
//! endpoint-aware; collectives — whose trait signature is
//! endpoint-blind — are priced conservatively with the uplink model
//! whenever the participating rank range spans more than one segment.
//!
//! The placement ablation (`ablate-place`) uses this to show that the
//! isospeed-efficiency metric correctly charges a *system* for bad node
//! placement: same nodes, same marked speed `C`, different ψ.

use crate::network::NetworkModel;
use serde::{Deserialize, Serialize};

/// A two-tier network: `local` within a segment, `uplink` across.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentedNetwork<L, U> {
    /// Segment id of each rank (length = cluster size).
    segment_of: Vec<usize>,
    /// Cost model for intra-segment traffic.
    pub local: L,
    /// Cost model for inter-segment traffic.
    pub uplink: U,
}

impl<L: NetworkModel, U: NetworkModel> SegmentedNetwork<L, U> {
    /// Creates a segmented network from a rank→segment map.
    ///
    /// # Panics
    /// Panics when `segment_of` is empty.
    pub fn new(segment_of: Vec<usize>, local: L, uplink: U) -> Self {
        assert!(!segment_of.is_empty(), "need at least one rank");
        SegmentedNetwork { segment_of, local, uplink }
    }

    /// Builds the map for `p` ranks split into `segments` equal,
    /// contiguous groups (the "racked in order" layout).
    pub fn contiguous(p: usize, segments: usize, local: L, uplink: U) -> Self {
        assert!(segments > 0 && p > 0, "need ranks and segments");
        let per = p.div_ceil(segments);
        let map = (0..p).map(|r| r / per).collect();
        Self::new(map, local, uplink)
    }

    /// Segment of a rank.
    ///
    /// # Panics
    /// Panics when `rank` is out of range.
    pub fn segment_of(&self, rank: usize) -> usize {
        self.segment_of[rank]
    }

    /// True when ranks `0..p` all sit in one segment.
    fn first_p_local(&self, p: usize) -> bool {
        let p = p.min(self.segment_of.len());
        self.segment_of[..p].windows(2).all(|w| w[0] == w[1])
    }
}

impl<L: NetworkModel, U: NetworkModel> NetworkModel for SegmentedNetwork<L, U> {
    fn p2p_time(&self, bytes: u64) -> f64 {
        // Endpoint-blind fallback: price conservatively as an uplink hop.
        self.uplink.p2p_time(bytes)
    }

    fn p2p_time_between(&self, from: usize, to: usize, bytes: u64) -> f64 {
        if self.segment_of[from] == self.segment_of[to] {
            self.local.p2p_time(bytes)
        } else {
            self.uplink.p2p_time(bytes)
        }
    }

    fn bcast_time(&self, p: usize, bytes: u64) -> f64 {
        if self.first_p_local(p) {
            self.local.bcast_time(p, bytes)
        } else {
            self.uplink.bcast_time(p, bytes)
        }
    }

    fn barrier_time(&self, p: usize) -> f64 {
        if self.first_p_local(p) {
            self.local.barrier_time(p)
        } else {
            self.uplink.barrier_time(p)
        }
    }

    fn gather_time(&self, sizes: &[u64], root: usize) -> f64 {
        if self.first_p_local(sizes.len()) {
            self.local.gather_time(sizes, root)
        } else {
            self.uplink.gather_time(sizes, root)
        }
    }

    fn label(&self) -> &'static str {
        "segmented"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::MpichEthernet;

    fn seg2() -> SegmentedNetwork<MpichEthernet, MpichEthernet> {
        // Fast local links, slow uplink.
        SegmentedNetwork::new(
            vec![0, 0, 1, 1],
            MpichEthernet::new(1e-4, 1e8),
            MpichEthernet::new(1e-3, 1.25e7),
        )
    }

    #[test]
    fn intra_segment_uses_local_price() {
        let net = seg2();
        let local = net.p2p_time_between(0, 1, 1000);
        let cross = net.p2p_time_between(1, 2, 1000);
        assert!((local - (1e-4 + 1e-5)).abs() < 1e-12);
        assert!(cross > 5.0 * local, "uplink must dominate: {cross} vs {local}");
    }

    #[test]
    fn endpoint_blind_p2p_is_conservative() {
        let net = seg2();
        assert_eq!(net.p2p_time(1000), net.uplink.p2p_time(1000));
    }

    #[test]
    fn collectives_switch_on_span() {
        let net = seg2();
        // First two ranks live in segment 0: local pricing.
        assert_eq!(net.barrier_time(2), net.local.barrier_time(2));
        // All four span both segments: uplink pricing.
        assert_eq!(net.barrier_time(4), net.uplink.barrier_time(4));
        assert!(net.bcast_time(4, 800) > net.bcast_time(2, 800));
    }

    #[test]
    fn contiguous_layout_groups_in_order() {
        let net = SegmentedNetwork::contiguous(
            8,
            2,
            MpichEthernet::new(1e-4, 1e8),
            MpichEthernet::new(1e-3, 1e7),
        );
        for r in 0..4 {
            assert_eq!(net.segment_of(r), 0);
        }
        for r in 4..8 {
            assert_eq!(net.segment_of(r), 1);
        }
    }

    #[test]
    fn uneven_contiguous_split_covers_all_ranks() {
        let net = SegmentedNetwork::contiguous(
            5,
            2,
            MpichEthernet::new(1e-4, 1e8),
            MpichEthernet::new(1e-3, 1e7),
        );
        assert_eq!(net.segment_of(2), 0);
        assert_eq!(net.segment_of(3), 1);
        assert_eq!(net.segment_of(4), 1);
    }

    #[test]
    fn single_segment_degenerates_to_local() {
        let net = SegmentedNetwork::contiguous(
            4,
            1,
            MpichEthernet::new(1e-4, 1e8),
            MpichEthernet::new(1e-3, 1e7),
        );
        assert_eq!(net.p2p_time_between(0, 3, 512), net.local.p2p_time(512));
        assert_eq!(net.barrier_time(4), net.local.barrier_time(4));
    }

    #[test]
    #[should_panic(expected = "need at least one rank")]
    fn empty_map_rejected() {
        SegmentedNetwork::new(vec![], MpichEthernet::new(1e-4, 1e8), MpichEthernet::new(1e-3, 1e7));
    }

    #[test]
    fn cross_segment_sends_cost_more_than_local() {
        let net = seg2();
        assert!(net.p2p_time_between(0, 2, 64) > net.p2p_time_between(0, 1, 64));
    }
}
