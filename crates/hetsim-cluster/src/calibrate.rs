//! Machine-parameter calibration, mirroring the paper's §4.5.
//!
//! Before predicting scalability, the paper measures the target machine's
//! communication parameters: point-to-point time as a function of message
//! size (`T_send = a + b·N`), broadcast and barrier times as functions of
//! the process count. This module performs the same micro-benchmarks
//! against a [`NetworkModel`] and fits the same functional forms, so the
//! prediction pipeline consumes *calibrated* parameters rather than
//! reaching into the model's internals — exactly as one would on real
//! hardware.

use crate::network::NetworkModel;
use numfit::stats::{linear_regression, LinearFit};
use numfit::Result;
use serde::{Deserialize, Serialize};

/// Functional basis a collective's cost is regressed against.
///
/// Tree-based collectives (switched fabrics) grow like `log₂ p` — the
/// form the paper fits on Sunwulf's MPICH (`T ≈ a·log p + b`). On a
/// shared medium, collectives serialize and grow like `p − 1`. The
/// calibrator fits both and keeps whichever explains the measurements
/// better, so predictions stay accurate at small `p` on either fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectiveBasis {
    /// `x(p) = log₂ p` (tree collectives).
    Log2P,
    /// `x(p) = p − 1` (serialized collectives).
    PMinusOne,
}

impl CollectiveBasis {
    /// The regressor value for `p` processes.
    pub fn x(self, p: usize) -> f64 {
        match self {
            CollectiveBasis::Log2P => (p as f64).log2(),
            CollectiveBasis::PMinusOne => (p - 1) as f64,
        }
    }
}

/// A collective's calibrated cost curve: linear in the chosen basis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectiveFit {
    /// The basis that won the fit-quality comparison.
    pub basis: CollectiveBasis,
    /// Linear fit of cost against the basis regressor.
    pub fit: LinearFit,
}

impl CollectiveFit {
    /// Predicted cost at `p` processes (0 for `p ≤ 1`).
    pub fn predict(&self, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        self.fit.predict(self.basis.x(p)).max(0.0)
    }
}

/// Fits both bases and keeps the one with the smaller residual.
fn fit_collective(ps: &[usize], ys: &[f64]) -> Result<CollectiveFit> {
    let mut best: Option<(f64, CollectiveFit)> = None;
    for basis in [CollectiveBasis::Log2P, CollectiveBasis::PMinusOne] {
        let xs: Vec<f64> = ps.iter().map(|&p| basis.x(p)).collect();
        let fit = linear_regression(&xs, ys)?;
        let sse: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| {
                let e = y - fit.predict(x);
                e * e
            })
            .sum();
        if best.is_none() || sse < best.as_ref().expect("just checked").0 {
            best = Some((sse, CollectiveFit { basis, fit }));
        }
    }
    Ok(best.expect("two candidate bases").1)
}

/// Calibrated machine communication parameters (all times in seconds).
///
/// `p2p` maps *element count* (8-byte f64 words) to one message time:
/// `T = intercept + slope·n_elems`. `bcast` and `barrier` map the
/// process count (through the winning [`CollectiveBasis`]) to the
/// collective time — the paper's `T_bcast`, `T_barrier` calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineParams {
    /// Point-to-point time vs. f64-element count: `T = a + b·n`.
    pub p2p: LinearFit,
    /// Small-payload broadcast time vs. process count.
    pub bcast: CollectiveFit,
    /// Barrier time vs. process count.
    pub barrier: CollectiveFit,
    /// Broadcast per-element marginal cost (seconds per f64 element),
    /// measured at the largest calibrated process count.
    pub bcast_per_elem: f64,
    /// Largest process count used during calibration.
    pub max_p: usize,
}

impl MachineParams {
    /// Predicted point-to-point time for a message of `n` f64 elements.
    pub fn p2p_time(&self, n: f64) -> f64 {
        self.p2p.predict(n).max(0.0)
    }

    /// Predicted broadcast time of `n` f64 elements among `p` processes.
    pub fn bcast_time(&self, p: usize, n: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        // Latency term from the collective fit plus the per-element
        // payload term scaled (in the same basis) relative to the
        // calibration point.
        let scale = self.bcast.basis.x(p).max(0.0) / self.bcast.basis.x(self.max_p).max(1e-12);
        (self.bcast.predict(p) + self.bcast_per_elem * scale * n).max(0.0)
    }

    /// Predicted barrier time among `p` processes.
    pub fn barrier_time(&self, p: usize) -> f64 {
        self.barrier.predict(p)
    }
}

/// Message sizes (f64 elements) exercised by the p2p calibration sweep.
pub const P2P_CAL_SIZES: [u64; 6] = [64, 256, 1024, 4096, 16384, 65536];

/// Process counts exercised by the collective calibration sweep.
pub const COLLECTIVE_CAL_PS: [usize; 5] = [2, 4, 8, 16, 32];

/// Runs the calibration micro-benchmarks against `net` and fits the
/// paper's functional forms.
pub fn calibrate(net: &dyn NetworkModel) -> Result<MachineParams> {
    // T_send vs element count.
    let xs: Vec<f64> = P2P_CAL_SIZES.iter().map(|&n| n as f64).collect();
    let ys: Vec<f64> = P2P_CAL_SIZES.iter().map(|&n| net.p2p_time(n * 8)).collect();
    let p2p = linear_regression(&xs, &ys)?;

    // Small-payload (one cache line) bcast and barrier vs process count,
    // fitted in whichever basis (log₂ p or p − 1) explains them better.
    let bcast_ys: Vec<f64> = COLLECTIVE_CAL_PS.iter().map(|&p| net.bcast_time(p, 64)).collect();
    let barrier_ys: Vec<f64> = COLLECTIVE_CAL_PS.iter().map(|&p| net.barrier_time(p)).collect();
    let bcast = fit_collective(&COLLECTIVE_CAL_PS, &bcast_ys)?;
    let barrier = fit_collective(&COLLECTIVE_CAL_PS, &barrier_ys)?;

    // Marginal payload cost of a broadcast at the largest p: difference
    // quotient between a large and a small payload.
    let max_p = *COLLECTIVE_CAL_PS.last().expect("non-empty");
    let big = 65536u64;
    let small = 64u64;
    let bcast_per_elem =
        (net.bcast_time(max_p, big * 8) - net.bcast_time(max_p, small * 8)) / (big - small) as f64;

    Ok(MachineParams { p2p, bcast, barrier, bcast_per_elem, max_p })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{ConstantLatency, SharedEthernet, SwitchedNetwork};

    #[test]
    fn p2p_calibration_recovers_alpha_beta() {
        let net = SharedEthernet::new(0.3e-3, 1.25e7);
        let params = calibrate(&net).unwrap();
        // intercept = alpha, slope = 8 bytes / beta.
        assert!((params.p2p.intercept - 0.3e-3).abs() < 1e-9);
        assert!((params.p2p.slope - 8.0 / 1.25e7).abs() < 1e-12);
        assert!(params.p2p.r > 0.999);
    }

    #[test]
    fn predicted_p2p_matches_model_between_calibration_points() {
        let net = SharedEthernet::new(0.2e-3, 1e7);
        let params = calibrate(&net).unwrap();
        for n in [100u64, 500, 3000, 20000] {
            let pred = params.p2p_time(n as f64);
            let actual = net.p2p_time(n * 8);
            assert!((pred - actual).abs() / actual < 1e-6, "n={n}: pred {pred} vs {actual}");
        }
    }

    #[test]
    fn bcast_calibration_tracks_shared_ethernet_shape() {
        let net = SharedEthernet::new(0.3e-3, 1.25e7);
        let params = calibrate(&net).unwrap();
        // Shared Ethernet bcast is linear in p, so the log-p fit is only
        // an approximation — but must be monotone increasing and must
        // reproduce the calibrated endpoints within the fit's own error.
        assert!(params.bcast.fit.slope > 0.0);
        let t32 = params.bcast_time(32, 8.0);
        let t2 = params.bcast_time(2, 8.0);
        assert!(t32 > 5.0 * t2, "bcast time must grow strongly with p");
    }

    #[test]
    fn bcast_payload_term_scales_with_p() {
        let net = SharedEthernet::new(0.3e-3, 1.25e7);
        let params = calibrate(&net).unwrap();
        let n = 10_000.0;
        let t32 = params.bcast_time(32, n);
        let actual32 = net.bcast_time(32, 80_000);
        assert!((t32 - actual32).abs() / actual32 < 0.2, "pred {t32} vs actual {actual32}");
    }

    #[test]
    fn barrier_calibration_on_switched_network_is_exact() {
        // Switched barrier is 2·α·log₂p — exactly linear in log p.
        let net = SwitchedNetwork::new(1e-4, 1e8);
        let params = calibrate(&net).unwrap();
        for p in [2usize, 4, 8, 16, 32] {
            let pred = params.barrier_time(p);
            let actual = net.barrier_time(p);
            assert!((pred - actual).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn constant_latency_network_calibrates_flat_collectives() {
        let net = ConstantLatency::new(1e-3);
        let params = calibrate(&net).unwrap();
        // Collective times do not grow with p.
        assert!(params.bcast.fit.slope.abs() < 1e-12);
        assert!(params.barrier.fit.slope.abs() < 1e-12);
        assert!((params.barrier_time(32) - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn single_process_collectives_cost_nothing() {
        let net = SharedEthernet::new(1e-3, 1e7);
        let params = calibrate(&net).unwrap();
        assert_eq!(params.bcast_time(1, 1000.0), 0.0);
        assert_eq!(params.barrier_time(1), 0.0);
    }

    #[test]
    fn predictions_never_negative() {
        let net = ConstantLatency::new(0.0);
        let params = calibrate(&net).unwrap();
        assert!(params.p2p_time(0.0) >= 0.0);
        assert!(params.bcast_time(2, 0.0) >= 0.0);
        assert!(params.barrier_time(2) >= 0.0);
    }
}
