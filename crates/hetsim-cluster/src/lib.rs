//! # hetsim-cluster — heterogeneous cluster substrate
//!
//! The ICPP 2005 isospeed-efficiency paper evaluates on *Sunwulf*, a
//! physical heterogeneous cluster (one 4-CPU SunFire server, 64 SunBlade
//! nodes, 20 dual-CPU SunFire V210 nodes on 100 Mb Ethernet). This crate
//! is the substitute substrate: an explicit, deterministic model of such
//! a cluster that the message-passing runtime ([`hetsim_mpi`]) and the
//! experiment harness execute against.
//!
//! [`hetsim_mpi`]: ../hetsim_mpi/index.html
//!
//! It provides four layers:
//!
//! * [`time`] — virtual time ([`time::SimTime`]): a totally ordered,
//!   non-negative simulated clock in seconds.
//! * [`node`] / [`cluster`] — machine specifications: per-node *marked
//!   speed* (Definition 1 of the paper), CPU counts, memory; cluster
//!   compositions including the reconstructed Sunwulf ladders used by the
//!   paper's GE and MM experiments.
//! * [`network`] — analytic communication cost models (constant-latency,
//!   switched latency+bandwidth, shared-Ethernet with serialization),
//!   behind one [`network::NetworkModel`] trait. These give deterministic
//!   costs to the SPMD runtime.
//! * [`engine`] / [`netsim`] — a classic discrete-event simulation core
//!   plus a message-level shared-link simulator used to validate the
//!   analytic models and to study contention (the `ablate-net` study).
//! * [`faults`] — deterministic, seed-driven fault plans: degraded-node
//!   speed windows, lossy links with retry/timeout/backoff charges, and
//!   declared deaths resolved into a surviving cluster before launch.
//!
//! ## Determinism
//!
//! Everything here is pure arithmetic over `f64`: given the same cluster
//! and the same program, costs are bit-identical across runs and thread
//! schedules. That property is what makes the reproduced tables stable.

//! ## Example
//!
//! ```
//! use hetsim_cluster::{sunwulf, NetworkModel};
//!
//! // The paper's two-node GE configuration and its interconnect.
//! let cluster = sunwulf::ge_config(2);
//! assert_eq!(cluster.marked_speed_mflops(), 140.0);
//! let net = sunwulf::sunwulf_network();
//! assert!(net.bcast_time(2, 800) > 0.0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod calibrate;
pub mod classed;
pub mod cluster;
pub mod engine;
pub mod faults;
pub mod flrepeat;
pub mod memory;
pub mod netsim;
pub mod network;
pub mod node;
pub mod selfsched;
pub mod sunwulf;
pub mod time;
pub mod topology;

pub use classed::{ClassedCluster, SpeedClass};
pub use cluster::ClusterSpec;
pub use faults::{FaultError, FaultPlan, RetryCharge, RetryPolicy, SpeedWindow};
pub use flrepeat::repeat_add;
pub use network::{
    ConstantLatency, JitteredNetwork, MpichEthernet, NetworkModel, SharedEthernet, SwitchedNetwork,
};
pub use node::{NodeKind, NodeSpec};
pub use time::SimTime;
pub use topology::SegmentedNetwork;
