//! Class-compressed cluster specifications.
//!
//! A [`ClusterSpec`] stores one [`crate::node::NodeSpec`] per rank —
//! fine for Sunwulf's 85 nodes, fatal for the 10⁵–10⁷-rank machines
//! the mega-scale sweep prices. A [`ClassedCluster`] stores the same
//! machine as an ordered run-length encoding: a short list of
//! [`SpeedClass`]es, each a marked speed with a multiplicity. Ranks
//! are laid out class by class, in class order, so rank order is fully
//! determined and every derived quantity of the materialized cluster
//! can be reproduced bit for bit from the compressed form:
//!
//! * the marked speed `C = Σᵢ Cᵢ` is an IEEE fold in rank order —
//!   [`crate::flrepeat::repeat_add`] collapses each equal-speed run
//!   exactly;
//! * the memo fingerprint is per-class `(speed bits, count)` pairs
//!   instead of per-rank speed bits;
//! * [`ClassedCluster::materialize`] expands to a plain [`ClusterSpec`]
//!   for the oracle engines at sizes where O(P) is affordable, and the
//!   equality tests pin that both views agree.
//!
//! [`ClassedCluster::heet`] generates bounded-class-count machines at
//! arbitrary P parameterized the way the HEET heterogeneity literature
//! frames a platform: total size, number of speed tiers, and the
//! fastest/slowest spread. Class 0 is the fastest tier and holds rank
//! 0, mirroring the paper's placement of the server node at the rank
//! that distributes and collects data.

use crate::cluster::ClusterSpec;
use crate::flrepeat::repeat_add;
use crate::node::NodeSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One run of identically-marked ranks: `count` nodes of
/// `speed_mflops` each, contiguous in rank order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedClass {
    /// Marked speed of every member, in Mflop/s (Definition 1).
    pub speed_mflops: f64,
    /// Number of ranks in the run. Always at least 1.
    pub count: usize,
}

/// An ordered, run-length-encoded computing system: the machine half
/// of an algorithm–system combination, in O(classes) storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassedCluster {
    classes: Vec<SpeedClass>,
    /// Human-readable label, e.g. `"heet-1e5x8"`.
    pub label: String,
}

impl ClassedCluster {
    /// Builds a classed cluster. Errors on an empty class list, an
    /// empty class, or a non-positive / non-finite speed.
    pub fn new(
        label: impl Into<String>,
        classes: Vec<SpeedClass>,
    ) -> Result<ClassedCluster, String> {
        if classes.is_empty() {
            return Err("a classed cluster needs at least one class".to_string());
        }
        for c in &classes {
            if !c.speed_mflops.is_finite() || c.speed_mflops <= 0.0 {
                return Err(format!(
                    "class marked speed must be positive and finite, got {}",
                    c.speed_mflops
                ));
            }
            if c.count == 0 {
                return Err("a speed class needs at least one member".to_string());
            }
        }
        Ok(ClassedCluster { classes, label: label.into() })
    }

    /// A HEET-parameterized machine: `p` ranks in at most
    /// `max_classes` speed tiers, marked speeds descending linearly
    /// from `base_mflops · spread` (class 0, rank 0) to `base_mflops`,
    /// with class populations growing toward the slow tail (class `j`
    /// carries weight `j + 1`) — few fast nodes, many slow ones.
    ///
    /// Deterministic: a pure function of its arguments, built from
    /// exact-rounding IEEE arithmetic only (no `powf`). Every class is
    /// non-empty and the class count never exceeds
    /// `min(max_classes, p)`.
    pub fn heet(p: usize, max_classes: usize, base_mflops: f64, spread: f64) -> ClassedCluster {
        let k = heet_class_count(p, max_classes, base_mflops, spread);
        // Linear speed ladder, fastest first. k = 1 degenerates to a
        // homogeneous machine at base speed.
        let speed = |j: usize| -> f64 {
            if k == 1 {
                base_mflops
            } else {
                let frac = (k - 1 - j) as f64 / (k - 1) as f64;
                base_mflops * (1.0 + frac * (spread - 1.0))
            }
        };
        let classes = heet_classes(p, k, speed);
        ClassedCluster { classes, label: format!("heet-{p}x{k}") }
    }

    /// The heavy-tailed sibling of [`ClassedCluster::heet`]: same total
    /// size, class count, spread, and tail-heavy populations, but the
    /// marked speeds decay *harmonically* (Zipf-like) instead of
    /// linearly — `base · spread / (1 + (spread − 1) · j/(k − 1))` —
    /// so a small elite of fast tiers towers over a long near-`base`
    /// tail. Class 0 still holds rank 0 at `base · spread`; the last
    /// class still sits exactly at `base`.
    ///
    /// Deterministic and `powf`-free, like the linear ladder.
    pub fn heet_zipf(
        p: usize,
        max_classes: usize,
        base_mflops: f64,
        spread: f64,
    ) -> ClassedCluster {
        let k = heet_class_count(p, max_classes, base_mflops, spread);
        let speed = |j: usize| -> f64 {
            if k == 1 {
                base_mflops
            } else {
                let depth = j as f64 / (k - 1) as f64;
                base_mflops * spread / (1.0 + (spread - 1.0) * depth)
            }
        };
        let classes = heet_classes(p, k, speed);
        ClassedCluster { classes, label: format!("heet-zipf-{p}x{k}") }
    }

    /// The speed classes, in rank order.
    pub fn classes(&self) -> &[SpeedClass] {
        &self.classes
    }

    /// Number of distinct speed classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Total number of ranks.
    pub fn size(&self) -> usize {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// System marked speed `C = Σ Cᵢ` in Mflop/s — bit-identical to
    /// [`ClusterSpec::marked_speed_mflops`] of the materialized
    /// cluster (the rank-order IEEE fold, collapsed per run).
    pub fn marked_speed_mflops(&self) -> f64 {
        let mut total = 0.0;
        for c in &self.classes {
            total = repeat_add(total, c.speed_mflops, c.count as u64);
        }
        total
    }

    /// System marked speed in flop/s.
    pub fn marked_speed_flops(&self) -> f64 {
        self.marked_speed_mflops() * 1e6
    }

    /// HEET-style normalized heterogeneity: mean relative shortfall
    /// from the fastest tier, `(Σᵢ (1 − Cᵢ/C_max)) / p`. Zero for a
    /// homogeneous machine, approaching 1 as the slow tail dominates.
    pub fn heterogeneity_index(&self) -> f64 {
        let max = self.classes.iter().map(|c| c.speed_mflops).fold(0.0, f64::max);
        let p = self.size() as f64;
        let shortfall: f64 =
            self.classes.iter().map(|c| c.count as f64 * (1.0 - c.speed_mflops / max)).sum();
        shortfall / p
    }

    /// Structural identity for memoization keys: `(speed bits, count)`
    /// per class, flattened — O(classes), unlike
    /// [`ClusterSpec::fingerprint`]'s per-rank encoding.
    pub fn fingerprint(&self) -> Vec<u64> {
        self.classes.iter().flat_map(|c| [c.speed_mflops.to_bits(), c.count as u64]).collect()
    }

    /// Expands to a plain per-rank [`ClusterSpec`] (synthetic nodes,
    /// class-major rank order). O(P) — for the oracle engines and the
    /// equality tests, not for the mega-scale pricing path.
    pub fn materialize(&self) -> ClusterSpec {
        let nodes: Vec<NodeSpec> = self
            .classes
            .iter()
            .enumerate()
            .flat_map(|(j, c)| {
                (0..c.count).map(move |i| NodeSpec::synthetic(format!("c{j}n{i}"), c.speed_mflops))
            })
            .collect();
        ClusterSpec::new(self.label.clone(), nodes).expect("classed cluster is never empty")
    }
}

/// Validates the shared HEET generator arguments and returns the
/// effective class count `min(max_classes, p)`.
fn heet_class_count(p: usize, max_classes: usize, base_mflops: f64, spread: f64) -> usize {
    assert!(p > 0, "need at least one rank");
    assert!(max_classes > 0, "need at least one class");
    assert!(base_mflops > 0.0 && base_mflops.is_finite(), "base speed must be positive");
    assert!(spread >= 1.0 && spread.is_finite(), "spread is fastest/slowest, at least 1");
    max_classes.min(p)
}

/// Tail-heavy class populations shared by every HEET speed ladder: one
/// guaranteed member per class, the rest by largest remainder over
/// weights `j + 1` (ties toward the fast classes, matching index
/// order), with `speed(j)` supplying the per-class marked speed.
fn heet_classes(p: usize, k: usize, speed: impl Fn(usize) -> f64) -> Vec<SpeedClass> {
    let spare = p - k;
    let total_weight: usize = (1..=k).sum();
    let mut counts: Vec<usize> = (0..k).map(|j| spare * (j + 1) / total_weight).collect();
    let mut leftover = spare - counts.iter().sum::<usize>();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&j| {
        // Remainder of spare·(j+1)/total_weight, largest first; index
        // ascending breaks ties.
        (std::cmp::Reverse(spare * (j + 1) % total_weight), j)
    });
    for &j in &order {
        if leftover == 0 {
            break;
        }
        counts[j] += 1;
        leftover -= 1;
    }
    (0..k).map(|j| SpeedClass { speed_mflops: speed(j), count: counts[j] + 1 }).collect()
}

impl fmt::Display for ClassedCluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ranks in {} classes, C = {:.2} Mflop/s",
            self.label,
            self.size(),
            self.class_count(),
            self.marked_speed_mflops()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_degenerate_classes() {
        assert!(ClassedCluster::new("x", vec![]).is_err());
        assert!(
            ClassedCluster::new("x", vec![SpeedClass { speed_mflops: 50.0, count: 0 }]).is_err()
        );
        assert!(ClassedCluster::new("x", vec![SpeedClass { speed_mflops: 0.0, count: 1 }]).is_err());
        assert!(ClassedCluster::new("x", vec![SpeedClass { speed_mflops: f64::NAN, count: 1 }])
            .is_err());
    }

    #[test]
    fn marked_speed_matches_materialized_cluster() {
        let c = ClassedCluster::new(
            "mix",
            vec![
                SpeedClass { speed_mflops: 110.0, count: 3 },
                SpeedClass { speed_mflops: 45.0, count: 1 },
                SpeedClass { speed_mflops: 50.0, count: 64 },
            ],
        )
        .unwrap();
        assert_eq!(
            c.marked_speed_mflops().to_bits(),
            c.materialize().marked_speed_mflops().to_bits()
        );
        assert_eq!(c.size(), 68);
    }

    #[test]
    fn heet_is_deterministic_and_fastest_first() {
        let a = ClassedCluster::heet(1000, 8, 50.0, 4.0);
        let b = ClassedCluster::heet(1000, 8, 50.0, 4.0);
        assert_eq!(a, b);
        assert_eq!(a.size(), 1000);
        assert_eq!(a.class_count(), 8);
        let speeds: Vec<f64> = a.classes().iter().map(|c| c.speed_mflops).collect();
        assert!(speeds.windows(2).all(|w| w[0] > w[1]), "speeds descend: {speeds:?}");
        assert_eq!(speeds[0], 200.0);
        assert_eq!(speeds[7], 50.0);
        // Tail-heavy population: the slowest class is the largest.
        let counts: Vec<usize> = a.classes().iter().map(|c| c.count).collect();
        assert_eq!(counts.iter().max(), counts.last());
    }

    #[test]
    fn heet_degenerates_gracefully() {
        let solo = ClassedCluster::heet(1, 8, 50.0, 4.0);
        assert_eq!(solo.size(), 1);
        assert_eq!(solo.class_count(), 1);
        let homo = ClassedCluster::heet(64, 1, 50.0, 4.0);
        assert_eq!(homo.class_count(), 1);
        assert_eq!(homo.classes()[0].speed_mflops, 50.0);
        assert_eq!(homo.heterogeneity_index(), 0.0);
    }

    #[test]
    fn zipf_shares_envelope_with_linear_but_decays_faster() {
        let lin = ClassedCluster::heet(30_000, 8, 45.0, 2.4);
        let zipf = ClassedCluster::heet_zipf(30_000, 8, 45.0, 2.4);
        // Same size, class count, populations, and speed envelope.
        assert_eq!(zipf.size(), lin.size());
        assert_eq!(zipf.class_count(), lin.class_count());
        let counts =
            |c: &ClassedCluster| -> Vec<usize> { c.classes().iter().map(|s| s.count).collect() };
        assert_eq!(counts(&zipf), counts(&lin));
        assert_eq!(zipf.classes()[0].speed_mflops, lin.classes()[0].speed_mflops);
        assert_eq!(zipf.classes()[7].speed_mflops, lin.classes()[7].speed_mflops);
        // Harmonic decay: every interior tier is slower than linear,
        // so the machine's marked speed drops and heterogeneity rises.
        for j in 1..7 {
            assert!(
                zipf.classes()[j].speed_mflops < lin.classes()[j].speed_mflops,
                "tier {j} should sag below the linear ladder"
            );
        }
        assert!(zipf.marked_speed_mflops() < lin.marked_speed_mflops());
        assert!(zipf.heterogeneity_index() > lin.heterogeneity_index());
        assert_eq!(zipf.label, "heet-zipf-30000x8");
    }

    #[test]
    fn zipf_degenerates_like_the_linear_ladder() {
        let solo = ClassedCluster::heet_zipf(1, 8, 50.0, 4.0);
        assert_eq!(solo.size(), 1);
        assert_eq!(solo.classes()[0].speed_mflops, 50.0);
        let homo = ClassedCluster::heet_zipf(64, 1, 50.0, 4.0);
        assert_eq!(homo.class_count(), 1);
        assert_eq!(homo.classes()[0].speed_mflops, 50.0);
        // spread = 1 collapses both ladders to the same homogeneous machine.
        let flat_lin = ClassedCluster::heet(100, 6, 50.0, 1.0);
        let flat_zipf = ClassedCluster::heet_zipf(100, 6, 50.0, 1.0);
        let speeds = |c: &ClassedCluster| -> Vec<u64> {
            c.classes().iter().map(|s| s.speed_mflops.to_bits()).collect()
        };
        assert_eq!(speeds(&flat_lin), speeds(&flat_zipf));
    }

    #[test]
    fn heterogeneity_index_grows_with_spread() {
        let narrow = ClassedCluster::heet(10_000, 8, 50.0, 2.0);
        let wide = ClassedCluster::heet(10_000, 8, 50.0, 16.0);
        assert!(narrow.heterogeneity_index() > 0.0);
        assert!(wide.heterogeneity_index() > narrow.heterogeneity_index());
        assert!(wide.heterogeneity_index() < 1.0);
    }

    #[test]
    fn fingerprint_is_compact_and_speed_sensitive() {
        let a = ClassedCluster::heet(100_000, 6, 50.0, 4.0);
        assert_eq!(a.fingerprint().len(), 2 * a.class_count());
        let b = ClassedCluster::heet(100_000, 6, 50.0, 5.0);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The declared generator contract: exact size, bounded class
        /// count, non-empty classes, positive descending speeds.
        #[test]
        fn heet_hits_declared_class_count_bounds(
            p in 1usize..2_000_000,
            k in 1usize..64,
            base in 1.0f64..200.0,
            spread in 1.0f64..64.0,
        ) {
            for c in [ClassedCluster::heet(p, k, base, spread),
                      ClassedCluster::heet_zipf(p, k, base, spread)] {
                prop_assert_eq!(c.size(), p);
                prop_assert!(c.class_count() <= k.min(p));
                prop_assert_eq!(c.class_count(), k.min(p));
                prop_assert!(c.classes().iter().all(|s| s.count >= 1 && s.speed_mflops > 0.0));
            }
        }

        /// Compressed and materialized views agree bit for bit on the
        /// system marked speed (the quantity ψ divides by).
        #[test]
        fn classed_marked_speed_matches_materialized(
            p in 1usize..3_000,
            k in 1usize..16,
            base in 1.0f64..200.0,
            spread in 1.0f64..64.0,
        ) {
            let c = ClassedCluster::heet(p, k, base, spread);
            let m = c.materialize();
            prop_assert_eq!(m.size(), p);
            prop_assert_eq!(
                c.marked_speed_mflops().to_bits(),
                m.marked_speed_mflops().to_bits()
            );
        }
    }
}
