//! Virtual simulated time.
//!
//! Simulated time is a non-negative `f64` number of seconds wrapped in a
//! newtype so it cannot be confused with wall-clock durations or with
//! work amounts. `SimTime` is totally ordered (NaN is rejected at
//! construction) so it can key the discrete-event queue.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) of simulated time, in seconds.
///
/// Construction rejects NaN; negative values are allowed only through
/// subtraction and indicate an elapsed-time computation error that the
/// caller should treat as a bug (debug builds assert).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds. Panics on NaN (programmer error).
    pub fn from_secs(secs: f64) -> SimTime {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// Creates a time from milliseconds.
    pub fn from_millis(ms: f64) -> SimTime {
        SimTime::from_secs(ms * 1e-3)
    }

    /// Creates a time from microseconds.
    pub fn from_micros(us: f64) -> SimTime {
        SimTime::from_secs(us * 1e-6)
    }

    /// Seconds as `f64`.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Milliseconds as `f64`.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Microseconds as `f64`.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// True if the value is finite (no overflow occurred).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // NaN is excluded at construction, so total_cmp is a total order
        // consistent with the numeric order.
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        let d = self.0 - rhs.0;
        debug_assert!(d >= 0.0 || d.abs() < 1e-12, "negative elapsed time: {d}");
        SimTime(d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.6} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3} µs", self.0 * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_roundtrip() {
        let t = SimTime::from_millis(1.5);
        assert!((t.as_secs() - 0.0015).abs() < 1e-15);
        assert!((t.as_millis() - 1.5).abs() < 1e-12);
        assert!((t.as_micros() - 1500.0).abs() < 1e-9);
        assert_eq!(SimTime::from_micros(2000.0), SimTime::from_millis(2.0));
    }

    #[test]
    fn ordering_is_numeric() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn arithmetic_adds_and_subtracts() {
        let mut t = SimTime::from_secs(1.0);
        t += SimTime::from_secs(0.5);
        assert_eq!(t, SimTime::from_secs(1.5));
        assert_eq!(t + SimTime::from_secs(0.5), SimTime::from_secs(2.0));
        assert_eq!((SimTime::from_secs(3.0) - SimTime::from_secs(1.0)).as_secs(), 2.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_construction_panics() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert!(format!("{}", SimTime::from_secs(2.0)).contains("s"));
        assert!(format!("{}", SimTime::from_millis(2.0)).contains("ms"));
        assert!(format!("{}", SimTime::from_micros(2.0)).contains("µs"));
    }

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    fn sortable_in_collections() {
        let mut v = [SimTime::from_secs(3.0), SimTime::from_secs(1.0), SimTime::from_secs(2.0)];
        v.sort();
        assert_eq!(v[0], SimTime::from_secs(1.0));
        assert_eq!(v[2], SimTime::from_secs(3.0));
    }
}
