//! Memory-feasibility checks for the paper's workloads.
//!
//! The simulator will happily run any problem size; the *physical*
//! Sunwulf would not — a 128 MB SunBlade caps what it can hold. These
//! checks make that constraint explicit, for two uses: flagging ladder
//! rungs whose required problem size outgrows the real machine (a
//! caveat the experiment tables carry), and grounding the paper's §2
//! critique of isoefficiency (the sequential baseline of a large
//! problem cannot even be *stored* on one node).
//!
//! Per-node footprints assume speed-proportional distribution (share
//! `Cᵢ/C` of the rows) and 8-byte elements:
//!
//! * GE: the node's share of the augmented matrix, `shareᵢ·N·(N+1)·8`.
//! * MM: the node's shares of `A` and `C` **plus a full replica of
//!   `B`** (`N²·8`) — the HoHe algorithm's binding constraint.

use crate::cluster::ClusterSpec;

/// Fraction of a node's physical memory usable for matrix data (the
/// rest goes to OS, MPI buffers, and code — generous for 2005 systems).
pub const USABLE_FRACTION: f64 = 0.75;

/// Bytes node `i` needs to hold its GE share at rank `n`.
pub fn ge_bytes_per_node(cluster: &ClusterSpec, n: usize) -> Vec<f64> {
    let total = n as f64 * (n as f64 + 1.0) * 8.0;
    cluster.speed_fractions().iter().map(|f| f * total).collect()
}

/// Bytes node `i` needs for its MM shares plus the replicated `B`.
pub fn mm_bytes_per_node(cluster: &ClusterSpec, n: usize) -> Vec<f64> {
    let nf = n as f64;
    let b_replica = nf * nf * 8.0;
    cluster.speed_fractions().iter().map(|f| 2.0 * f * nf * nf * 8.0 + b_replica).collect()
}

fn fits(cluster: &ClusterSpec, bytes: &[f64]) -> bool {
    cluster
        .nodes()
        .iter()
        .zip(bytes)
        .all(|(node, &need)| need <= node.memory_mb as f64 * 1024.0 * 1024.0 * USABLE_FRACTION)
}

/// True when every node can hold its GE share at rank `n`.
pub fn ge_feasible(cluster: &ClusterSpec, n: usize) -> bool {
    fits(cluster, &ge_bytes_per_node(cluster, n))
}

/// True when every node can hold its MM shares at rank `n`.
pub fn mm_feasible(cluster: &ClusterSpec, n: usize) -> bool {
    fits(cluster, &mm_bytes_per_node(cluster, n))
}

/// Largest rank for which `feasible(cluster, n)` holds, up to a search
/// cap of 10⁶ (returns 0 when even `n = 1` does not fit).
pub fn max_feasible(
    cluster: &ClusterSpec,
    feasible: impl Fn(&ClusterSpec, usize) -> bool,
) -> usize {
    if !feasible(cluster, 1) {
        return 0;
    }
    let mut lo = 1usize;
    let mut hi = 1usize;
    while hi < 1_000_000 && feasible(cluster, hi) {
        lo = hi;
        hi *= 2;
    }
    if hi >= 1_000_000 {
        return lo;
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if feasible(cluster, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sunwulf;

    #[test]
    fn small_problems_fit_everywhere() {
        let c = sunwulf::ge_config(8);
        assert!(ge_feasible(&c, 300));
        assert!(mm_feasible(&sunwulf::mm_config(8), 300));
    }

    #[test]
    fn mm_b_replica_binds_on_the_sunblade() {
        // 128 MB SunBlade, 75% usable = 96 MB; B alone is 8·N² bytes, so
        // N ≈ 3500 is the outer limit regardless of the A/C shares.
        let c = sunwulf::mm_config(8);
        let max = max_feasible(&c, mm_feasible);
        assert!((2500..4000).contains(&max), "max feasible MM rank = {max}");
        assert!(!mm_feasible(&c, 4100));
    }

    #[test]
    fn ge_scales_further_than_mm_on_the_same_nodes() {
        // GE stores only a share of one matrix; MM replicates B.
        let c = sunwulf::mm_config(8);
        let max_ge = max_feasible(&c, ge_feasible);
        let max_mm = max_feasible(&c, mm_feasible);
        assert!(max_ge > 2 * max_mm, "GE {max_ge} vs MM {max_mm}");
    }

    #[test]
    fn proportional_share_drives_the_ge_footprint() {
        let c = sunwulf::ge_config(2);
        let bytes = ge_bytes_per_node(&c, 1000);
        // Server (90 Mflop/s of 140) holds ~64% of the matrix.
        let frac = bytes[0] / (bytes[0] + bytes[1]);
        assert!((frac - 90.0 / 140.0).abs() < 1e-9);
    }

    #[test]
    fn papers_required_ranks_were_physically_feasible() {
        // Sanity: the reproduction's T3 required ranks (≈ 300..4700 on
        // the GE ladder) fit the reconstructed machines, so the paper's
        // experiment was physically runnable — while the isoefficiency
        // baseline (the whole problem on ONE SunBlade) stops at a much
        // smaller rank.
        let ladder8 = sunwulf::ge_config(8);
        assert!(ge_feasible(&ladder8, 1241));
        let one_blade = ClusterSpecFor::single(sunwulf::sunblade_node(1));
        let max_seq = max_feasible(&one_blade, ge_feasible);
        assert!(max_seq < 4000, "one SunBlade caps out at rank {max_seq}");
    }

    /// Helper: single-node cluster.
    struct ClusterSpecFor;
    impl ClusterSpecFor {
        fn single(node: crate::node::NodeSpec) -> ClusterSpec {
            ClusterSpec::new("single", vec![node]).expect("non-empty")
        }
    }

    #[test]
    fn infeasible_at_rank_one_returns_zero() {
        let mut node = sunwulf::sunblade_node(1);
        node.memory_mb = 0;
        let c = ClusterSpec::new("tiny", vec![node]).unwrap();
        assert_eq!(max_feasible(&c, ge_feasible), 0);
    }
}
