//! Compute-node specifications.
//!
//! A node is characterized for scalability purposes by its *marked speed*
//! (Definition 1 of the paper): a benchmarked sustained speed, treated as
//! a constant once measured. Nodes also carry CPU count and memory so
//! configuration ladders can mirror the paper's ("server node with two
//! CPUs", "SunFire V210 with 1 CPU", …).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The hardware families present in the reconstructed Sunwulf cluster,
/// plus a generic kind for synthetic experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// SunFire server node: four 480 MHz CPUs, 4 GB memory.
    SunFireServer,
    /// SunBlade compute node: one 500 MHz CPU, 128 MB memory.
    SunBlade,
    /// SunFire V210 compute node: two 1 GHz CPUs, 2 GB memory.
    SunFireV210,
    /// A synthetic node used in generated experiments.
    Synthetic,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::SunFireServer => "SunFire-server",
            NodeKind::SunBlade => "SunBlade",
            NodeKind::SunFireV210 => "SunFire-V210",
            NodeKind::Synthetic => "synthetic",
        };
        f.write_str(s)
    }
}

/// Specification of one compute node participating in a run.
///
/// `marked_speed_mflops` is the speed of the node *as configured for the
/// run* — a server node restricted to 2 of its 4 CPUs contributes the
/// 2-CPU marked speed, mirroring how the paper composes system marked
/// speeds from per-node measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Human-readable identifier, e.g. `"hpc-40"`.
    pub name: String,
    /// Hardware family.
    pub kind: NodeKind,
    /// Benchmarked sustained speed in Mflop/s (Definition 1). Must be
    /// strictly positive.
    pub marked_speed_mflops: f64,
    /// CPUs enabled for the run.
    pub cpus: u32,
    /// Physical memory in MB (bounds the largest problem a node can hold).
    pub memory_mb: u64,
}

impl NodeSpec {
    /// Creates a validated node spec.
    ///
    /// # Errors
    /// Returns a message when the marked speed is non-positive or not
    /// finite, or when `cpus` is zero.
    pub fn new(
        name: impl Into<String>,
        kind: NodeKind,
        marked_speed_mflops: f64,
        cpus: u32,
        memory_mb: u64,
    ) -> Result<NodeSpec, String> {
        if !marked_speed_mflops.is_finite() || marked_speed_mflops <= 0.0 {
            return Err(format!(
                "marked speed must be a positive finite Mflop/s value, got {marked_speed_mflops}"
            ));
        }
        if cpus == 0 {
            return Err("a node must have at least one CPU enabled".to_string());
        }
        Ok(NodeSpec { name: name.into(), kind, marked_speed_mflops, cpus, memory_mb })
    }

    /// Marked speed in flop/s (SI), the unit used by the cost models.
    pub fn marked_speed_flops(&self) -> f64 {
        self.marked_speed_mflops * 1e6
    }

    /// Time in seconds to execute `flops` floating-point operations at
    /// this node's marked speed.
    pub fn compute_seconds(&self, flops: f64) -> f64 {
        assert!(flops >= 0.0, "negative work");
        flops / self.marked_speed_flops()
    }

    /// A synthetic node with the given speed, for generated experiments.
    pub fn synthetic(name: impl Into<String>, marked_speed_mflops: f64) -> NodeSpec {
        NodeSpec::new(name, NodeKind::Synthetic, marked_speed_mflops, 1, 1024)
            .expect("synthetic node speed must be positive")
    }
}

impl fmt::Display for NodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} CPU, {:.2} Mflop/s)",
            self.name, self.kind, self.cpus, self.marked_speed_mflops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_node_constructs() {
        let n = NodeSpec::new("hpc-1", NodeKind::SunBlade, 50.0, 1, 128).unwrap();
        assert_eq!(n.marked_speed_flops(), 5.0e7);
        assert_eq!(n.cpus, 1);
    }

    #[test]
    fn rejects_nonpositive_speed() {
        assert!(NodeSpec::new("x", NodeKind::Synthetic, 0.0, 1, 1).is_err());
        assert!(NodeSpec::new("x", NodeKind::Synthetic, -5.0, 1, 1).is_err());
        assert!(NodeSpec::new("x", NodeKind::Synthetic, f64::NAN, 1, 1).is_err());
        assert!(NodeSpec::new("x", NodeKind::Synthetic, f64::INFINITY, 1, 1).is_err());
    }

    #[test]
    fn rejects_zero_cpus() {
        assert!(NodeSpec::new("x", NodeKind::Synthetic, 10.0, 0, 1).is_err());
    }

    #[test]
    fn compute_seconds_scales_inversely_with_speed() {
        let slow = NodeSpec::synthetic("slow", 10.0);
        let fast = NodeSpec::synthetic("fast", 100.0);
        let w = 1e8; // 100 Mflop
        assert!((slow.compute_seconds(w) - 10.0).abs() < 1e-12);
        assert!((fast.compute_seconds(w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_work_takes_zero_time() {
        let n = NodeSpec::synthetic("n", 42.0);
        assert_eq!(n.compute_seconds(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative work")]
    fn negative_work_panics() {
        NodeSpec::synthetic("n", 42.0).compute_seconds(-1.0);
    }

    #[test]
    fn display_mentions_name_and_speed() {
        let n = NodeSpec::new("hpc-65", NodeKind::SunFireV210, 110.0, 1, 2048).unwrap();
        let s = format!("{n}");
        assert!(s.contains("hpc-65"));
        assert!(s.contains("110.00"));
    }
}
