//! Exact batched IEEE-754 repeated addition.
//!
//! Class-aggregated pricing (DESIGN.md §13) collapses a chain of
//! identical fl-additions — a hub clock absorbing one send cost per
//! class member, a marked-speed fold over an equal-speed run — into a
//! single closed-form hop. IEEE 754 addition is non-associative, so
//! the collapse must reproduce the *rounded* chain bit for bit, not
//! the real-number sum `s + k·c`. [`repeat_add`] does exactly that in
//! O(regions crossed) instead of O(k), by stepping the mantissa-space
//! dynamics of round-to-nearest-even directly:
//!
//! * within a region of constant ulp `u` (one binade, or the shared
//!   subnormal/first-normal region), split `c = q·u + r` exactly; the
//!   per-step increment is `q·u` when `r < u/2`, `(q+1)·u` when
//!   `r > u/2`, and tie-determined by mantissa parity when `r = u/2`
//!   (round half to even) — after at most one step the tie decision
//!   locks onto an even mantissa and the increment is a constant the
//!   whole region shares;
//! * region boundaries (where the ulp changes) and the `s < c`
//!   warm-up are stepped individually through hardware addition.
//!
//! Every quantity the batched path manipulates (`q`, `r`, mantissa
//! counts) is an exact integer within `u64`/`f64` range, so the result
//! is bit-identical to the naive `for _ in 0..k { s += c }` loop —
//! the property the tests below pin, and the reason class-aggregated
//! simulation can price a 10⁷-member fan-out without walking it.

/// One ulp of a positive, finite `f64`: the spacing of representable
/// values in the constant-ulp region containing `s`.
fn ulp(s: f64) -> f64 {
    debug_assert!(s > 0.0 && s.is_finite());
    f64::from_bits(s.to_bits() + 1) - s
}

/// The result of `k` successive IEEE-754 double additions of `c`
/// starting from `s` — `fl(…fl(fl(s + c) + c)… + c)`, `k` times —
/// computed in O(regions crossed), bit-identical to the naive loop.
///
/// Requires `s ≥ 0` and `c ≥ 0`, both finite (simulated times and
/// costs always are). The chain itself stays finite for any input a
/// simulation can produce; a chain that would overflow panics in
/// debug builds like the naive loop would return `inf`.
pub fn repeat_add(mut s: f64, c: f64, mut k: u64) -> f64 {
    assert!(s >= 0.0 && s.is_finite(), "repeat_add: s must be finite and non-negative");
    assert!(c >= 0.0 && c.is_finite(), "repeat_add: c must be finite and non-negative");
    // Mantissa counts live in [0, 2^53); candidates m + q + 1 must stay
    // below this top for the constant-ulp rounding analysis to hold.
    const TOP: u64 = 1 << 53;
    while k > 0 {
        let s1 = s + c;
        if s1 == s {
            // c is absorbed below the rounding grid at s; every
            // remaining step is the identity.
            return s;
        }
        if s < c {
            // Warm-up: after one hardware step s ≥ c (fl is monotone
            // and fl(c) = c), which bounds q below 2^53 thereafter.
            s = s1;
            k -= 1;
            continue;
        }
        let u = ulp(s);
        // All exact: u is a power of two, s/u and c/u are < 2^53 (so
        // the power-of-two scalings cannot round), q·u ≤ c, and r is a
        // multiple of ulp(c) below u.
        let m = (s / u) as u64;
        let q = (c / u).floor() as u64;
        let r = c - (q as f64) * u;
        // Increment of one round-to-nearest-even step taken from
        // mantissa count `m`: the exact sum sits between candidates
        // m + q and m + q + 1, offset r.
        let step = |m: u64| -> u64 {
            if 2.0 * r < u {
                q
            } else if 2.0 * r > u {
                q + 1
            } else if (m + q).is_multiple_of(2) {
                q
            } else {
                q + 1
            }
        };
        let m1 = m + step(m);
        if m1 + q + 2 > TOP {
            // The next step may leave the constant-ulp region; let the
            // hardware round it and re-derive the region parameters.
            s = s1;
            k -= 1;
            continue;
        }
        debug_assert_eq!(s1, m1 as f64 * u, "mantissa dynamics must match hardware");
        s = s1;
        k -= 1;
        if k == 0 {
            return s;
        }
        // From m1 on the increment is constant until the region ends:
        // the non-tie cases never consult the mantissa, and in the tie
        // case m1 is even (round half to even picked the even
        // candidate) and every further step lands even again, so the
        // decision repeats verbatim.
        let d = step(m1);
        if d == 0 {
            // Tie rounding down with q = 0: m1 is the fixed point of
            // the remaining chain.
            return s;
        }
        let batch = ((TOP - q - 2).saturating_sub(m1) / d).min(k);
        if batch > 0 {
            s = (m1 + batch * d) as f64 * u;
            k -= batch;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The definitional loop the gadget must reproduce bit for bit.
    fn naive(mut s: f64, c: f64, k: u64) -> f64 {
        for _ in 0..k {
            s += c;
        }
        s
    }

    #[test]
    fn matches_naive_on_plain_chains() {
        for &(s, c) in
            &[(0.0, 0.3e-3), (1.0, 1e-7), (0.125, 0.1), (3.5e-4, 2.7e-9), (1e9, 0.1), (7.0, 3.0)]
        {
            for &k in &[0u64, 1, 2, 3, 7, 100, 12345] {
                assert_eq!(repeat_add(s, c, k).to_bits(), naive(s, c, k).to_bits(), "{s} {c} {k}");
            }
        }
    }

    #[test]
    fn exact_ties_round_to_even() {
        // s = 1.0, c = ulp/2: the exact sum is a tie every step; round
        // half to even absorbs it immediately (mantissa of 1.0 is even).
        let u = ulp(1.0);
        assert_eq!(repeat_add(1.0, u / 2.0, 1_000_000), 1.0);
        // From an odd mantissa the first tie rounds up, then absorbs.
        let odd = f64::from_bits(1.0f64.to_bits() + 1);
        assert_eq!(repeat_add(odd, u / 2.0, 1_000_000).to_bits(), naive(odd, u / 2.0, 3).to_bits());
        // q odd with an exact half-ulp remainder: increment alternates
        // onto even mantissas and stays there.
        let c = 3.0 * u + u / 2.0;
        assert_eq!(repeat_add(1.0, c, 10_000).to_bits(), naive(1.0, c, 10_000).to_bits());
    }

    #[test]
    fn crosses_binades_and_leaves_subnormals() {
        // Chain from just below a power of two across the boundary.
        let s = 2.0 - 2.0 * ulp(1.0);
        assert_eq!(repeat_add(s, 1e-16, 40_000).to_bits(), naive(s, 1e-16, 40_000).to_bits());
        // Subnormal start, subnormal increment.
        let tiny = f64::from_bits(17);
        assert_eq!(repeat_add(0.0, tiny, 30_000).to_bits(), naive(0.0, tiny, 30_000).to_bits());
    }

    #[test]
    fn absorption_is_detected() {
        // c far below half an ulp of s: the chain never moves.
        assert_eq!(repeat_add(1e18, 1e-3, u64::MAX), 1e18);
        assert_eq!(repeat_add(5.0, 0.0, u64::MAX), 5.0);
    }

    #[test]
    fn long_chains_compose() {
        // Splitting a chain at any point must agree with running it
        // whole — the property that lets callers batch per class run.
        let (s, c) = (0.25, 0.3e-3);
        let whole = repeat_add(s, c, 2_000_000_000);
        let split = repeat_add(repeat_add(s, c, 1_234_567_891), c, 2_000_000_000 - 1_234_567_891);
        assert_eq!(whole.to_bits(), split.to_bits());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn matches_naive_loop(
            sm in 0f64..10.0,
            se in -9i32..12,
            cm in 0f64..10.0,
            ce in -12i32..2,
            k in 0u64..3_000,
        ) {
            // Mantissa × decade sampling covers chains where s and c
            // differ by many orders of magnitude in both directions.
            let s = sm * 10f64.powi(se);
            let c = cm * 10f64.powi(ce);
            prop_assert_eq!(repeat_add(s, c, k).to_bits(), naive(s, c, k).to_bits());
        }

        #[test]
        fn composes_at_any_split(
            s in 0f64..1e6,
            c in 1e-9..1.0,
            k in 0u64..1_000_000,
            cut in 0u64..1_000_000,
        ) {
            let cut = cut.min(k);
            let whole = repeat_add(s, c, k);
            let split = repeat_add(repeat_add(s, c, cut), c, k - cut);
            prop_assert_eq!(whole.to_bits(), split.to_bits());
        }
    }
}
