//! Analytic communication cost models.
//!
//! The SPMD runtime charges every communication operation a deterministic
//! virtual-time cost obtained from a [`NetworkModel`]. Three fidelities
//! are provided; the `ablate-net` study in the experiment harness
//! quantifies how the choice affects predicted scalability.
//!
//! * [`ConstantLatency`] — every operation costs a fixed latency,
//!   independent of message size and process count. This is the regime of
//!   the paper's **Corollary 1** (constant overhead ⇒ perfectly scalable),
//!   so it is used by the property tests that pin ψ ≡ 1.
//! * [`SwitchedNetwork`] — a full-bisection switch: point-to-point cost
//!   `α + bytes/β`, tree-based collectives costing `⌈log₂ p⌉` rounds.
//! * [`SharedEthernet`] — the Sunwulf regime: a single shared medium on
//!   which concurrent transfers serialize, so collectives cost the *sum*
//!   of their constituent transfers (`p − 1` of them), not `log₂ p`
//!   rounds. This is what makes larger Sunwulf configurations pay
//!   sharply for communication and drives the paper's ψ < 1 results.

use serde::{Deserialize, Serialize};

/// Cost model for the cluster interconnect. All times in seconds; all
/// message sizes in bytes. `p` is the number of participating processes
/// (including the root); models must accept `p = 1` (cost 0 collective).
pub trait NetworkModel: Send + Sync {
    /// One point-to-point message of `bytes` from one node to another.
    fn p2p_time(&self, bytes: u64) -> f64;

    /// Endpoint-aware point-to-point cost. Flat networks ignore the
    /// endpoints; topology-aware models (e.g.
    /// [`crate::topology::SegmentedNetwork`]) price intra- and
    /// inter-segment links differently.
    fn p2p_time_between(&self, _from: usize, _to: usize, bytes: u64) -> f64 {
        self.p2p_time(bytes)
    }

    /// Broadcast of `bytes` from a root to the other `p − 1` processes.
    fn bcast_time(&self, p: usize, bytes: u64) -> f64;

    /// Barrier among `p` processes.
    fn barrier_time(&self, p: usize) -> f64;

    /// Gather to a root: process `i` contributes `sizes[i]` bytes
    /// (`sizes[root]` is transferred locally and free).
    fn gather_time(&self, sizes: &[u64], root: usize) -> f64;

    /// Scatter from a root: process `i` receives `sizes[i]` bytes.
    /// Defaults to the gather cost (symmetric on all provided models).
    fn scatter_time(&self, sizes: &[u64], root: usize) -> f64 {
        self.gather_time(sizes, root)
    }

    /// Reduction of `bytes` per process to a root (combining cost is
    /// charged by the caller as compute work).
    fn reduce_time(&self, p: usize, bytes: u64) -> f64 {
        self.bcast_time(p, bytes)
    }

    /// Class-collapsed point-to-point cost: `Some(t)` iff the model
    /// prices a `bytes`-sized message between *every* endpoint pair at
    /// exactly `t` — bit-identical to
    /// [`NetworkModel::p2p_time_between`] for all `from`/`to` pairs.
    /// Endpoint-aware models return `None` (the default), telling
    /// class-aggregated pricing (DESIGN.md §13) to fall back to the
    /// per-rank path with a typed reason.
    fn p2p_time_class(&self, _bytes: u64) -> Option<f64> {
        None
    }

    /// Class-collapsed gather cost. `runs` run-length-encodes the
    /// contribution list in rank order (`(bytes, count)` per run);
    /// `root_run` is the run containing the root, whose own
    /// contribution is local and free. `Some(t)` must be bit-identical
    /// to [`NetworkModel::gather_time`] on the expanded sizes with the
    /// root at any position inside its run. Models whose gather cost
    /// cannot be reproduced in O(runs) — or whose size sums would
    /// overflow the per-rank `u64` arithmetic — return `None` (the
    /// default).
    fn gather_time_classed(&self, _runs: &[(u64, u64)], _root_run: usize) -> Option<f64> {
        None
    }

    /// Short label for reports.
    fn label(&self) -> &'static str;

    /// Structural identity of the model, for memoization keys: two
    /// models with equal fingerprints must assign identical costs to
    /// every operation. The encoding is a tag word followed by the
    /// model's parameter bits (`f64::to_bits`), so distinct model types
    /// never collide. Returns `None` (the default) when the model has
    /// no stable structural identity — callers must then treat its
    /// results as uncacheable.
    fn fingerprint(&self) -> Option<Vec<u64>> {
        None
    }
}

impl<T: NetworkModel + ?Sized> NetworkModel for &T {
    fn p2p_time(&self, bytes: u64) -> f64 {
        (**self).p2p_time(bytes)
    }
    fn p2p_time_between(&self, from: usize, to: usize, bytes: u64) -> f64 {
        (**self).p2p_time_between(from, to, bytes)
    }
    fn bcast_time(&self, p: usize, bytes: u64) -> f64 {
        (**self).bcast_time(p, bytes)
    }
    fn barrier_time(&self, p: usize) -> f64 {
        (**self).barrier_time(p)
    }
    fn gather_time(&self, sizes: &[u64], root: usize) -> f64 {
        (**self).gather_time(sizes, root)
    }
    fn scatter_time(&self, sizes: &[u64], root: usize) -> f64 {
        (**self).scatter_time(sizes, root)
    }
    fn reduce_time(&self, p: usize, bytes: u64) -> f64 {
        (**self).reduce_time(p, bytes)
    }
    fn p2p_time_class(&self, bytes: u64) -> Option<f64> {
        (**self).p2p_time_class(bytes)
    }
    fn gather_time_classed(&self, runs: &[(u64, u64)], root_run: usize) -> Option<f64> {
        (**self).gather_time_classed(runs, root_run)
    }
    fn label(&self) -> &'static str {
        (**self).label()
    }
    fn fingerprint(&self) -> Option<Vec<u64>> {
        (**self).fingerprint()
    }
}

impl<T: NetworkModel + ?Sized> NetworkModel for Box<T> {
    fn p2p_time(&self, bytes: u64) -> f64 {
        (**self).p2p_time(bytes)
    }
    fn p2p_time_between(&self, from: usize, to: usize, bytes: u64) -> f64 {
        (**self).p2p_time_between(from, to, bytes)
    }
    fn bcast_time(&self, p: usize, bytes: u64) -> f64 {
        (**self).bcast_time(p, bytes)
    }
    fn barrier_time(&self, p: usize) -> f64 {
        (**self).barrier_time(p)
    }
    fn gather_time(&self, sizes: &[u64], root: usize) -> f64 {
        (**self).gather_time(sizes, root)
    }
    fn scatter_time(&self, sizes: &[u64], root: usize) -> f64 {
        (**self).scatter_time(sizes, root)
    }
    fn reduce_time(&self, p: usize, bytes: u64) -> f64 {
        (**self).reduce_time(p, bytes)
    }
    fn p2p_time_class(&self, bytes: u64) -> Option<f64> {
        (**self).p2p_time_class(bytes)
    }
    fn gather_time_classed(&self, runs: &[(u64, u64)], root_run: usize) -> Option<f64> {
        (**self).gather_time_classed(runs, root_run)
    }
    fn label(&self) -> &'static str {
        (**self).label()
    }
    fn fingerprint(&self) -> Option<Vec<u64>> {
        (**self).fingerprint()
    }
}

/// Expanded rank count of a run-length-encoded contribution list.
fn classed_len(runs: &[(u64, u64)]) -> u128 {
    runs.iter().map(|&(_, c)| c as u128).sum()
}

/// Σ bytes over the expanded runs minus the root's own contribution —
/// exactly the integer total the per-rank gather costs sum. `None`
/// when the total would overflow the per-rank `u64` arithmetic.
fn classed_total_excl_root(runs: &[(u64, u64)], root_run: usize) -> Option<u64> {
    let mut total: u128 = 0;
    for (i, &(bytes, count)) in runs.iter().enumerate() {
        total += bytes as u128 * (count as u128 - u128::from(i == root_run));
    }
    u64::try_from(total).ok()
}

fn ceil_log2(p: usize) -> f64 {
    if p <= 1 {
        0.0
    } else {
        (usize::BITS - (p - 1).leading_zeros()) as f64
    }
}

/// Fixed-cost network: every operation takes `latency` seconds.
///
/// Unphysical, but exactly the "communication overhead is constant for
/// any problem size and system size" premise of Corollary 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantLatency {
    /// Cost of any operation, in seconds.
    pub latency: f64,
}

impl ConstantLatency {
    /// Creates the model. Panics on negative or non-finite latency.
    pub fn new(latency: f64) -> Self {
        assert!(latency.is_finite() && latency >= 0.0, "latency must be ≥ 0");
        ConstantLatency { latency }
    }
}

impl NetworkModel for ConstantLatency {
    fn p2p_time(&self, _bytes: u64) -> f64 {
        self.latency
    }
    fn bcast_time(&self, p: usize, _bytes: u64) -> f64 {
        if p <= 1 {
            0.0
        } else {
            self.latency
        }
    }
    fn barrier_time(&self, p: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            self.latency
        }
    }
    fn gather_time(&self, sizes: &[u64], _root: usize) -> f64 {
        if sizes.len() <= 1 {
            0.0
        } else {
            self.latency
        }
    }
    fn p2p_time_class(&self, bytes: u64) -> Option<f64> {
        Some(self.p2p_time(bytes))
    }
    fn gather_time_classed(&self, runs: &[(u64, u64)], _root_run: usize) -> Option<f64> {
        Some(if classed_len(runs) <= 1 { 0.0 } else { self.latency })
    }
    fn label(&self) -> &'static str {
        "constant-latency"
    }
    fn fingerprint(&self) -> Option<Vec<u64>> {
        Some(vec![1, self.latency.to_bits()])
    }
}

/// Full-bisection switched network with per-message latency `alpha` and
/// bandwidth `beta` bytes/s; collectives use binomial trees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchedNetwork {
    /// Per-message latency in seconds.
    pub alpha: f64,
    /// Link bandwidth in bytes per second.
    pub beta: f64,
}

impl SwitchedNetwork {
    /// Creates the model. Panics on non-positive bandwidth or negative
    /// latency.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha.is_finite() && alpha >= 0.0, "latency must be ≥ 0");
        assert!(beta.is_finite() && beta > 0.0, "bandwidth must be > 0");
        SwitchedNetwork { alpha, beta }
    }

    fn transfer(&self, bytes: u64) -> f64 {
        self.alpha + bytes as f64 / self.beta
    }
}

impl NetworkModel for SwitchedNetwork {
    fn p2p_time(&self, bytes: u64) -> f64 {
        self.transfer(bytes)
    }
    fn bcast_time(&self, p: usize, bytes: u64) -> f64 {
        ceil_log2(p) * self.transfer(bytes)
    }
    fn barrier_time(&self, p: usize) -> f64 {
        // Dissemination barrier: log₂ p rounds of zero-byte messages,
        // counted both ways.
        2.0 * ceil_log2(p) * self.alpha
    }
    fn gather_time(&self, sizes: &[u64], root: usize) -> f64 {
        // Root's inbound link is the bottleneck: latency pipelines over a
        // tree, payload serializes on the root link.
        let total: u64 =
            sizes.iter().enumerate().filter(|(i, _)| *i != root).map(|(_, &s)| s).sum();
        if sizes.len() <= 1 {
            return 0.0;
        }
        ceil_log2(sizes.len()) * self.alpha + total as f64 / self.beta
    }
    fn p2p_time_class(&self, bytes: u64) -> Option<f64> {
        Some(self.p2p_time(bytes))
    }
    fn gather_time_classed(&self, runs: &[(u64, u64)], root_run: usize) -> Option<f64> {
        let len = classed_len(runs);
        if len <= 1 {
            return Some(0.0);
        }
        let total = classed_total_excl_root(runs, root_run)?;
        Some(ceil_log2(usize::try_from(len).ok()?) * self.alpha + total as f64 / self.beta)
    }
    fn label(&self) -> &'static str {
        "switched"
    }
    fn fingerprint(&self) -> Option<Vec<u64>> {
        Some(vec![2, self.alpha.to_bits(), self.beta.to_bits()])
    }
}

/// Shared-medium Ethernet: one transfer at a time on the wire.
///
/// Every collective decomposes into point-to-point transfers that
/// serialize, so a broadcast among `p` processes costs `p − 1` full
/// transfers. This linear-in-`p` collective cost is characteristic of
/// MPICH over 100 Mb hub/shared Ethernet circa 2005 and is the dominant
/// overhead term in the paper's GE experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedEthernet {
    /// Per-message software + wire latency in seconds.
    pub alpha: f64,
    /// Medium bandwidth in bytes per second (shared by all transfers).
    pub beta: f64,
}

impl SharedEthernet {
    /// Creates the model. Panics on non-positive bandwidth or negative
    /// latency.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha.is_finite() && alpha >= 0.0, "latency must be ≥ 0");
        assert!(beta.is_finite() && beta > 0.0, "bandwidth must be > 0");
        SharedEthernet { alpha, beta }
    }

    fn transfer(&self, bytes: u64) -> f64 {
        self.alpha + bytes as f64 / self.beta
    }
}

impl NetworkModel for SharedEthernet {
    fn p2p_time(&self, bytes: u64) -> f64 {
        self.transfer(bytes)
    }
    fn bcast_time(&self, p: usize, bytes: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p - 1) as f64 * self.transfer(bytes)
    }
    fn barrier_time(&self, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        // Linear gather + linear release of zero-byte messages.
        2.0 * (p - 1) as f64 * self.alpha
    }
    fn gather_time(&self, sizes: &[u64], root: usize) -> f64 {
        sizes.iter().enumerate().filter(|(i, _)| *i != root).map(|(_, &s)| self.transfer(s)).sum()
    }
    fn p2p_time_class(&self, bytes: u64) -> Option<f64> {
        Some(self.p2p_time(bytes))
    }
    fn gather_time_classed(&self, runs: &[(u64, u64)], root_run: usize) -> Option<f64> {
        // The per-rank cost is a sequential IEEE fold of one transfer
        // per contributor in rank order; every member of a run costs
        // the same, so each run collapses exactly. Which member of the
        // root run is skipped cannot matter: the folded sequence is
        // identical.
        let mut t = 0.0;
        for (i, &(bytes, count)) in runs.iter().enumerate() {
            t = crate::flrepeat::repeat_add(
                t,
                self.transfer(bytes),
                count - u64::from(i == root_run),
            );
        }
        Some(t)
    }
    fn label(&self) -> &'static str {
        "shared-ethernet"
    }
    fn fingerprint(&self) -> Option<Vec<u64>> {
        Some(vec![3, self.alpha.to_bits(), self.beta.to_bits()])
    }
}

/// MPICH-1 over switched fast Ethernet — the Sunwulf regime.
///
/// Point-to-point messages cost `α + bytes/β`. Broadcast uses a binomial
/// tree with pipelining for payload: `⌈log₂p⌉·α + (2(p−1)/p)·bytes/β`
/// (the van-de-Geijn large-message bound, reducing to `α + bytes/β` at
/// `p = 2`). Barrier is the *linear* gather-and-release MPICH-1 actually
/// shipped: `2(p−1)·α`. Gather serializes at the root's inbound link:
/// `(p−1)·α + total_bytes/β`.
///
/// `β` should be the *effective* MPICH throughput for the message sizes
/// in play, which on a full-duplex switched fabric with eager-protocol
/// overlap sits well above the naive wire rate — the paper's calibrated
/// per-element `T_send` slope is the right source (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpichEthernet {
    /// Per-message latency in seconds.
    pub alpha: f64,
    /// Effective throughput in bytes per second.
    pub beta: f64,
}

impl MpichEthernet {
    /// Creates the model. Panics on non-positive bandwidth or negative
    /// latency.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha.is_finite() && alpha >= 0.0, "latency must be ≥ 0");
        assert!(beta.is_finite() && beta > 0.0, "bandwidth must be > 0");
        MpichEthernet { alpha, beta }
    }
}

impl NetworkModel for MpichEthernet {
    fn p2p_time(&self, bytes: u64) -> f64 {
        self.alpha + bytes as f64 / self.beta
    }
    fn bcast_time(&self, p: usize, bytes: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let pipeline_factor = 2.0 * (p - 1) as f64 / p as f64;
        ceil_log2(p) * self.alpha + pipeline_factor * bytes as f64 / self.beta
    }
    fn barrier_time(&self, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        2.0 * (p - 1) as f64 * self.alpha
    }
    fn gather_time(&self, sizes: &[u64], root: usize) -> f64 {
        if sizes.len() <= 1 {
            return 0.0;
        }
        let total: u64 =
            sizes.iter().enumerate().filter(|(i, _)| *i != root).map(|(_, &s)| s).sum();
        (sizes.len() - 1) as f64 * self.alpha + total as f64 / self.beta
    }
    fn p2p_time_class(&self, bytes: u64) -> Option<f64> {
        Some(self.p2p_time(bytes))
    }
    fn gather_time_classed(&self, runs: &[(u64, u64)], root_run: usize) -> Option<f64> {
        let len = classed_len(runs);
        if len <= 1 {
            return Some(0.0);
        }
        let total = classed_total_excl_root(runs, root_run)?;
        Some((usize::try_from(len).ok()? - 1) as f64 * self.alpha + total as f64 / self.beta)
    }
    fn label(&self) -> &'static str {
        "mpich-ethernet"
    }
    fn fingerprint(&self) -> Option<Vec<u64>> {
        Some(vec![4, self.alpha.to_bits(), self.beta.to_bits()])
    }
}

/// Deterministic "frozen noise" wrapper: every cost of the inner model
/// is multiplied by a factor in `[1 − σ, 1 + σ]` derived by hashing the
/// operation's inputs with a seed.
///
/// Real clusters never produce the same timing twice; the paper's
/// methodology answers that with polynomial *trend lines* over sampled
/// curves rather than single readings. This wrapper reintroduces
/// measurement roughness while preserving the runtime's determinism
/// guarantee: identical calls still cost identically (the noise is
/// frozen per input), but neighbouring problem sizes see independent
/// perturbations — exactly the roughness a fitted trend line must
/// smooth. The `ablate-noise` study quantifies how well it does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitteredNetwork<M> {
    /// The noise-free cost model.
    pub inner: M,
    /// Relative noise amplitude σ (0 = passthrough, 0.15 = ±15%).
    pub sigma: f64,
    /// Seed decorrelating independent "measurement campaigns".
    pub seed: u64,
}

impl<M: NetworkModel> JitteredNetwork<M> {
    /// Wraps a model. Panics unless `0 ≤ sigma < 1`.
    pub fn new(inner: M, sigma: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&sigma), "sigma must be in [0, 1)");
        JitteredNetwork { inner, sigma, seed }
    }

    fn factor(&self, op: u64, a: u64, b: u64) -> f64 {
        // splitmix64 over the packed inputs.
        let mut z = self
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(op.wrapping_mul(0xBF58476D1CE4E5B9))
            .wrapping_add(a.rotate_left(17))
            .wrapping_add(b.rotate_left(41));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + self.sigma * (2.0 * unit - 1.0)
    }
}

impl<M: NetworkModel> NetworkModel for JitteredNetwork<M> {
    fn p2p_time(&self, bytes: u64) -> f64 {
        self.inner.p2p_time(bytes) * self.factor(1, bytes, 0)
    }
    fn p2p_time_between(&self, from: usize, to: usize, bytes: u64) -> f64 {
        self.inner.p2p_time_between(from, to, bytes)
            * self.factor(2, bytes, ((from as u64) << 32) | to as u64)
    }
    fn bcast_time(&self, p: usize, bytes: u64) -> f64 {
        self.inner.bcast_time(p, bytes) * self.factor(3, bytes, p as u64)
    }
    fn barrier_time(&self, p: usize) -> f64 {
        self.inner.barrier_time(p) * self.factor(4, p as u64, 0)
    }
    fn gather_time(&self, sizes: &[u64], root: usize) -> f64 {
        let total: u64 = sizes.iter().sum();
        self.inner.gather_time(sizes, root) * self.factor(5, total, root as u64)
    }
    fn label(&self) -> &'static str {
        "jittered"
    }
    fn fingerprint(&self) -> Option<Vec<u64>> {
        let mut fp = vec![5, self.sigma.to_bits(), self.seed];
        fp.extend(self.inner.fingerprint()?);
        Some(fp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0.0);
        assert_eq!(ceil_log2(2), 1.0);
        assert_eq!(ceil_log2(3), 2.0);
        assert_eq!(ceil_log2(4), 2.0);
        assert_eq!(ceil_log2(5), 3.0);
        assert_eq!(ceil_log2(32), 5.0);
    }

    #[test]
    fn constant_latency_ignores_size_and_p() {
        let m = ConstantLatency::new(1e-3);
        assert_eq!(m.p2p_time(0), 1e-3);
        assert_eq!(m.p2p_time(1 << 30), 1e-3);
        assert_eq!(m.bcast_time(2, 8), m.bcast_time(1024, 1 << 20));
        assert_eq!(m.barrier_time(2), m.barrier_time(1024));
    }

    #[test]
    fn constant_latency_single_process_collectives_are_free() {
        let m = ConstantLatency::new(1e-3);
        assert_eq!(m.bcast_time(1, 100), 0.0);
        assert_eq!(m.barrier_time(1), 0.0);
        assert_eq!(m.gather_time(&[100], 0), 0.0);
    }

    #[test]
    fn switched_p2p_is_alpha_beta() {
        let m = SwitchedNetwork::new(1e-4, 1e8);
        let t = m.p2p_time(1_000_000);
        assert!((t - (1e-4 + 0.01)).abs() < 1e-12);
    }

    #[test]
    fn switched_bcast_grows_logarithmically() {
        let m = SwitchedNetwork::new(1e-4, 1e8);
        let t2 = m.bcast_time(2, 1000);
        let t16 = m.bcast_time(16, 1000);
        assert!((t16 / t2 - 4.0).abs() < 1e-9, "log₂16 / log₂2 = 4");
    }

    #[test]
    fn ethernet_bcast_grows_linearly() {
        let m = SharedEthernet::new(1e-4, 1.25e7);
        let t2 = m.bcast_time(2, 1000);
        let t16 = m.bcast_time(16, 1000);
        assert!((t16 / t2 - 15.0).abs() < 1e-9, "(16−1)/(2−1) = 15");
    }

    #[test]
    fn ethernet_collectives_dominate_switched_for_large_p() {
        let eth = SharedEthernet::new(1e-4, 1.25e7);
        let sw = SwitchedNetwork::new(1e-4, 1.25e7);
        for p in [4, 8, 16, 32] {
            assert!(
                eth.bcast_time(p, 4096) > sw.bcast_time(p, 4096),
                "shared medium must cost more at p = {p}"
            );
        }
    }

    #[test]
    fn gather_excludes_root_contribution() {
        let m = SharedEthernet::new(1e-3, 1e6);
        let sizes = [500u64, 500, 500];
        let t_root0 = m.gather_time(&sizes, 0);
        // Two remote transfers of 500 B each.
        assert!((t_root0 - 2.0 * (1e-3 + 500.0 / 1e6)).abs() < 1e-12);
    }

    #[test]
    fn gather_asymmetric_sizes() {
        let m = SharedEthernet::new(0.0, 1e6);
        let sizes = [0u64, 1_000_000, 2_000_000];
        assert!((m.gather_time(&sizes, 0) - 3.0).abs() < 1e-12);
        assert!((m.gather_time(&sizes, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scatter_defaults_to_gather_cost() {
        let m = SwitchedNetwork::new(1e-4, 1e7);
        let sizes = [100u64, 200, 300, 400];
        assert_eq!(m.scatter_time(&sizes, 0), m.gather_time(&sizes, 0));
    }

    #[test]
    fn barrier_scaling_shapes() {
        let eth = SharedEthernet::new(1e-3, 1e7);
        let sw = SwitchedNetwork::new(1e-3, 1e7);
        // Ethernet barrier linear in p, switched logarithmic.
        assert!((eth.barrier_time(9) / eth.barrier_time(2) - 8.0).abs() < 1e-9);
        assert!((sw.barrier_time(16) / sw.barrier_time(2) - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be > 0")]
    fn zero_bandwidth_rejected() {
        SharedEthernet::new(1e-3, 0.0);
    }

    #[test]
    #[should_panic(expected = "latency must be ≥ 0")]
    fn negative_latency_rejected() {
        SwitchedNetwork::new(-1.0, 1e7);
    }

    #[test]
    fn models_expose_labels() {
        assert_eq!(ConstantLatency::new(0.0).label(), "constant-latency");
        assert_eq!(SwitchedNetwork::new(0.0, 1.0).label(), "switched");
        assert_eq!(SharedEthernet::new(0.0, 1.0).label(), "shared-ethernet");
    }

    #[test]
    fn mpich_bcast_reduces_to_p2p_at_two_ranks() {
        let m = MpichEthernet::new(3e-4, 1e8);
        assert!((m.bcast_time(2, 1000) - m.p2p_time(1000)).abs() < 1e-15);
    }

    #[test]
    fn mpich_bcast_payload_is_pipelined_not_multiplied() {
        // Latency grows like log p but payload stays ~2·bytes/β.
        let m = MpichEthernet::new(3e-4, 1e8);
        let big = 1_000_000u64;
        let t8 = m.bcast_time(8, big);
        let t32 = m.bcast_time(32, big);
        let payload_bound = 2.0 * big as f64 / 1e8;
        assert!(t8 < 3.0 * 3e-4 + payload_bound + 1e-12);
        // Between p = 8 and p = 32 only 2 latency rounds plus a ~11%
        // pipeline-factor change may be added — nothing like the 2.6×
        // a per-round-payload tree would cost.
        assert!(
            t32 - t8 < 2.0 * 3e-4 + 0.2 * big as f64 / 1e8,
            "payload must not multiply with p: t8 = {t8}, t32 = {t32}"
        );
    }

    #[test]
    fn mpich_barrier_is_linear_in_p() {
        let m = MpichEthernet::new(3e-4, 1e8);
        assert!((m.barrier_time(9) / m.barrier_time(2) - 8.0).abs() < 1e-9);
        assert_eq!(m.barrier_time(1), 0.0);
    }

    #[test]
    fn mpich_gather_serializes_latency_at_root() {
        let m = MpichEthernet::new(1e-3, 1e6);
        let sizes = [100u64, 100, 100, 100];
        let t = m.gather_time(&sizes, 0);
        assert!((t - (3.0 * 1e-3 + 300.0 / 1e6)).abs() < 1e-12);
    }

    #[test]
    fn jitter_is_frozen_and_bounded() {
        let net = JitteredNetwork::new(MpichEthernet::new(3e-4, 1e8), 0.15, 42);
        let base = MpichEthernet::new(3e-4, 1e8);
        for bytes in [64u64, 800, 8000, 80_000] {
            let a = net.p2p_time(bytes);
            let b = net.p2p_time(bytes);
            assert_eq!(a, b, "identical calls must cost identically");
            let rel = (a / base.p2p_time(bytes) - 1.0).abs();
            assert!(rel <= 0.15 + 1e-12, "jitter out of band: {rel}");
        }
    }

    #[test]
    fn jitter_varies_across_inputs_and_seeds() {
        let n1 = JitteredNetwork::new(MpichEthernet::new(3e-4, 1e8), 0.15, 1);
        let n2 = JitteredNetwork::new(MpichEthernet::new(3e-4, 1e8), 0.15, 2);
        assert_ne!(n1.p2p_time(1000), n1.p2p_time(1001));
        assert_ne!(n1.p2p_time(1000), n2.p2p_time(1000));
        assert_ne!(n1.bcast_time(4, 1000), n1.bcast_time(8, 1000));
    }

    #[test]
    fn zero_sigma_is_passthrough() {
        let inner = MpichEthernet::new(3e-4, 1e8);
        let net = JitteredNetwork::new(inner, 0.0, 7);
        assert_eq!(net.p2p_time(4096), inner.p2p_time(4096));
        assert_eq!(net.barrier_time(8), inner.barrier_time(8));
    }

    #[test]
    #[should_panic(expected = "sigma must be in [0, 1)")]
    fn sigma_of_one_rejected() {
        JitteredNetwork::new(MpichEthernet::new(3e-4, 1e8), 1.0, 0);
    }

    /// Expands a run-length-encoded contribution list and returns the
    /// expanded sizes plus the rank index of the `offset`-th member of
    /// `root_run`.
    fn expand(runs: &[(u64, u64)], root_run: usize, offset: u64) -> (Vec<u64>, usize) {
        let mut sizes = Vec::new();
        let mut root = 0;
        for (i, &(bytes, count)) in runs.iter().enumerate() {
            if i == root_run {
                root = sizes.len() + offset as usize;
            }
            sizes.extend(std::iter::repeat_n(bytes, count as usize));
        }
        (sizes, root)
    }

    #[test]
    fn classed_gather_matches_expanded_bit_for_bit() {
        let runs: Vec<(u64, u64)> = vec![(4096, 1), (800, 37), (1600, 5), (800, 2)];
        let models: Vec<Box<dyn NetworkModel>> = vec![
            Box::new(ConstantLatency::new(1e-3)),
            Box::new(SwitchedNetwork::new(1e-4, 1e7)),
            Box::new(SharedEthernet::new(1e-4, 1.25e7)),
            Box::new(MpichEthernet::new(0.30e-3, 1.0e8)),
        ];
        for m in &models {
            for root_run in 0..runs.len() {
                let classed = m.gather_time_classed(&runs, root_run).expect("flat model prices");
                // The root's position inside its run must not matter.
                for offset in [0, runs[root_run].1 - 1] {
                    let (sizes, root) = expand(&runs, root_run, offset);
                    let expanded = m.gather_time(&sizes, root);
                    assert_eq!(classed.to_bits(), expanded.to_bits(), "{} root {root}", m.label());
                }
            }
        }
    }

    #[test]
    fn classed_gather_handles_degenerate_lists() {
        let m = MpichEthernet::new(0.30e-3, 1.0e8);
        assert_eq!(m.gather_time_classed(&[(800, 1)], 0), Some(0.0));
        assert_eq!(SharedEthernet::new(1e-4, 1e7).gather_time_classed(&[(800, 1)], 0), Some(0.0));
        // Overflowing the per-rank u64 total refuses rather than lies.
        assert_eq!(m.gather_time_classed(&[(u64::MAX, 3)], 0), None);
    }

    #[test]
    fn classed_p2p_matches_endpoint_blind_cost() {
        let flat: Vec<Box<dyn NetworkModel>> = vec![
            Box::new(ConstantLatency::new(1e-3)),
            Box::new(SwitchedNetwork::new(1e-4, 1e7)),
            Box::new(SharedEthernet::new(1e-4, 1.25e7)),
            Box::new(MpichEthernet::new(0.30e-3, 1.0e8)),
        ];
        for m in &flat {
            for bytes in [0u64, 8, 800, 1 << 20] {
                let classed = m.p2p_time_class(bytes).expect("flat model is endpoint-blind");
                assert_eq!(classed.to_bits(), m.p2p_time_between(3, 11, bytes).to_bits());
            }
        }
        // Endpoint-dependent pricing must refuse the classed shortcut.
        let jittered = JitteredNetwork::new(MpichEthernet::new(0.30e-3, 1.0e8), 0.15, 42);
        assert_eq!(jittered.p2p_time_class(800), None);
        assert_eq!(jittered.gather_time_classed(&[(800, 4)], 0), None);
    }

    #[test]
    fn trait_objects_are_usable() {
        let models: Vec<Box<dyn NetworkModel>> = vec![
            Box::new(ConstantLatency::new(1e-3)),
            Box::new(SwitchedNetwork::new(1e-4, 1e7)),
            Box::new(SharedEthernet::new(1e-4, 1e7)),
            Box::new(MpichEthernet::new(1e-4, 1e7)),
        ];
        for m in &models {
            assert!(m.p2p_time(100) >= 0.0);
            assert!(m.bcast_time(8, 100) >= 0.0);
        }
    }
}
