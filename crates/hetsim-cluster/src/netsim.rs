//! Message-level network simulation on the discrete-event core.
//!
//! The analytic [`crate::network::SharedEthernet`] model asserts that a
//! collective among `p` processes costs the *sum* of its transfers
//! because the medium serializes. This module simulates that medium one
//! transfer at a time: transfers queue for the wire in arrival order
//! (ties by request order), each occupying it for `alpha + bytes/beta`.
//! The experiment harness uses it to validate the closed-form collective
//! costs and to study contention beyond what the closed forms capture
//! (e.g. staggered arrivals from heterogeneous compute phases).

use crate::engine::Simulator;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One transfer request presented to the shared medium.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferRequest {
    /// Time at which the message is ready to enter the wire.
    pub ready: SimTime,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Sending rank (for reporting only; the medium is shared).
    pub source: usize,
    /// Receiving rank (for reporting only).
    pub dest: usize,
}

/// Completion record for one simulated transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferOutcome {
    /// The original request.
    pub request: TransferRequest,
    /// When the transfer began occupying the medium.
    pub start: SimTime,
    /// When the last byte arrived.
    pub finish: SimTime,
}

impl TransferOutcome {
    /// Queueing delay experienced before the wire was acquired.
    pub fn queueing_delay(&self) -> SimTime {
        self.start - self.request.ready
    }
}

/// A single shared medium with per-message latency `alpha` (seconds) and
/// bandwidth `beta` (bytes/second), served FIFO by ready time.
#[derive(Debug, Clone, Copy)]
pub struct SharedMedium {
    /// Per-message latency in seconds.
    pub alpha: f64,
    /// Bandwidth in bytes per second.
    pub beta: f64,
}

#[derive(Debug)]
enum Ev {
    Arrive(usize), // index into the request list
}

impl SharedMedium {
    /// Creates the medium. Panics on invalid parameters.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha.is_finite() && alpha >= 0.0, "latency must be ≥ 0");
        assert!(beta.is_finite() && beta > 0.0, "bandwidth must be > 0");
        SharedMedium { alpha, beta }
    }

    /// Occupancy time of one transfer.
    pub fn service_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(self.alpha + bytes as f64 / self.beta)
    }

    /// Simulates the requests through the shared medium and returns their
    /// outcomes in request order.
    ///
    /// Requests are served in ready-time order with ties broken by their
    /// position in `requests`, matching the deterministic tie-breaking of
    /// the event engine.
    pub fn simulate(&self, requests: &[TransferRequest]) -> Vec<TransferOutcome> {
        let mut sim: Simulator<Ev> = Simulator::new();
        for (i, r) in requests.iter().enumerate() {
            sim.schedule(r.ready, Ev::Arrive(i));
        }
        let mut wire_free = SimTime::ZERO;
        let mut outcomes: Vec<Option<TransferOutcome>> = vec![None; requests.len()];
        sim.run_to_completion(|now, ev, _sched| {
            let Ev::Arrive(i) = ev;
            let req = requests[i];
            let start = now.max(wire_free);
            let finish = start + self.service_time(req.bytes);
            wire_free = finish;
            outcomes[i] = Some(TransferOutcome { request: req, start, finish });
        });
        outcomes.into_iter().map(|o| o.expect("every request simulated")).collect()
    }

    /// Simulated completion time of a broadcast: `p − 1` transfers of
    /// `bytes` ready simultaneously at `ready`.
    pub fn bcast_finish(&self, p: usize, bytes: u64, ready: SimTime) -> SimTime {
        if p <= 1 {
            return ready;
        }
        let requests: Vec<TransferRequest> =
            (1..p).map(|dest| TransferRequest { ready, bytes, source: 0, dest }).collect();
        self.simulate(&requests).into_iter().map(|o| o.finish).max().unwrap_or(ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{NetworkModel, SharedEthernet};

    fn req(ready_s: f64, bytes: u64) -> TransferRequest {
        TransferRequest { ready: SimTime::from_secs(ready_s), bytes, source: 0, dest: 1 }
    }

    #[test]
    fn single_transfer_has_no_queueing() {
        let m = SharedMedium::new(1e-3, 1e6);
        let out = m.simulate(&[req(0.0, 1000)]);
        assert_eq!(out[0].start, SimTime::ZERO);
        assert!((out[0].finish.as_secs() - (1e-3 + 1e-3)).abs() < 1e-12);
        assert_eq!(out[0].queueing_delay(), SimTime::ZERO);
    }

    #[test]
    fn simultaneous_transfers_serialize() {
        let m = SharedMedium::new(1e-3, 1e6);
        let out = m.simulate(&[req(0.0, 1000), req(0.0, 1000), req(0.0, 1000)]);
        let service = 2e-3;
        for (k, o) in out.iter().enumerate() {
            assert!(
                (o.start.as_secs() - k as f64 * service).abs() < 1e-12,
                "transfer {k} start {o:?}"
            );
        }
        assert!((out[2].finish.as_secs() - 3.0 * service).abs() < 1e-12);
    }

    #[test]
    fn idle_medium_serves_immediately() {
        let m = SharedMedium::new(1e-3, 1e6);
        let out = m.simulate(&[req(0.0, 1000), req(10.0, 1000)]);
        assert_eq!(out[1].start, SimTime::from_secs(10.0));
    }

    #[test]
    fn staggered_arrivals_queue_partially() {
        let m = SharedMedium::new(0.0, 1e6); // service = bytes/1e6 s
                                             // First occupies [0, 2]; second arrives at 1, waits until 2.
        let out = m.simulate(&[req(0.0, 2_000_000), req(1.0, 1_000_000)]);
        assert_eq!(out[1].start, SimTime::from_secs(2.0));
        assert_eq!(out[1].finish, SimTime::from_secs(3.0));
        assert_eq!(out[1].queueing_delay(), SimTime::from_secs(1.0));
    }

    #[test]
    fn simulated_bcast_matches_analytic_shared_ethernet() {
        // The closed-form SharedEthernet bcast cost must equal the
        // event-level simulation for simultaneous transfers.
        let alpha = 0.3e-3;
        let beta = 1.25e7;
        let medium = SharedMedium::new(alpha, beta);
        let analytic = SharedEthernet::new(alpha, beta);
        for p in [1, 2, 4, 8, 16, 32] {
            for bytes in [0u64, 800, 8000, 80_000] {
                let sim_t = medium.bcast_finish(p, bytes, SimTime::ZERO).as_secs();
                let ana_t = analytic.bcast_time(p, bytes);
                assert!(
                    (sim_t - ana_t).abs() < 1e-12,
                    "p={p} bytes={bytes}: sim {sim_t} vs analytic {ana_t}"
                );
            }
        }
    }

    #[test]
    fn outcomes_keep_request_order() {
        let m = SharedMedium::new(1e-3, 1e6);
        let reqs = [req(2.0, 10), req(0.0, 10), req(1.0, 10)];
        let out = m.simulate(&reqs);
        for (o, r) in out.iter().zip(reqs.iter()) {
            assert_eq!(o.request, *r);
        }
        // But service order follows ready time.
        assert!(out[1].start < out[2].start && out[2].start < out[0].start);
    }

    #[test]
    fn zero_byte_transfer_costs_latency_only() {
        let m = SharedMedium::new(5e-4, 1e6);
        let out = m.simulate(&[req(0.0, 0)]);
        assert!((out[0].finish.as_secs() - 5e-4).abs() < 1e-15);
    }

    #[test]
    fn empty_request_list_is_fine() {
        let m = SharedMedium::new(1e-3, 1e6);
        assert!(m.simulate(&[]).is_empty());
        assert_eq!(m.bcast_finish(1, 100, SimTime::ZERO), SimTime::ZERO);
    }

    #[test]
    fn determinism_of_simulation() {
        let m = SharedMedium::new(1e-4, 1e7);
        let reqs: Vec<TransferRequest> =
            (0..100).map(|i| req((i % 13) as f64 * 0.01, 100 * (i as u64 + 1))).collect();
        let a = m.simulate(&reqs);
        let b = m.simulate(&reqs);
        assert_eq!(a, b);
    }
}
