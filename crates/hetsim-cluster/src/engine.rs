//! Deterministic discrete-event simulation core.
//!
//! A minimal but complete DES kernel: a priority queue of timestamped
//! events with deterministic FIFO tie-breaking (events scheduled earlier
//! fire first at equal timestamps), a monotone virtual clock, and a
//! handler-driven run loop. The network simulator ([`crate::netsim`])
//! and several tests are built on it; it is exposed publicly so
//! downstream experiments can script their own event-level studies.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event carrying a user payload.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behaviour inside BinaryHeap (max-heap):
        // earlier time = greater priority; ties broken by insertion order.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Handle passed to the event handler for scheduling follow-up events.
pub struct Scheduler<E> {
    pending: Vec<(SimTime, E)>,
    now: SimTime,
}

impl<E> Scheduler<E> {
    /// Schedules `payload` to fire `delay` after the current event.
    ///
    /// # Panics
    /// Panics if `delay` is negative (causality violation).
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        assert!(delay.as_secs() >= 0.0, "cannot schedule into the past");
        self.pending.push((self.now + delay, payload));
    }

    /// Schedules `payload` at an absolute time ≥ now.
    ///
    /// # Panics
    /// Panics if `at` precedes the current simulation time.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.pending.push((at, payload));
    }

    /// Current simulation time (the timestamp of the event being handled).
    pub fn now(&self) -> SimTime {
        self.now
    }
}

/// Discrete-event simulator over payload type `E`.
///
/// Events fire in timestamp order; equal timestamps fire in scheduling
/// order, which makes every run bit-deterministic.
pub struct Simulator<E> {
    queue: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// An empty simulator at time zero.
    pub fn new() -> Self {
        Simulator { queue: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO, processed: 0 }
    }

    /// Seeds an initial event at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(Scheduled { time: at, seq: self.next_seq, payload });
        self.next_seq += 1;
    }

    /// Current simulation time: the timestamp of the last event processed.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Runs until the queue drains or `max_events` have fired, whichever
    /// comes first. The handler may schedule follow-up events through the
    /// provided [`Scheduler`]. Returns the number of events processed by
    /// this call.
    pub fn run<F>(&mut self, max_events: u64, mut handler: F) -> u64
    where
        F: FnMut(SimTime, E, &mut Scheduler<E>),
    {
        let mut fired = 0;
        while fired < max_events {
            let Some(ev) = self.queue.pop() else { break };
            debug_assert!(ev.time >= self.now, "event queue went backwards");
            self.now = ev.time;
            let mut sched = Scheduler { pending: Vec::new(), now: self.now };
            handler(self.now, ev.payload, &mut sched);
            for (at, payload) in sched.pending {
                self.queue.push(Scheduled { time: at, seq: self.next_seq, payload });
                self.next_seq += 1;
            }
            fired += 1;
            self.processed += 1;
        }
        fired
    }

    /// Runs to quiescence (no pending events). Returns events processed.
    pub fn run_to_completion<F>(&mut self, handler: F) -> u64
    where
        F: FnMut(SimTime, E, &mut Scheduler<E>),
    {
        self.run(u64::MAX, handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::from_secs(3.0), "c");
        sim.schedule(SimTime::from_secs(1.0), "a");
        sim.schedule(SimTime::from_secs(2.0), "b");
        let mut order = Vec::new();
        sim.run_to_completion(|_, e, _| order.push(e));
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut sim = Simulator::new();
        for i in 0..10 {
            sim.schedule(SimTime::from_secs(1.0), i);
        }
        let mut order = Vec::new();
        sim.run_to_completion(|_, e, _| order.push(e));
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::from_secs(0.5), ());
        sim.schedule(SimTime::from_secs(1.5), ());
        let mut stamps = Vec::new();
        sim.run_to_completion(|t, _, _| stamps.push(t));
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(sim.now(), SimTime::from_secs(1.5));
    }

    #[test]
    fn handler_can_schedule_follow_ups() {
        // A chain: each event schedules the next until a countdown hits 0.
        let mut sim = Simulator::new();
        sim.schedule(SimTime::ZERO, 5u32);
        let mut seen = Vec::new();
        sim.run_to_completion(|_, n, sched| {
            seen.push(n);
            if n > 0 {
                sched.schedule_in(SimTime::from_secs(1.0), n - 1);
            }
        });
        assert_eq!(seen, vec![5, 4, 3, 2, 1, 0]);
        assert_eq!(sim.now(), SimTime::from_secs(5.0));
        assert_eq!(sim.processed(), 6);
    }

    #[test]
    fn schedule_at_absolute_time() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::ZERO, "start");
        let mut log = Vec::new();
        sim.run_to_completion(|t, e, sched| {
            log.push((t, e));
            if e == "start" {
                sched.schedule_at(SimTime::from_secs(10.0), "later");
            }
        });
        assert_eq!(log[1], (SimTime::from_secs(10.0), "later"));
    }

    #[test]
    fn max_events_bounds_execution() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::ZERO, 0u64);
        // Infinite self-perpetuating chain, bounded by max_events.
        let fired = sim.run(100, |_, n, sched| {
            sched.schedule_in(SimTime::from_secs(1.0), n + 1);
        });
        assert_eq!(fired, 100);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::from_secs(5.0), ());
        sim.run_to_completion(|_, _, sched| {
            sched.schedule_at(SimTime::from_secs(1.0), ());
        });
    }

    #[test]
    fn determinism_across_runs() {
        let run_once = || {
            let mut sim = Simulator::new();
            for i in 0..50u64 {
                sim.schedule(SimTime::from_secs((i % 7) as f64), i);
            }
            let mut order = Vec::new();
            sim.run_to_completion(|_, e, _| order.push(e));
            order
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn empty_simulator_runs_zero_events() {
        let mut sim: Simulator<()> = Simulator::new();
        assert_eq!(sim.run_to_completion(|_, _, _| {}), 0);
        assert_eq!(sim.now(), SimTime::ZERO);
    }
}
