//! Cluster specifications: ordered collections of nodes.
//!
//! A [`ClusterSpec`] is the machine half of an *algorithm–system
//! combination*. Its key derived quantity is the system **marked speed**
//! `C = Σᵢ Cᵢ` (Definition 2 of the paper); the isospeed-efficiency
//! scalability function compares systems by `C`, not by node count.

use crate::node::{NodeKind, NodeSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ordered set of nodes forming one computing system.
///
/// Rank `i` of an SPMD program runs on `nodes()[i]`; the ordering is part
/// of the specification (the paper places the server node at rank 0,
/// where process 0 distributes and collects data).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    nodes: Vec<NodeSpec>,
    /// Human-readable label, e.g. `"sunwulf-ge-4"`.
    pub label: String,
}

impl ClusterSpec {
    /// Builds a cluster from nodes. Errors on an empty node list.
    pub fn new(label: impl Into<String>, nodes: Vec<NodeSpec>) -> Result<ClusterSpec, String> {
        if nodes.is_empty() {
            return Err("a cluster needs at least one node".to_string());
        }
        Ok(ClusterSpec { nodes, label: label.into() })
    }

    /// A homogeneous cluster of `p` identical synthetic nodes, used to
    /// check that isospeed-efficiency reduces to classic isospeed.
    pub fn homogeneous(p: usize, marked_speed_mflops: f64) -> ClusterSpec {
        assert!(p > 0, "need at least one node");
        let nodes =
            (0..p).map(|i| NodeSpec::synthetic(format!("homo-{i}"), marked_speed_mflops)).collect();
        ClusterSpec { nodes, label: format!("homogeneous-{p}x{marked_speed_mflops}") }
    }

    /// The nodes, in rank order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Number of nodes (= number of SPMD processes under the paper's HoHe
    /// strategy: one process per processor).
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// System marked speed `C = Σ Cᵢ` in Mflop/s (Definition 2).
    pub fn marked_speed_mflops(&self) -> f64 {
        self.nodes.iter().map(|n| n.marked_speed_mflops).sum()
    }

    /// System marked speed in flop/s.
    pub fn marked_speed_flops(&self) -> f64 {
        self.marked_speed_mflops() * 1e6
    }

    /// Structural identity for memoization keys: the per-rank marked
    /// speed bits, in rank order. Two clusters with equal fingerprints
    /// produce identical virtual timings for any kernel, because the
    /// runtime reads nothing else from a node — labels and node kinds
    /// are reporting metadata and deliberately excluded.
    pub fn fingerprint(&self) -> Vec<u64> {
        self.nodes.iter().map(|n| n.marked_speed_mflops.to_bits()).collect()
    }

    /// Relative speed fractions `Cᵢ / C`, which drive proportional data
    /// distribution. Sums to 1 up to rounding.
    pub fn speed_fractions(&self) -> Vec<f64> {
        let total = self.marked_speed_mflops();
        self.nodes.iter().map(|n| n.marked_speed_mflops / total).collect()
    }

    /// True when all nodes have identical marked speed (the homogeneous
    /// special case in which isospeed-efficiency degenerates to isospeed).
    pub fn is_homogeneous(&self) -> bool {
        let first = self.nodes[0].marked_speed_mflops;
        self.nodes.iter().all(|n| n.marked_speed_mflops == first)
    }

    /// The slowest node's marked speed in Mflop/s.
    pub fn min_node_speed_mflops(&self) -> f64 {
        self.nodes.iter().map(|n| n.marked_speed_mflops).fold(f64::INFINITY, f64::min)
    }

    /// The fastest node's marked speed in Mflop/s.
    pub fn max_node_speed_mflops(&self) -> f64 {
        self.nodes.iter().map(|n| n.marked_speed_mflops).fold(0.0, f64::max)
    }

    /// Heterogeneity ratio: fastest/slowest marked speed (1.0 = homogeneous).
    pub fn heterogeneity_ratio(&self) -> f64 {
        self.max_node_speed_mflops() / self.min_node_speed_mflops()
    }

    /// Count of nodes of a given hardware kind.
    pub fn count_kind(&self, kind: NodeKind) -> usize {
        self.nodes.iter().filter(|n| n.kind == kind).count()
    }

    /// Returns a new cluster with one extra node appended — the paper's
    /// "increasing nodes" way of growing system size.
    pub fn with_node(&self, node: NodeSpec) -> ClusterSpec {
        let mut nodes = self.nodes.clone();
        nodes.push(node);
        ClusterSpec { nodes, label: format!("{}+1", self.label) }
    }

    /// Returns a new cluster where node `index` is replaced — the paper's
    /// "upgrading to more powerful nodes" way of growing system size.
    ///
    /// # Panics
    /// Panics when `index` is out of range.
    pub fn with_upgraded_node(&self, index: usize, node: NodeSpec) -> ClusterSpec {
        let mut nodes = self.nodes.clone();
        nodes[index] = node;
        ClusterSpec { nodes, label: format!("{}-upgraded", self.label) }
    }
}

impl fmt::Display for ClusterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} nodes, C = {:.2} Mflop/s",
            self.label,
            self.size(),
            self.marked_speed_mflops()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn het_cluster() -> ClusterSpec {
        ClusterSpec::new(
            "test",
            vec![
                NodeSpec::synthetic("a", 90.0),
                NodeSpec::synthetic("b", 50.0),
                NodeSpec::synthetic("c", 110.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn marked_speed_is_sum_of_nodes() {
        // Mirrors the paper's worked example: system marked speed is the
        // sum of the participating nodes' marked speeds.
        assert_eq!(het_cluster().marked_speed_mflops(), 250.0);
        assert_eq!(het_cluster().marked_speed_flops(), 2.5e8);
    }

    #[test]
    fn empty_cluster_rejected() {
        assert!(ClusterSpec::new("empty", vec![]).is_err());
    }

    #[test]
    fn speed_fractions_sum_to_one() {
        let f = het_cluster().speed_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 90.0 / 250.0).abs() < 1e-12);
    }

    #[test]
    fn homogeneous_detection() {
        assert!(ClusterSpec::homogeneous(4, 50.0).is_homogeneous());
        assert!(!het_cluster().is_homogeneous());
    }

    #[test]
    fn homogeneous_marked_speed_is_p_times_ci() {
        // In the homogeneous case C = p·Cᵢ, recovering the isospeed view.
        let c = ClusterSpec::homogeneous(8, 50.0);
        assert_eq!(c.marked_speed_mflops(), 400.0);
        assert_eq!(c.size(), 8);
    }

    #[test]
    fn heterogeneity_ratio() {
        assert!((het_cluster().heterogeneity_ratio() - 110.0 / 50.0).abs() < 1e-12);
        assert_eq!(ClusterSpec::homogeneous(3, 10.0).heterogeneity_ratio(), 1.0);
    }

    #[test]
    fn with_node_grows_system() {
        let base = het_cluster();
        let grown = base.with_node(NodeSpec::synthetic("d", 50.0));
        assert_eq!(grown.size(), 4);
        assert_eq!(grown.marked_speed_mflops(), 300.0);
        // Original untouched.
        assert_eq!(base.size(), 3);
    }

    #[test]
    fn with_upgraded_node_changes_speed_in_place() {
        let upgraded = het_cluster().with_upgraded_node(1, NodeSpec::synthetic("b2", 200.0));
        assert_eq!(upgraded.size(), 3);
        assert_eq!(upgraded.marked_speed_mflops(), 400.0);
    }

    #[test]
    fn min_max_speeds() {
        let c = het_cluster();
        assert_eq!(c.min_node_speed_mflops(), 50.0);
        assert_eq!(c.max_node_speed_mflops(), 110.0);
    }

    #[test]
    fn count_kind_counts() {
        let c = het_cluster();
        assert_eq!(c.count_kind(NodeKind::Synthetic), 3);
        assert_eq!(c.count_kind(NodeKind::SunBlade), 0);
    }
}
