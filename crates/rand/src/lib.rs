//! Minimal, deterministic, offline re-implementation of the `rand 0.9`
//! surface this workspace uses (same constraint as the
//! `crates/proptest` shim: no network access to crates.io).
//!
//! The only production call site is `Matrix::random`, which needs a
//! seeded uniform draw in a half-open `f64` range. [`rngs::StdRng`] is
//! a splitmix64 generator — not the real crate's ChaCha12, but every
//! use in this workspace only requires *determinism per seed*, never a
//! specific stream (virtual timings are independent of matrix values by
//! design; see the `hetsim-mpi` crate docs).

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// Seedable generators (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform draws (`rand::Rng` subset).
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw in the half-open range `[range.start, range.end)`.
    fn random_range(&mut self, range: core::ops::Range<f64>) -> f64 {
        debug_assert!(range.start < range.end, "empty range");
        // 53 uniform mantissa bits → [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + (range.end - range.start) * unit
    }
}

/// Concrete generators (`rand::rngs` subset).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_draws_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x), "{x} escaped the range");
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
