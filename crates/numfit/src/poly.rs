//! Dense univariate polynomials with `f64` coefficients.
//!
//! Coefficients are stored in ascending order of degree:
//! `coeffs[k]` multiplies `x^k`. The representation is kept *normalized* —
//! trailing zero coefficients are trimmed — so `degree()` is meaningful.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense univariate polynomial `c0 + c1·x + c2·x² + …`.
///
/// The zero polynomial is represented by an empty coefficient vector and
/// reports degree 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Builds a polynomial from ascending coefficients, trimming trailing
    /// zeros (exact `0.0` only; tiny values are preserved).
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        Polynomial { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Polynomial::new(vec![c])
    }

    /// The monomial `x^k`.
    pub fn monomial(k: usize) -> Self {
        let mut coeffs = vec![0.0; k + 1];
        coeffs[k] = 1.0;
        Polynomial { coeffs }
    }

    /// Ascending coefficients (`coeffs()[k]` multiplies `x^k`).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree of the polynomial. The zero polynomial reports 0.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// True if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluates the polynomial at `x` using Horner's scheme.
    pub fn eval(&self, x: f64) -> f64 {
        let mut acc = 0.0;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Evaluates the polynomial at every point of `xs`.
    pub fn eval_many(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.eval(x)).collect()
    }

    /// First derivative.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::zero();
        }
        let coeffs = self.coeffs.iter().enumerate().skip(1).map(|(k, &c)| c * k as f64).collect();
        Polynomial::new(coeffs)
    }

    /// Antiderivative with integration constant 0.
    pub fn antiderivative(&self) -> Polynomial {
        if self.coeffs.is_empty() {
            return Polynomial::zero();
        }
        let mut coeffs = Vec::with_capacity(self.coeffs.len() + 1);
        coeffs.push(0.0);
        for (k, &c) in self.coeffs.iter().enumerate() {
            coeffs.push(c / (k as f64 + 1.0));
        }
        Polynomial::new(coeffs)
    }

    /// Composes with an affine substitution, returning `p(a·x + b)`.
    ///
    /// Used to undo the variable scaling applied by the least-squares
    /// fitter: a fit performed in scaled coordinates `u = (x - mu) / s` is
    /// mapped back to raw `x` via `compose_affine(1/s, -mu/s)`.
    pub fn compose_affine(&self, a: f64, b: f64) -> Polynomial {
        // Horner in polynomial arithmetic: result = c_n, then repeatedly
        // result = result * (a·x + b) + c_k.
        let lin = Polynomial::new(vec![b, a]);
        let mut result = Polynomial::zero();
        for &c in self.coeffs.iter().rev() {
            result = &(&result * &lin) + &Polynomial::constant(c);
        }
        result
    }

    /// Returns `p` scaled by the scalar `s`.
    pub fn scale(&self, s: f64) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// True if every coefficient is finite.
    pub fn is_finite(&self) -> bool {
        self.coeffs.iter().all(|c| c.is_finite())
    }
}

impl std::ops::Add for &Polynomial {
    type Output = Polynomial;
    fn add(self, rhs: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut coeffs = vec![0.0; n];
        for (k, &c) in self.coeffs.iter().enumerate() {
            coeffs[k] += c;
        }
        for (k, &c) in rhs.coeffs.iter().enumerate() {
            coeffs[k] += c;
        }
        Polynomial::new(coeffs)
    }
}

impl std::ops::Sub for &Polynomial {
    type Output = Polynomial;
    fn sub(self, rhs: &Polynomial) -> Polynomial {
        self + &rhs.scale(-1.0)
    }
}

impl std::ops::Mul for &Polynomial {
    type Output = Polynomial;
    fn mul(self, rhs: &Polynomial) -> Polynomial {
        if self.is_zero() || rhs.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Polynomial::new(coeffs)
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.coeffs.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate() {
            if c == 0.0 && self.coeffs.len() > 1 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c < 0.0 { "-" } else { "+" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            let mag = c.abs();
            match k {
                0 => write!(f, "{mag:.4}")?,
                1 => write!(f, "{mag:.4}·x")?,
                _ => write!(f, "{mag:.4}·x^{k}")?,
            }
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coeffs: &[f64]) -> Polynomial {
        Polynomial::new(coeffs.to_vec())
    }

    #[test]
    fn eval_matches_direct_expansion() {
        // 1 + 2x + 3x²
        let poly = p(&[1.0, 2.0, 3.0]);
        assert_eq!(poly.eval(0.0), 1.0);
        assert_eq!(poly.eval(1.0), 6.0);
        assert_eq!(poly.eval(2.0), 1.0 + 4.0 + 12.0);
        assert_eq!(poly.eval(-1.0), 1.0 - 2.0 + 3.0);
    }

    #[test]
    fn zero_polynomial_behaviour() {
        let z = Polynomial::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), 0);
        assert_eq!(z.eval(123.0), 0.0);
        assert_eq!(z.derivative(), Polynomial::zero());
        assert_eq!(format!("{z}"), "0");
    }

    #[test]
    fn trailing_zeros_are_trimmed() {
        let poly = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(poly.degree(), 1);
        assert_eq!(poly.coeffs(), &[1.0, 2.0]);
    }

    #[test]
    fn derivative_of_cubic() {
        // 5 + 4x + 3x² + 2x³ → 4 + 6x + 6x²
        let poly = p(&[5.0, 4.0, 3.0, 2.0]);
        assert_eq!(poly.derivative(), p(&[4.0, 6.0, 6.0]));
    }

    #[test]
    fn antiderivative_then_derivative_roundtrips() {
        let poly = p(&[1.0, -2.0, 0.5, 4.0]);
        assert_eq!(poly.antiderivative().derivative(), poly);
    }

    #[test]
    fn addition_and_subtraction() {
        let a = p(&[1.0, 2.0]);
        let b = p(&[0.0, -2.0, 3.0]);
        assert_eq!(&a + &b, p(&[1.0, 0.0, 3.0]));
        assert_eq!(&a - &a, Polynomial::zero());
    }

    #[test]
    fn multiplication_matches_foil() {
        // (1 + x)(1 - x) = 1 - x²
        let a = p(&[1.0, 1.0]);
        let b = p(&[1.0, -1.0]);
        assert_eq!(&a * &b, p(&[1.0, 0.0, -1.0]));
    }

    #[test]
    fn monomial_and_constant_constructors() {
        assert_eq!(Polynomial::monomial(3).eval(2.0), 8.0);
        assert_eq!(Polynomial::constant(7.5).eval(100.0), 7.5);
        assert_eq!(Polynomial::constant(0.0), Polynomial::zero());
    }

    #[test]
    fn compose_affine_identity() {
        let poly = p(&[1.0, 2.0, 3.0]);
        let composed = poly.compose_affine(1.0, 0.0);
        assert_eq!(composed, poly);
    }

    #[test]
    fn compose_affine_shifts_argument() {
        // p(x) = x², composed with (x + 1) → (x+1)² = 1 + 2x + x².
        let poly = Polynomial::monomial(2);
        let composed = poly.compose_affine(1.0, 1.0);
        assert_eq!(composed, p(&[1.0, 2.0, 1.0]));
        // Spot check evaluation consistency at several points.
        for &x in &[-3.0, 0.0, 0.5, 2.0] {
            let direct = poly.eval(2.0 * x - 1.0);
            let comp = poly.compose_affine(2.0, -1.0).eval(x);
            assert!((direct - comp).abs() < 1e-12, "x={x}: {direct} vs {comp}");
        }
    }

    #[test]
    fn display_is_readable() {
        let poly = p(&[1.0, -2.0, 3.0]);
        let s = format!("{poly}");
        assert!(s.contains('x'), "display: {s}");
        assert!(s.contains("x^2"), "display: {s}");
    }

    #[test]
    fn eval_many_matches_eval() {
        let poly = p(&[0.5, 1.5, -0.25]);
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = poly.eval_many(&xs);
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(poly.eval(*x), *y);
        }
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(p(&[1.0, 2.0]).is_finite());
        assert!(!Polynomial { coeffs: vec![1.0, f64::NAN] }.is_finite());
    }
}
