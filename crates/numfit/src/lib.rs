//! # numfit — numerical fitting utilities for scalability experiments
//!
//! The isospeed-efficiency methodology of Sun, Chen and Wu (ICPP 2005)
//! repeatedly performs two numerical operations:
//!
//! 1. **Fit a polynomial trend line** through sampled
//!    (problem size, speed-efficiency) points — the paper's Fig. 1 and
//!    Fig. 2 use polynomial trend lines over the measured samples.
//! 2. **Invert the trend line**: read off the problem size `N` required to
//!    reach a given target speed-efficiency (e.g. `E_s = 0.3` needs
//!    `N ≈ 310` on two nodes).
//!
//! This crate provides exactly those primitives, built from scratch on
//! `f64` slices with no external numerics dependency:
//!
//! * [`poly::Polynomial`] — dense univariate polynomial with Horner
//!   evaluation, differentiation and arithmetic.
//! * [`lsq`] — least-squares polynomial fitting via normal equations with
//!   variable scaling for conditioning, plus goodness-of-fit statistics.
//! * [`solve`] — small dense linear solves (partial-pivot Gaussian
//!   elimination) used by the fitter and exposed for reuse.
//! * [`invert`] — bracketing + bisection root finding and monotone
//!   inversion of fitted curves.
//! * [`stats`] — descriptive statistics and simple linear regression used
//!   when calibrating machine parameters.
//! * [`series`] — utilities over sampled `(x, y)` series: sorting,
//!   deduplication, piecewise-linear interpolation and inversion.
//!
//! The crate is deliberately small and fully deterministic; every routine
//! is pure and panics only on programmer error (documented per function).

//! ## Example
//!
//! ```
//! use numfit::{invert_monotone, polyfit};
//!
//! // Fit a trend line through efficiency-like samples and invert it.
//! let n: Vec<f64> = (1..=10).map(|i| 100.0 * i as f64).collect();
//! let e: Vec<f64> = n.iter().map(|&x| x / (x + 700.0)).collect();
//! let fit = polyfit(&n, &e, 3).unwrap();
//! let required = invert_monotone(|x| fit.poly.eval(x), 100.0, 1000.0, 0.3, 1e-6).unwrap();
//! assert!((required - 300.0).abs() < 15.0, "analytic answer is 300");
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod error;
pub mod invert;
pub mod lsq;
pub mod poly;
pub mod series;
pub mod solve;
pub mod stats;

pub use error::FitError;
pub use invert::{bisect, invert_monotone, Bracket};
pub use lsq::{polyfit, polyfit_weighted, FitReport};
pub use poly::Polynomial;
pub use series::Series;

/// Convenience result alias for fallible numfit operations.
pub type Result<T> = std::result::Result<T, FitError>;
