//! Descriptive statistics and simple linear regression.
//!
//! Used by the machine-parameter calibration step of the scalability
//! predictor: point-to-point message times are regressed against message
//! size (`T = a + b·N`), and collective times against `log₂ p`, exactly
//! as the paper calibrates `T_send`, `T_bcast` and `T_barrier` on the
//! Sunwulf cluster (§4.5).

use crate::error::FitError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance (divides by `n`). Returns `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Coefficient of variation `σ/μ`; `None` if empty or the mean is 0.
pub fn coefficient_of_variation(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    if m == 0.0 {
        return None;
    }
    Some(stddev(xs)? / m.abs())
}

/// Minimum of a slice, ignoring nothing. `None` when empty.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum of a slice. `None` when empty.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Linear interpolated percentile in `[0, 100]`. `None` when empty or the
/// percentile is out of range.
pub fn percentile(xs: &[f64], pct: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&pct) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// Result of a simple linear regression `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Intercept `a` in `y = a + b·x`.
    pub intercept: f64,
    /// Slope `b` in `y = a + b·x`.
    pub slope: f64,
    /// Pearson correlation coefficient of the samples.
    pub r: f64,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Ordinary least-squares regression of `y` on `x`.
///
/// Errors on length mismatch, fewer than two points, non-finite input, or
/// zero variance in `x`.
pub fn linear_regression(x: &[f64], y: &[f64]) -> Result<LinearFit> {
    if x.len() != y.len() {
        return Err(FitError::LengthMismatch { x_len: x.len(), y_len: y.len() });
    }
    if x.len() < 2 {
        return Err(FitError::InsufficientData { got: x.len(), need: 2 });
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return Err(FitError::NonFinite);
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&xi, &yi) in x.iter().zip(y.iter()) {
        sxx += (xi - mx) * (xi - mx);
        syy += (yi - my) * (yi - my);
        sxy += (xi - mx) * (yi - my);
    }
    if sxx == 0.0 {
        return Err(FitError::SingularSystem);
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r = if syy == 0.0 { 1.0 } else { sxy / (sxx.sqrt() * syy.sqrt()) };
    Ok(LinearFit { intercept, slope, r })
}

/// A linear regression with coefficient standard errors — calibration
/// quality reporting for the §4.5 machine-parameter fits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFitWithErrors {
    /// The point estimates.
    pub fit: LinearFit,
    /// Standard error of the intercept.
    pub intercept_se: f64,
    /// Standard error of the slope.
    pub slope_se: f64,
    /// Residual standard deviation (`s` in the usual OLS notation).
    pub residual_sd: f64,
}

impl LinearFitWithErrors {
    /// Approximate 95% confidence interval for the slope
    /// (`±1.96·SE`; adequate for the ≥ 5-point calibration sweeps).
    pub fn slope_ci95(&self) -> (f64, f64) {
        (self.fit.slope - 1.96 * self.slope_se, self.fit.slope + 1.96 * self.slope_se)
    }
}

/// Ordinary least squares with coefficient standard errors.
///
/// Requires at least three points (so the residual degrees of freedom
/// `n − 2` are positive); otherwise errors like [`linear_regression`].
pub fn linear_regression_with_errors(x: &[f64], y: &[f64]) -> Result<LinearFitWithErrors> {
    if x.len() < 3 {
        return Err(FitError::InsufficientData { got: x.len(), need: 3 });
    }
    let fit = linear_regression(x, y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|&xi| (xi - mx) * (xi - mx)).sum();
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(&xi, &yi)| {
            let e = yi - fit.predict(xi);
            e * e
        })
        .sum();
    let residual_sd = (ss_res / (n - 2.0)).sqrt();
    let slope_se = residual_sd / sxx.sqrt();
    let intercept_se = residual_sd * (1.0 / n + mx * mx / sxx).sqrt();
    Ok(LinearFitWithErrors { fit, intercept_se, slope_se, residual_sd })
}

/// Relative error `|measured − reference| / |reference|`; `measured`
/// absolute error if the reference is zero. Used throughout the
/// experiment harness to compare predicted against measured scalability.
pub fn relative_error(measured: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        measured.abs()
    } else {
        (measured - reference).abs() / reference.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(variance(&xs), Some(4.0));
        assert_eq!(stddev(&xs), Some(2.0));
    }

    #[test]
    fn empty_slices_yield_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(percentile(&xs, 200.0), None);
    }

    #[test]
    fn percentile_handles_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs), Some(5.0));
    }

    #[test]
    fn regression_recovers_exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let fit = linear_regression(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn regression_message_time_model() {
        // Shape of the paper's T_send = a + b·N calibration.
        let sizes = [100.0, 200.0, 400.0, 800.0, 1600.0];
        let times: Vec<f64> = sizes.iter().map(|&n| 0.043 + 9e-5 * n).collect();
        let fit = linear_regression(&sizes, &times).unwrap();
        assert!((fit.intercept - 0.043).abs() < 1e-9);
        assert!((fit.slope - 9e-5).abs() < 1e-12);
    }

    #[test]
    fn regression_rejects_degenerate_x() {
        let err = linear_regression(&[1.0, 1.0], &[2.0, 3.0]).unwrap_err();
        assert_eq!(err, FitError::SingularSystem);
    }

    #[test]
    fn regression_rejects_single_point() {
        assert!(matches!(
            linear_regression(&[1.0], &[2.0]).unwrap_err(),
            FitError::InsufficientData { .. }
        ));
    }

    #[test]
    fn exact_line_has_zero_standard_errors() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|&v| 2.0 * v + 1.0).collect();
        let f = linear_regression_with_errors(&x, &y).unwrap();
        assert!(f.slope_se < 1e-12);
        assert!(f.intercept_se < 1e-12);
        assert!(f.residual_sd < 1e-12);
        let (lo, hi) = f.slope_ci95();
        assert!(lo <= 2.0 && 2.0 <= hi);
    }

    #[test]
    fn noisy_line_has_positive_errors_and_covering_ci() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| 3.0 * v + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let f = linear_regression_with_errors(&x, &y).unwrap();
        assert!(f.slope_se > 0.0);
        let (lo, hi) = f.slope_ci95();
        assert!(lo < 3.0 && 3.0 < hi, "true slope inside the CI: [{lo}, {hi}]");
    }

    #[test]
    fn errors_need_three_points() {
        assert!(matches!(
            linear_regression_with_errors(&[1.0, 2.0], &[1.0, 2.0]).unwrap_err(),
            FitError::InsufficientData { .. }
        ));
    }

    #[test]
    fn cv_of_constant_data_is_zero() {
        assert_eq!(coefficient_of_variation(&[3.0, 3.0, 3.0]), Some(0.0));
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), None);
    }

    #[test]
    fn relative_error_handles_zero_reference() {
        assert_eq!(relative_error(0.5, 0.0), 0.5);
        assert!((relative_error(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(0.9, 1.0) - 0.1).abs() < 1e-12);
    }
}
