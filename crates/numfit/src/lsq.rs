//! Least-squares polynomial fitting.
//!
//! Fits `y ≈ p(x)` for a polynomial `p` of a requested degree by solving
//! the normal equations `VᵀV c = Vᵀy` (Vandermonde `V`). Two practical
//! refinements keep the tiny solver numerically healthy on the problem
//! sizes that appear in scalability experiments (`x` up to a few
//! thousand, degree ≤ 5):
//!
//! * **Variable standardization** — fitting is performed in the scaled
//!   coordinate `u = (x − mean) / spread` and the resulting polynomial is
//!   composed back to raw `x`, which keeps the normal matrix conditioned.
//! * **Optional weights** — per-point non-negative weights for when some
//!   samples are more trustworthy (e.g. repeated measurements).

use crate::error::FitError;
use crate::poly::Polynomial;
use crate::solve::{solve_dense, DenseSystem};
use crate::Result;
use serde::{Deserialize, Serialize};

/// Result of a polynomial fit: the polynomial plus goodness-of-fit data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FitReport {
    /// Fitted polynomial in *raw* (unscaled) coordinates.
    pub poly: Polynomial,
    /// Coefficient of determination R² (1 = perfect fit). For a constant
    /// response the convention here is R² = 1 when residuals vanish.
    pub r_squared: f64,
    /// Root-mean-square residual in the units of `y`.
    pub rmse: f64,
    /// Largest absolute residual.
    pub max_abs_residual: f64,
    /// Number of samples fitted.
    pub n_samples: usize,
    /// Degree that was requested (the returned polynomial may have lower
    /// effective degree if high-order coefficients vanish).
    pub requested_degree: usize,
}

/// Fits a polynomial of `degree` through `(x, y)` samples (unweighted).
///
/// Requires at least `degree + 1` samples with distinct abscissae.
pub fn polyfit(x: &[f64], y: &[f64], degree: usize) -> Result<FitReport> {
    let w = vec![1.0; x.len()];
    polyfit_weighted(x, y, &w, degree)
}

/// Weighted least-squares polynomial fit.
///
/// `weights[i] ≥ 0` scales the influence of sample `i`; zero-weight
/// samples are ignored for fitting but still counted in residual
/// statistics. Errors on NaN input, length mismatches, negative weights,
/// too few points, or singular (collinear) data.
pub fn polyfit_weighted(x: &[f64], y: &[f64], weights: &[f64], degree: usize) -> Result<FitReport> {
    if x.len() != y.len() {
        return Err(FitError::LengthMismatch { x_len: x.len(), y_len: y.len() });
    }
    if weights.len() != x.len() {
        return Err(FitError::LengthMismatch { x_len: x.len(), y_len: weights.len() });
    }
    let need = degree + 1;
    if x.len() < need {
        return Err(FitError::InsufficientData { got: x.len(), need });
    }
    if x.iter().chain(y.iter()).chain(weights.iter()).any(|v| !v.is_finite()) {
        return Err(FitError::NonFinite);
    }
    if weights.iter().any(|&w| w < 0.0) {
        return Err(FitError::InvalidParameter("weights must be non-negative"));
    }

    // Standardize x for conditioning: u = (x - mu) / s.
    let n = x.len() as f64;
    let mu = x.iter().sum::<f64>() / n;
    let spread = {
        let var = x.iter().map(|&v| (v - mu) * (v - mu)).sum::<f64>() / n;
        let s = var.sqrt();
        if s > 0.0 {
            s
        } else {
            1.0 // all x equal; the normal matrix will be singular unless degree = 0
        }
    };
    let u: Vec<f64> = x.iter().map(|&v| (v - mu) / spread).collect();

    // Normal equations in scaled coordinates: M c = r with
    // M[j][k] = Σ w_i u_i^(j+k), r[j] = Σ w_i y_i u_i^j.
    let m = degree + 1;
    // Precompute power sums Σ w u^k for k = 0..=2·degree.
    let mut power_sums = vec![0.0f64; 2 * degree + 1];
    let mut rhs = vec![0.0f64; m];
    for ((&ui, &yi), &wi) in u.iter().zip(y.iter()).zip(weights.iter()) {
        let mut upow = 1.0;
        for (k, slot) in power_sums.iter_mut().enumerate() {
            *slot += wi * upow;
            if k < 2 * degree {
                upow *= ui;
            }
        }
        let mut upow = 1.0;
        for slot in rhs.iter_mut() {
            *slot += wi * yi * upow;
            upow *= ui;
        }
    }
    let mut a = vec![0.0f64; m * m];
    for j in 0..m {
        for k in 0..m {
            a[j * m + k] = power_sums[j + k];
        }
    }
    let system = DenseSystem::new(a, rhs)?;
    let coeffs_scaled = solve_dense(&system)?;

    // Map back to raw x: p(x) = q((x - mu)/s) = q( (1/s)·x + (-mu/s) ).
    let poly = Polynomial::new(coeffs_scaled).compose_affine(1.0 / spread, -mu / spread);
    if !poly.is_finite() {
        return Err(FitError::SingularSystem);
    }

    // Residual statistics (unweighted, over all samples).
    let mean_y = y.iter().sum::<f64>() / n;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    let mut max_abs = 0.0f64;
    for (&xi, &yi) in x.iter().zip(y.iter()) {
        let e = yi - poly.eval(xi);
        ss_res += e * e;
        ss_tot += (yi - mean_y) * (yi - mean_y);
        max_abs = max_abs.max(e.abs());
    }
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else if ss_res <= 1e-24 {
        1.0
    } else {
        0.0
    };

    Ok(FitReport {
        poly,
        r_squared,
        rmse: (ss_res / n).sqrt(),
        max_abs_residual: max_abs,
        n_samples: x.len(),
        requested_degree: degree,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 3.0 * v - 2.0).collect();
        let fit = polyfit(&x, &y, 1).unwrap();
        assert!((fit.poly.eval(100.0) - 298.0).abs() < 1e-8);
        assert!(fit.r_squared > 1.0 - 1e-12);
        assert!(fit.rmse < 1e-9);
    }

    #[test]
    fn recovers_exact_cubic_with_large_abscissae() {
        // Problem sizes like the paper's N ∈ [100, 600]: conditioning test.
        let x: Vec<f64> = (1..=20).map(|i| 100.0 + 25.0 * i as f64).collect();
        let y: Vec<f64> =
            x.iter().map(|&v| 1e-6 * v * v * v - 0.004 * v * v + 2.0 * v + 17.0).collect();
        let fit = polyfit(&x, &y, 3).unwrap();
        for (&xi, &yi) in x.iter().zip(y.iter()) {
            let rel = (fit.poly.eval(xi) - yi).abs() / yi.abs().max(1.0);
            assert!(rel < 1e-8, "x={xi}: rel err {rel}");
        }
    }

    #[test]
    fn overdetermined_noise_fit_has_reasonable_r2() {
        // y = x² plus a small deterministic perturbation.
        let x: Vec<f64> = (0..50).map(|i| i as f64 / 5.0).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| v * v + if i % 2 == 0 { 0.05 } else { -0.05 })
            .collect();
        let fit = polyfit(&x, &y, 2).unwrap();
        assert!(fit.r_squared > 0.999, "r² = {}", fit.r_squared);
        assert!(fit.max_abs_residual < 0.1);
    }

    #[test]
    fn too_few_points_is_an_error() {
        let err = polyfit(&[1.0, 2.0], &[1.0, 2.0], 2).unwrap_err();
        assert_eq!(err, FitError::InsufficientData { got: 2, need: 3 });
    }

    #[test]
    fn mismatched_lengths_is_an_error() {
        let err = polyfit(&[1.0, 2.0, 3.0], &[1.0], 1).unwrap_err();
        assert!(matches!(err, FitError::LengthMismatch { .. }));
    }

    #[test]
    fn nan_input_is_an_error() {
        let err = polyfit(&[1.0, f64::NAN, 3.0], &[1.0, 2.0, 3.0], 1).unwrap_err();
        assert_eq!(err, FitError::NonFinite);
    }

    #[test]
    fn duplicate_abscissae_singular_for_degree_one() {
        let err = polyfit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0], 1).unwrap_err();
        assert_eq!(err, FitError::SingularSystem);
    }

    #[test]
    fn degree_zero_fits_mean() {
        let fit = polyfit(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0], 0).unwrap();
        assert!((fit.poly.eval(0.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn negative_weights_rejected() {
        let err =
            polyfit_weighted(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], &[1.0, -1.0, 1.0], 1).unwrap_err();
        assert!(matches!(err, FitError::InvalidParameter(_)));
    }

    #[test]
    fn zero_weight_point_is_ignored_by_fit() {
        // Outlier with zero weight should not perturb the line.
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [0.0, 1.0, 2.0, 100.0];
        let w = [1.0, 1.0, 1.0, 0.0];
        let fit = polyfit_weighted(&x, &y, &w, 1).unwrap();
        assert!((fit.poly.eval(10.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn heavier_weight_pulls_fit() {
        let x = [0.0, 1.0];
        let y = [0.0, 1.0];
        // Degree-0 weighted fit = weighted mean.
        let fit = polyfit_weighted(&x, &y, &[3.0, 1.0], 0).unwrap();
        assert!((fit.poly.eval(0.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn constant_response_r2_is_one() {
        let fit = polyfit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0], 1).unwrap();
        assert_eq!(fit.r_squared, 1.0);
    }
}
