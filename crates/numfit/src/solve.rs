//! Small dense linear solves.
//!
//! The normal-equation systems arising from polynomial fitting are tiny
//! (degree + 1 unknowns, typically ≤ 7), so a straightforward
//! partial-pivot Gaussian elimination is both adequate and easy to audit.
//! The same routine doubles as the sequential reference implementation
//! for the parallel Gaussian elimination kernel tests elsewhere in the
//! workspace.

use crate::error::FitError;
use crate::Result;

/// Row-major dense square matrix view used by [`solve_dense`].
///
/// `a` must have `n * n` elements; row `i` occupies `a[i*n .. (i+1)*n]`.
#[derive(Debug, Clone)]
pub struct DenseSystem {
    /// Row-major coefficient matrix, length `n * n`.
    pub a: Vec<f64>,
    /// Right-hand side, length `n`.
    pub b: Vec<f64>,
    /// Dimension of the system.
    pub n: usize,
}

impl DenseSystem {
    /// Creates a system, validating dimensions.
    pub fn new(a: Vec<f64>, b: Vec<f64>) -> Result<Self> {
        let n = b.len();
        if a.len() != n * n {
            return Err(FitError::InvalidParameter("matrix is not n×n for rhs of length n"));
        }
        if a.iter().chain(b.iter()).any(|v| !v.is_finite()) {
            return Err(FitError::NonFinite);
        }
        Ok(DenseSystem { a, b, n })
    }
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
///
/// Returns [`FitError::SingularSystem`] when the pivot magnitude falls
/// below a scale-aware threshold, which is how collinear fitting data
/// surfaces to callers.
pub fn solve_dense(system: &DenseSystem) -> Result<Vec<f64>> {
    let n = system.n;
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut a = system.a.clone();
    let mut b = system.b.clone();

    // Scale-aware singularity threshold: relative to the largest entry.
    let max_abs = a.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1e-300);
    let tol = max_abs * 1e-13 * n as f64;

    for col in 0..n {
        // Partial pivot: find the row with the largest magnitude in `col`.
        let mut pivot_row = col;
        let mut pivot_mag = a[col * n + col].abs();
        for row in (col + 1)..n {
            let mag = a[row * n + col].abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = row;
            }
        }
        if pivot_mag <= tol {
            return Err(FitError::SingularSystem);
        }
        if pivot_row != col {
            for k in col..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }

        let pivot = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            a[row * n + col] = 0.0;
            for k in (col + 1)..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in (row + 1)..n {
            sum -= a[row * n + k] * x[k];
        }
        x[row] = sum / a[row * n + row];
    }
    Ok(x)
}

/// Computes the residual infinity norm `‖A x − b‖∞` for a candidate
/// solution; handy for asserting solve quality in tests.
pub fn residual_inf_norm(system: &DenseSystem, x: &[f64]) -> f64 {
    let n = system.n;
    assert_eq!(x.len(), n, "solution length must equal system dimension");
    let mut worst = 0.0f64;
    for i in 0..n {
        let mut acc = 0.0;
        for (j, &xj) in x.iter().enumerate() {
            acc += system.a[i * n + j] * xj;
        }
        worst = worst.max((acc - system.b[i]).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(a: &[f64], b: &[f64]) -> DenseSystem {
        DenseSystem::new(a.to_vec(), b.to_vec()).unwrap()
    }

    #[test]
    fn solves_identity() {
        let s = sys(&[1.0, 0.0, 0.0, 1.0], &[3.0, 4.0]);
        assert_eq!(solve_dense(&s).unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn solves_2x2() {
        // 2x + y = 5 ; x - y = 1  → x = 2, y = 1
        let s = sys(&[2.0, 1.0, 1.0, -1.0], &[5.0, 1.0]);
        let x = solve_dense(&s).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solves_with_pivoting_required() {
        // Leading zero pivot forces a row swap.
        let s = sys(&[0.0, 1.0, 1.0, 0.0], &[2.0, 3.0]);
        let x = solve_dense(&s).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular_matrix() {
        let s = sys(&[1.0, 2.0, 2.0, 4.0], &[1.0, 2.0]);
        assert_eq!(solve_dense(&s), Err(FitError::SingularSystem));
    }

    #[test]
    fn rejects_bad_dimensions() {
        assert!(DenseSystem::new(vec![1.0, 2.0, 3.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn rejects_nan_input() {
        assert_eq!(DenseSystem::new(vec![f64::NAN], vec![1.0]).unwrap_err(), FitError::NonFinite);
    }

    #[test]
    fn empty_system_solves_trivially() {
        let s = DenseSystem::new(Vec::new(), Vec::new()).unwrap();
        assert!(solve_dense(&s).unwrap().is_empty());
    }

    #[test]
    fn residual_small_for_random_systems() {
        // Deterministic pseudo-random matrices via a tiny LCG; checks the
        // solver against its own residual.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for n in 1..=8 {
            let a: Vec<f64> = (0..n * n).map(|_| next()).collect();
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let s = DenseSystem::new(a, b).unwrap();
            match solve_dense(&s) {
                Ok(x) => {
                    let r = residual_inf_norm(&s, &x);
                    assert!(r < 1e-9, "n={n}: residual {r}");
                }
                Err(FitError::SingularSystem) => {} // acceptable for random draws
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
}
