//! Root bracketing, bisection, and monotone curve inversion.
//!
//! The scalability methodology needs "given a target speed-efficiency
//! level, find the problem size that achieves it" — i.e. invert a fitted
//! efficiency curve over a search interval. Speed-efficiency curves are
//! increasing-then-saturating over the ranges of interest, so a linear
//! bracket scan followed by bisection is robust and derivative-free.

use crate::error::FitError;
use crate::Result;

/// An interval `[lo, hi]` known to bracket a root of `f(x) − target`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bracket {
    /// Lower end; `f(lo) − target` and `f(hi) − target` have opposite signs
    /// (or one of them is exactly zero).
    pub lo: f64,
    /// Upper end.
    pub hi: f64,
}

/// Scans `[lo, hi]` in `steps` equal subintervals and returns the first
/// subinterval where `f(x) − target` changes sign.
pub fn find_bracket<F: Fn(f64) -> f64>(
    f: &F,
    lo: f64,
    hi: f64,
    target: f64,
    steps: usize,
) -> Result<Bracket> {
    if !(lo.is_finite() && hi.is_finite() && target.is_finite()) {
        return Err(FitError::NonFinite);
    }
    if hi <= lo {
        return Err(FitError::InvalidParameter("bracket scan requires lo < hi"));
    }
    if steps == 0 {
        return Err(FitError::InvalidParameter("bracket scan requires steps > 0"));
    }
    let h = (hi - lo) / steps as f64;
    let mut x_prev = lo;
    let mut g_prev = f(lo) - target;
    if g_prev == 0.0 {
        return Ok(Bracket { lo, hi: lo });
    }
    for i in 1..=steps {
        let x = if i == steps { hi } else { lo + h * i as f64 };
        let g = f(x) - target;
        if g == 0.0 {
            return Ok(Bracket { lo: x, hi: x });
        }
        if g_prev.signum() != g.signum() {
            return Ok(Bracket { lo: x_prev, hi: x });
        }
        x_prev = x;
        g_prev = g;
    }
    Err(FitError::NoBracket { lo, hi, target })
}

/// Bisection on a bracketed root of `f(x) = target`.
///
/// Converges to absolute tolerance `tol` on `x` (or machine-limited
/// interval width), within `max_iter` halvings.
pub fn bisect<F: Fn(f64) -> f64>(
    f: &F,
    bracket: Bracket,
    target: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64> {
    let Bracket { mut lo, mut hi } = bracket;
    if lo == hi {
        return Ok(lo);
    }
    if tol <= 0.0 {
        return Err(FitError::InvalidParameter("tolerance must be positive"));
    }
    let mut g_lo = f(lo) - target;
    if g_lo == 0.0 {
        return Ok(lo);
    }
    let g_hi = f(hi) - target;
    if g_hi == 0.0 {
        return Ok(hi);
    }
    if g_lo.signum() == g_hi.signum() {
        return Err(FitError::NoBracket { lo, hi, target });
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        if (hi - lo).abs() <= tol || mid == lo || mid == hi {
            return Ok(mid);
        }
        let g_mid = f(mid) - target;
        if g_mid == 0.0 {
            return Ok(mid);
        }
        if g_mid.signum() == g_lo.signum() {
            lo = mid;
            g_lo = g_mid;
        } else {
            hi = mid;
        }
    }
    Err(FitError::NoConvergence { iterations: max_iter })
}

/// Inverts a (locally monotone) function over `[lo, hi]`: returns `x`
/// with `f(x) ≈ target`.
///
/// This is the workhorse behind "required problem size for a target
/// speed-efficiency": scan for a sign change with 256 steps, then bisect
/// to `tol`.
pub fn invert_monotone<F: Fn(f64) -> f64>(
    f: F,
    lo: f64,
    hi: f64,
    target: f64,
    tol: f64,
) -> Result<f64> {
    let bracket = find_bracket(&f, lo, hi, target, 256)?;
    bisect(&f, bracket, target, tol, 200)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverts_linear_function() {
        let x = invert_monotone(|x| 2.0 * x + 1.0, 0.0, 10.0, 7.0, 1e-10).unwrap();
        assert!((x - 3.0).abs() < 1e-9);
    }

    #[test]
    fn inverts_saturating_efficiency_curve() {
        // Shape of a speed-efficiency curve: E(N) = N / (N + 700).
        let e = |n: f64| n / (n + 700.0);
        let n = invert_monotone(e, 1.0, 10_000.0, 0.3, 1e-6).unwrap();
        assert!((n - 300.0).abs() < 1e-3, "n = {n}");
    }

    #[test]
    fn inverts_decreasing_function() {
        let x = invert_monotone(|x| 10.0 - x, 0.0, 10.0, 2.5, 1e-10).unwrap();
        assert!((x - 7.5).abs() < 1e-9);
    }

    #[test]
    fn unreachable_target_reports_no_bracket() {
        let err = invert_monotone(|x| x / (x + 1.0), 0.0, 10.0, 2.0, 1e-9).unwrap_err();
        assert!(matches!(err, FitError::NoBracket { .. }));
    }

    #[test]
    fn exact_hit_at_endpoint() {
        let x = invert_monotone(|x| x, 3.0, 9.0, 3.0, 1e-12).unwrap();
        assert_eq!(x, 3.0);
    }

    #[test]
    fn exact_hit_at_grid_point() {
        // target hit exactly at an interior scan point.
        let x = invert_monotone(|x| x, 0.0, 256.0, 128.0, 1e-12).unwrap();
        assert_eq!(x, 128.0);
    }

    #[test]
    fn invalid_interval_rejected() {
        let err = invert_monotone(|x| x, 5.0, 5.0, 1.0, 1e-9).unwrap_err();
        assert!(matches!(err, FitError::InvalidParameter(_)));
    }

    #[test]
    fn nan_target_rejected() {
        let err = invert_monotone(|x| x, 0.0, 1.0, f64::NAN, 1e-9).unwrap_err();
        assert_eq!(err, FitError::NonFinite);
    }

    #[test]
    fn bisect_respects_tolerance() {
        let f = |x: f64| x * x;
        let b = find_bracket(&f, 0.0, 10.0, 2.0, 64).unwrap();
        let x = bisect(&f, b, 2.0, 1e-12, 200).unwrap();
        assert!((x - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_rejects_nonpositive_tolerance() {
        let f = |x: f64| x;
        let err = bisect(&f, Bracket { lo: 0.0, hi: 1.0 }, 0.5, 0.0, 10).unwrap_err();
        assert!(matches!(err, FitError::InvalidParameter(_)));
    }

    #[test]
    fn bracket_scan_finds_interior_sign_change() {
        // Root of cos(x) = 0 near π/2 inside [0, 3].
        let b = find_bracket(&|x: f64| x.cos(), 0.0, 3.0, 0.0, 100).unwrap();
        assert!(b.lo < std::f64::consts::FRAC_PI_2 && std::f64::consts::FRAC_PI_2 < b.hi);
    }

    #[test]
    fn finds_first_root_of_oscillating_function() {
        // sin has roots at π, 2π in [0.5, 7]; scan returns the first.
        let x = invert_monotone(|x: f64| x.sin(), 0.5, 7.0, 0.0, 1e-10).unwrap();
        assert!((x - std::f64::consts::PI).abs() < 1e-8, "x = {x}");
    }
}
