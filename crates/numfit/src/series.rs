//! Sampled `(x, y)` series with piecewise-linear interpolation, inversion,
//! and fitting helpers.
//!
//! A [`Series`] is the in-memory form of one trend-line dataset from the
//! paper's figures: one speed-efficiency curve per system configuration.
//! The experiment harness accumulates samples, then either interpolates
//! directly or fits a polynomial through the series.

use crate::error::FitError;
use crate::lsq::{polyfit, FitReport};
use crate::Result;
use serde::{Deserialize, Serialize};

/// An ordered series of `(x, y)` samples with strictly increasing `x`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Series {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Series::default()
    }

    /// Builds a series from parallel slices, sorting by `x` and collapsing
    /// duplicate abscissae by averaging their `y` values.
    pub fn from_samples(x: &[f64], y: &[f64]) -> Result<Self> {
        if x.len() != y.len() {
            return Err(FitError::LengthMismatch { x_len: x.len(), y_len: y.len() });
        }
        if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
            return Err(FitError::NonFinite);
        }
        let mut pairs: Vec<(f64, f64)> = x.iter().copied().zip(y.iter().copied()).collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut s = Series::new();
        let mut i = 0;
        while i < pairs.len() {
            let x0 = pairs[i].0;
            let mut sum = 0.0;
            let mut count = 0usize;
            while i < pairs.len() && pairs[i].0 == x0 {
                sum += pairs[i].1;
                count += 1;
                i += 1;
            }
            s.xs.push(x0);
            s.ys.push(sum / count as f64);
        }
        Ok(s)
    }

    /// Appends a sample; `x` must be strictly greater than the current
    /// maximum abscissa.
    pub fn push(&mut self, x: f64, y: f64) -> Result<()> {
        if !(x.is_finite() && y.is_finite()) {
            return Err(FitError::NonFinite);
        }
        if let Some(&last) = self.xs.last() {
            if x <= last {
                return Err(FitError::InvalidParameter("push requires strictly increasing x"));
            }
        }
        self.xs.push(x);
        self.ys.push(y);
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True if the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Abscissae (strictly increasing).
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Ordinates, parallel to [`Series::xs`].
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Iterates over `(x, y)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.xs.iter().copied().zip(self.ys.iter().copied())
    }

    /// Piecewise-linear interpolation at `x`. Clamps to the endpoint
    /// values outside the sampled range. `None` for an empty series.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        if self.xs.is_empty() {
            return None;
        }
        if x <= self.xs[0] {
            return Some(self.ys[0]);
        }
        if x >= *self.xs.last().unwrap() {
            return Some(*self.ys.last().unwrap());
        }
        // Binary search for the containing segment.
        let idx = match self.xs.binary_search_by(|v| v.total_cmp(&x)) {
            Ok(i) => return Some(self.ys[i]),
            Err(i) => i,
        };
        let (x0, x1) = (self.xs[idx - 1], self.xs[idx]);
        let (y0, y1) = (self.ys[idx - 1], self.ys[idx]);
        let t = (x - x0) / (x1 - x0);
        Some(y0 + t * (y1 - y0))
    }

    /// Inverts the piecewise-linear interpolant: the smallest `x` in the
    /// sampled range with interpolated value `target`. Errors if the
    /// target is never crossed.
    pub fn invert_linear(&self, target: f64) -> Result<f64> {
        if self.xs.len() < 2 {
            return Err(FitError::InsufficientData { got: self.xs.len(), need: 2 });
        }
        for w in 0..self.xs.len() - 1 {
            let (y0, y1) = (self.ys[w], self.ys[w + 1]);
            let (lo, hi) = (y0.min(y1), y0.max(y1));
            if (lo..=hi).contains(&target) {
                if y0 == y1 {
                    return Ok(self.xs[w]);
                }
                let t = (target - y0) / (y1 - y0);
                return Ok(self.xs[w] + t * (self.xs[w + 1] - self.xs[w]));
            }
        }
        Err(FitError::NoBracket { lo: self.xs[0], hi: *self.xs.last().unwrap(), target })
    }

    /// Fits a polynomial trend line through the series — the "Poly." trend
    /// lines of the paper's Fig. 1 and Fig. 2.
    pub fn fit_poly(&self, degree: usize) -> Result<FitReport> {
        polyfit(&self.xs, &self.ys, degree)
    }

    /// Range of abscissae as `(min, max)`; `None` when empty.
    pub fn x_range(&self) -> Option<(f64, f64)> {
        if self.xs.is_empty() {
            None
        } else {
            Some((self.xs[0], *self.xs.last().unwrap()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(pts: &[(f64, f64)]) -> Series {
        let (xs, ys): (Vec<f64>, Vec<f64>) = pts.iter().copied().unzip();
        Series::from_samples(&xs, &ys).unwrap()
    }

    #[test]
    fn from_samples_sorts_by_x() {
        let s = series(&[(3.0, 30.0), (1.0, 10.0), (2.0, 20.0)]);
        assert_eq!(s.xs(), &[1.0, 2.0, 3.0]);
        assert_eq!(s.ys(), &[10.0, 20.0, 30.0]);
    }

    #[test]
    fn duplicate_abscissae_are_averaged() {
        let s = series(&[(1.0, 10.0), (1.0, 20.0), (2.0, 5.0)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.interpolate(1.0), Some(15.0));
    }

    #[test]
    fn push_requires_increasing_x() {
        let mut s = Series::new();
        s.push(1.0, 1.0).unwrap();
        s.push(2.0, 4.0).unwrap();
        assert!(s.push(2.0, 9.0).is_err());
        assert!(s.push(1.5, 9.0).is_err());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn interpolation_is_linear_between_samples() {
        let s = series(&[(0.0, 0.0), (10.0, 100.0)]);
        assert_eq!(s.interpolate(5.0), Some(50.0));
        assert_eq!(s.interpolate(2.5), Some(25.0));
    }

    #[test]
    fn interpolation_clamps_outside_range() {
        let s = series(&[(1.0, 10.0), (2.0, 20.0)]);
        assert_eq!(s.interpolate(0.0), Some(10.0));
        assert_eq!(s.interpolate(5.0), Some(20.0));
    }

    #[test]
    fn interpolation_exact_at_samples() {
        let s = series(&[(1.0, 10.0), (2.0, 20.0), (3.0, 15.0)]);
        for (x, y) in s.iter() {
            assert_eq!(s.interpolate(x), Some(y));
        }
    }

    #[test]
    fn empty_series_interpolates_to_none() {
        assert_eq!(Series::new().interpolate(1.0), None);
        assert!(Series::new().is_empty());
        assert_eq!(Series::new().x_range(), None);
    }

    #[test]
    fn invert_linear_finds_crossing() {
        // Efficiency-like curve rising to saturation.
        let s = series(&[(100.0, 0.1), (200.0, 0.22), (400.0, 0.35), (800.0, 0.42)]);
        let n = s.invert_linear(0.3).unwrap();
        assert!((200.0..400.0).contains(&n), "n = {n}");
        // Value at the inverse should be the target.
        assert!((s.interpolate(n).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn invert_linear_unreachable_target_errors() {
        let s = series(&[(1.0, 0.1), (2.0, 0.2)]);
        assert!(matches!(s.invert_linear(0.9).unwrap_err(), FitError::NoBracket { .. }));
    }

    #[test]
    fn invert_linear_flat_segment_returns_left_edge() {
        let s = series(&[(1.0, 0.5), (2.0, 0.5), (3.0, 1.0)]);
        assert_eq!(s.invert_linear(0.5).unwrap(), 1.0);
    }

    #[test]
    fn fit_poly_through_series_matches_polyfit() {
        let s = series(&[(0.0, 1.0), (1.0, 2.0), (2.0, 5.0), (3.0, 10.0)]);
        let fit = s.fit_poly(2).unwrap();
        // y = x² + 1 exactly.
        assert!((fit.poly.eval(4.0) - 17.0).abs() < 1e-8);
        assert!(fit.r_squared > 1.0 - 1e-10);
    }

    #[test]
    fn rejects_nan_samples() {
        assert_eq!(
            Series::from_samples(&[1.0, f64::NAN], &[1.0, 2.0]).unwrap_err(),
            FitError::NonFinite
        );
        let mut s = Series::new();
        assert!(s.push(f64::INFINITY, 0.0).is_err());
    }

    #[test]
    fn x_range_reports_extremes() {
        let s = series(&[(5.0, 1.0), (1.0, 2.0), (9.0, 3.0)]);
        assert_eq!(s.x_range(), Some((1.0, 9.0)));
    }
}
