//! Error type shared by all numfit routines.

use std::fmt;

/// Errors produced by fitting, solving and inversion routines.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// The input series has too few points for the requested operation
    /// (e.g. fitting a degree-3 polynomial through 2 points).
    InsufficientData {
        /// Number of data points supplied.
        got: usize,
        /// Minimum number of points required.
        need: usize,
    },
    /// The linear system arising from the normal equations is singular to
    /// working precision (collinear or duplicated abscissae).
    SingularSystem,
    /// Mismatched input lengths (x and y slices must be the same length).
    LengthMismatch {
        /// Length of the x slice.
        x_len: usize,
        /// Length of the y slice.
        y_len: usize,
    },
    /// An input contained a NaN or infinite value.
    NonFinite,
    /// Root finding failed to bracket the requested level inside the
    /// search interval.
    NoBracket {
        /// Lower end of the searched interval.
        lo: f64,
        /// Upper end of the searched interval.
        hi: f64,
        /// Level that could not be bracketed.
        target: f64,
    },
    /// Iterative refinement did not converge within the iteration budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// A parameter was outside its documented domain (e.g. a negative
    /// weight, an empty interval).
    InvalidParameter(&'static str),
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::InsufficientData { got, need } => {
                write!(f, "insufficient data: got {got} points, need at least {need}")
            }
            FitError::SingularSystem => {
                write!(f, "normal equations are singular to working precision")
            }
            FitError::LengthMismatch { x_len, y_len } => {
                write!(f, "length mismatch: x has {x_len} elements, y has {y_len}")
            }
            FitError::NonFinite => write!(f, "input contains NaN or infinite values"),
            FitError::NoBracket { lo, hi, target } => {
                write!(f, "could not bracket level {target} in [{lo}, {hi}]")
            }
            FitError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            FitError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for FitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = FitError::InsufficientData { got: 2, need: 4 };
        assert!(e.to_string().contains("got 2"));
        assert!(e.to_string().contains("need at least 4"));

        let e = FitError::LengthMismatch { x_len: 3, y_len: 5 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));

        let e = FitError::NoBracket { lo: 0.0, hi: 1.0, target: 0.3 };
        assert!(e.to_string().contains("0.3"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&FitError::SingularSystem);
    }

    #[test]
    fn errors_compare_equal() {
        assert_eq!(FitError::SingularSystem, FitError::SingularSystem);
        assert_ne!(FitError::SingularSystem, FitError::NonFinite,);
    }
}
