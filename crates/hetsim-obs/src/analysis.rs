//! Analysis passes over per-rank traces: critical-path extraction,
//! per-rank activity (compute / transfer / idle-wait) attribution, and
//! the load-imbalance ratio.
//!
//! All passes are pure functions of the traces, which are themselves
//! deterministic — so every result here is reproducible bit for bit.
//!
//! ## How critical-path extraction works
//!
//! The runtime's conservative semantics make dependency edges
//! recoverable from timestamps alone: whenever a span's end time was
//! imposed by another rank (a receive bound by the sender, a broadcast
//! or scatter receiver bound by the root's departure), the binding span
//! on the other rank ends at the *bit-identical* virtual time, because
//! both ranks computed it from the same inputs. The extractor walks
//! backward from the rank that sets the makespan, hopping to the
//! binding rank at every remotely-bound span (guided by
//! [`TraceRecord::peer`]) and to the latest-arriving rank at every
//! rendezvous (barrier, gather root). Idle-wait spans are never part of
//! the path — the path follows whoever was *busy* making everyone else
//! wait — so in a fully-traced run the returned steps tile the whole
//! `[0, makespan]` interval.

use crate::json::Json;
use hetsim_cluster::time::SimTime;
use hetsim_mpi::trace::{OpKind, RankTrace, TraceRecord};
use std::collections::BTreeMap;

/// One span on the critical path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalStep {
    /// Rank the span executed on.
    pub rank: usize,
    /// Operation kind.
    pub kind: OpKind,
    /// Span start (virtual time).
    pub start: SimTime,
    /// Span end (virtual time).
    pub end: SimTime,
    /// Payload bytes involved.
    pub bytes: u64,
}

impl CriticalStep {
    /// Span duration.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// The longest dependency chain of a traced run, in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Path spans, earliest first.
    pub steps: Vec<CriticalStep>,
    /// The run's makespan (latest span end across ranks).
    pub makespan: SimTime,
}

impl CriticalPath {
    /// Total time covered by path spans.
    pub fn covered(&self) -> SimTime {
        self.steps.iter().fold(SimTime::ZERO, |acc, s| acc + s.duration())
    }

    /// Fraction of the makespan the path explains; ~1.0 for a fully
    /// traced run (idle never lies on the path, busy spans tile it).
    pub fn coverage(&self) -> f64 {
        if self.makespan == SimTime::ZERO {
            return 1.0;
        }
        self.covered().as_secs() / self.makespan.as_secs()
    }

    /// Path time per operation kind — where the makespan was actually
    /// decided (compute-bound vs. communication-bound).
    pub fn time_by_kind(&self) -> BTreeMap<OpKind, f64> {
        let mut out = BTreeMap::new();
        for s in &self.steps {
            *out.entry(s.kind).or_insert(0.0) += s.duration().as_secs();
        }
        out
    }

    /// Number of times the path hops between ranks.
    pub fn rank_switches(&self) -> usize {
        self.steps.windows(2).filter(|w| w[0].rank != w[1].rank).count()
    }

    /// JSON summary (stable field order).
    pub fn to_json(&self) -> Json {
        let mut root = BTreeMap::new();
        root.insert("makespan".into(), Json::Num(self.makespan.as_secs()));
        root.insert("coverage".into(), Json::Num(self.coverage()));
        root.insert("steps".into(), Json::int(self.steps.len() as u64));
        root.insert("rank_switches".into(), Json::int(self.rank_switches() as u64));
        root.insert(
            "time_by_kind".into(),
            Json::Obj(
                self.time_by_kind()
                    .into_iter()
                    .map(|(k, s)| (k.name().to_string(), Json::Num(s)))
                    .collect(),
            ),
        );
        Json::Obj(root)
    }
}

/// Indices into one rank's records whose `end` equals `t` exactly.
/// Records are time-sorted, so this is a binary search plus a scan over
/// the (almost always tiny) equal-end run.
fn ends_at(trace: &RankTrace, t: SimTime) -> std::ops::Range<usize> {
    let lo = trace.records.partition_point(|r| r.end < t);
    let mut hi = lo;
    while hi < trace.records.len() && trace.records[hi].end == t {
        hi += 1;
    }
    lo..hi
}

/// Finds the span that remotely bound `record`'s end time, when there is
/// one: the matching send for a receive, the root's span for a bound
/// broadcast/scatter receiver, the peer's activity for a peer-attributed
/// wait. Returns the (rank, index) to jump to.
fn remote_binding(
    traces: &[RankTrace],
    rank: usize,
    record: &TraceRecord,
) -> Option<(usize, usize)> {
    let expected = |candidate: &TraceRecord| match record.kind {
        OpKind::Recv => candidate.kind == OpKind::Send && candidate.peer == Some(rank),
        OpKind::Bcast | OpKind::Scatter => {
            candidate.kind == record.kind && candidate.peer.is_none()
        }
        OpKind::Wait => candidate.kind != OpKind::Wait,
        _ => false,
    };
    match record.kind {
        OpKind::Recv | OpKind::Bcast | OpKind::Scatter | OpKind::Wait => {
            let peer = record.peer?;
            if record.duration() == SimTime::ZERO {
                // A free operation (precondition met before entry) is
                // locally bound; its end is the rank's own clock.
                return None;
            }
            ends_at(&traces[peer], record.end)
                .rfind(|&i| expected(&traces[peer].records[i]))
                .map(|i| (peer, i))
        }
        _ => None,
    }
}

/// Finds the latest-arriving rank at a rendezvous time: the non-wait,
/// non-empty span ending exactly at `t`. Lowest rank wins ties, which
/// keeps the walk deterministic.
fn straggler(traces: &[RankTrace], t: SimTime) -> Option<(usize, usize)> {
    for (rank, trace) in traces.iter().enumerate() {
        let hit = ends_at(trace, t).rfind(|&i| {
            let r = &trace.records[i];
            r.kind != OpKind::Wait && r.duration() > SimTime::ZERO
        });
        if let Some(i) = hit {
            return Some((rank, i));
        }
    }
    None
}

/// Extracts the critical path from a fully traced run.
///
/// Returns an empty path for empty traces. The walk is bounded by the
/// total record count, so malformed traces terminate rather than loop.
pub fn critical_path(traces: &[RankTrace]) -> CriticalPath {
    let makespan = traces
        .iter()
        .filter_map(|t| t.records.last().map(|r| r.end))
        .max()
        .unwrap_or(SimTime::ZERO);
    let start = traces.iter().enumerate().find_map(|(rank, t)| {
        t.records.last().filter(|r| r.end == makespan).map(|_| (rank, t.records.len() - 1))
    });
    let Some(mut cur) = start else {
        return CriticalPath { steps: Vec::new(), makespan };
    };

    let cap = traces.iter().map(|t| t.records.len()).sum::<usize>() + traces.len() + 1;
    let mut steps = Vec::new();
    for _ in 0..cap {
        let (rank, idx) = cur;
        let record = traces[rank].records[idx];

        // A remotely-bound span is *explained* by the binding rank:
        // hop there without putting this span on the path.
        if let Some(next) = remote_binding(traces, rank, &record) {
            cur = next;
            continue;
        }

        // Idle never lies on the critical path; everything else with
        // nonzero extent does.
        if record.kind != OpKind::Wait && record.duration() > SimTime::ZERO {
            steps.push(CriticalStep {
                rank,
                kind: record.kind,
                start: record.start,
                end: record.end,
                bytes: record.bytes,
            });
        }

        // Rendezvous operations resume from whichever rank arrived
        // last; everything else continues locally. A peer-less wait
        // (barrier or gather-root wait reached by local fallback) also
        // ends at a rendezvous.
        let rendezvous = match record.kind {
            OpKind::Barrier => Some(record.start),
            OpKind::Gather if record.peer.is_none() => Some(record.start),
            OpKind::Wait if record.peer.is_none() => Some(record.end),
            _ => None,
        };
        let pred = rendezvous
            .filter(|&t| t > SimTime::ZERO)
            .and_then(|t| straggler(traces, t))
            .filter(|&(r, i)| (r, i) != (rank, idx))
            .or_else(|| if idx > 0 { Some((rank, idx - 1)) } else { None });
        match pred {
            Some(p) => cur = p,
            None => break,
        }
    }
    steps.reverse();
    CriticalPath { steps, makespan }
}

/// Per-rank split of virtual time into productive compute, engaged
/// communication (wire occupancy), and pure idle-wait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankActivity {
    /// Rank id.
    pub rank: usize,
    /// Productive computation time.
    pub compute: SimTime,
    /// Communication time actually engaged with a transfer or
    /// collective (overhead minus idle-wait).
    pub transfer: SimTime,
    /// Idle time blocked on peers (load imbalance).
    pub wait: SimTime,
}

impl RankActivity {
    /// Total accounted time.
    pub fn total(&self) -> SimTime {
        self.compute + self.transfer + self.wait
    }
}

/// Splits each rank's trace into compute / transfer / idle-wait.
pub fn rank_activity(traces: &[RankTrace]) -> Vec<RankActivity> {
    traces
        .iter()
        .enumerate()
        .map(|(rank, t)| {
            let wait = t.wait();
            let overhead = t.overhead();
            RankActivity { rank, compute: t.total() - overhead, transfer: overhead - wait, wait }
        })
        .collect()
}

/// Load-imbalance ratio `max(T_rank) / mean(T_rank)`: 1.0 means a
/// perfectly balanced run, higher means the slowest rank dominates.
/// Degenerate inputs (no ranks, all-zero times) report 1.0.
pub fn load_imbalance(values: &[SimTime]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let max = values.iter().map(|t| t.as_secs()).fold(0.0f64, f64::max);
    let mean = values.iter().map(|t| t.as_secs()).sum::<f64>() / values.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_cluster::cluster::ClusterSpec;
    use hetsim_cluster::network::SharedEthernet;
    use hetsim_cluster::node::NodeSpec;
    use hetsim_mpi::{run_spmd_traced, Tag};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn net() -> SharedEthernet {
        SharedEthernet::new(1e-3, 1e6)
    }

    #[test]
    fn pipeline_path_crosses_to_the_sender() {
        // Rank 0 computes then sends; rank 1 idles, receives, computes.
        let cluster = ClusterSpec::homogeneous(2, 100.0);
        let outcome = run_spmd_traced(&cluster, &net(), |rank| {
            if rank.rank() == 0 {
                rank.compute_flops(1e8); // 1 s
                rank.send_f64s(1, Tag::DATA, &[1.0; 100]);
            } else {
                let _ = rank.recv_f64s(0, Tag::DATA);
                rank.compute_flops(5e7); // 0.5 s
            }
        });
        let path = critical_path(&outcome.traces);
        let kinds: Vec<(usize, OpKind)> = path.steps.iter().map(|s| (s.rank, s.kind)).collect();
        assert_eq!(
            kinds,
            vec![(0, OpKind::Compute), (0, OpKind::Send), (1, OpKind::Compute)],
            "path must go compute@0 → send@0 → compute@1, not through the wait"
        );
        assert!((path.coverage() - 1.0).abs() < 1e-9, "coverage = {}", path.coverage());
        assert_eq!(path.makespan, outcome.makespan());
        assert_eq!(path.rank_switches(), 1);
    }

    #[test]
    fn barrier_path_follows_the_straggler() {
        let cluster = ClusterSpec::new(
            "het2",
            vec![NodeSpec::synthetic("fast", 100.0), NodeSpec::synthetic("slow", 25.0)],
        )
        .unwrap();
        let outcome = run_spmd_traced(&cluster, &net(), |rank| {
            rank.compute_flops(1e8); // 1 s on fast, 4 s on slow
            rank.barrier();
            rank.compute_flops(1e7); // both tails
        });
        let path = critical_path(&outcome.traces);
        // The pre-barrier compute on the path must be the slow rank's.
        let pre_barrier =
            path.steps.iter().take_while(|s| s.kind != OpKind::Barrier).collect::<Vec<_>>();
        assert!(!pre_barrier.is_empty());
        assert!(pre_barrier.iter().all(|s| s.rank == 1), "straggler is rank 1");
        // And the tail compute belongs to the slow rank too (slower tail).
        assert_eq!(path.steps.last().unwrap().rank, 1);
        assert!((path.coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn path_never_contains_wait() {
        let cluster = ClusterSpec::homogeneous(4, 50.0);
        let outcome = run_spmd_traced(&cluster, &net(), |rank| {
            rank.compute_flops(1e6 * (rank.rank() + 1) as f64);
            rank.barrier();
            let _ = rank.gather_f64s(0, &[rank.rank() as f64]);
            rank.barrier();
        });
        let path = critical_path(&outcome.traces);
        assert!(path.steps.iter().all(|s| s.kind != OpKind::Wait));
        assert!(path.coverage() > 0.99, "coverage = {}", path.coverage());
    }

    #[test]
    fn bcast_path_goes_through_the_root() {
        let cluster = ClusterSpec::homogeneous(3, 100.0);
        let outcome = run_spmd_traced(&cluster, &net(), |rank| {
            if rank.rank() == 0 {
                rank.compute_flops(1e8);
                rank.broadcast_f64s(0, Some(&[1.0; 64]));
            } else {
                rank.broadcast_f64s(0, None);
                rank.compute_flops(1e7);
            }
        });
        let path = critical_path(&outcome.traces);
        // Root-side spans: compute then the broadcast itself.
        assert_eq!(
            path.steps[0],
            CriticalStep {
                rank: 0,
                kind: OpKind::Compute,
                start: t(0.0),
                end: path.steps[0].end,
                bytes: 0,
            }
        );
        assert!(path.steps.iter().any(|s| s.kind == OpKind::Bcast && s.rank == 0));
        assert!((path.coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_traces_give_empty_path() {
        let path = critical_path(&[]);
        assert!(path.steps.is_empty());
        assert_eq!(path.makespan, SimTime::ZERO);
        assert_eq!(path.coverage(), 1.0);
    }

    #[test]
    fn path_is_deterministic_across_runs() {
        let cluster = ClusterSpec::homogeneous(4, 50.0);
        let run = || {
            let outcome = run_spmd_traced(&cluster, &net(), |rank| {
                rank.compute_flops(1e6 * (rank.rank() + 1) as f64);
                let _ = rank.allgather_f64s(&[rank.rank() as f64]);
                rank.barrier();
            });
            critical_path(&outcome.traces)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn path_json_has_expected_shape() {
        let cluster = ClusterSpec::homogeneous(2, 100.0);
        let outcome = run_spmd_traced(&cluster, &net(), |rank| {
            rank.compute_flops(1e7);
            rank.barrier();
        });
        let j = critical_path(&outcome.traces).to_json();
        let obj = j.as_obj().unwrap();
        assert!(obj.contains_key("makespan"));
        assert!(obj.contains_key("time_by_kind"));
        assert!(obj["coverage"].as_num().unwrap() > 0.99);
    }

    #[test]
    fn rank_activity_splits_compute_transfer_wait() {
        let cluster = ClusterSpec::new(
            "het2",
            vec![NodeSpec::synthetic("fast", 100.0), NodeSpec::synthetic("slow", 25.0)],
        )
        .unwrap();
        let outcome = run_spmd_traced(&cluster, &net(), |rank| {
            rank.compute_flops(1e8);
            rank.barrier();
        });
        let activity = rank_activity(&outcome.traces);
        // Fast rank waits 3 s for the slow one.
        assert!((activity[0].wait.as_secs() - 3.0).abs() < 1e-9);
        assert_eq!(activity[1].wait, SimTime::ZERO);
        for (a, (tc, to)) in
            activity.iter().zip(outcome.compute_times.iter().zip(outcome.comm_times.iter()))
        {
            assert!((a.compute.as_secs() - tc.as_secs()).abs() < 1e-12);
            assert!(((a.transfer + a.wait).as_secs() - to.as_secs()).abs() < 1e-12);
        }
    }

    #[test]
    fn load_imbalance_ratio() {
        assert_eq!(load_imbalance(&[]), 1.0);
        assert_eq!(load_imbalance(&[t(0.0), t(0.0)]), 1.0);
        assert!((load_imbalance(&[t(1.0), t(1.0)]) - 1.0).abs() < 1e-12);
        // max 3, mean 2 → 1.5.
        assert!((load_imbalance(&[t(1.0), t(3.0), t(2.0)]) - 1.5).abs() < 1e-12);
    }
}
