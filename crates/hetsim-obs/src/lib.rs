//! # hetsim-obs — observability for the virtual-time SPMD runtime
//!
//! The paper explains scalability through aggregate quantities (`T_c`,
//! `T_o`, ψ); this crate makes the *mechanism* behind those aggregates
//! inspectable without giving up the workspace's core invariant:
//! everything is keyed to **virtual** time, so every metric, trace file,
//! and analysis result is a pure function of marked speeds, payload
//! sizes, and the network model — bit-identical across runs and thread
//! schedules.
//!
//! Three layers:
//!
//! * [`metrics`] — a [`MetricsRegistry`] implements
//!   [`hetsim_mpi::trace::SpanSink`] and aggregates live spans from
//!   [`hetsim_mpi::run_spmd_observed`] into counters, gauges, and
//!   fixed-bucket duration histograms keyed by `(rank, OpKind)`.
//! * [`export`] — byte-stable trace serialization:
//!   [`chrome_trace_json`] for `chrome://tracing`/Perfetto, and
//!   [`trace_jsonl`]/[`parse_trace_jsonl`] for lossless archive and
//!   re-analysis.
//! * [`analysis`] — [`critical_path`] extraction (the dependency chain
//!   that decides the makespan), [`rank_activity`] (compute vs. engaged
//!   transfer vs. idle-wait per rank), and the [`load_imbalance`]
//!   ratio `max(T_rank) / mean(T_rank)`.
//!
//! ## Example
//!
//! ```
//! use hetsim_cluster::{ClusterSpec, SharedEthernet};
//! use hetsim_mpi::run_spmd_observed;
//! use hetsim_obs::{critical_path, MetricsRegistry};
//!
//! let cluster = ClusterSpec::homogeneous(4, 50.0);
//! let net = SharedEthernet::new(0.3e-3, 12.5e6);
//! let registry = MetricsRegistry::new(cluster.size());
//! let outcome = run_spmd_observed(&cluster, &net, &registry, |rank| {
//!     rank.compute_flops(1e6 * (rank.rank() + 1) as f64);
//!     rank.barrier();
//! });
//! let fractions = registry.snapshot().fractions();
//! let total: f64 = fractions.values().sum();
//! assert!((total - 1.0).abs() < 1e-9);
//! let path = critical_path(&outcome.traces);
//! assert!((path.coverage() - 1.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod analysis;
pub mod export;
pub mod json;
pub mod metrics;
pub mod telemetry;

pub use analysis::{
    critical_path, load_imbalance, rank_activity, CriticalPath, CriticalStep, RankActivity,
};
pub use export::{chrome_trace_json, parse_trace_jsonl, trace_jsonl};
pub use json::Json;
pub use metrics::{
    bucket_index, bucket_label, KindStats, MetricsRegistry, MetricsSnapshot, RankSnapshot,
    HISTOGRAM_BUCKETS,
};
pub use telemetry::{MemoKernelStats, PoolStats, TelemetryReport};
