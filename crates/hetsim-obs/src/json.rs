//! Minimal deterministic JSON: a value tree, a writer, and a parser.
//!
//! The offline dependency allowlist has no JSON crate, and the exporters
//! need byte-stable output anyway, so this module owns the format end to
//! end. Two properties make output deterministic:
//!
//! * objects are [`BTreeMap`]s, so keys serialize in sorted order;
//! * numbers use Rust's shortest round-trip `f64` formatting, which is a
//!   pure function of the bits — parsing the text recovers the exact
//!   value, so traces survive an export/import cycle losslessly.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; must be finite when serialized.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; sorted key order is what makes output stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Exact integer constructor (counts, ranks, byte totals). Values
    /// above 2^53 would lose precision; the simulator never produces
    /// them, and the assert keeps that assumption honest.
    pub fn int(v: u64) -> Json {
        assert!(v <= (1u64 << 53), "integer {v} exceeds exact f64 range");
        Json::Num(v as f64)
    }

    /// Borrow as object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as array, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a JSON document (the whole input must be one value plus
    /// optional surrounding whitespace).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                assert!(v.is_finite(), "non-finite number {v} cannot be serialized");
                write!(f, "{v}")
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a \uXXXX low half must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("invalid low surrogate".into());
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(code)
                                    .ok_or(format!("invalid code point {code:#x}"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex =
            std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|_| "invalid \\u escape")?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(j: &Json) -> Json {
        Json::parse(&j.to_string()).expect("own output parses")
    }

    #[test]
    fn scalars_roundtrip() {
        for j in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-1.5),
            Json::Num(1.0 / 3.0),
            Json::Num(6.02e23),
            Json::str("hello"),
        ] {
            assert_eq!(roundtrip(&j), j);
        }
    }

    #[test]
    fn f64_bits_survive_roundtrip() {
        // Shortest round-trip formatting must recover the exact bits —
        // this is what makes trace export lossless.
        for v in [0.1 + 0.2, std::f64::consts::PI, 1e-300, 123_456_789.123_456_79] {
            let text = Json::Num(v).to_string();
            let back = Json::parse(&text).unwrap().as_num().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::int(24).to_string(), "24");
        assert_eq!(Json::Num(1.0).to_string(), "1");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let j = Json::str("a \"b\"\n\\c\tµ");
        assert_eq!(roundtrip(&j), j);
        assert!(j.to_string().contains("\\\""));
        assert!(j.to_string().contains("\\n"));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""µ""#).unwrap(), Json::str("µ"));
        // Surrogate pair: U+1D11E musical G clef.
        assert_eq!(Json::parse(r#""𝄞""#).unwrap(), Json::str("𝄞"));
    }

    #[test]
    fn object_keys_serialize_sorted() {
        let mut m = BTreeMap::new();
        m.insert("zeta".into(), Json::int(1));
        m.insert("alpha".into(), Json::int(2));
        assert_eq!(Json::Obj(m).to_string(), r#"{"alpha":2,"zeta":1}"#);
    }

    #[test]
    fn nested_structures_roundtrip() {
        let mut inner = BTreeMap::new();
        inner.insert("xs".into(), Json::Arr(vec![Json::int(1), Json::Null]));
        let j = Json::Arr(vec![Json::Obj(inner), Json::Bool(false)]);
        assert_eq!(roundtrip(&j), j);
    }

    #[test]
    fn whitespace_tolerated_on_parse() {
        let j = Json::parse(" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(j.as_obj().unwrap()["a"].as_arr().unwrap().len(), 2);
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,", "tru", "\"abc", "{\"a\" 1}", "1 2", "[1] x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_numbers_refuse_to_serialize() {
        let _ = Json::Num(f64::NAN).to_string();
    }
}
