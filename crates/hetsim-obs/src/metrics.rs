//! Deterministic metrics registry over virtual time.
//!
//! A [`MetricsRegistry`] plugs into [`hetsim_mpi::run_spmd_observed`] as
//! a [`SpanSink`] and aggregates every recorded span into counters
//! (span count, bytes moved), gauges (per-rank virtual-clock high-water
//! mark), and fixed-bucket duration histograms — all keyed by
//! `(rank, OpKind)`.
//!
//! Determinism: all quantities derive from *virtual* time, which the
//! runtime guarantees is a pure function of marked speeds, payload
//! sizes, and the network model. The registry keeps one shard per rank
//! and each rank's spans arrive in its own program order, so aggregation
//! never depends on how the OS interleaves rank threads. Snapshots read
//! the shards in rank order, making the snapshot itself reproducible.

use crate::json::Json;
use hetsim_mpi::trace::{OpKind, SpanSink, TraceRecord};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Number of histogram buckets (see [`bucket_index`]).
pub const HISTOGRAM_BUCKETS: usize = 14;

/// Bucket upper bounds in seconds: bucket `i` holds durations `d` with
/// `EDGES[i-1] <= d < EDGES[i]`; bucket 0 holds `d < 1 ns` (including
/// zero-length spans) and the last bucket holds `d >= 1000 s`.
const EDGES: [f64; HISTOGRAM_BUCKETS - 1] =
    [1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3];

/// Fixed-edge bucket index for a span duration in seconds.
pub fn bucket_index(duration_secs: f64) -> usize {
    EDGES.iter().position(|&e| duration_secs < e).unwrap_or(HISTOGRAM_BUCKETS - 1)
}

/// Human-readable label for a bucket ("<1e-9s", "[1e-8s,1e-7s)", ...).
pub fn bucket_label(index: usize) -> String {
    assert!(index < HISTOGRAM_BUCKETS, "bucket {index} out of range");
    if index == 0 {
        format!("<{:e}s", EDGES[0])
    } else if index == HISTOGRAM_BUCKETS - 1 {
        format!(">={:e}s", EDGES[index - 1])
    } else {
        format!("[{:e}s,{:e}s)", EDGES[index - 1], EDGES[index])
    }
}

/// Aggregated statistics for one `(rank, OpKind)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct KindStats {
    /// Counter: spans recorded.
    pub count: u64,
    /// Counter: payload bytes moved.
    pub bytes: u64,
    /// Total virtual seconds spent (sum of span durations, accumulated
    /// in the rank's program order — a deterministic f64 sum).
    pub seconds: f64,
    /// Fixed-bucket histogram of span durations.
    pub histogram: [u64; HISTOGRAM_BUCKETS],
}

impl KindStats {
    const ZERO: KindStats =
        KindStats { count: 0, bytes: 0, seconds: 0.0, histogram: [0; HISTOGRAM_BUCKETS] };
}

fn kind_index(kind: OpKind) -> usize {
    OpKind::ALL.iter().position(|&k| k == kind).expect("OpKind::ALL is exhaustive")
}

#[derive(Debug, Clone)]
struct RankCell {
    per_kind: [KindStats; OpKind::ALL.len()],
    /// Gauge: the latest span end seen — the rank's virtual-clock
    /// high-water mark.
    clock: f64,
}

impl RankCell {
    fn new() -> RankCell {
        RankCell { per_kind: [KindStats::ZERO; OpKind::ALL.len()], clock: 0.0 }
    }
}

/// Live metrics collector for one observed run.
///
/// Create with the run's rank count, pass to
/// [`hetsim_mpi::run_spmd_observed`], then call
/// [`MetricsRegistry::snapshot`] once the run completes.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<Mutex<RankCell>>,
}

impl MetricsRegistry {
    /// A registry for a run with `ranks` ranks.
    pub fn new(ranks: usize) -> MetricsRegistry {
        MetricsRegistry { shards: (0..ranks).map(|_| Mutex::new(RankCell::new())).collect() }
    }

    /// Number of ranks this registry observes.
    pub fn ranks(&self) -> usize {
        self.shards.len()
    }

    /// Replays already-captured traces through the registry — the
    /// offline equivalent of observing the run live. Each rank's records
    /// are stored in its program order, which is exactly the order a
    /// live sink sees them, so the resulting snapshot is identical.
    pub fn from_traces(traces: &[hetsim_mpi::trace::RankTrace]) -> MetricsRegistry {
        let reg = MetricsRegistry::new(traces.len());
        for (rank, trace) in traces.iter().enumerate() {
            for record in &trace.records {
                reg.record_span(rank, record);
            }
        }
        reg
    }

    /// A deterministic point-in-time copy of all cells.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let per_rank = self
            .shards
            .iter()
            .map(|shard| {
                let cell = shard.lock();
                RankSnapshot { clock: cell.clock, per_kind: cell.per_kind.clone() }
            })
            .collect();
        MetricsSnapshot { per_rank }
    }
}

impl SpanSink for MetricsRegistry {
    fn record_span(&self, rank: usize, record: &TraceRecord) {
        let mut cell = self.shards[rank].lock();
        let duration = record.duration().as_secs();
        let stats = &mut cell.per_kind[kind_index(record.kind)];
        stats.count += 1;
        stats.bytes += record.bytes;
        stats.seconds += duration;
        stats.histogram[bucket_index(duration)] += 1;
        cell.clock = cell.clock.max(record.end.as_secs());
    }
}

/// Immutable aggregation result of one observed run.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// One entry per rank, indexed by rank id.
    pub per_rank: Vec<RankSnapshot>,
}

/// One rank's aggregated metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSnapshot {
    /// Virtual-clock high-water mark (gauge).
    pub clock: f64,
    /// Statistics per operation kind, indexed in [`OpKind::ALL`] order.
    pub per_kind: [KindStats; OpKind::ALL.len()],
}

impl RankSnapshot {
    /// Statistics for one kind.
    pub fn kind(&self, kind: OpKind) -> &KindStats {
        &self.per_kind[kind_index(kind)]
    }
}

impl MetricsSnapshot {
    /// Total virtual seconds per kind, summed across ranks in rank
    /// order.
    pub fn seconds_by_kind(&self) -> BTreeMap<OpKind, f64> {
        let mut out = BTreeMap::new();
        for kind in OpKind::ALL {
            let mut total = 0.0;
            for rank in &self.per_rank {
                total += rank.kind(kind).seconds;
            }
            out.insert(kind, total);
        }
        out
    }

    /// Fraction of total busy-plus-overhead time per kind. Every kind in
    /// [`OpKind::ALL`] is present and the fractions sum to 1 (up to f64
    /// rounding); an empty snapshot attributes everything to compute so
    /// the invariant holds unconditionally.
    pub fn fractions(&self) -> BTreeMap<OpKind, f64> {
        let by_kind = self.seconds_by_kind();
        let total: f64 = by_kind.values().sum();
        if total == 0.0 {
            return OpKind::ALL
                .into_iter()
                .map(|k| (k, if k == OpKind::Compute { 1.0 } else { 0.0 }))
                .collect();
        }
        by_kind.into_iter().map(|(k, s)| (k, s / total)).collect()
    }

    /// Serializes the snapshot as a JSON value with stable field order.
    pub fn to_json(&self) -> Json {
        let mut root = BTreeMap::new();
        root.insert("ranks".into(), Json::int(self.per_rank.len() as u64));
        root.insert(
            "fractions".into(),
            Json::Obj(
                self.fractions()
                    .into_iter()
                    .map(|(k, f)| (k.name().to_string(), Json::Num(f)))
                    .collect(),
            ),
        );
        root.insert(
            "seconds_by_kind".into(),
            Json::Obj(
                self.seconds_by_kind()
                    .into_iter()
                    .map(|(k, s)| (k.name().to_string(), Json::Num(s)))
                    .collect(),
            ),
        );
        root.insert(
            "histogram_buckets".into(),
            Json::Arr((0..HISTOGRAM_BUCKETS).map(|i| Json::str(bucket_label(i))).collect()),
        );
        let ranks = self
            .per_rank
            .iter()
            .map(|rank| {
                let mut obj = BTreeMap::new();
                obj.insert("clock".into(), Json::Num(rank.clock));
                let mut kinds = BTreeMap::new();
                for kind in OpKind::ALL {
                    let stats = rank.kind(kind);
                    if stats.count == 0 {
                        continue;
                    }
                    let mut cell = BTreeMap::new();
                    cell.insert("count".into(), Json::int(stats.count));
                    cell.insert("bytes".into(), Json::int(stats.bytes));
                    cell.insert("seconds".into(), Json::Num(stats.seconds));
                    cell.insert(
                        "histogram".into(),
                        Json::Arr(stats.histogram.iter().map(|&c| Json::int(c)).collect()),
                    );
                    kinds.insert(kind.name().to_string(), Json::Obj(cell));
                }
                obj.insert("by_kind".into(), Json::Obj(kinds));
                Json::Obj(obj)
            })
            .collect();
        root.insert("per_rank".into(), Json::Arr(ranks));
        Json::Obj(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_cluster::time::SimTime;

    fn span(kind: OpKind, start: f64, end: f64, bytes: u64) -> TraceRecord {
        TraceRecord {
            kind,
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            bytes,
            peer: None,
        }
    }

    #[test]
    fn bucket_edges_classify_durations() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(5e-10), 0);
        assert_eq!(bucket_index(1e-9), 1);
        assert_eq!(bucket_index(0.5), 9); // [1e-1, 1)
        assert_eq!(bucket_index(1.0), 10); // [1, 1e1)
        assert_eq!(bucket_index(2e4), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_labels_cover_all_buckets() {
        let labels: Vec<String> = (0..HISTOGRAM_BUCKETS).map(bucket_label).collect();
        assert!(labels[0].starts_with('<'));
        assert!(labels[HISTOGRAM_BUCKETS - 1].starts_with(">="));
        assert_eq!(labels.len(), HISTOGRAM_BUCKETS);
    }

    #[test]
    fn registry_accumulates_counters_and_gauges() {
        let reg = MetricsRegistry::new(2);
        reg.record_span(0, &span(OpKind::Compute, 0.0, 1.0, 0));
        reg.record_span(0, &span(OpKind::Send, 1.0, 1.5, 800));
        reg.record_span(1, &span(OpKind::Recv, 0.0, 1.5, 800));
        let snap = reg.snapshot();
        assert_eq!(snap.per_rank[0].kind(OpKind::Compute).count, 1);
        assert_eq!(snap.per_rank[0].kind(OpKind::Send).bytes, 800);
        assert!((snap.per_rank[0].clock - 1.5).abs() < 1e-12);
        assert!((snap.per_rank[1].kind(OpKind::Recv).seconds - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_span_durations() {
        let reg = MetricsRegistry::new(1);
        reg.record_span(0, &span(OpKind::Compute, 0.0, 0.5, 0)); // bucket 9
        reg.record_span(0, &span(OpKind::Compute, 0.5, 0.9, 0)); // bucket 9
        reg.record_span(0, &span(OpKind::Compute, 0.9, 0.9, 0)); // bucket 0
        let snap = reg.snapshot();
        let h = &snap.per_rank[0].kind(OpKind::Compute).histogram;
        assert_eq!(h[9], 2);
        assert_eq!(h[0], 1);
        assert_eq!(h.iter().sum::<u64>(), 3);
    }

    #[test]
    fn fractions_sum_to_one() {
        let reg = MetricsRegistry::new(2);
        reg.record_span(0, &span(OpKind::Compute, 0.0, 3.0, 0));
        reg.record_span(0, &span(OpKind::Barrier, 3.0, 4.0, 0));
        reg.record_span(1, &span(OpKind::Wait, 0.0, 2.0, 0));
        let fractions = reg.snapshot().fractions();
        assert_eq!(fractions.len(), OpKind::ALL.len());
        let total: f64 = fractions.values().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
        assert!((fractions[&OpKind::Compute] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_keeps_fraction_invariant() {
        let fractions = MetricsRegistry::new(3).snapshot().fractions();
        let total: f64 = fractions.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(fractions[&OpKind::Compute], 1.0);
    }

    #[test]
    fn json_serialization_is_stable() {
        let reg = MetricsRegistry::new(1);
        reg.record_span(0, &span(OpKind::Compute, 0.0, 1.0, 0));
        reg.record_span(0, &span(OpKind::Send, 1.0, 1.25, 64));
        let a = reg.snapshot().to_json().to_string();
        let b = reg.snapshot().to_json().to_string();
        assert_eq!(a, b);
        // Parses back as valid JSON with the expected top-level shape.
        let parsed = Json::parse(&a).unwrap();
        let obj = parsed.as_obj().unwrap();
        assert!(obj.contains_key("fractions"));
        assert!(obj.contains_key("per_rank"));
        assert_eq!(obj["ranks"].as_num(), Some(1.0));
    }

    #[test]
    fn replaying_traces_matches_live_recording() {
        use hetsim_mpi::trace::RankTrace;
        let records = [
            vec![span(OpKind::Compute, 0.0, 1.0, 0), span(OpKind::Send, 1.0, 1.5, 800)],
            vec![span(OpKind::Wait, 0.0, 1.0, 0), span(OpKind::Recv, 1.0, 1.5, 800)],
        ];
        let live = MetricsRegistry::new(2);
        for (rank, recs) in records.iter().enumerate() {
            for r in recs {
                live.record_span(rank, r);
            }
        }
        let traces: Vec<RankTrace> =
            records.iter().map(|recs| RankTrace { records: recs.clone() }).collect();
        assert_eq!(MetricsRegistry::from_traces(&traces).snapshot(), live.snapshot());
    }

    #[test]
    fn snapshot_is_independent_of_recording_interleaving() {
        // Same spans, shard-local order preserved, cross-rank order
        // swapped: snapshots must be identical.
        let a = MetricsRegistry::new(2);
        a.record_span(0, &span(OpKind::Compute, 0.0, 1.0, 0));
        a.record_span(1, &span(OpKind::Compute, 0.0, 2.0, 0));
        a.record_span(0, &span(OpKind::Send, 1.0, 1.5, 8));
        let b = MetricsRegistry::new(2);
        b.record_span(1, &span(OpKind::Compute, 0.0, 2.0, 0));
        b.record_span(0, &span(OpKind::Compute, 0.0, 1.0, 0));
        b.record_span(0, &span(OpKind::Send, 1.0, 1.5, 8));
        assert_eq!(a.snapshot(), b.snapshot());
    }
}
