//! The combined engine/memo/pool telemetry document (DESIGN.md §11).
//!
//! `hetsim_mpi::telemetry` counts what the *engine* did; the layers
//! above it (the bench-tables memo cache and experiment worker pool)
//! contribute their own counters. This module merges all three into one
//! [`TelemetryReport`] and serializes it with the same hand-rolled
//! [`Json`] writer the metrics document uses, so the `--stats-out`
//! export inherits the byte-stability contract: sorted keys, integer
//! counters, no floats except the two derived percentages (which are
//! exact ratios of integers and therefore reproduce bit-identically).
//!
//! Determinism splits in two (pinned by `bench-tables/tests/cli.rs`):
//!
//! * **Engine-independent** sections — `memo`, `pool`, closed-form cell
//!   totals — depend only on which cells the experiments price, so they
//!   are byte-identical across runs, `--jobs` values, *and* engines.
//! * **Engine-dependent** sections — path breakdown, park/wake,
//!   fallback reasons — are still byte-identical across runs and
//!   `--jobs`, but change (only) with `--no-analytic`.

use crate::json::Json;
use hetsim_mpi::telemetry::{EngineTelemetry, FallbackReason};
use std::collections::BTreeMap;

/// Memo-cache counters for one kernel label (`bench_tables::memo`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoKernelStats {
    /// Cache lookups against fingerprintable networks.
    pub touches: u64,
    /// Distinct cells ever inserted (first touches).
    pub entries: u64,
    /// Touches served from an existing cell (`touches - entries`).
    pub hits: u64,
    /// Lookups skipped because the network has no fingerprint.
    pub bypasses: u64,
}

/// Experiment worker-pool counters (`bench_tables::pool`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// `run_indexed_on` batches dispatched.
    pub batches: u64,
    /// Cells across those batches.
    pub cells: u64,
    /// Largest single batch (the queue's high-water mark).
    pub queue_high_water: u64,
}

/// The combined deterministic telemetry document behind `--stats-out`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryReport {
    /// Engine-level counters (`hetsim_mpi::telemetry::snapshot`).
    pub engine: EngineTelemetry,
    /// Memo-cache counters keyed by kernel label.
    pub memo: BTreeMap<String, MemoKernelStats>,
    /// Worker-pool counters.
    pub pool: PoolStats,
}

impl TelemetryReport {
    /// Analytic-path coverage in percent (see
    /// [`EngineTelemetry::analytic_coverage_percent`]).
    pub fn analytic_coverage_percent(&self) -> f64 {
        self.engine.analytic_coverage_percent()
    }

    /// Memo hits as a share of fingerprintable touches, in percent.
    /// No touches reads as full hit rate (nothing was recomputable).
    pub fn memo_hit_percent(&self) -> f64 {
        let touches: u64 = self.memo.values().map(|s| s.touches).sum();
        let hits: u64 = self.memo.values().map(|s| s.hits).sum();
        if touches == 0 {
            100.0
        } else {
            100.0 * hits as f64 / touches as f64
        }
    }

    /// Human-readable warnings: one line per analyzer rejection reason
    /// observed, in [`FallbackReason::ALL`] order. Empty on a fully
    /// analytic run.
    pub fn warnings(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for reason in FallbackReason::ALL {
            if let Some(&count) = self.engine.fallback_reasons.get(reason.name()) {
                let plural = if count == 1 { "" } else { "s" };
                lines.push(format!(
                    "warning: {count} simulation{plural} fell back to the \
                     event-driven engine: {reason}"
                ));
            }
        }
        lines
    }

    /// Aggregated-class rank share in percent (see
    /// [`EngineTelemetry::aggregated_rank_percent`]).
    pub fn aggregated_rank_percent(&self) -> f64 {
        self.engine.aggregated_rank_percent()
    }

    /// Serializes to the stats document (schema `hetscale-telemetry/2`).
    pub fn to_json(&self) -> Json {
        let e = &self.engine;
        let closed_form = e
            .closed_form
            .iter()
            .map(|(kernel, s)| {
                (
                    kernel.clone(),
                    obj([("batches", Json::int(s.batches)), ("cells", Json::int(s.cells))]),
                )
            })
            .collect::<BTreeMap<_, _>>();
        let fallback_reasons = e
            .fallback_reasons
            .iter()
            .map(|(name, &count)| (name.clone(), Json::int(count)))
            .collect::<BTreeMap<_, _>>();
        let memo = self
            .memo
            .iter()
            .map(|(kernel, s)| {
                (
                    kernel.clone(),
                    obj([
                        ("bypasses", Json::int(s.bypasses)),
                        ("entries", Json::int(s.entries)),
                        ("hits", Json::int(s.hits)),
                        ("touches", Json::int(s.touches)),
                    ]),
                )
            })
            .collect::<BTreeMap<_, _>>();
        let engine = obj([
            ("closed_form", Json::Obj(closed_form)),
            (
                "events",
                obj([
                    ("collective", Json::int(e.collective_events)),
                    ("p2p", Json::int(e.p2p_events)),
                ]),
            ),
            ("fallback_reasons", Json::Obj(fallback_reasons)),
            (
                "paths",
                obj([
                    ("aggregated_sims", Json::int(e.aggregated_sims)),
                    ("analytic_sims", Json::int(e.analytic_sims)),
                    (
                        "event_driven",
                        obj([
                            ("fallback", Json::int(e.event_driven_fallback)),
                            ("faulted", Json::int(e.event_driven_faulted)),
                            ("forced", Json::int(e.event_driven_forced)),
                            ("traced", Json::int(e.event_driven_traced)),
                        ]),
                    ),
                    ("threaded_sims", Json::int(e.threaded_sims)),
                ]),
            ),
            (
                "rank_classes",
                obj([
                    ("aggregated_classes", Json::int(e.aggregated_classes)),
                    ("aggregated_ranks", Json::int(e.aggregated_ranks)),
                    ("classes_simulated", Json::int(e.classes_simulated)),
                    ("dedup_factor", Json::Num(e.dedup_factor())),
                    ("ranks_simulated", Json::int(e.ranks_simulated)),
                ]),
            ),
            ("ready_queue", obj([("parks", Json::int(e.parks)), ("wakes", Json::int(e.wakes))])),
            (
                "retries",
                obj([
                    ("attempts", Json::int(e.retry_attempts)),
                    ("charge_us", Json::int(e.retry_charge_us)),
                    ("events", Json::int(e.retry_events)),
                ]),
            ),
        ]);
        let pool = obj([
            ("batches", Json::int(self.pool.batches)),
            ("cells", Json::int(self.pool.cells)),
            ("queue_high_water", Json::int(self.pool.queue_high_water)),
        ]);
        let summary = obj([
            ("aggregated_rank_percent", Json::Num(self.aggregated_rank_percent())),
            ("analytic_coverage_percent", Json::Num(self.analytic_coverage_percent())),
            ("memo_hit_percent", Json::Num(self.memo_hit_percent())),
        ]);
        obj([
            ("engine", engine),
            ("memo", Json::Obj(memo)),
            ("pool", pool),
            ("schema", Json::str("hetscale-telemetry/2")),
            ("summary", summary),
        ])
    }
}

fn obj<const K: usize>(entries: [(&str, Json); K]) -> Json {
    Json::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_mpi::telemetry::ClosedFormStats;

    fn sample() -> TelemetryReport {
        let mut report = TelemetryReport::default();
        report.engine.closed_form.insert("ge".into(), ClosedFormStats { batches: 2, cells: 5 });
        report.engine.analytic_sims = 2;
        report.engine.event_driven_fallback = 2;
        report.engine.fallback_reasons.insert("send-across-sync".into(), 2);
        report.engine.ranks_simulated = 20;
        report.engine.classes_simulated = 5;
        report.engine.aggregated_sims = 1;
        report.engine.aggregated_ranks = 10;
        report.engine.aggregated_classes = 2;
        report
            .memo
            .insert("mm".into(), MemoKernelStats { touches: 10, entries: 6, hits: 4, bypasses: 1 });
        report.pool = PoolStats { batches: 3, cells: 30, queue_high_water: 16 };
        report
    }

    #[test]
    fn percentages_are_exact_ratios() {
        let report = sample();
        assert_eq!(report.analytic_coverage_percent(), 80.0);
        assert_eq!(report.memo_hit_percent(), 40.0);
        assert_eq!(TelemetryReport::default().analytic_coverage_percent(), 100.0);
        assert_eq!(TelemetryReport::default().memo_hit_percent(), 100.0);
    }

    #[test]
    fn warnings_name_the_reason_in_stable_order() {
        let mut report = sample();
        report.engine.fallback_reasons.insert("class-exhausted".into(), 1);
        let lines = report.warnings();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("1 simulation fell back"));
        assert!(lines[0].contains("(class-exhausted)"));
        assert!(lines[1].contains("2 simulations fell back"));
        assert!(lines[1].contains("(send-across-sync)"));
        assert!(TelemetryReport::default().warnings().is_empty());
    }

    #[test]
    fn document_round_trips_and_keeps_its_shape() {
        let report = sample();
        let text = report.to_json().to_string();
        let parsed = Json::parse(&text).expect("self-produced JSON parses");
        let doc = parsed.as_obj().expect("top level is an object");
        assert_eq!(doc["schema"].as_str(), Some("hetscale-telemetry/2"));
        let engine = doc["engine"].as_obj().expect("engine object");
        let paths = engine["paths"].as_obj().expect("paths object");
        assert_eq!(paths["analytic_sims"].as_num(), Some(2.0));
        assert_eq!(paths["aggregated_sims"].as_num(), Some(1.0));
        let classes = engine["rank_classes"].as_obj().expect("rank_classes object");
        assert_eq!(classes["aggregated_ranks"].as_num(), Some(10.0));
        assert_eq!(classes["aggregated_classes"].as_num(), Some(2.0));
        let summary = doc["summary"].as_obj().expect("summary object");
        assert_eq!(summary["aggregated_rank_percent"].as_num(), Some(50.0));
        assert_eq!(summary["analytic_coverage_percent"].as_num(), Some(80.0));
        assert_eq!(summary["memo_hit_percent"].as_num(), Some(40.0));
        // Serialization is a pure function of the report.
        assert_eq!(text, report.to_json().to_string());
    }
}
