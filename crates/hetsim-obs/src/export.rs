//! Trace exporters: Chrome-trace JSON and a compact JSONL stream.
//!
//! Both formats are byte-stable: field order is fixed (sorted keys),
//! numbers use shortest round-trip formatting, and events appear in
//! (rank, program-order) sequence. Exporting the same run twice yields
//! identical bytes — golden-file tests rely on this.
//!
//! The JSONL stream is the archival format: [`parse_trace_jsonl`]
//! reconstructs the exact [`RankTrace`]s (bit-identical span times), so
//! traces can be written by `bench-tables` and re-analyzed later without
//! rerunning the simulation.

use crate::json::Json;
use hetsim_cluster::time::SimTime;
use hetsim_mpi::trace::{OpKind, RankTrace, TraceRecord};
use std::collections::BTreeMap;

fn event_args(record: &TraceRecord) -> Json {
    let mut args = BTreeMap::new();
    args.insert("bytes".into(), Json::int(record.bytes));
    if let Some(peer) = record.peer {
        args.insert("peer".into(), Json::int(peer as u64));
    }
    Json::Obj(args)
}

/// Renders per-rank traces in the Chrome trace-event format (the JSON
/// array flavour): open the output in `chrome://tracing` or Perfetto.
/// Each span becomes one complete (`"ph":"X"`) event; virtual seconds
/// map to microseconds, the format's native unit. One event per line.
pub fn chrome_trace_json(traces: &[RankTrace]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for (rank, trace) in traces.iter().enumerate() {
        for record in &trace.records {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let mut event = BTreeMap::new();
            event.insert("args".into(), event_args(record));
            event.insert("cat".into(), Json::str("virtual"));
            event.insert("dur".into(), Json::Num(record.duration().as_secs() * 1e6));
            event.insert("name".into(), Json::str(record.kind.name()));
            event.insert("ph".into(), Json::str("X"));
            event.insert("pid".into(), Json::int(0));
            event.insert("tid".into(), Json::int(rank as u64));
            event.insert("ts".into(), Json::Num(record.start.as_secs() * 1e6));
            out.push_str(&Json::Obj(event).to_string());
        }
    }
    out.push_str("\n]\n");
    out
}

/// Renders per-rank traces as JSON Lines: one object per span, fields
/// `bytes`, `end`, `kind`, `peer` (omitted when absent), `rank`,
/// `start`; times in virtual seconds at full precision.
pub fn trace_jsonl(traces: &[RankTrace]) -> String {
    let mut out = String::new();
    for (rank, trace) in traces.iter().enumerate() {
        for record in &trace.records {
            let mut line = BTreeMap::new();
            line.insert("bytes".into(), Json::int(record.bytes));
            line.insert("end".into(), Json::Num(record.end.as_secs()));
            line.insert("kind".into(), Json::str(record.kind.name()));
            if let Some(peer) = record.peer {
                line.insert("peer".into(), Json::int(peer as u64));
            }
            line.insert("rank".into(), Json::int(rank as u64));
            line.insert("start".into(), Json::Num(record.start.as_secs()));
            out.push_str(&Json::Obj(line).to_string());
            out.push('\n');
        }
    }
    out
}

fn field<'a>(obj: &'a BTreeMap<String, Json>, key: &str, line: usize) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("line {line}: missing field '{key}'"))
}

fn num_field(obj: &BTreeMap<String, Json>, key: &str, line: usize) -> Result<f64, String> {
    field(obj, key, line)?
        .as_num()
        .ok_or_else(|| format!("line {line}: field '{key}' is not a number"))
}

/// Parses a [`trace_jsonl`] document back into per-rank traces.
///
/// The inverse of `trace_jsonl` up to trailing empty traces: span times
/// come back bit-identical (shortest round-trip float formatting), and
/// the result has one entry per rank up to the largest rank mentioned.
pub fn parse_trace_jsonl(text: &str) -> Result<Vec<RankTrace>, String> {
    let mut traces: Vec<RankTrace> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let value = Json::parse(raw).map_err(|e| format!("line {line_no}: {e}"))?;
        let obj =
            value.as_obj().ok_or_else(|| format!("line {line_no}: event is not an object"))?;
        let kind_name = field(obj, "kind", line_no)?
            .as_str()
            .ok_or_else(|| format!("line {line_no}: field 'kind' is not a string"))?;
        let kind = OpKind::from_name(kind_name)
            .ok_or_else(|| format!("line {line_no}: unknown op kind '{kind_name}'"))?;
        let rank = num_field(obj, "rank", line_no)? as usize;
        let record = TraceRecord {
            kind,
            start: SimTime::from_secs(num_field(obj, "start", line_no)?),
            end: SimTime::from_secs(num_field(obj, "end", line_no)?),
            bytes: num_field(obj, "bytes", line_no)? as u64,
            peer: match obj.get("peer") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_num()
                        .ok_or_else(|| format!("line {line_no}: field 'peer' is not a number"))?
                        as usize,
                ),
            },
        };
        if rank >= traces.len() {
            traces.resize_with(rank + 1, RankTrace::default);
        }
        traces[rank].records.push(record);
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_traces() -> Vec<RankTrace> {
        let rec = |kind, start: f64, end: f64, bytes, peer| TraceRecord {
            kind,
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            bytes,
            peer,
        };
        vec![
            RankTrace {
                records: vec![
                    rec(OpKind::Compute, 0.0, 1.0 / 3.0, 0, None),
                    rec(OpKind::Send, 1.0 / 3.0, 0.5, 256, Some(1)),
                ],
            },
            RankTrace {
                records: vec![
                    rec(OpKind::Wait, 0.0, 1.0 / 3.0, 0, Some(0)),
                    rec(OpKind::Recv, 1.0 / 3.0, 0.5, 256, Some(0)),
                ],
            },
        ]
    }

    #[test]
    fn chrome_trace_is_a_valid_json_array() {
        let text = chrome_trace_json(&sample_traces());
        let parsed = Json::parse(&text).expect("valid JSON");
        let events = parsed.as_arr().expect("array of events");
        assert_eq!(events.len(), 4);
        let first = events[0].as_obj().unwrap();
        assert_eq!(first["ph"].as_str(), Some("X"));
        assert_eq!(first["name"].as_str(), Some("compute"));
        assert_eq!(first["tid"].as_num(), Some(0.0));
        // Times are microseconds.
        let send = events[1].as_obj().unwrap();
        assert!((send["ts"].as_num().unwrap() - 1e6 / 3.0).abs() < 1e-3);
    }

    #[test]
    fn chrome_trace_records_peer_in_args() {
        let text = chrome_trace_json(&sample_traces());
        let parsed = Json::parse(&text).unwrap();
        let send = parsed.as_arr().unwrap()[1].as_obj().unwrap().clone();
        let args = send["args"].as_obj().unwrap();
        assert_eq!(args["peer"].as_num(), Some(1.0));
        assert_eq!(args["bytes"].as_num(), Some(256.0));
    }

    #[test]
    fn exports_are_byte_stable() {
        let traces = sample_traces();
        assert_eq!(chrome_trace_json(&traces), chrome_trace_json(&traces));
        assert_eq!(trace_jsonl(&traces), trace_jsonl(&traces));
    }

    #[test]
    fn jsonl_roundtrips_bit_identically() {
        let traces = sample_traces();
        let text = trace_jsonl(&traces);
        let back = parse_trace_jsonl(&text).expect("parses");
        assert_eq!(back, traces);
    }

    #[test]
    fn jsonl_roundtrip_preserves_awkward_floats() {
        let traces = vec![RankTrace {
            records: vec![TraceRecord {
                kind: OpKind::Compute,
                start: SimTime::from_secs(0.1 + 0.2),
                end: SimTime::from_secs(std::f64::consts::PI),
                bytes: 0,
                peer: None,
            }],
        }];
        let back = parse_trace_jsonl(&trace_jsonl(&traces)).unwrap();
        assert_eq!(
            back[0].records[0].start.as_secs().to_bits(),
            traces[0].records[0].start.as_secs().to_bits()
        );
        assert_eq!(
            back[0].records[0].end.as_secs().to_bits(),
            traces[0].records[0].end.as_secs().to_bits()
        );
    }

    #[test]
    fn empty_traces_export_cleanly() {
        assert_eq!(parse_trace_jsonl(&trace_jsonl(&[])).unwrap(), Vec::<RankTrace>::new());
        let chrome = chrome_trace_json(&[]);
        assert!(Json::parse(&chrome).unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_trace_jsonl("not json\n").is_err());
        assert!(parse_trace_jsonl("{\"kind\":\"recv\"}\n").is_err(), "missing fields");
        assert!(
            parse_trace_jsonl("{\"bytes\":0,\"end\":1,\"kind\":\"zap\",\"rank\":0,\"start\":0}\n")
                .is_err(),
            "unknown kind"
        );
    }
}
