//! Row-based heterogeneous cyclic distribution (after Kalinov–Lastovetsky).
//!
//! Gaussian elimination shrinks its active submatrix from the top down,
//! so a contiguous block layout would idle the ranks owning early rows.
//! A cyclic layout instead *deals* rows out in small blocks so that any
//! suffix of the rows (an active submatrix) remains distributed
//! approximately proportionally to the node speeds.
//!
//! The dealing order is the greedy largest-deficit sequence: before each
//! block, the rank whose assigned share lags furthest behind its ideal
//! cumulative share `k·Cᵢ/C` receives the next block. This keeps every
//! rank's assignment within about one block of ideal on **every prefix**
//! (and hence every suffix) — a strictly stronger balance guarantee than
//! fixed per-round shares, whose rounding bias compounds with `n`.
//! (For many unequal weights the worst-case prefix deviation can exceed
//! one unit by a hair; the property tests bound it by two.)

use crate::Distribution;
use hetsim_cluster::repeat_add;
use serde::{Deserialize, Serialize};

/// Heterogeneous block-cyclic distribution of rows over ranks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CyclicDistribution {
    n: usize,
    p: usize,
    block: usize,
    /// Owner of each row, precomputed (`n` entries).
    owners: Vec<u32>,
}

impl CyclicDistribution {
    /// Builds the distribution for `n` rows over ranks with the given
    /// marked speeds, dealing `block` consecutive rows at a time.
    ///
    /// `block = 1` interleaves at single-row granularity (best balance);
    /// larger blocks trade balance for fewer, larger messages.
    ///
    /// # Panics
    /// Panics when `block` is 0, `speeds` is empty, or any speed is
    /// non-finite, negative, or all are zero.
    pub fn new(n: usize, speeds: &[f64], block: usize) -> CyclicDistribution {
        assert!(block > 0, "block size must be positive");
        assert!(!speeds.is_empty(), "need at least one rank");
        assert!(
            speeds.iter().all(|s| s.is_finite() && *s >= 0.0),
            "speeds must be finite and non-negative"
        );
        let total: f64 = speeds.iter().sum();
        assert!(total > 0.0, "at least one speed must be positive");

        let p = speeds.len();
        let fractions: Vec<f64> = speeds.iter().map(|s| s / total).collect();
        let mut assigned = vec![0u64; p];
        let mut owners = Vec::with_capacity(n);
        let mut dealt: u64 = 0;
        while owners.len() < n {
            // Largest deficit: ideal share of the next state minus what
            // the rank already holds; ties to the lower index.
            let next_total = dealt + 1;
            let mut best = usize::MAX;
            let mut best_deficit = f64::NEG_INFINITY;
            for i in 0..p {
                if fractions[i] == 0.0 {
                    continue;
                }
                let deficit = next_total as f64 * fractions[i] - assigned[i] as f64;
                if deficit > best_deficit {
                    best_deficit = deficit;
                    best = i;
                }
            }
            debug_assert!(best != usize::MAX);
            let take = block.min(n - owners.len());
            for _ in 0..take {
                owners.push(best as u32);
            }
            assigned[best] += 1;
            dealt += 1;
        }
        CyclicDistribution { n, p, block, owners }
    }

    /// Single-row dealing — the finest interleave, used by the GE kernel.
    pub fn fine(n: usize, speeds: &[f64]) -> CyclicDistribution {
        Self::new(n, speeds, 1)
    }

    /// The dealing block size.
    pub fn block_size(&self) -> usize {
        self.block
    }
}

/// The greedy largest-deficit deal replayed over *speed classes* in
/// O(classes) state — the ownership query behind class-aggregated GE
/// (DESIGN.md §13).
///
/// When the speed vector is a run-length sequence of equal-speed
/// classes (ranks of a class contiguous, as `ClassedCluster`
/// materializes them), the per-rank deal collapses: all members of a
/// class share one fraction bit pattern, so within a class the next
/// winner is always the lowest-index member holding the minimum count —
/// i.e. the deal serves each class round-robin from member 0. The whole
/// per-rank state therefore reduces to, per class, the rows dealt so
/// far (`dealt`), the count held by the class's current front member
/// (`front = ⌊dealt/members⌋`), and that member's index within the
/// class (`wrap = dealt mod members`).
///
/// Every float operation mirrors [`CyclicDistribution::new`] exactly:
/// the speed total is the same sequential fold (batched per run through
/// [`repeat_add`]), fractions are the same `s / total`, and the deficit
/// `t·f − count` is evaluated with the identical expression, strict `>`
/// comparison, and class-order tie-breaking — so the winner sequence is
/// bit-for-bit the per-rank one (pinned by the tests below and the
/// kernel-level equivalence suite).
#[derive(Debug, Clone)]
pub struct ClassedCyclicDeal {
    fractions: Vec<f64>,
    members: Vec<u64>,
    dealt: Vec<u64>,
    front: Vec<u64>,
    wrap: Vec<u64>,
    step: u64,
}

impl ClassedCyclicDeal {
    /// Builds the deal state for rank-order speed runs `(speed, members)`.
    ///
    /// # Panics
    /// Panics when `classes` is empty, any run is empty, or any speed is
    /// non-finite, negative, or all are zero — the same contract as
    /// [`CyclicDistribution::new`] on the expanded speed vector.
    pub fn new(classes: &[(f64, u64)]) -> ClassedCyclicDeal {
        assert!(!classes.is_empty(), "need at least one class");
        assert!(classes.iter().all(|&(_, m)| m > 0), "every class needs at least one member");
        assert!(
            classes.iter().all(|&(s, _)| s.is_finite() && s >= 0.0),
            "speeds must be finite and non-negative"
        );
        // The same left fold as `speeds.iter().sum()` over the expanded
        // vector: within a run every step adds the same value, so the
        // run collapses to one exact repeat_add hop.
        let mut total = 0.0f64;
        for &(s, m) in classes {
            total = repeat_add(total, s, m);
        }
        assert!(total > 0.0, "at least one speed must be positive");
        ClassedCyclicDeal {
            fractions: classes.iter().map(|&(s, _)| s / total).collect(),
            members: classes.iter().map(|&(_, m)| m).collect(),
            dealt: vec![0; classes.len()],
            front: vec![0; classes.len()],
            wrap: vec![0; classes.len()],
            step: 0,
        }
    }

    /// Deals the next row and returns the winning class index.
    ///
    /// The row lands on member `front_member()` of that class (its
    /// pre-deal value): each class is served round-robin from member 0.
    pub fn deal(&mut self) -> usize {
        let next_total = (self.step + 1) as f64;
        let mut best = usize::MAX;
        let mut best_deficit = f64::NEG_INFINITY;
        // Zipped iteration keeps the O(n · classes) replay loops free
        // of bounds checks (this is the hot path of the aggregated GE
        // form, run once per matrix row).
        for (c, (&f, &front)) in self.fractions.iter().zip(self.front.iter()).enumerate() {
            if f == 0.0 {
                continue;
            }
            let deficit = next_total * f - front as f64;
            if deficit > best_deficit {
                best_deficit = deficit;
                best = c;
            }
        }
        debug_assert!(best != usize::MAX);
        self.dealt[best] += 1;
        self.wrap[best] += 1;
        if self.wrap[best] == self.members[best] {
            self.wrap[best] = 0;
            self.front[best] += 1;
        }
        self.step += 1;
        best
    }

    /// Rows dealt so far, per class.
    pub fn class_counts(&self) -> &[u64] {
        &self.dealt
    }

    /// Member index (within `class`) that receives the class's next row.
    pub fn front_member(&self, class: usize) -> u64 {
        self.wrap[class]
    }

    /// Total rows dealt so far.
    pub fn rows_dealt(&self) -> u64 {
        self.step
    }

    /// Per-class row totals after dealing `n` rows — the classed
    /// equivalent of aggregating [`CyclicDistribution::fine`] counts,
    /// in O(runs) memory.
    pub fn counts(n: usize, classes: &[(f64, u64)]) -> Vec<u64> {
        let mut deal = ClassedCyclicDeal::new(classes);
        for _ in 0..n {
            deal.deal();
        }
        deal.dealt
    }
}

impl Distribution for CyclicDistribution {
    fn n(&self) -> usize {
        self.n
    }

    fn p(&self) -> usize {
        self.p
    }

    fn owner(&self, row: usize) -> usize {
        assert!(row < self.n, "row {row} out of range (n = {})", self.n);
        self.owners[row] as usize
    }

    fn rows_of(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.p, "rank {rank} out of range (p = {})", self.p);
        self.owners
            .iter()
            .enumerate()
            .filter(|(_, &o)| o as usize == rank)
            .map(|(row, _)| row)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::check_conformance;

    #[test]
    fn counts_follow_speeds() {
        let d = CyclicDistribution::fine(100, &[90.0, 50.0, 110.0]);
        let counts = d.counts();
        assert_eq!(counts.iter().sum::<usize>(), 100);
        // Within one block of the ideal 36 / 20 / 44 split.
        assert!((counts[0] as i64 - 36).unsigned_abs() <= 1);
        assert!((counts[1] as i64 - 20).unsigned_abs() <= 1);
        assert!((counts[2] as i64 - 44).unsigned_abs() <= 1);
        check_conformance(&d);
    }

    #[test]
    fn equal_speeds_deal_round_robin() {
        let d = CyclicDistribution::fine(12, &[1.0, 1.0]);
        assert_eq!(d.rows_of(0), vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(d.rows_of(1), vec![1, 3, 5, 7, 9, 11]);
        check_conformance(&d);
    }

    #[test]
    fn blocks_keep_consecutive_rows_together() {
        let d = CyclicDistribution::new(12, &[1.0, 1.0], 3);
        assert_eq!(d.rows_of(0), vec![0, 1, 2, 6, 7, 8]);
        assert_eq!(d.rows_of(1), vec![3, 4, 5, 9, 10, 11]);
        assert_eq!(d.block_size(), 3);
        check_conformance(&d);
    }

    #[test]
    fn every_prefix_is_balanced() {
        // The greedy-deficit guarantee: every prefix of the dealt blocks
        // is within one block of proportional for every rank.
        let speeds = [90.0, 50.0, 110.0, 50.0];
        let total: f64 = speeds.iter().sum();
        let d = CyclicDistribution::fine(400, &speeds);
        let mut counts = vec![0usize; speeds.len()];
        for row in 0..400 {
            counts[d.owner(row)] += 1;
            let k = (row + 1) as f64;
            for (i, &c) in counts.iter().enumerate() {
                let ideal = k * speeds[i] / total;
                assert!(
                    (c as f64 - ideal).abs() <= 1.0 + 1e-9,
                    "prefix {k}, rank {i}: {c} vs ideal {ideal:.2}"
                );
            }
        }
    }

    #[test]
    fn suffix_stays_approximately_proportional() {
        // The property that motivates cyclic layout for GE: any suffix of
        // rows (active submatrix) is distributed ≈ proportionally.
        let speeds = [90.0, 50.0, 110.0, 50.0];
        let n = 400;
        let d = CyclicDistribution::fine(n, &speeds);
        let total: f64 = speeds.iter().sum();
        for start in [0usize, 100, 200, 300, 390] {
            let remaining = n - start;
            for (rank, &speed) in speeds.iter().enumerate() {
                let owned = d.rows_of(rank).iter().filter(|&&r| r >= start).count();
                let ideal = remaining as f64 * speed / total;
                assert!(
                    (owned as f64 - ideal).abs() <= 2.0 + 1e-9,
                    "suffix {start}, rank {rank}: owned {owned}, ideal {ideal:.1}"
                );
            }
        }
    }

    #[test]
    fn extreme_heterogeneity_still_serves_slow_rank() {
        let d = CyclicDistribution::fine(1001, &[1000.0, 1.0]);
        let slow_rows = d.rows_of(1);
        assert_eq!(slow_rows.len(), 1);
        check_conformance(&d);
    }

    #[test]
    fn zero_speed_rank_gets_nothing() {
        let d = CyclicDistribution::fine(50, &[1.0, 0.0, 1.0]);
        assert!(d.rows_of(1).is_empty());
        check_conformance(&d);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_rejected() {
        CyclicDistribution::new(10, &[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "at least one speed must be positive")]
    fn all_zero_speeds_rejected() {
        CyclicDistribution::fine(10, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_out_of_range_panics() {
        CyclicDistribution::fine(10, &[1.0, 1.0]).owner(10);
    }

    #[test]
    fn partial_last_block_is_truncated() {
        let d = CyclicDistribution::new(7, &[1.0, 1.0], 3);
        assert_eq!(d.counts().iter().sum::<usize>(), 7);
        check_conformance(&d);
    }

    #[test]
    fn determinism() {
        let speeds = [90.0, 50.0, 110.0];
        let a = CyclicDistribution::new(313, &speeds, 2);
        let b = CyclicDistribution::new(313, &speeds, 2);
        assert_eq!(a, b);
    }

    /// Expands class runs to the per-rank speed vector.
    fn expand(classes: &[(f64, u64)]) -> Vec<f64> {
        classes.iter().flat_map(|&(s, m)| std::iter::repeat_n(s, m as usize)).collect()
    }

    /// Checks the classed deal reproduces the per-rank deal on `n` rows:
    /// the winner-class sequence, the within-class round-robin member,
    /// and the final counts must all match exactly.
    fn check_classed_mirrors_fine(n: usize, classes: &[(f64, u64)]) {
        let speeds = expand(classes);
        let fine = CyclicDistribution::fine(n, &speeds);
        let base: Vec<usize> = classes
            .iter()
            .scan(0usize, |acc, &(_, m)| {
                let b = *acc;
                *acc += m as usize;
                Some(b)
            })
            .collect();
        let mut deal = ClassedCyclicDeal::new(classes);
        for row in 0..n {
            let owner = fine.owner(row);
            let class = base.iter().rposition(|&b| b <= owner).unwrap();
            let member = deal.front_member(class);
            assert_eq!(deal.deal(), class, "row {row}: class ({classes:?})");
            assert_eq!(base[class] + member as usize, owner, "row {row}: member ({classes:?})");
        }
        let per_class: Vec<u64> = base
            .iter()
            .zip(classes)
            .map(|(&b, &(_, m))| (b..b + m as usize).map(|r| fine.counts()[r] as u64).sum())
            .collect();
        assert_eq!(deal.class_counts(), per_class, "counts ({classes:?})");
        assert_eq!(deal.rows_dealt(), n as u64);
    }

    #[test]
    fn classed_deal_mirrors_fine_on_many_shapes() {
        for (n, classes) in [
            (0usize, vec![(50.0, 3u64)]),
            (1, vec![(50.0, 1)]),
            (17, vec![(90.0, 2), (50.0, 1), (110.0, 3)]),
            (129, vec![(108.0, 1), (72.0, 3), (45.0, 4)]),
            (313, vec![(1000.0, 1), (1.0, 5)]),
            (100, vec![(1.0, 2), (0.0, 3), (1.0, 2)]),
            // Equal speeds across distinct classes: the cross-class tie
            // must break to the lower class, exactly as the rank scan.
            (97, vec![(64.0, 2), (64.0, 3), (32.0, 1)]),
            (64, vec![(45.0, 8)]),
        ] {
            check_classed_mirrors_fine(n, &classes);
        }
    }

    #[test]
    fn classed_total_matches_sequential_sum() {
        // The fraction denominators must share bits with the per-rank
        // fold; a same-speed singleton pair exercises the run batching.
        // `45.0 + 8e-15` rounds to the next representable above 45.0 —
        // an awkward mantissa no decimal literal spells cleanly.
        let awkward = 45.0f64 + 8e-15;
        let classes = [(awkward, 1_000_000u64), (104.3, 1), (104.3, 1)];
        let speeds = expand(&classes);
        let seq: f64 = speeds.iter().sum();
        let mut total = 0.0f64;
        for &(s, m) in &classes {
            total = hetsim_cluster::repeat_add(total, s, m);
        }
        assert_eq!(total.to_bits(), seq.to_bits());
    }

    #[test]
    #[should_panic(expected = "at least one speed must be positive")]
    fn classed_all_zero_speeds_rejected() {
        ClassedCyclicDeal::new(&[(0.0, 2), (0.0, 1)]);
    }

    #[test]
    #[should_panic(expected = "every class needs at least one member")]
    fn classed_empty_run_rejected() {
        ClassedCyclicDeal::new(&[(50.0, 0)]);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        #[test]
        fn classed_deal_matches_per_rank_on_random_runs(
            n in 0usize..600,
            picks in proptest::collection::vec((0usize..6, 1u64..9), 1..6),
        ) {
            // A small speed palette (with repeats and a zero) makes
            // cross-class deficit ties and skipped classes common.
            let palette = [50.0, 90.0, 150.0, 50.0, 0.0, 1.0];
            let classes: Vec<(f64, u64)> =
                picks.iter().map(|&(i, m)| (palette[i], m)).collect();
            if classes.iter().any(|&(s, _)| s > 0.0) {
                check_classed_mirrors_fine(n, &classes);
            }
        }
    }

    #[test]
    fn conformance_on_many_shapes() {
        for (n, speeds, block) in [
            (1usize, vec![5.0], 1usize),
            (313, vec![90.0, 50.0], 4),
            (100, vec![45.0, 50.0, 110.0, 110.0], 11),
            (97, vec![1.0, 2.0, 3.0, 4.0, 5.0], 2),
            (0, vec![1.0, 2.0], 3),
        ] {
            check_conformance(&CyclicDistribution::new(n, &speeds, block));
        }
    }
}
