//! Row-based heterogeneous cyclic distribution (after Kalinov–Lastovetsky).
//!
//! Gaussian elimination shrinks its active submatrix from the top down,
//! so a contiguous block layout would idle the ranks owning early rows.
//! A cyclic layout instead *deals* rows out in small blocks so that any
//! suffix of the rows (an active submatrix) remains distributed
//! approximately proportionally to the node speeds.
//!
//! The dealing order is the greedy largest-deficit sequence: before each
//! block, the rank whose assigned share lags furthest behind its ideal
//! cumulative share `k·Cᵢ/C` receives the next block. This keeps every
//! rank's assignment within about one block of ideal on **every prefix**
//! (and hence every suffix) — a strictly stronger balance guarantee than
//! fixed per-round shares, whose rounding bias compounds with `n`.
//! (For many unequal weights the worst-case prefix deviation can exceed
//! one unit by a hair; the property tests bound it by two.)

use crate::Distribution;
use serde::{Deserialize, Serialize};

/// Heterogeneous block-cyclic distribution of rows over ranks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CyclicDistribution {
    n: usize,
    p: usize,
    block: usize,
    /// Owner of each row, precomputed (`n` entries).
    owners: Vec<u32>,
}

impl CyclicDistribution {
    /// Builds the distribution for `n` rows over ranks with the given
    /// marked speeds, dealing `block` consecutive rows at a time.
    ///
    /// `block = 1` interleaves at single-row granularity (best balance);
    /// larger blocks trade balance for fewer, larger messages.
    ///
    /// # Panics
    /// Panics when `block` is 0, `speeds` is empty, or any speed is
    /// non-finite, negative, or all are zero.
    pub fn new(n: usize, speeds: &[f64], block: usize) -> CyclicDistribution {
        assert!(block > 0, "block size must be positive");
        assert!(!speeds.is_empty(), "need at least one rank");
        assert!(
            speeds.iter().all(|s| s.is_finite() && *s >= 0.0),
            "speeds must be finite and non-negative"
        );
        let total: f64 = speeds.iter().sum();
        assert!(total > 0.0, "at least one speed must be positive");

        let p = speeds.len();
        let fractions: Vec<f64> = speeds.iter().map(|s| s / total).collect();
        let mut assigned = vec![0u64; p];
        let mut owners = Vec::with_capacity(n);
        let mut dealt: u64 = 0;
        while owners.len() < n {
            // Largest deficit: ideal share of the next state minus what
            // the rank already holds; ties to the lower index.
            let next_total = dealt + 1;
            let mut best = usize::MAX;
            let mut best_deficit = f64::NEG_INFINITY;
            for i in 0..p {
                if fractions[i] == 0.0 {
                    continue;
                }
                let deficit = next_total as f64 * fractions[i] - assigned[i] as f64;
                if deficit > best_deficit {
                    best_deficit = deficit;
                    best = i;
                }
            }
            debug_assert!(best != usize::MAX);
            let take = block.min(n - owners.len());
            for _ in 0..take {
                owners.push(best as u32);
            }
            assigned[best] += 1;
            dealt += 1;
        }
        CyclicDistribution { n, p, block, owners }
    }

    /// Single-row dealing — the finest interleave, used by the GE kernel.
    pub fn fine(n: usize, speeds: &[f64]) -> CyclicDistribution {
        Self::new(n, speeds, 1)
    }

    /// The dealing block size.
    pub fn block_size(&self) -> usize {
        self.block
    }
}

impl Distribution for CyclicDistribution {
    fn n(&self) -> usize {
        self.n
    }

    fn p(&self) -> usize {
        self.p
    }

    fn owner(&self, row: usize) -> usize {
        assert!(row < self.n, "row {row} out of range (n = {})", self.n);
        self.owners[row] as usize
    }

    fn rows_of(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.p, "rank {rank} out of range (p = {})", self.p);
        self.owners
            .iter()
            .enumerate()
            .filter(|(_, &o)| o as usize == rank)
            .map(|(row, _)| row)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::check_conformance;

    #[test]
    fn counts_follow_speeds() {
        let d = CyclicDistribution::fine(100, &[90.0, 50.0, 110.0]);
        let counts = d.counts();
        assert_eq!(counts.iter().sum::<usize>(), 100);
        // Within one block of the ideal 36 / 20 / 44 split.
        assert!((counts[0] as i64 - 36).unsigned_abs() <= 1);
        assert!((counts[1] as i64 - 20).unsigned_abs() <= 1);
        assert!((counts[2] as i64 - 44).unsigned_abs() <= 1);
        check_conformance(&d);
    }

    #[test]
    fn equal_speeds_deal_round_robin() {
        let d = CyclicDistribution::fine(12, &[1.0, 1.0]);
        assert_eq!(d.rows_of(0), vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(d.rows_of(1), vec![1, 3, 5, 7, 9, 11]);
        check_conformance(&d);
    }

    #[test]
    fn blocks_keep_consecutive_rows_together() {
        let d = CyclicDistribution::new(12, &[1.0, 1.0], 3);
        assert_eq!(d.rows_of(0), vec![0, 1, 2, 6, 7, 8]);
        assert_eq!(d.rows_of(1), vec![3, 4, 5, 9, 10, 11]);
        assert_eq!(d.block_size(), 3);
        check_conformance(&d);
    }

    #[test]
    fn every_prefix_is_balanced() {
        // The greedy-deficit guarantee: every prefix of the dealt blocks
        // is within one block of proportional for every rank.
        let speeds = [90.0, 50.0, 110.0, 50.0];
        let total: f64 = speeds.iter().sum();
        let d = CyclicDistribution::fine(400, &speeds);
        let mut counts = vec![0usize; speeds.len()];
        for row in 0..400 {
            counts[d.owner(row)] += 1;
            let k = (row + 1) as f64;
            for (i, &c) in counts.iter().enumerate() {
                let ideal = k * speeds[i] / total;
                assert!(
                    (c as f64 - ideal).abs() <= 1.0 + 1e-9,
                    "prefix {k}, rank {i}: {c} vs ideal {ideal:.2}"
                );
            }
        }
    }

    #[test]
    fn suffix_stays_approximately_proportional() {
        // The property that motivates cyclic layout for GE: any suffix of
        // rows (active submatrix) is distributed ≈ proportionally.
        let speeds = [90.0, 50.0, 110.0, 50.0];
        let n = 400;
        let d = CyclicDistribution::fine(n, &speeds);
        let total: f64 = speeds.iter().sum();
        for start in [0usize, 100, 200, 300, 390] {
            let remaining = n - start;
            for (rank, &speed) in speeds.iter().enumerate() {
                let owned = d.rows_of(rank).iter().filter(|&&r| r >= start).count();
                let ideal = remaining as f64 * speed / total;
                assert!(
                    (owned as f64 - ideal).abs() <= 2.0 + 1e-9,
                    "suffix {start}, rank {rank}: owned {owned}, ideal {ideal:.1}"
                );
            }
        }
    }

    #[test]
    fn extreme_heterogeneity_still_serves_slow_rank() {
        let d = CyclicDistribution::fine(1001, &[1000.0, 1.0]);
        let slow_rows = d.rows_of(1);
        assert_eq!(slow_rows.len(), 1);
        check_conformance(&d);
    }

    #[test]
    fn zero_speed_rank_gets_nothing() {
        let d = CyclicDistribution::fine(50, &[1.0, 0.0, 1.0]);
        assert!(d.rows_of(1).is_empty());
        check_conformance(&d);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_rejected() {
        CyclicDistribution::new(10, &[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "at least one speed must be positive")]
    fn all_zero_speeds_rejected() {
        CyclicDistribution::fine(10, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_out_of_range_panics() {
        CyclicDistribution::fine(10, &[1.0, 1.0]).owner(10);
    }

    #[test]
    fn partial_last_block_is_truncated() {
        let d = CyclicDistribution::new(7, &[1.0, 1.0], 3);
        assert_eq!(d.counts().iter().sum::<usize>(), 7);
        check_conformance(&d);
    }

    #[test]
    fn determinism() {
        let speeds = [90.0, 50.0, 110.0];
        let a = CyclicDistribution::new(313, &speeds, 2);
        let b = CyclicDistribution::new(313, &speeds, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn conformance_on_many_shapes() {
        for (n, speeds, block) in [
            (1usize, vec![5.0], 1usize),
            (313, vec![90.0, 50.0], 4),
            (100, vec![45.0, 50.0, 110.0, 110.0], 11),
            (97, vec![1.0, 2.0, 3.0, 4.0, 5.0], 2),
            (0, vec![1.0, 2.0], 3),
        ] {
            check_conformance(&CyclicDistribution::new(n, &speeds, block));
        }
    }
}
