//! Load-balance analysis of a distribution against a speed vector.
//!
//! The paper's Theorem 1 assumes "a balanced workload on each node",
//! meaning `Wᵢ/Cᵢ` equal across nodes. These helpers quantify how close
//! an integer row assignment comes to that ideal, and estimate the
//! compute-phase makespan a distribution implies.

/// Estimated parallel compute time: `max_i(work_i / speed_i)`, with work
/// in flop and speed in flop/s.
///
/// # Panics
/// Panics on mismatched lengths or a non-positive speed paired with
/// non-zero work (that node would never finish).
pub fn parallel_time_estimate(work: &[f64], speeds_flops: &[f64]) -> f64 {
    assert_eq!(work.len(), speeds_flops.len(), "one speed per work share");
    let mut worst = 0.0f64;
    for (&w, &s) in work.iter().zip(speeds_flops) {
        if w == 0.0 {
            continue;
        }
        assert!(s > 0.0, "node with work {w} has non-positive speed {s}");
        worst = worst.max(w / s);
    }
    worst
}

/// Load imbalance of an assignment: `T_max / T_ideal − 1`, where
/// `T_max = max_i(work_i/speed_i)` and `T_ideal = ΣW / ΣC` (perfectly
/// proportional assignment). 0 means perfectly balanced; 1 means the
/// critical node takes twice the ideal time.
///
/// Returns 0 for an all-zero workload.
pub fn imbalance(work: &[f64], speeds_flops: &[f64]) -> f64 {
    assert_eq!(work.len(), speeds_flops.len(), "one speed per work share");
    let total_work: f64 = work.iter().sum();
    if total_work == 0.0 {
        return 0.0;
    }
    let total_speed: f64 = speeds_flops.iter().sum();
    assert!(total_speed > 0.0, "total speed must be positive");
    let ideal = total_work / total_speed;
    let actual = parallel_time_estimate(work, speeds_flops);
    actual / ideal - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_assignment_is_perfectly_balanced() {
        let speeds = [9e7, 5e7, 11e7];
        let work: Vec<f64> = speeds.iter().map(|s| s * 2.0).collect(); // 2 s each
        assert!(imbalance(&work, &speeds).abs() < 1e-12);
        assert!((parallel_time_estimate(&work, &speeds) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn equal_split_on_heterogeneous_nodes_is_imbalanced() {
        // Two nodes, 4:1 speed ratio, equal work: slow node dominates.
        let speeds = [4e8, 1e8];
        let work = [1e8, 1e8];
        // Ideal time: 2e8 / 5e8 = 0.4 s; actual: 1 s on the slow node.
        assert!((imbalance(&work, &speeds) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn makespan_is_max_over_nodes() {
        let speeds = [1e8, 1e8];
        let work = [3e8, 1e8];
        assert_eq!(parallel_time_estimate(&work, &speeds), 3.0);
    }

    #[test]
    fn zero_work_nodes_are_ignored() {
        // A zero-speed node with zero work is legal (e.g. excluded rank).
        let speeds = [1e8, 0.0];
        let work = [1e8, 0.0];
        assert_eq!(parallel_time_estimate(&work, &speeds), 1.0);
    }

    #[test]
    fn all_zero_work_is_balanced() {
        assert_eq!(imbalance(&[0.0, 0.0], &[1e8, 2e8]), 0.0);
        assert_eq!(parallel_time_estimate(&[0.0, 0.0], &[1e8, 2e8]), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-positive speed")]
    fn work_on_zero_speed_node_panics() {
        parallel_time_estimate(&[1.0], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "one speed per work share")]
    fn length_mismatch_panics() {
        imbalance(&[1.0, 2.0], &[1e8]);
    }

    #[test]
    fn integer_rounding_gives_small_imbalance() {
        // Row counts from largest-remainder apportionment are within one
        // row of ideal, so imbalance shrinks as n grows.
        let speeds = [9e7, 5e7, 11e7];
        let mflops = [90.0, 50.0, 110.0];
        let mut last = f64::INFINITY;
        for n in [25usize, 100, 400, 1600] {
            let counts = crate::proportional_counts(n, &mflops);
            let work: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
            let imb = imbalance(&work, &speeds);
            assert!(imb >= 0.0);
            assert!(imb <= last + 1e-9, "imbalance should not grow with n");
            last = imb;
        }
        assert!(last < 0.02, "large-n imbalance should be tiny, got {last}");
    }
}
