//! Contiguous row-block distributions.
//!
//! The HoHe matrix-multiplication kernel distributes matrix `A` as one
//! contiguous block of rows per rank, block `i` holding about `N·Cᵢ/C`
//! rows. A homogeneous variant (equal blocks, speed-blind) serves as the
//! ablation baseline quantifying what proportional distribution buys on
//! a heterogeneous system.

use crate::proportion::proportional_counts;
use crate::Distribution;
use serde::{Deserialize, Serialize};

/// A half-open row range `[start, end)` owned by one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowRange {
    /// First row of the block.
    pub start: usize,
    /// One past the last row of the block.
    pub end: usize,
}

impl RowRange {
    /// Number of rows in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the block is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True when `row` falls inside the block.
    pub fn contains(&self, row: usize) -> bool {
        (self.start..self.end).contains(&row)
    }
}

/// Contiguous block distribution: rank `i` owns `ranges()[i]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockDistribution {
    n: usize,
    ranges: Vec<RowRange>,
}

impl BlockDistribution {
    /// Blocks proportional to `speeds` (the heterogeneous HoHe layout).
    ///
    /// # Panics
    /// Propagates the panics of [`proportional_counts`] on invalid speeds.
    pub fn proportional(n: usize, speeds: &[f64]) -> BlockDistribution {
        let counts = proportional_counts(n, speeds);
        Self::from_counts(n, &counts)
    }

    /// Equal blocks regardless of speed (the homogeneous baseline; the
    /// first `n mod p` ranks get one extra row).
    pub fn homogeneous(n: usize, p: usize) -> BlockDistribution {
        assert!(p > 0, "need at least one rank");
        let counts: Vec<usize> = (0..p).map(|i| n / p + usize::from(i < n % p)).collect();
        Self::from_counts(n, &counts)
    }

    /// Builds blocks from explicit per-rank row counts.
    ///
    /// # Panics
    /// Panics when the counts do not sum to `n`.
    pub fn from_counts(n: usize, counts: &[usize]) -> BlockDistribution {
        assert_eq!(counts.iter().sum::<usize>(), n, "counts must sum to n");
        let mut ranges = Vec::with_capacity(counts.len());
        let mut start = 0;
        for &c in counts {
            ranges.push(RowRange { start, end: start + c });
            start += c;
        }
        BlockDistribution { n, ranges }
    }

    /// The per-rank blocks, in rank order.
    pub fn ranges(&self) -> &[RowRange] {
        &self.ranges
    }

    /// The block owned by `rank`.
    pub fn range_of(&self, rank: usize) -> RowRange {
        self.ranges[rank]
    }
}

impl Distribution for BlockDistribution {
    fn n(&self) -> usize {
        self.n
    }

    fn p(&self) -> usize {
        self.ranges.len()
    }

    fn owner(&self, row: usize) -> usize {
        assert!(row < self.n, "row {row} out of range (n = {})", self.n);
        // Binary search over block starts; empty blocks make the simple
        // partition-point answer land one past the owner, so walk back
        // over empties.
        let idx = self.ranges.partition_point(|r| r.end <= row);
        debug_assert!(self.ranges[idx].contains(row));
        idx
    }

    fn rows_of(&self, rank: usize) -> Vec<usize> {
        let r = self.ranges[rank];
        (r.start..r.end).collect()
    }

    fn counts(&self) -> Vec<usize> {
        self.ranges.iter().map(|r| r.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::check_conformance;

    #[test]
    fn proportional_blocks_follow_speeds() {
        let d = BlockDistribution::proportional(100, &[90.0, 50.0, 110.0]);
        let counts = d.counts();
        assert_eq!(counts, vec![36, 20, 44]);
        check_conformance(&d);
    }

    #[test]
    fn homogeneous_blocks_are_even() {
        let d = BlockDistribution::homogeneous(10, 3);
        assert_eq!(d.counts(), vec![4, 3, 3]);
        check_conformance(&d);
    }

    #[test]
    fn homogeneous_ignores_heterogeneity() {
        let het = BlockDistribution::proportional(100, &[10.0, 90.0]);
        let hom = BlockDistribution::homogeneous(100, 2);
        assert_ne!(het.counts(), hom.counts());
        assert_eq!(hom.counts(), vec![50, 50]);
    }

    #[test]
    fn owner_matches_ranges() {
        let d = BlockDistribution::proportional(50, &[1.0, 2.0, 2.0]);
        for rank in 0..3 {
            let r = d.range_of(rank);
            for row in r.start..r.end {
                assert_eq!(d.owner(row), rank);
            }
        }
    }

    #[test]
    fn empty_block_for_zero_speed_rank() {
        let d = BlockDistribution::proportional(10, &[1.0, 0.0, 1.0]);
        assert!(d.range_of(1).is_empty());
        assert_eq!(d.rows_of(1), Vec::<usize>::new());
        check_conformance(&d);
    }

    #[test]
    fn owner_skips_empty_blocks() {
        // Rank 1 has zero rows; rows after its (empty) block must resolve
        // to rank 2.
        let d = BlockDistribution::from_counts(4, &[2, 0, 2]);
        assert_eq!(d.owner(1), 0);
        assert_eq!(d.owner(2), 2);
        assert_eq!(d.owner(3), 2);
        check_conformance(&d);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_rejects_out_of_range_row() {
        BlockDistribution::homogeneous(10, 2).owner(10);
    }

    #[test]
    #[should_panic(expected = "counts must sum to n")]
    fn bad_counts_rejected() {
        BlockDistribution::from_counts(10, &[3, 3]);
    }

    #[test]
    fn single_rank_owns_everything() {
        let d = BlockDistribution::homogeneous(7, 1);
        assert_eq!(d.counts(), vec![7]);
        assert_eq!(d.owner(6), 0);
        check_conformance(&d);
    }

    #[test]
    fn zero_rows_distribution_is_valid() {
        let d = BlockDistribution::homogeneous(0, 3);
        assert_eq!(d.counts(), vec![0, 0, 0]);
        check_conformance(&d);
    }

    #[test]
    fn row_range_utilities() {
        let r = RowRange { start: 3, end: 7 };
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert!(r.contains(3) && r.contains(6));
        assert!(!r.contains(7) && !r.contains(2));
    }

    #[test]
    fn conformance_on_many_shapes() {
        for (n, speeds) in [
            (1usize, vec![5.0]),
            (17, vec![1.0, 1.0]),
            (313, vec![90.0, 50.0, 50.0, 50.0]),
            (100, vec![45.0, 50.0, 110.0, 110.0, 110.0]),
        ] {
            check_conformance(&BlockDistribution::proportional(n, &speeds));
        }
    }
}
