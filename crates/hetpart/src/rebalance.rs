//! Repartitioning after node deaths: graceful degradation.
//!
//! When a fault plan declares nodes dead, the run restarts on the
//! survivors with the data redistributed by surviving marked-speed
//! proportion. This module computes that redistribution and its cost
//! inputs: which rows move, and how many bytes cross the wire. The
//! result is deterministic — a pure function of `(n, speeds, dead)` —
//! so repartition costs stay byte-stable in reports.

use crate::block::BlockDistribution;
use crate::Distribution;

/// The outcome of repartitioning `n` rows after removing dead ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct Repartition {
    /// Original rank ids that survive, ascending.
    pub survivors: Vec<usize>,
    /// Rows per survivor (indexed like `survivors`) after rebalancing
    /// by surviving marked-speed proportion.
    pub counts: Vec<usize>,
    /// Number of rows whose owner changed (old owner dead or shifted).
    pub moved_rows: usize,
    /// Total bytes that must cross the network: `moved_rows × row_bytes`.
    pub moved_bytes: u64,
    /// Moved rows *received* per survivor (indexed like `survivors`) —
    /// the per-rank repartition traffic mid-run recovery charges as
    /// rebalance spans. Sums to `moved_rows`.
    pub moved_in_rows: Vec<usize>,
}

/// Computes the proportional block repartition of `n` rows after the
/// ranks in `dead` are removed from a `speeds`-rated cluster.
///
/// The "before" layout is the proportional block distribution over all
/// `speeds`; the "after" layout is the proportional block distribution
/// over the survivors' speeds, mapped back to original rank ids. A row
/// counts as moved when its owner differs between the two layouts —
/// including rows that stay on a surviving node but shift position as
/// blocks close ranks. `row_bytes` prices each moved row (e.g. `8·n`
/// for an `f64` matrix row).
///
/// # Panics
/// Panics if `dead` names an out-of-range rank or kills every node.
pub fn repartition_after_deaths(
    n: usize,
    speeds: &[f64],
    dead: &[usize],
    row_bytes: u64,
) -> Repartition {
    let p = speeds.len();
    for &d in dead {
        assert!(d < p, "dead rank {d} out of range for p = {p}");
    }
    let survivors: Vec<usize> = (0..p).filter(|r| !dead.contains(r)).collect();
    assert!(!survivors.is_empty(), "cannot repartition: every rank is dead");

    let before = BlockDistribution::proportional(n, speeds);
    let surviving_speeds: Vec<f64> = survivors.iter().map(|&r| speeds[r]).collect();
    let after = BlockDistribution::proportional(n, &surviving_speeds);

    let mut moved_rows = 0usize;
    let mut moved_in_rows = vec![0usize; survivors.len()];
    for row in 0..n {
        let old_owner = before.owner(row);
        let new_idx = after.owner(row);
        if old_owner != survivors[new_idx] {
            moved_rows += 1;
            moved_in_rows[new_idx] += 1;
        }
    }
    Repartition {
        survivors,
        counts: after.counts(),
        moved_rows,
        moved_bytes: moved_rows as u64 * row_bytes,
        moved_in_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_deaths_moves_nothing() {
        let r = repartition_after_deaths(100, &[90.0, 50.0, 110.0], &[], 800);
        assert_eq!(r.survivors, vec![0, 1, 2]);
        assert_eq!(r.counts, vec![36, 20, 44]);
        assert_eq!(r.moved_rows, 0);
        assert_eq!(r.moved_bytes, 0);
    }

    #[test]
    fn killing_a_node_moves_its_rows_at_least() {
        let speeds = [90.0, 50.0, 110.0];
        let r = repartition_after_deaths(100, &speeds, &[1], 800);
        assert_eq!(r.survivors, vec![0, 2]);
        // Survivors reabsorb all 100 rows by speed proportion 90:110.
        assert_eq!(r.counts.iter().sum::<usize>(), 100);
        assert_eq!(r.counts, vec![45, 55]);
        // At minimum the dead node's 20 rows move.
        assert!(r.moved_rows >= 20, "moved {} rows", r.moved_rows);
        assert_eq!(r.moved_bytes, r.moved_rows as u64 * 800);
        assert_eq!(r.moved_in_rows.iter().sum::<usize>(), r.moved_rows);
        assert_eq!(r.moved_in_rows.len(), r.survivors.len());
    }

    #[test]
    fn repartition_is_deterministic() {
        let speeds = [70.0, 70.0, 140.0, 35.0];
        let a = repartition_after_deaths(513, &speeds, &[2], 4104);
        let b = repartition_after_deaths(513, &speeds, &[2], 4104);
        assert_eq!(a, b);
    }

    #[test]
    fn surviving_counts_are_proportional() {
        let speeds = [100.0, 100.0, 100.0, 100.0];
        let r = repartition_after_deaths(80, &speeds, &[0, 3], 8);
        assert_eq!(r.survivors, vec![1, 2]);
        assert_eq!(r.counts, vec![40, 40]);
    }

    #[test]
    #[should_panic(expected = "every rank is dead")]
    fn killing_everyone_panics() {
        repartition_after_deaths(10, &[1.0, 1.0], &[0, 1], 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_dead_rank_panics() {
        repartition_after_deaths(10, &[1.0, 1.0], &[5], 8);
    }
}
