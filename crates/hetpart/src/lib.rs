//! # hetpart — heterogeneous data distribution
//!
//! On a heterogeneous system, balanced load means *work proportional to
//! marked speed*, not equal work. Both of the paper's kernels rely on
//! this (ref \[6\], Kalinov & Lastovetsky):
//!
//! * Gaussian elimination uses a **row-based heterogeneous cyclic
//!   distribution** — rows are dealt out in rounds, each node receiving a
//!   share of every round proportional to its marked speed, so the
//!   shrinking active submatrix stays balanced as elimination proceeds.
//! * Matrix multiplication uses a **row-based heterogeneous block
//!   distribution** under the *HoHe* strategy — homogeneous processes
//!   (one per processor), heterogeneous contiguous blocks sized `N·Cᵢ/C`.
//!
//! This crate implements both, plus the naive homogeneous block
//! distribution used as the ablation baseline, behind one
//! [`Distribution`] trait. Integer apportionment uses the
//! largest-remainder method ([`proportion`]), which preserves the row sum
//! exactly. [`balance`] quantifies how good an assignment is for a given
//! speed vector.

//! ## Example
//!
//! ```
//! use hetpart::{BlockDistribution, CyclicDistribution, Distribution};
//!
//! // Three nodes rated 90 / 50 / 110 Mflop/s share 100 rows.
//! let speeds = [90.0, 50.0, 110.0];
//! let blocks = BlockDistribution::proportional(100, &speeds);
//! assert_eq!(blocks.counts(), vec![36, 20, 44]);
//!
//! // The cyclic deal keeps every suffix proportional too.
//! let cyclic = CyclicDistribution::fine(100, &speeds);
//! assert_eq!(cyclic.counts().iter().sum::<usize>(), 100);
//! assert!(cyclic.owner(0) < 3);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod balance;
pub mod block;
pub mod cyclic;
pub mod proportion;
pub mod rebalance;

pub use balance::{imbalance, parallel_time_estimate};
pub use block::{BlockDistribution, RowRange};
pub use cyclic::{ClassedCyclicDeal, CyclicDistribution};
pub use proportion::{proportional_counts, proportional_counts_classed};
pub use rebalance::{repartition_after_deaths, Repartition};

/// A mapping of `n` matrix rows onto `p` ranks.
///
/// Implementations guarantee: every row has exactly one owner, rank row
/// lists are sorted ascending, and `counts()[r] == rows_of(r).len()`.
pub trait Distribution {
    /// Total number of rows distributed.
    fn n(&self) -> usize;

    /// Number of ranks.
    fn p(&self) -> usize;

    /// The rank owning `row`.
    ///
    /// # Panics
    /// Panics if `row >= n()`.
    fn owner(&self, row: usize) -> usize;

    /// All rows owned by `rank`, ascending.
    fn rows_of(&self, rank: usize) -> Vec<usize>;

    /// Rows-per-rank histogram.
    fn counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.p()];
        for row in 0..self.n() {
            c[self.owner(row)] += 1;
        }
        c
    }
}

#[cfg(test)]
pub(crate) mod conformance {
    use super::*;

    /// Shared conformance check used by both distribution types' tests.
    pub(crate) fn check_conformance<D: Distribution>(d: &D) {
        let n = d.n();
        let p = d.p();
        // Every row owned exactly once and owner agrees with rows_of.
        let mut seen = vec![false; n];
        for rank in 0..p {
            let rows = d.rows_of(rank);
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows_of must be sorted");
            for &row in &rows {
                assert!(row < n);
                assert!(!seen[row], "row {row} assigned twice");
                seen[row] = true;
                assert_eq!(d.owner(row), rank, "owner disagrees for row {row}");
            }
        }
        assert!(seen.iter().all(|&s| s), "some row unassigned");
        // Counts consistent.
        let counts = d.counts();
        assert_eq!(counts.iter().sum::<usize>(), n);
        for (rank, &count) in counts.iter().enumerate() {
            assert_eq!(count, d.rows_of(rank).len());
        }
    }
}
