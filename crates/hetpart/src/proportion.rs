//! Integer apportionment by the largest-remainder (Hamilton) method.
//!
//! Distributing `n` indivisible rows proportionally to real-valued speeds
//! requires rounding that (a) preserves the total exactly and (b) never
//! deviates from the ideal share by a full unit. Largest-remainder gives
//! both, and is deterministic given a fixed tie order (lower index wins).

/// Splits `n` units among weights, proportionally, summing exactly to `n`.
///
/// Zero weights receive zero units. Ties in fractional remainders go to
/// the lower index, making the result fully deterministic.
///
/// # Panics
/// Panics when `weights` is empty, contains a negative or non-finite
/// value, or sums to zero while `n > 0`.
pub fn proportional_counts(n: usize, weights: &[f64]) -> Vec<usize> {
    assert!(!weights.is_empty(), "need at least one weight");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let total: f64 = weights.iter().sum();
    if n == 0 {
        return vec![0; weights.len()];
    }
    assert!(total > 0.0, "cannot apportion {n} units over all-zero weights");

    let ideal: Vec<f64> = weights.iter().map(|w| n as f64 * w / total).collect();
    let mut counts: Vec<usize> = ideal.iter().map(|x| x.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut leftover = n - assigned;

    // Hand the leftover units to the largest fractional remainders.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = ideal[a] - ideal[a].floor();
        let fb = ideal[b] - ideal[b].floor();
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    for &i in &order {
        if leftover == 0 {
            break;
        }
        // Never give a unit to a zero-weight participant.
        if weights[i] > 0.0 {
            counts[i] += 1;
            leftover -= 1;
        }
    }
    assert_eq!(counts.iter().sum::<usize>(), n, "apportionment must be exact");
    counts
}

/// Like [`proportional_counts`], but guarantees every positive-weight
/// participant at least one unit when `n` allows it (`n ≥` number of
/// positive weights). Used for distributions where a rank with zero rows
/// would deadlock a collective protocol.
pub fn proportional_counts_min_one(n: usize, weights: &[f64]) -> Vec<usize> {
    let positive: usize = weights.iter().filter(|&&w| w > 0.0).count();
    if n < positive || positive == 0 {
        return proportional_counts(n, weights);
    }
    // Reserve one unit per positive weight, apportion the rest, add back.
    let rest = proportional_counts(n - positive, weights);
    rest.iter().zip(weights).map(|(&c, &w)| if w > 0.0 { c + 1 } else { c }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division_has_no_remainder() {
        assert_eq!(proportional_counts(10, &[1.0, 1.0]), vec![5, 5]);
        assert_eq!(proportional_counts(12, &[1.0, 2.0, 3.0]), vec![2, 4, 6]);
    }

    #[test]
    fn sum_is_always_exact() {
        for n in [0usize, 1, 7, 100, 313] {
            for w in [
                vec![1.0, 2.0, 3.0],
                vec![0.3, 0.3, 0.4],
                vec![90.0, 50.0],
                vec![45.0, 50.0, 110.0, 110.0],
            ] {
                let c = proportional_counts(n, &w);
                assert_eq!(c.iter().sum::<usize>(), n, "n={n}, w={w:?}");
            }
        }
    }

    #[test]
    fn deviation_below_one_unit() {
        let w = [45.0, 50.0, 110.0];
        let total: f64 = w.iter().sum();
        for n in [10usize, 31, 97, 310] {
            let c = proportional_counts(n, &w);
            for (i, &ci) in c.iter().enumerate() {
                let ideal = n as f64 * w[i] / total;
                assert!((ci as f64 - ideal).abs() < 1.0, "n={n} i={i}: got {ci}, ideal {ideal}");
            }
        }
    }

    #[test]
    fn faster_nodes_get_more_rows() {
        // The paper's two-node GE case: server (2 CPU, 90) + SunBlade (50).
        let c = proportional_counts(310, &[90.0, 50.0]);
        assert!(c[0] > c[1]);
        assert_eq!(c.iter().sum::<usize>(), 310);
    }

    #[test]
    fn zero_weight_gets_nothing() {
        let c = proportional_counts(10, &[1.0, 0.0, 1.0]);
        assert_eq!(c[1], 0);
        assert_eq!(c.iter().sum::<usize>(), 10);
    }

    #[test]
    fn zero_units_is_fine() {
        assert_eq!(proportional_counts(0, &[1.0, 2.0]), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "all-zero weights")]
    fn all_zero_weights_panics() {
        proportional_counts(5, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_weights_panics() {
        proportional_counts(5, &[]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_panics() {
        proportional_counts(5, &[1.0, -1.0]);
    }

    #[test]
    fn ties_break_deterministically_low_index_first() {
        // Two equal weights, odd total: the extra unit goes to index 0.
        assert_eq!(proportional_counts(3, &[1.0, 1.0]), vec![2, 1]);
        assert_eq!(proportional_counts(5, &[1.0, 1.0, 1.0]), vec![2, 2, 1]);
    }

    #[test]
    fn min_one_guarantees_nonzero_shares() {
        // A very slow node would get 0 rows under pure apportionment.
        let w = [1000.0, 1.0];
        assert_eq!(proportional_counts(5, &w)[1], 0);
        let c = proportional_counts_min_one(5, &w);
        assert_eq!(c[1], 1);
        assert_eq!(c.iter().sum::<usize>(), 5);
    }

    #[test]
    fn min_one_falls_back_when_n_too_small() {
        // Cannot give 3 nodes one row each out of 2 rows.
        let c = proportional_counts_min_one(2, &[1.0, 1.0, 1.0]);
        assert_eq!(c.iter().sum::<usize>(), 2);
    }

    #[test]
    fn min_one_skips_zero_weights() {
        let c = proportional_counts_min_one(4, &[1.0, 0.0, 1.0]);
        assert_eq!(c[1], 0);
        assert_eq!(c.iter().sum::<usize>(), 4);
    }
}
