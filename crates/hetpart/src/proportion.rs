//! Integer apportionment by the largest-remainder (Hamilton) method.
//!
//! Distributing `n` indivisible rows proportionally to real-valued speeds
//! requires rounding that (a) preserves the total exactly and (b) never
//! deviates from the ideal share by a full unit. Largest-remainder gives
//! both, and is deterministic given a fixed tie order (lower index wins).

/// Splits `n` units among weights, proportionally, summing exactly to `n`.
///
/// Zero weights receive zero units. Ties in fractional remainders go to
/// the lower index, making the result fully deterministic.
///
/// # Panics
/// Panics when `weights` is empty, contains a negative or non-finite
/// value, or sums to zero while `n > 0`.
pub fn proportional_counts(n: usize, weights: &[f64]) -> Vec<usize> {
    assert!(!weights.is_empty(), "need at least one weight");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let total: f64 = weights.iter().sum();
    if n == 0 {
        return vec![0; weights.len()];
    }
    assert!(total > 0.0, "cannot apportion {n} units over all-zero weights");

    let ideal: Vec<f64> = weights.iter().map(|w| n as f64 * w / total).collect();
    let mut counts: Vec<usize> = ideal.iter().map(|x| x.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut leftover = n - assigned;

    // Hand the leftover units to the largest fractional remainders.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = ideal[a] - ideal[a].floor();
        let fb = ideal[b] - ideal[b].floor();
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    for &i in &order {
        if leftover == 0 {
            break;
        }
        // Never give a unit to a zero-weight participant.
        if weights[i] > 0.0 {
            counts[i] += 1;
            leftover -= 1;
        }
    }
    assert_eq!(counts.iter().sum::<usize>(), n, "apportionment must be exact");
    counts
}

/// Class-collapsed [`proportional_counts`]: apportions `n` units over
/// a run-length-encoded weight list (`(weight, members)` per run, in
/// rank order) in O(classes log classes), returning `(units, members)`
/// runs in rank order that expand to exactly what
/// [`proportional_counts`] produces on the expanded weights.
///
/// The mirror is bit-exact, not approximate: the weight total is the
/// same rank-order IEEE fold (collapsed per run by
/// [`hetsim_cluster::flrepeat::repeat_add`]), every member of a class
/// shares one ideal share and one fractional remainder, and the
/// largest-remainder order — remainder descending, index ascending —
/// visits contiguous classes block by block, handing leftover units to
/// the first members of each class. Class-aggregated kernels rely on
/// this to compute 10⁷-rank row distributions without materializing
/// them (DESIGN.md §13).
///
/// # Panics
/// As [`proportional_counts`], plus when a run is empty.
pub fn proportional_counts_classed(n: usize, weight_runs: &[(f64, usize)]) -> Vec<(usize, usize)> {
    assert!(!weight_runs.is_empty(), "need at least one weight");
    assert!(
        weight_runs.iter().all(|&(w, m)| w.is_finite() && w >= 0.0 && m > 0),
        "weights must be finite and non-negative, runs non-empty"
    );
    let mut total = 0.0;
    for &(w, m) in weight_runs {
        total = hetsim_cluster::flrepeat::repeat_add(total, w, m as u64);
    }
    if n == 0 {
        return weight_runs.iter().map(|&(_, m)| (0, m)).collect();
    }
    assert!(total > 0.0, "cannot apportion {n} units over all-zero weights");

    let ideal: Vec<f64> = weight_runs.iter().map(|&(w, _)| n as f64 * w / total).collect();
    let base: Vec<usize> = ideal.iter().map(|x| x.floor() as usize).collect();
    let assigned: usize = base.iter().zip(weight_runs).map(|(&b, &(_, m))| b * m).sum();
    let mut leftover = n - assigned;

    // Largest remainder, classes visited whole: equal remainders within
    // a class tie-break by index, and classes are contiguous runs, so
    // the per-member order is exactly "class blocks sorted by
    // (remainder desc, first index asc), first members first".
    let mut order: Vec<usize> = (0..weight_runs.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = ideal[a] - ideal[a].floor();
        let fb = ideal[b] - ideal[b].floor();
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    let mut plus = vec![0usize; weight_runs.len()];
    for &i in &order {
        if leftover == 0 {
            break;
        }
        if weight_runs[i].0 > 0.0 {
            plus[i] = leftover.min(weight_runs[i].1);
            leftover -= plus[i];
        }
    }

    let mut runs = Vec::with_capacity(2 * weight_runs.len());
    for (i, &(_, m)) in weight_runs.iter().enumerate() {
        if plus[i] > 0 {
            runs.push((base[i] + 1, plus[i]));
        }
        if m > plus[i] {
            runs.push((base[i], m - plus[i]));
        }
    }
    debug_assert_eq!(runs.iter().map(|&(u, m)| u * m).sum::<usize>(), n);
    runs
}

/// Like [`proportional_counts`], but guarantees every positive-weight
/// participant at least one unit when `n` allows it (`n ≥` number of
/// positive weights). Used for distributions where a rank with zero rows
/// would deadlock a collective protocol.
pub fn proportional_counts_min_one(n: usize, weights: &[f64]) -> Vec<usize> {
    let positive: usize = weights.iter().filter(|&&w| w > 0.0).count();
    if n < positive || positive == 0 {
        return proportional_counts(n, weights);
    }
    // Reserve one unit per positive weight, apportion the rest, add back.
    let rest = proportional_counts(n - positive, weights);
    rest.iter().zip(weights).map(|(&c, &w)| if w > 0.0 { c + 1 } else { c }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division_has_no_remainder() {
        assert_eq!(proportional_counts(10, &[1.0, 1.0]), vec![5, 5]);
        assert_eq!(proportional_counts(12, &[1.0, 2.0, 3.0]), vec![2, 4, 6]);
    }

    #[test]
    fn sum_is_always_exact() {
        for n in [0usize, 1, 7, 100, 313] {
            for w in [
                vec![1.0, 2.0, 3.0],
                vec![0.3, 0.3, 0.4],
                vec![90.0, 50.0],
                vec![45.0, 50.0, 110.0, 110.0],
            ] {
                let c = proportional_counts(n, &w);
                assert_eq!(c.iter().sum::<usize>(), n, "n={n}, w={w:?}");
            }
        }
    }

    #[test]
    fn deviation_below_one_unit() {
        let w = [45.0, 50.0, 110.0];
        let total: f64 = w.iter().sum();
        for n in [10usize, 31, 97, 310] {
            let c = proportional_counts(n, &w);
            for (i, &ci) in c.iter().enumerate() {
                let ideal = n as f64 * w[i] / total;
                assert!((ci as f64 - ideal).abs() < 1.0, "n={n} i={i}: got {ci}, ideal {ideal}");
            }
        }
    }

    #[test]
    fn faster_nodes_get_more_rows() {
        // The paper's two-node GE case: server (2 CPU, 90) + SunBlade (50).
        let c = proportional_counts(310, &[90.0, 50.0]);
        assert!(c[0] > c[1]);
        assert_eq!(c.iter().sum::<usize>(), 310);
    }

    #[test]
    fn zero_weight_gets_nothing() {
        let c = proportional_counts(10, &[1.0, 0.0, 1.0]);
        assert_eq!(c[1], 0);
        assert_eq!(c.iter().sum::<usize>(), 10);
    }

    #[test]
    fn zero_units_is_fine() {
        assert_eq!(proportional_counts(0, &[1.0, 2.0]), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "all-zero weights")]
    fn all_zero_weights_panics() {
        proportional_counts(5, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_weights_panics() {
        proportional_counts(5, &[]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_panics() {
        proportional_counts(5, &[1.0, -1.0]);
    }

    #[test]
    fn ties_break_deterministically_low_index_first() {
        // Two equal weights, odd total: the extra unit goes to index 0.
        assert_eq!(proportional_counts(3, &[1.0, 1.0]), vec![2, 1]);
        assert_eq!(proportional_counts(5, &[1.0, 1.0, 1.0]), vec![2, 2, 1]);
    }

    #[test]
    fn min_one_guarantees_nonzero_shares() {
        // A very slow node would get 0 rows under pure apportionment.
        let w = [1000.0, 1.0];
        assert_eq!(proportional_counts(5, &w)[1], 0);
        let c = proportional_counts_min_one(5, &w);
        assert_eq!(c[1], 1);
        assert_eq!(c.iter().sum::<usize>(), 5);
    }

    #[test]
    fn min_one_falls_back_when_n_too_small() {
        // Cannot give 3 nodes one row each out of 2 rows.
        let c = proportional_counts_min_one(2, &[1.0, 1.0, 1.0]);
        assert_eq!(c.iter().sum::<usize>(), 2);
    }

    #[test]
    fn min_one_skips_zero_weights() {
        let c = proportional_counts_min_one(4, &[1.0, 0.0, 1.0]);
        assert_eq!(c[1], 0);
        assert_eq!(c.iter().sum::<usize>(), 4);
    }

    /// Expands `(weight, members)` runs to the per-rank weight vector.
    fn expand_weights(runs: &[(f64, usize)]) -> Vec<f64> {
        runs.iter().flat_map(|&(w, m)| std::iter::repeat_n(w, m)).collect()
    }

    /// Expands `(units, members)` runs to the per-rank count vector.
    fn expand_counts(runs: &[(usize, usize)]) -> Vec<usize> {
        runs.iter().flat_map(|&(u, m)| std::iter::repeat_n(u, m)).collect()
    }

    #[test]
    fn classed_matches_per_rank_exactly() {
        for n in [0usize, 1, 7, 100, 313, 4096] {
            for runs in [
                vec![(90.0, 1), (50.0, 64)],
                vec![(90.0, 3), (50.0, 64), (150.0, 20)],
                vec![(1.0, 5), (1.0, 5)], // equal remainders across classes
                vec![(0.3, 7), (0.4, 1)], // inexact total fold
                vec![(1.0, 4), (0.0, 3), (2.0, 4)], // zero-weight class
            ] {
                let classed = proportional_counts_classed(n, &runs);
                let per_rank = proportional_counts(n, &expand_weights(&runs));
                assert_eq!(expand_counts(&classed), per_rank, "n={n}, runs={runs:?}");
            }
        }
    }

    #[test]
    fn classed_is_compact() {
        // Each class contributes at most two runs, regardless of size.
        let runs = vec![(90.0, 1_000_000), (50.0, 2_000_000), (70.0, 3_000_000)];
        let classed = proportional_counts_classed(317, &runs);
        assert!(classed.len() <= 6, "{classed:?}");
        assert_eq!(classed.iter().map(|&(u, m)| u * m).sum::<usize>(), 317);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        #[test]
        fn classed_matches_per_rank_on_random_runs(
            n in 0usize..5_000,
            picks in proptest::collection::vec((0usize..6, 1usize..40), 1..6),
        ) {
            // Draw weights from a small palette so equal-remainder ties
            // across distinct classes actually occur.
            let palette = [50.0, 90.0, 150.0, 50.0, 0.3, 1.0];
            let runs: Vec<(f64, usize)> =
                picks.iter().map(|&(i, m)| (palette[i], m)).collect();
            let classed = proportional_counts_classed(n, &runs);
            let per_rank = proportional_counts(n, &expand_weights(&runs));
            proptest::prop_assert_eq!(expand_counts(&classed), per_rank);
        }
    }
}
