//! Work models `W(N)` — the problem-size-to-work polynomials.
//!
//! The isospeed-efficiency methodology treats *work* as a property of the
//! algorithm, fixed per problem size: speed is `S = W/T` and the
//! isospeed-efficiency condition constrains the scaled work `W'`. The
//! paper states a cubic polynomial for each kernel ("This polynomial is
//! used to calculate the workload in our experiments"); the surviving
//! copy garbles the GE coefficients, so we use the standard operation
//! counts consistent with the text:
//!
//! * GE (elimination + back substitution on an `N × N` system):
//!   `W(N) = (2/3)·N³ + (3/2)·N²` flops.
//! * MM (square `N × N` product): `W(N) = 2·N³ − N²` flops — this one is
//!   legible in the paper.

/// Gaussian-elimination work in flops for an `N × N` system.
pub fn ge_work(n: usize) -> f64 {
    let nf = n as f64;
    (2.0 / 3.0) * nf * nf * nf + 1.5 * nf * nf
}

/// Matrix-multiplication work in flops for `N × N` matrices
/// (the paper's `W(N) = 2N³ − N²`).
pub fn mm_work(n: usize) -> f64 {
    let nf = n as f64;
    2.0 * nf * nf * nf - nf * nf
}

/// Inverts a work polynomial: the (real-valued) problem size whose work
/// is closest to `w` from below, found by monotone bisection. Returns a
/// fractional `N`; callers round as appropriate.
///
/// # Panics
/// Panics when `w` is negative or not finite.
pub fn invert_work(work_fn: impl Fn(usize) -> f64, w: f64) -> f64 {
    assert!(w.is_finite() && w >= 0.0, "work must be finite and non-negative");
    if w == 0.0 {
        return 0.0;
    }
    // Bracket by doubling.
    let mut hi = 1usize;
    while work_fn(hi) < w {
        hi *= 2;
        assert!(hi < 1 << 40, "work target {w} is implausibly large");
    }
    let mut lo = hi / 2;
    // Integer bisection, then linear interpolation inside the final cell.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if work_fn(mid) < w {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (wl, wh) = (work_fn(lo), work_fn(hi));
    if wh == wl {
        return lo as f64;
    }
    lo as f64 + (w - wl) / (wh - wl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ge_work_leading_term_is_two_thirds_cubed() {
        let n = 1000;
        let ratio = ge_work(n) / (n as f64).powi(3);
        assert!((ratio - 2.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn mm_work_matches_paper_formula() {
        assert_eq!(mm_work(10), 2.0 * 1000.0 - 100.0);
        assert_eq!(mm_work(0), 0.0);
    }

    #[test]
    fn work_is_strictly_increasing() {
        for n in 1..100 {
            assert!(ge_work(n + 1) > ge_work(n));
            assert!(mm_work(n + 1) > mm_work(n));
        }
    }

    #[test]
    fn invert_work_roundtrips_integer_sizes() {
        for n in [10usize, 97, 310, 480] {
            let w = ge_work(n);
            let back = invert_work(ge_work, w);
            assert!((back - n as f64).abs() < 1e-6, "n={n}, back={back}");
        }
    }

    #[test]
    fn invert_work_interpolates_between_sizes() {
        let w = (ge_work(100) + ge_work(101)) / 2.0;
        let n = invert_work(ge_work, w);
        assert!(n > 100.0 && n < 101.0);
    }

    #[test]
    fn invert_zero_work_is_zero() {
        assert_eq!(invert_work(mm_work, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn invert_negative_work_panics() {
        invert_work(ge_work, -1.0);
    }

    #[test]
    fn paper_scale_sanity() {
        // The paper's two-node GE experiment needs N ≈ 310 for E_s = 0.3;
        // its workload column is on the order of 2×10⁷ flops there.
        let w = ge_work(310);
        assert!(w > 1.9e7 && w < 2.1e7, "W(310) = {w}");
    }
}
