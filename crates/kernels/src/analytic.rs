//! Hand-derived closed forms for the four kernel protocols, evaluated
//! without the engine's record/replay machinery.
//!
//! All four timing-mode kernels are *lockstep* (see
//! `hetsim_mpi::engine`'s analytic module for the general detector):
//! their collective schedules are identical on every rank, so each
//! phase's exit clocks are a straight-line function of its entry
//! clocks. The evaluators here go one step further than the generic
//! analyzer — they skip recording entirely and derive the per-phase
//! costs (message counts, charged flops, row ownership) directly from
//! the distribution, which removes the O(ops · p) record pass from
//! every priced cell.
//!
//! **Bit-identity contract**: each closed form performs, per rank, the
//! *same float-op sequence* the event-driven engine charges for the
//! corresponding `*_timed_body` — same `max` folds in rank order, same
//! `+=` order on the clock and the compute/comm accumulators, same
//! division shapes. IEEE 754 addition is non-associative, so only this
//! mirroring (not algebraic equivalence) keeps the results bit-equal.
//! Pure cost-model calls (`p2p_time_between`, `bcast_time`,
//! `gather_time`, `barrier_time`) may be hoisted out of loops: the
//! same arguments produce the same bits, so reuse cannot perturb a
//! result. The `closed_form_matches_engine` grids below pin every
//! kernel × cluster shape × network family against the event-driven
//! scheduler, and transitively (via each kernel's
//! `fast_matches_threaded`) against the thread-per-rank oracle.
//!
//! The closed forms serve the untraced, fault-free path only; traces
//! and fault plans keep the engine, whose generality they need. The
//! kernel entry points select automatically, honouring
//! [`hetsim_mpi::set_analytic_enabled`] (`--no-analytic`).

use crate::ge::TimingOutcome;
use hetpart::{BlockDistribution, CyclicDistribution, Distribution};
use hetsim_cluster::cluster::ClusterSpec;
use hetsim_cluster::network::NetworkModel;
use hetsim_cluster::time::SimTime;

/// Flops charged for eliminating one row of length `len` — must match
/// `ge::parallel::elimination_flops` (pinned by the equivalence test).
pub(crate) fn elimination_flops(len: usize) -> f64 {
    (2 * len + 1) as f64
}

/// Root-serialized distribution: rank 0's sends occupy its clock back
/// to back; each receiver's recv completes at the message's arrival
/// (`max` with its own clock, zero here). `counts[peer]` is the
/// element count sent to `peer` (`counts[0]` unused).
fn scatter_from_root<N: NetworkModel>(
    network: &N,
    clock: &mut [SimTime],
    comm: &mut [SimTime],
    counts: &[usize],
) {
    for peer in 1..clock.len() {
        let bytes = (counts[peer] * 8) as u64;
        let cost = SimTime::from_secs(network.p2p_time_between(0, peer, bytes));
        let arrival = clock[0] + cost;
        comm[0] += arrival - clock[0];
        clock[0] = arrival;
        let exit = clock[peer].max(arrival);
        comm[peer] += exit - clock[peer];
        clock[peer] = exit;
    }
}

/// Broadcast of `count` elements from `root`: the root departs at
/// entry + cost; every receiver exits at `max(own clock, departure)`.
fn bcast_from<N: NetworkModel>(
    network: &N,
    clock: &mut [SimTime],
    comm: &mut [SimTime],
    root: usize,
    count: usize,
) {
    let p = clock.len();
    let bytes = (count * 8) as u64;
    let cost = SimTime::from_secs(network.bcast_time(p, bytes));
    let departure = clock[root] + cost;
    comm[root] += departure - clock[root];
    clock[root] = departure;
    for r in 0..p {
        if r != root {
            let exit = clock[r].max(departure);
            comm[r] += exit - clock[r];
            clock[r] = exit;
        }
    }
}

/// Per-rank element counts to byte sizes, rank-indexed like the engine.
fn byte_sizes(counts: &[usize]) -> Vec<u64> {
    counts.iter().map(|&c| (c * 8) as u64).collect()
}

/// Gather of `sizes[r]` bytes per rank to `root` (callers precompute
/// the size vector once — the power iteration gathers every sweep and
/// the batched GE every campaign with the same sizes). Deposits carry
/// each rank's *entry* clock; leaves then pay their p2p cost while the
/// root waits for the latest deposit plus the gather cost over the
/// size vector (rank-indexed, like the engine).
fn gather_to<N: NetworkModel>(
    network: &N,
    clock: &mut [SimTime],
    comm: &mut [SimTime],
    root: usize,
    sizes: &[u64],
) {
    let p = clock.len();
    let max_entry = *clock.iter().max().expect("p >= 1");
    for r in 0..p {
        if r != root {
            let cost = SimTime::from_secs(network.p2p_time_between(r, root, sizes[r]));
            let exit = clock[r] + cost;
            comm[r] += exit - clock[r];
            clock[r] = exit;
        }
    }
    let gather_cost = SimTime::from_secs(network.gather_time(sizes, root));
    let ready = clock[root].max(max_entry);
    let exit = ready + gather_cost;
    comm[root] += exit - clock[root];
    clock[root] = exit;
}

/// Condenses per-rank clocks into the timing summary, with the same
/// rank-order folds as `SpmdOutcome::makespan` / `total_overhead`.
fn finish(clock: Vec<SimTime>, compute: Vec<SimTime>, comm: Vec<SimTime>) -> TimingOutcome {
    TimingOutcome {
        makespan: clock.iter().copied().max().unwrap_or(SimTime::ZERO),
        total_overhead: comm.iter().fold(SimTime::ZERO, |acc, &t| acc + t),
        times: clock,
        compute_times: compute,
    }
}

fn marked_speeds(cluster: &ClusterSpec) -> Vec<f64> {
    cluster.nodes().iter().map(|nd| nd.marked_speed_flops()).collect()
}

/// Closed-form GE timings: bit-identical to the engine pricing
/// `ge::timed`'s skeleton (scatter, per-pivot bcast → eliminate →
/// barrier rounds, gather, root back-substitution).
pub fn ge_closed_form<N: NetworkModel>(
    cluster: &ClusterSpec,
    network: &N,
    n: usize,
    dist: &CyclicDistribution,
) -> TimingOutcome {
    ge_closed_form_many(cluster, std::slice::from_ref(network), n, dist)
        .pop()
        .expect("one network in, one outcome out")
}

/// Per-campaign mutable state of the batched GE evaluation. Campaigns
/// share no float state: only the network-independent inputs (row
/// ownership, `remaining` counts, elimination `dt`s) are computed once
/// and read by all.
struct GeCampaign {
    clock: Vec<SimTime>,
    compute: Vec<SimTime>,
    comm: Vec<SimTime>,
    /// Shared post-barrier clock (all ranks leave a barrier with the
    /// same f64), valid from the end of round 0 onwards.
    clk: SimTime,
}

/// [`ge_closed_form`] over many network models at once — the same
/// problem on the same cluster and distribution, priced under each
/// network in one pass over the elimination rounds.
///
/// The noise ablation is the motivating caller: its frozen-noise
/// campaigns differ *only* in the jittered network, so the row
/// ownership scan, the `remaining` below-pivot counts, and every
/// elimination `dt` (`remaining · elim / speed` — no network anywhere
/// in it) are computed once per round and reused across all campaigns.
/// Each campaign's float-op sequence is exactly the one
/// [`ge_closed_form`] performs for its network — sharing
/// network-independent inputs reorders evaluation only across
/// *independent* values, so results stay bit-identical (pinned by
/// `many_matches_one_by_one` below).
pub fn ge_closed_form_many<N: NetworkModel>(
    cluster: &ClusterSpec,
    networks: &[N],
    n: usize,
    dist: &CyclicDistribution,
) -> Vec<TimingOutcome> {
    hetsim_mpi::telemetry::record_closed_form("ge", networks.len() as u64);
    let p = cluster.size();
    let speeds = marked_speeds(cluster);
    // Row counts per rank in one O(n) ownership pass (materializing
    // each rank's row list would be O(n · p)).
    let mut rows = vec![0usize; p];
    for i in 0..n {
        rows[dist.owner(i)] += 1;
    }
    let scatter_counts: Vec<usize> = rows.iter().map(|&r| r * (n + 1)).collect();

    // Stage 1: root-serialized distribution of row blocks, per campaign.
    let mut campaigns: Vec<GeCampaign> = networks
        .iter()
        .map(|net| {
            let mut clock = vec![SimTime::ZERO; p];
            let mut comm = vec![SimTime::ZERO; p];
            scatter_from_root(net, &mut clock, &mut comm, &scatter_counts);
            GeCampaign { clock, compute: vec![SimTime::ZERO; p], comm, clk: SimTime::ZERO }
        })
        .collect();

    // Stage 2: elimination rounds. The barrier cost depends only on
    // `p` — hoisted once per campaign, exactly as the engine hoists it
    // per replay. `remaining[r]` tracks rank `r`'s rows strictly below
    // the pivot: row `i` leaves its owner's count at round `i`, which
    // reproduces the body's sorted-row scan bit for bit. `dts[r]` is
    // the round's elimination time — network-free, so shared.
    let barrier_costs: Vec<SimTime> =
        networks.iter().map(|net| SimTime::from_secs(net.barrier_time(p))).collect();
    let mut remaining = rows;
    let mut dts = vec![SimTime::ZERO; p];
    // The elimination-flops ladder is a pure function of the round —
    // precomputed once per batch and shared by every campaign.
    let elims: Vec<f64> = (0..n.saturating_sub(1)).map(|i| elimination_flops(n - i)).collect();
    let mut rounds = 0..n.saturating_sub(1);
    // Round 0 runs generically: the scatter leaves rank clocks
    // unequal, so receivers genuinely race the pivot broadcast. Its
    // barrier *comm* charge is deferred: each campaign records the
    // barrier exit in `clk` and leaves `clock[r]` at the rendezvous
    // entries; the next round (or the final flush) charges
    // `clk − clock[r]` before the round's own broadcast charge, which
    // is the same operand pair in the same per-accumulator order.
    if let Some(i) = rounds.next() {
        let owner = dist.owner(i);
        let bytes = ((n - i + 1) * 8) as u64;
        remaining[owner] -= 1;
        let elim = elims[i];
        for (d, (&rem, &spd)) in dts.iter_mut().zip(remaining.iter().zip(speeds.iter())) {
            *d = SimTime::from_secs(rem as f64 * elim / spd);
        }
        for ((net, cpn), &barrier_cost) in
            networks.iter().zip(campaigns.iter_mut()).zip(barrier_costs.iter())
        {
            let cost = SimTime::from_secs(net.bcast_time(p, bytes));
            let departure = cpn.clock[owner] + cost;
            cpn.comm[owner] += departure - cpn.clock[owner];
            cpn.clock[owner] = departure;
            // Fused receiver-exit + elimination + rendezvous pass. The
            // incremental `max` sees the same operands as a whole-slice
            // fold over the final clocks (all clocks are non-negative,
            // so seeding with zero is exact).
            let mut rendezvous = SimTime::ZERO;
            for (r, &dt) in dts.iter().enumerate() {
                if r != owner {
                    let exit = cpn.clock[r].max(departure);
                    cpn.comm[r] += exit - cpn.clock[r];
                    cpn.clock[r] = exit;
                }
                cpn.clock[r] += dt;
                cpn.compute[r] += dt;
                rendezvous = rendezvous.max(cpn.clock[r]);
            }
            cpn.clk = rendezvous + barrier_cost;
        }
    }
    // Rounds 1…: every rank left the previous barrier with the *same*
    // clock (`rendezvous + barrier_cost` is one f64 written to all),
    // so the per-rank clock is the scalar `clk` until the next
    // compute. The broadcast then departs at `clk + cost ≥ clk`,
    // making every receiver's `max(clock, departure)` collapse to
    // `departure` (on a zero-cost tie, `SimTime::max` keeps `self`,
    // whose bits equal `departure`'s) and the per-rank comm charge
    // `departure − clock` collapse to one shared sub. Each rank then
    // computes `departure + dt[r]` — the exact add the engine performs.
    // `clock[r]` holds the previous round's rendezvous entry, so the
    // deferred barrier charge `clk − clock[r]` lands here, first in
    // the per-accumulator order; the zipped iterators keep the hot
    // loop free of bounds checks.
    for i in rounds {
        let owner = dist.owner(i);
        let bytes = ((n - i + 1) * 8) as u64;
        remaining[owner] -= 1;
        let elim = elims[i];
        for (d, (&rem, &spd)) in dts.iter_mut().zip(remaining.iter().zip(speeds.iter())) {
            *d = SimTime::from_secs(rem as f64 * elim / spd);
        }
        for ((net, cpn), &barrier_cost) in
            networks.iter().zip(campaigns.iter_mut()).zip(barrier_costs.iter())
        {
            let cost = SimTime::from_secs(net.bcast_time(p, bytes));
            let prev_exit = cpn.clk;
            let departure = prev_exit + cost;
            let delta = departure - prev_exit;
            let mut rendezvous = SimTime::ZERO;
            for (((c, cm), cp), &dt) in cpn
                .clock
                .iter_mut()
                .zip(cpn.comm.iter_mut())
                .zip(cpn.compute.iter_mut())
                .zip(dts.iter())
            {
                *cm += prev_exit - *c;
                let t = departure + dt;
                *c = t;
                *cm += delta;
                *cp += dt;
                rendezvous = rendezvous.max(t);
            }
            cpn.clk = rendezvous + barrier_cost;
        }
    }
    // Flush the last round's deferred barrier charge and materialize
    // the equalized clocks (round 0 also lands here when n = 2).
    if n >= 2 {
        for cpn in campaigns.iter_mut() {
            let clk = cpn.clk;
            for (c, cm) in cpn.clock.iter_mut().zip(cpn.comm.iter_mut()) {
                *cm += clk - *c;
                *c = clk;
            }
        }
    }

    // Stage 3: gather to rank 0, then sequential back substitution.
    let backsub = SimTime::from_secs((n * n) as f64 / speeds[0]);
    let gather_sizes = byte_sizes(&scatter_counts);
    networks
        .iter()
        .zip(campaigns)
        .map(|(net, cpn)| {
            let GeCampaign { mut clock, mut compute, mut comm, .. } = cpn;
            gather_to(net, &mut clock, &mut comm, 0, &gather_sizes);
            clock[0] += backsub;
            compute[0] += backsub;
            finish(clock, compute, comm)
        })
        .collect()
}

/// Closed-form MM (HoHe) timings: A-block scatter, B broadcast, local
/// multiply, C gather — bit-identical to the engine on `mm::timed`'s
/// skeleton.
pub fn mm_closed_form<N: NetworkModel>(
    cluster: &ClusterSpec,
    network: &N,
    n: usize,
    dist: &BlockDistribution,
) -> TimingOutcome {
    hetsim_mpi::telemetry::record_closed_form("mm", 1);
    let p = cluster.size();
    let speeds = marked_speeds(cluster);
    let rows: Vec<usize> = (0..p).map(|r| dist.range_of(r).len()).collect();

    let mut clock = vec![SimTime::ZERO; p];
    let mut compute = vec![SimTime::ZERO; p];
    let mut comm = vec![SimTime::ZERO; p];

    let block_counts: Vec<usize> = rows.iter().map(|&r| r * n).collect();
    scatter_from_root(network, &mut clock, &mut comm, &block_counts);
    bcast_from(network, &mut clock, &mut comm, 0, n * n);
    for r in 0..p {
        let flops = (2 * rows[r] * n * n).saturating_sub(rows[r] * n) as f64;
        let dt = SimTime::from_secs(flops / speeds[r]);
        clock[r] += dt;
        compute[r] += dt;
    }
    gather_to(network, &mut clock, &mut comm, 0, &byte_sizes(&block_counts));

    finish(clock, compute, comm)
}

/// Closed-form power-iteration timings: scatter, then `iters` sweeps
/// of local matvec → allgather (gather to 0 + packed rebroadcast) →
/// normalization — bit-identical to the engine on `power::timed`'s
/// skeleton.
pub fn power_closed_form<N: NetworkModel>(
    cluster: &ClusterSpec,
    network: &N,
    n: usize,
    iters: usize,
    dist: &BlockDistribution,
) -> TimingOutcome {
    hetsim_mpi::telemetry::record_closed_form("power", 1);
    let p = cluster.size();
    let speeds = marked_speeds(cluster);
    let rows: Vec<usize> = (0..p).map(|r| dist.range_of(r).len()).collect();

    let mut clock = vec![SimTime::ZERO; p];
    let mut compute = vec![SimTime::ZERO; p];
    let mut comm = vec![SimTime::ZERO; p];

    let block_counts: Vec<usize> = rows.iter().map(|&r| r * n).collect();
    scatter_from_root(network, &mut clock, &mut comm, &block_counts);

    // Per-sweep costs are sweep-invariant (pure functions of sizes and
    // speeds); compute them once.
    let matvec: Vec<SimTime> =
        (0..p).map(|r| SimTime::from_secs(2.0 * (rows[r] * n) as f64 / speeds[r])).collect();
    let normalize: Vec<SimTime> =
        (0..p).map(|r| SimTime::from_secs(2.0 * n as f64 / speeds[r])).collect();
    // The allgather's closing broadcast carries `p` length headers plus
    // the packed gathered contributions.
    let packed = p + rows.iter().sum::<usize>();
    let gather_sizes = byte_sizes(&rows);
    for _sweep in 0..iters {
        for r in 0..p {
            clock[r] += matvec[r];
            compute[r] += matvec[r];
        }
        gather_to(network, &mut clock, &mut comm, 0, &gather_sizes);
        bcast_from(network, &mut clock, &mut comm, 0, packed);
        for r in 0..p {
            clock[r] += normalize[r];
            compute[r] += normalize[r];
        }
    }

    finish(clock, compute, comm)
}

/// Closed-form stencil timings: scatter, `iters` halo-exchange sweeps
/// (send up/down, receive down/up, interior update), gather —
/// bit-identical to the engine on `stencil::timed`'s skeleton.
pub fn stencil_closed_form<N: NetworkModel>(
    cluster: &ClusterSpec,
    network: &N,
    n: usize,
    iters: usize,
    dist: &BlockDistribution,
) -> TimingOutcome {
    hetsim_mpi::telemetry::record_closed_form("stencil", 1);
    let p = cluster.size();
    let speeds = marked_speeds(cluster);
    let rows: Vec<usize> = (0..p).map(|r| dist.range_of(r).len()).collect();

    let mut clock = vec![SimTime::ZERO; p];
    let mut compute = vec![SimTime::ZERO; p];
    let mut comm = vec![SimTime::ZERO; p];

    let block_counts: Vec<usize> = rows.iter().map(|&r| r * n).collect();
    scatter_from_root(network, &mut clock, &mut comm, &block_counts);

    if n >= 3 && iters > 0 {
        // Halo neighbours skip empty ranks; a rank with no rows sits
        // the sweeps out entirely.
        let prev: Vec<Option<usize>> =
            (0..p).map(|me| (0..me).rev().find(|&r| rows[r] > 0)).collect();
        let next: Vec<Option<usize>> =
            (0..p).map(|me| (me + 1..p).find(|&r| rows[r] > 0)).collect();
        let halo_bytes = (n * 8) as u64;
        // Sweep-invariant per-rank costs, hoisted like the engine's
        // per-replay barrier cost (pure calls, identical bits).
        let up_cost: Vec<SimTime> = (0..p)
            .map(|r| match prev[r] {
                Some(prv) => SimTime::from_secs(network.p2p_time_between(r, prv, halo_bytes)),
                None => SimTime::ZERO,
            })
            .collect();
        let down_cost: Vec<SimTime> = (0..p)
            .map(|r| match next[r] {
                Some(nxt) => SimTime::from_secs(network.p2p_time_between(r, nxt, halo_bytes)),
                None => SimTime::ZERO,
            })
            .collect();
        let update: Vec<SimTime> = (0..p)
            .map(|r| {
                let range = dist.range_of(r);
                let interior = (range.start.max(1)..range.end.min(n - 1)).count();
                SimTime::from_secs(4.0 * (interior * (n - 2)) as f64 / speeds[r])
            })
            .collect();
        // Per-sweep message bookkeeping: (sent_at, arrival) of each
        // rank's up (to prev) and down (to next) halo messages.
        let mut up_msg = vec![(SimTime::ZERO, SimTime::ZERO); p];
        let mut down_msg = vec![(SimTime::ZERO, SimTime::ZERO); p];
        for _sweep in 0..iters {
            // Sends, in per-rank program order: up to prev, down to
            // next, serialized on the sender's clock.
            for r in 0..p {
                if rows[r] == 0 {
                    continue;
                }
                if prev[r].is_some() {
                    let sent_at = clock[r];
                    let arrival = sent_at + up_cost[r];
                    comm[r] += arrival - clock[r];
                    clock[r] = arrival;
                    up_msg[r] = (sent_at, arrival);
                }
                if next[r].is_some() {
                    let sent_at = clock[r];
                    let arrival = sent_at + down_cost[r];
                    comm[r] += arrival - clock[r];
                    clock[r] = arrival;
                    down_msg[r] = (sent_at, arrival);
                }
            }
            // Receives (down from prev, up from next — `prev`'s down
            // message targets exactly this rank and vice versa), then
            // the interior update.
            for r in 0..p {
                if rows[r] == 0 {
                    continue;
                }
                if let Some(prv) = prev[r] {
                    let (_sent_at, arrival) = down_msg[prv];
                    let exit = clock[r].max(arrival);
                    comm[r] += exit - clock[r];
                    clock[r] = exit;
                }
                if let Some(nxt) = next[r] {
                    let (_sent_at, arrival) = up_msg[nxt];
                    let exit = clock[r].max(arrival);
                    comm[r] += exit - clock[r];
                    clock[r] = exit;
                }
                clock[r] += update[r];
                compute[r] += update[r];
            }
        }
    }

    gather_to(network, &mut clock, &mut comm, 0, &byte_sizes(&block_counts));

    finish(clock, compute, comm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ge::ge_timed_body;
    use crate::mm::mm_timed_body;
    use crate::power::power_timed_body;
    use crate::stencil::stencil_timed_body;
    use hetsim_cluster::network::{
        ConstantLatency, JitteredNetwork, MpichEthernet, SharedEthernet, SwitchedNetwork,
    };
    use hetsim_cluster::NodeSpec;
    use hetsim_mpi::record_spmd;

    /// Cluster extremes for the class-structure sweep: single rank,
    /// server + blade, all-distinct speeds, wide homogeneous (the
    /// shape where rank classes actually dedup).
    fn clusters() -> Vec<ClusterSpec> {
        vec![
            ClusterSpec::homogeneous(1, 50.0),
            ClusterSpec::new(
                "srv+blade",
                vec![NodeSpec::synthetic("srv", 90.0), NodeSpec::synthetic("blade", 50.0)],
            )
            .unwrap(),
            ClusterSpec::new(
                "distinct5",
                (0..5)
                    .map(|i| NodeSpec::synthetic("n", 40.0 + 17.0 * i as f64))
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
            ClusterSpec::homogeneous(8, 70.0),
        ]
    }

    fn networks() -> Vec<(&'static str, Box<dyn NetworkModel>)> {
        vec![
            ("const", Box::new(ConstantLatency::new(2.5e-4))),
            ("switched", Box::new(SwitchedNetwork::new(1.2e-4, 9.0e-9))),
            ("shared", Box::new(SharedEthernet::new(0.3e-3, 1.25e7))),
            ("mpich", Box::new(MpichEthernet::new(0.30e-3, 1.0e8))),
            (
                "jittered",
                Box::new(JitteredNetwork::new(MpichEthernet::new(0.30e-3, 1.0e8), 0.1, 7)),
            ),
        ]
    }

    fn speeds(cluster: &ClusterSpec) -> Vec<f64> {
        cluster.nodes().iter().map(|nd| nd.marked_speed_mflops).collect()
    }

    /// Every closed form must be bit-identical to the *event-driven*
    /// scheduler (not the engine's own analytic path) across cluster
    /// shapes × networks × sizes.
    #[test]
    fn closed_form_matches_engine_mm() {
        for cluster in &clusters() {
            for n in [1usize, 2, 3, 17, 64] {
                let dist = BlockDistribution::proportional(n, &speeds(cluster));
                let program = record_spmd(cluster, |t| mm_timed_body(t, &dist, n));
                for (tag, net) in &networks() {
                    let net: &dyn NetworkModel = net.as_ref();
                    let engine =
                        TimingOutcome::from_spmd(program.simulate_event_driven(cluster, &net));
                    let closed = mm_closed_form(cluster, &net, n, &dist);
                    assert_eq!(closed, engine, "mm diverged ({tag}, p={}, n={n})", cluster.size());
                }
            }
        }
    }

    #[test]
    fn closed_form_matches_engine_power() {
        for cluster in &clusters() {
            for (n, iters) in [(1usize, 1usize), (2, 2), (3, 1), (17, 4), (64, 3)] {
                let dist = BlockDistribution::proportional(n, &speeds(cluster));
                let program = record_spmd(cluster, |t| power_timed_body(t, &dist, n, iters));
                for (tag, net) in &networks() {
                    let net: &dyn NetworkModel = net.as_ref();
                    let engine =
                        TimingOutcome::from_spmd(program.simulate_event_driven(cluster, &net));
                    let closed = power_closed_form(cluster, &net, n, iters, &dist);
                    assert_eq!(
                        closed,
                        engine,
                        "power diverged ({tag}, p={}, n={n}, iters={iters})",
                        cluster.size()
                    );
                }
            }
        }
    }

    #[test]
    fn closed_form_matches_engine_stencil() {
        for cluster in &clusters() {
            // n < 3 skips the sweep block; n = 17 at p = 8 leaves some
            // ranks with single rows; 64 exercises long halo chains.
            for (n, iters) in [(1usize, 2usize), (2, 2), (3, 1), (17, 4), (64, 3)] {
                let dist = BlockDistribution::proportional(n, &speeds(cluster));
                let program = record_spmd(cluster, |t| stencil_timed_body(t, &dist, n, iters));
                for (tag, net) in &networks() {
                    let net: &dyn NetworkModel = net.as_ref();
                    let engine =
                        TimingOutcome::from_spmd(program.simulate_event_driven(cluster, &net));
                    let closed = stencil_closed_form(cluster, &net, n, iters, &dist);
                    assert_eq!(
                        closed,
                        engine,
                        "stencil diverged ({tag}, p={}, n={n}, iters={iters})",
                        cluster.size()
                    );
                }
            }
        }
    }

    /// The GE grid lives in `ge::timed` (its historical home); this
    /// adds the speed-blind cyclic deal the distribution ablation uses,
    /// where `remaining` decrements hit every rank evenly.
    #[test]
    fn closed_form_matches_engine_ge_blind_cyclic() {
        for cluster in &clusters() {
            for n in [3usize, 17, 64] {
                let dist = CyclicDistribution::fine(n, &vec![1.0; cluster.size()]);
                let program = record_spmd(cluster, |t| ge_timed_body(t, &dist, n));
                for (tag, net) in &networks() {
                    let net: &dyn NetworkModel = net.as_ref();
                    let engine =
                        TimingOutcome::from_spmd(program.simulate_event_driven(cluster, &net));
                    let closed = ge_closed_form(cluster, &net, n, &dist);
                    assert_eq!(closed, engine, "ge diverged ({tag}, p={}, n={n})", cluster.size());
                }
            }
        }
    }

    /// The batched evaluator must be bit-identical to evaluating each
    /// network on its own — the contract that lets the noise ablation
    /// share the network-independent state across its campaigns.
    #[test]
    fn many_matches_one_by_one() {
        for cluster in &clusters() {
            let sp = speeds(cluster);
            let nets: Vec<JitteredNetwork<MpichEthernet>> = (0..5)
                .map(|i| {
                    JitteredNetwork::new(
                        MpichEthernet::new(0.30e-3, 1.0e8),
                        0.02 + 0.03 * i as f64,
                        i,
                    )
                })
                .collect();
            for n in [1usize, 2, 3, 17, 64] {
                let dist = CyclicDistribution::fine(n, &sp);
                let batch = ge_closed_form_many(cluster, &nets, n, &dist);
                for (net, out) in nets.iter().zip(&batch) {
                    let single = ge_closed_form(cluster, net, n, &dist);
                    assert_eq!(out, &single, "batch diverged (p={}, n={n})", cluster.size());
                }
            }
        }
    }

    /// All four recorded kernel bodies must be accepted by the generic
    /// lockstep analyzer (the engine-level fast path behind
    /// `run_spmd_fast`).
    #[test]
    fn kernel_recordings_are_lockstep() {
        let cluster = clusters().pop().expect("non-empty");
        let n = 17usize;
        let sp = speeds(&cluster);
        let cyc = CyclicDistribution::fine(n, &sp);
        let blk = BlockDistribution::proportional(n, &sp);
        assert!(record_spmd::<(), _>(&cluster, |t| ge_timed_body(t, &cyc, n)).is_lockstep());
        assert!(record_spmd::<(), _>(&cluster, |t| mm_timed_body(t, &blk, n)).is_lockstep());
        assert!(record_spmd::<(), _>(&cluster, |t| power_timed_body(t, &blk, n, 3)).is_lockstep());
        assert!(record_spmd::<(), _>(&cluster, |t| stencil_timed_body(t, &blk, n, 3)).is_lockstep());
    }
}
