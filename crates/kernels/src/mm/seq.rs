//! Sequential matrix multiplication — the correctness oracle.

use crate::matrix::Matrix;

/// Computes `C = A·B` sequentially (ikj loop order, cache-friendly for
/// row-major storage).
///
/// # Panics
/// Panics when the inner dimensions disagree.
pub fn mm_sequential(a: &Matrix, b: &Matrix) -> Matrix {
    a.multiply(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_matrix_multiply() {
        let a = Matrix::random(6, 4, 1);
        let b = Matrix::random(4, 5, 2);
        assert_eq!(mm_sequential(&a, &b), a.multiply(&b));
    }

    #[test]
    fn associativity_spot_check() {
        let a = Matrix::random(5, 5, 3);
        let b = Matrix::random(5, 5, 4);
        let c = Matrix::random(5, 5, 5);
        let left = mm_sequential(&mm_sequential(&a, &b), &c);
        let right = mm_sequential(&a, &mm_sequential(&b, &c));
        assert!(left.max_diff(&right) < 1e-12);
    }
}
