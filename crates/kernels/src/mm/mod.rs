//! Matrix multiplication: sequential reference and parallel HoHe kernel.

mod parallel;
pub mod recover;
mod seq;
pub mod timed;

pub use parallel::{mm_parallel, MmOutcome};
pub use recover::{mm_parallel_timed_recoverable, mm_parallel_timed_recoverable_traced};
pub use seq::mm_sequential;
pub use timed::{
    mm_parallel_timed, mm_parallel_timed_faulted, mm_parallel_timed_faulted_traced,
    mm_parallel_timed_traced, mm_parallel_timed_with, mm_timed_body,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use hetsim_cluster::network::{ConstantLatency, SharedEthernet};
    use hetsim_cluster::{ClusterSpec, NodeSpec};

    fn het3() -> ClusterSpec {
        ClusterSpec::new(
            "het3",
            vec![
                NodeSpec::synthetic("a", 45.0),
                NodeSpec::synthetic("b", 50.0),
                NodeSpec::synthetic("c", 110.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn parallel_matches_sequential_reference() {
        let a = Matrix::random(20, 20, 1);
        let b = Matrix::random(20, 20, 2);
        let expected = mm_sequential(&a, &b);
        let net = SharedEthernet::new(1e-4, 1.25e7);
        let out = mm_parallel(&het3(), &net, &a, &b);
        assert!(out.c.max_diff(&expected) < 1e-10);
    }

    #[test]
    fn single_node_has_no_overhead() {
        let a = Matrix::random(8, 8, 3);
        let b = Matrix::random(8, 8, 4);
        let out =
            mm_parallel(&ClusterSpec::homogeneous(1, 50.0), &ConstantLatency::new(1e-3), &a, &b);
        assert_eq!(out.total_overhead.as_secs(), 0.0);
        assert!(out.c.max_diff(&mm_sequential(&a, &b)) < 1e-12);
    }

    #[test]
    fn faster_cluster_finishes_sooner() {
        let a = Matrix::random(40, 40, 5);
        let b = Matrix::random(40, 40, 6);
        let net = SharedEthernet::new(1e-5, 1.25e8);
        let slow = mm_parallel(&ClusterSpec::homogeneous(2, 25.0), &net, &a, &b);
        let fast = mm_parallel(&ClusterSpec::homogeneous(2, 100.0), &net, &a, &b);
        assert!(fast.makespan < slow.makespan);
    }

    #[test]
    fn heterogeneous_distribution_balances_compute() {
        // 4:1 speed ratio — proportional blocks keep per-rank compute
        // times near equal.
        let cluster = ClusterSpec::new(
            "skew",
            vec![NodeSpec::synthetic("fast", 200.0), NodeSpec::synthetic("slow", 50.0)],
        )
        .unwrap();
        let a = Matrix::random(100, 100, 7);
        let b = Matrix::random(100, 100, 8);
        let out = mm_parallel(&cluster, &SharedEthernet::new(1e-5, 1.25e8), &a, &b);
        let t0 = out.compute_times[0].as_secs();
        let t1 = out.compute_times[1].as_secs();
        let rel = (t0 - t1).abs() / t0.max(t1);
        assert!(rel < 0.1, "compute imbalance {rel} too large ({t0} vs {t1})");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = Matrix::random(16, 16, 9);
        let b = Matrix::random(16, 16, 10);
        let net = SharedEthernet::new(1e-4, 1.25e7);
        let o1 = mm_parallel(&het3(), &net, &a, &b);
        let o2 = mm_parallel(&het3(), &net, &a, &b);
        assert_eq!(o1.c, o2.c);
        assert_eq!(o1.makespan, o2.makespan);
    }

    #[test]
    fn tiny_matrices_multiply() {
        for n in [1usize, 2, 3] {
            let a = Matrix::random(n, n, 20 + n as u64);
            let b = Matrix::random(n, n, 30 + n as u64);
            let out = mm_parallel(&het3(), &ConstantLatency::new(1e-4), &a, &b);
            assert!(out.c.max_diff(&mm_sequential(&a, &b)) < 1e-12, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 3);
        mm_parallel(&het3(), &ConstantLatency::new(0.0), &a, &b);
    }

    #[test]
    #[should_panic(expected = "same size")]
    fn rejects_mismatched_sizes() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(3, 3);
        mm_parallel(&het3(), &ConstantLatency::new(0.0), &a, &b);
    }
}
