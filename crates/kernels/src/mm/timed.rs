//! Timing-mode parallel MM: the HoHe protocol with zero-filled payloads
//! and charged (not executed) arithmetic. See [`crate::ge::timed`] for
//! why this is timing-exact.

use crate::ge::TimingOutcome;
use hetpart::{BlockDistribution, Distribution};
use hetsim_cluster::cluster::ClusterSpec;
use hetsim_cluster::faults::FaultPlan;
use hetsim_cluster::network::NetworkModel;
use hetsim_mpi::trace::RankTrace;
use hetsim_mpi::{run_spmd, run_spmd_faulted, run_spmd_faulted_traced, run_spmd_traced, Rank, Tag};

/// Runs the MM communication/computation skeleton at problem size `n`
/// with the standard speed-proportional block distribution.
pub fn mm_parallel_timed<N: NetworkModel>(
    cluster: &ClusterSpec,
    network: &N,
    n: usize,
) -> TimingOutcome {
    let speeds: Vec<f64> = cluster.nodes().iter().map(|nd| nd.marked_speed_mflops).collect();
    let dist = BlockDistribution::proportional(n, &speeds);
    mm_parallel_timed_with(cluster, network, n, &dist)
}

/// Runs the MM skeleton with an explicit block distribution — the hook
/// the distribution-strategy ablation uses (e.g. equal blocks on a
/// heterogeneous cluster).
///
/// # Panics
/// Panics when the distribution's shape does not match `n` and the
/// cluster size.
pub fn mm_parallel_timed_with<N: NetworkModel>(
    cluster: &ClusterSpec,
    network: &N,
    n: usize,
    dist: &BlockDistribution,
) -> TimingOutcome {
    assert_eq!(dist.n(), n, "distribution covers a different problem size");
    assert_eq!(dist.p(), cluster.size(), "distribution has a different rank count");

    let outcome = run_spmd(cluster, network, |rank| mm_timed_body(rank, dist, n));

    TimingOutcome {
        makespan: outcome.makespan(),
        total_overhead: outcome.total_overhead(),
        times: outcome.times.clone(),
        compute_times: outcome.compute_times.clone(),
    }
}

/// [`mm_parallel_timed`] with per-rank operation tracing, for the
/// overhead-decomposition and observability passes.
pub fn mm_parallel_timed_traced<N: NetworkModel>(
    cluster: &ClusterSpec,
    network: &N,
    n: usize,
) -> (TimingOutcome, Vec<RankTrace>) {
    let speeds: Vec<f64> = cluster.nodes().iter().map(|nd| nd.marked_speed_mflops).collect();
    let dist = BlockDistribution::proportional(n, &speeds);
    let outcome = run_spmd_traced(cluster, network, |rank| mm_timed_body(rank, &dist, n));
    (
        TimingOutcome {
            makespan: outcome.makespan(),
            total_overhead: outcome.total_overhead(),
            times: outcome.times.clone(),
            compute_times: outcome.compute_times.clone(),
        },
        outcome.traces,
    )
}

/// [`mm_parallel_timed`] under a deterministic [`FaultPlan`] (see
/// [`crate::ge::ge_parallel_timed_faulted`] for semantics).
pub fn mm_parallel_timed_faulted<N: NetworkModel>(
    cluster: &ClusterSpec,
    network: &N,
    plan: &FaultPlan,
    n: usize,
) -> TimingOutcome {
    let speeds: Vec<f64> = cluster.nodes().iter().map(|nd| nd.marked_speed_mflops).collect();
    let dist = BlockDistribution::proportional(n, &speeds);
    let outcome = run_spmd_faulted(cluster, network, plan, |rank| mm_timed_body(rank, &dist, n));
    TimingOutcome {
        makespan: outcome.makespan(),
        total_overhead: outcome.total_overhead(),
        times: outcome.times.clone(),
        compute_times: outcome.compute_times.clone(),
    }
}

/// [`mm_parallel_timed_faulted`] with per-rank tracing.
pub fn mm_parallel_timed_faulted_traced<N: NetworkModel>(
    cluster: &ClusterSpec,
    network: &N,
    plan: &FaultPlan,
    n: usize,
) -> (TimingOutcome, Vec<RankTrace>) {
    let speeds: Vec<f64> = cluster.nodes().iter().map(|nd| nd.marked_speed_mflops).collect();
    let dist = BlockDistribution::proportional(n, &speeds);
    let outcome =
        run_spmd_faulted_traced(cluster, network, plan, |rank| mm_timed_body(rank, &dist, n));
    (
        TimingOutcome {
            makespan: outcome.makespan(),
            total_overhead: outcome.total_overhead(),
            times: outcome.times.clone(),
            compute_times: outcome.compute_times.clone(),
        },
        outcome.traces,
    )
}

fn mm_timed_body(rank: &mut Rank, dist: &BlockDistribution, n: usize) {
    let me = rank.rank();
    let p = rank.size();
    let my_range = dist.range_of(me);

    // A-block distribution.
    if me == 0 {
        for peer in 1..p {
            let r = dist.range_of(peer);
            rank.send_f64s(peer, Tag::DATA, &vec![0.0; r.len() * n]);
        }
    } else {
        let block = rank.recv_f64s(0, Tag::DATA);
        assert_eq!(block.len(), my_range.len() * n);
    }

    // B broadcast.
    if me == 0 {
        rank.broadcast_f64s(0, Some(&vec![0.0; n * n]));
    } else {
        rank.broadcast_f64s(0, None);
    }

    // Local multiply: charged, not executed.
    let rows = my_range.len();
    let flops = (2 * rows * n * n).saturating_sub(rows * n) as f64;
    rank.compute_flops(flops);

    // C collection.
    let gathered = rank.gather_f64s(0, &vec![0.0; rows * n]);
    if me == 0 {
        let _ = gathered.expect("rank 0 is the gather root");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::mm::mm_parallel;
    use hetsim_cluster::network::SharedEthernet;
    use hetsim_cluster::NodeSpec;

    #[test]
    fn timed_matches_real_timings() {
        let cluster = ClusterSpec::new(
            "het3",
            vec![
                NodeSpec::synthetic("a", 45.0),
                NodeSpec::synthetic("b", 50.0),
                NodeSpec::synthetic("c", 110.0),
            ],
        )
        .unwrap();
        let net = SharedEthernet::new(0.3e-3, 1.25e7);
        for n in [4usize, 15, 33] {
            let a = Matrix::random(n, n, 1);
            let b = Matrix::random(n, n, 2);
            let real = mm_parallel(&cluster, &net, &a, &b);
            let timed = mm_parallel_timed(&cluster, &net, n);
            assert_eq!(timed.makespan, real.makespan, "makespan mismatch at n = {n}");
            assert_eq!(timed.times, real.times, "per-rank clocks mismatch at n = {n}");
            assert_eq!(timed.compute_times, real.compute_times, "compute time mismatch at n = {n}");
            assert_eq!(timed.total_overhead, real.total_overhead, "overhead mismatch at n = {n}");
        }
    }

    #[test]
    fn timed_is_deterministic() {
        let cluster = ClusterSpec::homogeneous(3, 50.0);
        let net = SharedEthernet::new(1e-4, 1.25e7);
        assert_eq!(mm_parallel_timed(&cluster, &net, 48), mm_parallel_timed(&cluster, &net, 48));
    }

    #[test]
    fn faulted_with_empty_plan_is_bit_equal_to_baseline() {
        let cluster = ClusterSpec::homogeneous(3, 50.0);
        let net = SharedEthernet::new(1e-4, 1.25e7);
        let plan = FaultPlan::new(5);
        assert_eq!(
            mm_parallel_timed(&cluster, &net, 48),
            mm_parallel_timed_faulted(&cluster, &net, &plan, 48)
        );
    }

    #[test]
    fn drops_slow_mm_makespan_and_trace_retries() {
        use hetsim_mpi::trace::OpKind;
        let cluster = ClusterSpec::homogeneous(3, 50.0);
        let net = SharedEthernet::new(1e-4, 1.25e7);
        let plan = FaultPlan::new(21).with_link_drops(500);
        let base = mm_parallel_timed(&cluster, &net, 48);
        let (faulted, traces) = mm_parallel_timed_faulted_traced(&cluster, &net, &plan, 48);
        assert!(faulted.makespan > base.makespan);
        let retries: usize = traces
            .iter()
            .flat_map(|t| t.records.iter())
            .filter(|r| r.kind == OpKind::Retry)
            .count();
        assert!(retries > 0, "50% drop rate must charge retries");
    }
}
