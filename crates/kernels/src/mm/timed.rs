//! Timing-mode parallel MM: the HoHe protocol with size-only messages
//! and charged (not executed) arithmetic. See [`crate::ge::timed`] for
//! why this is timing-exact and how the two engines relate.

use crate::ge::TimingOutcome;
use hetpart::{BlockDistribution, Distribution};
use hetsim_cluster::cluster::ClusterSpec;
use hetsim_cluster::faults::FaultPlan;
use hetsim_cluster::network::NetworkModel;
use hetsim_mpi::trace::RankTrace;
use hetsim_mpi::{
    run_spmd_fast, run_spmd_fast_faulted, run_spmd_fast_faulted_traced, run_spmd_fast_traced,
    SpmdTimer, Tag,
};

/// Runs the MM communication/computation skeleton at problem size `n`
/// with the standard speed-proportional block distribution.
pub fn mm_parallel_timed<N: NetworkModel>(
    cluster: &ClusterSpec,
    network: &N,
    n: usize,
) -> TimingOutcome {
    let speeds: Vec<f64> = cluster.nodes().iter().map(|nd| nd.marked_speed_mflops).collect();
    let dist = BlockDistribution::proportional(n, &speeds);
    mm_parallel_timed_with(cluster, network, n, &dist)
}

/// Runs the MM skeleton with an explicit block distribution — the hook
/// the distribution-strategy ablation uses (e.g. equal blocks on a
/// heterogeneous cluster).
///
/// # Panics
/// Panics when the distribution's shape does not match `n` and the
/// cluster size.
pub fn mm_parallel_timed_with<N: NetworkModel>(
    cluster: &ClusterSpec,
    network: &N,
    n: usize,
    dist: &BlockDistribution,
) -> TimingOutcome {
    assert_eq!(dist.n(), n, "distribution covers a different problem size");
    assert_eq!(dist.p(), cluster.size(), "distribution has a different rank count");
    if hetsim_mpi::analytic_enabled() {
        return crate::analytic::mm_closed_form(cluster, network, n, dist);
    }
    let outcome = run_spmd_fast(cluster, network, |t| mm_timed_body(t, dist, n));
    TimingOutcome::from_spmd(outcome)
}

/// [`mm_parallel_timed`] with per-rank operation tracing, for the
/// overhead-decomposition and observability passes.
pub fn mm_parallel_timed_traced<N: NetworkModel>(
    cluster: &ClusterSpec,
    network: &N,
    n: usize,
) -> (TimingOutcome, Vec<RankTrace>) {
    let speeds: Vec<f64> = cluster.nodes().iter().map(|nd| nd.marked_speed_mflops).collect();
    let dist = BlockDistribution::proportional(n, &speeds);
    let mut outcome = run_spmd_fast_traced(cluster, network, |t| mm_timed_body(t, &dist, n));
    let traces = std::mem::take(&mut outcome.traces);
    (TimingOutcome::from_spmd(outcome), traces)
}

/// [`mm_parallel_timed`] under a deterministic [`FaultPlan`] (see
/// [`crate::ge::ge_parallel_timed_faulted`] for semantics).
pub fn mm_parallel_timed_faulted<N: NetworkModel>(
    cluster: &ClusterSpec,
    network: &N,
    plan: &FaultPlan,
    n: usize,
) -> TimingOutcome {
    let speeds: Vec<f64> = cluster.nodes().iter().map(|nd| nd.marked_speed_mflops).collect();
    let dist = BlockDistribution::proportional(n, &speeds);
    let outcome = run_spmd_fast_faulted(cluster, network, plan, |t| mm_timed_body(t, &dist, n));
    TimingOutcome::from_spmd(outcome)
}

/// [`mm_parallel_timed_faulted`] with per-rank tracing.
pub fn mm_parallel_timed_faulted_traced<N: NetworkModel>(
    cluster: &ClusterSpec,
    network: &N,
    plan: &FaultPlan,
    n: usize,
) -> (TimingOutcome, Vec<RankTrace>) {
    let speeds: Vec<f64> = cluster.nodes().iter().map(|nd| nd.marked_speed_mflops).collect();
    let dist = BlockDistribution::proportional(n, &speeds);
    let mut outcome =
        run_spmd_fast_faulted_traced(cluster, network, plan, |t| mm_timed_body(t, &dist, n));
    let traces = std::mem::take(&mut outcome.traces);
    (TimingOutcome::from_spmd(outcome), traces)
}

/// The MM (HoHe) protocol skeleton as a generic [`SpmdTimer`] body —
/// the single source of truth the engines, the threaded oracle, and
/// the closed form ([`crate::analytic::mm_closed_form`]) are pinned to.
pub fn mm_timed_body<T: SpmdTimer>(rank: &mut T, dist: &BlockDistribution, n: usize) {
    let me = rank.rank();
    let p = rank.size();
    let my_range = dist.range_of(me);

    // A-block distribution.
    if me == 0 {
        for peer in 1..p {
            let r = dist.range_of(peer);
            rank.send_count(peer, Tag::DATA, r.len() * n);
        }
    } else {
        rank.recv_count(0, Tag::DATA, my_range.len() * n);
    }

    // B broadcast.
    rank.broadcast_count(0, n * n);

    // Local multiply: charged, not executed.
    let rows = my_range.len();
    let flops = (2 * rows * n * n).saturating_sub(rows * n) as f64;
    rank.compute_flops(flops);

    // C collection.
    rank.gather_count(0, rows * n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::mm::mm_parallel;
    use hetsim_cluster::network::SharedEthernet;
    use hetsim_cluster::NodeSpec;
    use hetsim_mpi::{run_spmd, run_spmd_faulted};

    fn het3() -> ClusterSpec {
        ClusterSpec::new(
            "het3",
            vec![
                NodeSpec::synthetic("a", 45.0),
                NodeSpec::synthetic("b", 50.0),
                NodeSpec::synthetic("c", 110.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn timed_matches_real_timings() {
        let cluster = het3();
        let net = SharedEthernet::new(0.3e-3, 1.25e7);
        for n in [4usize, 15, 33] {
            let a = Matrix::random(n, n, 1);
            let b = Matrix::random(n, n, 2);
            let real = mm_parallel(&cluster, &net, &a, &b);
            let timed = mm_parallel_timed(&cluster, &net, n);
            assert_eq!(timed.makespan, real.makespan, "makespan mismatch at n = {n}");
            assert_eq!(timed.times, real.times, "per-rank clocks mismatch at n = {n}");
            assert_eq!(timed.compute_times, real.compute_times, "compute time mismatch at n = {n}");
            assert_eq!(timed.total_overhead, real.total_overhead, "overhead mismatch at n = {n}");
        }
    }

    #[test]
    fn fast_matches_threaded() {
        let cluster = het3();
        let net = SharedEthernet::new(0.3e-3, 1.25e7);
        for n in [4usize, 15, 33] {
            let speeds: Vec<f64> =
                cluster.nodes().iter().map(|nd| nd.marked_speed_mflops).collect();
            let dist = BlockDistribution::proportional(n, &speeds);
            let fast = mm_parallel_timed(&cluster, &net, n);
            let threaded = TimingOutcome::from_spmd(run_spmd(&cluster, &net, |rank| {
                mm_timed_body(rank, &dist, n)
            }));
            assert_eq!(fast, threaded, "engine mismatch at n = {n}");
        }
    }

    #[test]
    fn fast_matches_threaded_under_faults() {
        let cluster = het3();
        let net = SharedEthernet::new(0.3e-3, 1.25e7);
        let plan = FaultPlan::new(21).with_link_drops(500).with_straggler(0, 0.6);
        let n = 48usize;
        let speeds: Vec<f64> = cluster.nodes().iter().map(|nd| nd.marked_speed_mflops).collect();
        let dist = BlockDistribution::proportional(n, &speeds);
        let fast = mm_parallel_timed_faulted(&cluster, &net, &plan, n);
        let threaded = TimingOutcome::from_spmd(run_spmd_faulted(&cluster, &net, &plan, |rank| {
            mm_timed_body(rank, &dist, n)
        }));
        assert_eq!(fast, threaded);
    }

    #[test]
    fn timed_is_deterministic() {
        let cluster = ClusterSpec::homogeneous(3, 50.0);
        let net = SharedEthernet::new(1e-4, 1.25e7);
        assert_eq!(mm_parallel_timed(&cluster, &net, 48), mm_parallel_timed(&cluster, &net, 48));
    }

    #[test]
    fn faulted_with_empty_plan_is_bit_equal_to_baseline() {
        let cluster = ClusterSpec::homogeneous(3, 50.0);
        let net = SharedEthernet::new(1e-4, 1.25e7);
        let plan = FaultPlan::new(5);
        assert_eq!(
            mm_parallel_timed(&cluster, &net, 48),
            mm_parallel_timed_faulted(&cluster, &net, &plan, 48)
        );
    }

    #[test]
    fn drops_slow_mm_makespan_and_trace_retries() {
        use hetsim_mpi::trace::OpKind;
        let cluster = ClusterSpec::homogeneous(3, 50.0);
        let net = SharedEthernet::new(1e-4, 1.25e7);
        let plan = FaultPlan::new(21).with_link_drops(500);
        let base = mm_parallel_timed(&cluster, &net, 48);
        let (faulted, traces) = mm_parallel_timed_faulted_traced(&cluster, &net, &plan, 48);
        assert!(faulted.makespan > base.makespan);
        let retries: usize = traces
            .iter()
            .flat_map(|t| t.records.iter())
            .filter(|r| r.kind == OpKind::Retry)
            .count();
        assert!(retries > 0, "50% drop rate must charge retries");
    }
}
